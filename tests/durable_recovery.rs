//! Durability acceptance tests: the on-disk WAL must recover to exactly the
//! state the in-memory WAL would, a torn tail must cost nothing that was
//! durable, and a real SIGKILL mid-run must leave logs that resolve cleanly.

use o2pc_common::{Duration, SimTime, SiteId};
use o2pc_core::{Engine, SystemConfig};
use o2pc_protocol::ProtocolKind;
use o2pc_storage::codec::FRAME_HEADER;
use o2pc_storage::{segment_path, DurableWal, Wal};
use o2pc_workload::BankingWorkload;
use std::path::{Path, PathBuf};

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("o2pc-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Run a small banking workload with every site logging to `dir`, returning
/// the engine (alive, WAL files synced by the end-of-run flush).
fn run_durable(dir: &Path, seed: u64, sites: u32) -> Engine {
    let wl = BankingWorkload {
        sites,
        accounts_per_site: 8,
        transfers: 60,
        mean_interarrival: Duration::millis(2),
        local_fraction: 0.2,
        seed,
        ..Default::default()
    };
    let schedule = wl.generate();
    let mut cfg = SystemConfig::new(sites, ProtocolKind::O2pcP2);
    cfg.seed = seed;
    cfg.durable_wal_dir = Some(dir.to_path_buf());
    let mut engine = Engine::new(cfg);
    schedule.install(&mut engine);
    engine.run(Duration::secs(10));
    engine
}

/// Tentpole acceptance (a): reopening the on-disk log recovers byte-for-byte
/// the same state as replaying the in-memory record mirror — the file-backed
/// backend adds durability, never semantics.
#[test]
fn durable_recovery_equals_in_memory_recovery() {
    let dir = scratch_dir("durable-eq");
    let sites = 3;
    let engine = run_durable(&dir, 0xABCD, sites);
    for i in 0..sites {
        let site = SiteId(i);
        let mem_records = engine.wal_records(site).unwrap().to_vec();
        assert!(!mem_records.is_empty(), "site {i} logged nothing");
        let reopened = DurableWal::open(dir.join(format!("site-{i}.wal"))).unwrap();
        assert_eq!(
            reopened.records(),
            &mem_records[..],
            "site {i}: disk records differ from the in-memory mirror"
        );
        assert_eq!(
            reopened.recover(),
            Wal::from_records(mem_records).recover(),
            "site {i}: recovery diverges between disk and memory"
        );
    }
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Tentpole acceptance (b): truncating the final frame at any point — the
/// only damage an append-only crash can inflict — silently discards that
/// record and recovers exactly the untruncated prefix. Nothing committed
/// before the tear is lost.
#[test]
fn torn_tail_discards_only_the_torn_record() {
    let dir = scratch_dir("durable-torn");
    let engine = run_durable(&dir, 0xBEEF, 2);
    drop(engine);

    let path = dir.join("site-0.wal");
    let bytes = std::fs::read(segment_path(&path, 0)).unwrap();
    // Walk the frame headers to find where the final record starts and where
    // the data ends (the segment is preallocated, so a zero length field
    // marks the start of the untouched tail). The log is clean (end-of-run
    // sync), so every length field up to that point is trustworthy.
    let mut pos = 0usize;
    let mut last_start = 0usize;
    loop {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        if len == 0 {
            break; // preallocated zero tail: data ends here
        }
        last_start = pos;
        pos += FRAME_HEADER + len;
    }
    let data_end = pos;
    assert!(last_start > 0, "need at least two records");

    let full = DurableWal::open(&path).unwrap();
    let expected_len = full.len() - 1;
    let prefix_recovery = Wal::from_records(full.records()[..expected_len].to_vec()).recover();
    drop(full);

    // Tear the tail at a few representative offsets: header-only, mid-frame,
    // one byte short of complete. (The storage proptest sweeps every byte.)
    for cut in [last_start + 1, last_start + FRAME_HEADER, data_end - 1] {
        let torn_path = dir.join(format!("torn-{cut}.wal"));
        std::fs::write(segment_path(&torn_path, 0), &bytes[..cut]).unwrap();
        let torn = DurableWal::open(&torn_path).unwrap();
        assert_eq!(torn.len(), expected_len, "cut at byte {cut}");
        assert_eq!(
            torn.recover(),
            prefix_recovery,
            "cut at byte {cut}: recovery must equal the clean prefix"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Tentpole acceptance (c): a child process SIGKILLed at an arbitrary point
/// mid-workload leaves on-disk logs from which `recover_killed_run` resolves
/// every transaction with conservation and outcome-consistency intact.
#[test]
fn sigkill_mid_run_recovers_cleanly() {
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_kill_recover"))
        .args(["--seed", "11", "--sites", "3"])
        .status()
        .expect("run kill_recover");
    assert!(status.success(), "kill-recover reported violations");
}

/// Satellite: scheduling site crashes while `vote_timeout` is `None` is a
/// liveness footgun (a coordinator spawning onto a crashed site blocks
/// forever) — the engine must warn, and must stay silent once the timeout
/// is set.
#[test]
fn warns_on_crashes_without_vote_timeout() {
    let mut cfg = SystemConfig::new(2, ProtocolKind::O2pcP2);
    cfg.failures.site_crash(
        SiteId(1),
        SimTime::ZERO + Duration::millis(5),
        SimTime::ZERO + Duration::millis(20),
    );
    assert!(cfg.vote_timeout.is_none(), "default must stay None");
    let engine = Engine::new(cfg.clone());
    assert!(
        engine
            .config_warnings()
            .iter()
            .any(|w| w.contains("vote_timeout")),
        "crashes + vote_timeout=None must produce a warning"
    );
    cfg.vote_timeout = Some(Duration::millis(40));
    assert!(
        Engine::new(cfg).config_warnings().is_empty(),
        "setting vote_timeout silences the warning"
    );
}
