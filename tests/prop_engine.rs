//! Engine-level property tests: random workloads and configurations must
//! never violate the system invariants —
//!
//! * every arrival terminates (no hangs within the horizon),
//! * compensation persists (none pending at quiescence),
//! * conservation of money under delta compensation,
//! * histories produced under O2PC+P1 always satisfy the correctness
//!   criterion.

use o2pc_common::Duration;
use o2pc_core::{Engine, SystemConfig};
use o2pc_protocol::ProtocolKind;
use o2pc_sgraph::audit;
use o2pc_workload::BankingWorkload;
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct RunSpec {
    sites: u32,
    accounts: u64,
    transfers: usize,
    fanout: usize,
    p_abort: f64,
    protocol_idx: usize,
    seed: u64,
}

fn run_spec() -> impl Strategy<Value = RunSpec> {
    (
        2u32..5,
        1u64..6,
        10usize..60,
        0usize..3,
        0..5usize,
        any::<u64>(),
        0u8..8,
    )
        .prop_map(
            |(sites, accounts, transfers, fanout_raw, protocol_idx, seed, p_raw)| RunSpec {
                sites,
                accounts,
                transfers,
                fanout: 2 + fanout_raw.min(sites as usize - 2),
                p_abort: p_raw as f64 / 10.0,
                protocol_idx,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn invariants_hold_for_random_runs(spec in run_spec()) {
        let protocol = ProtocolKind::all()[spec.protocol_idx];
        let wl = BankingWorkload {
            sites: spec.sites,
            accounts_per_site: spec.accounts,
            transfers: spec.transfers,
            sites_per_transfer: spec.fanout.min(spec.sites as usize).max(2),
            mean_interarrival: Duration::micros(800),
            seed: spec.seed,
            ..Default::default()
        };
        let mut cfg = SystemConfig::new(spec.sites, protocol);
        cfg.vote_abort_probability = spec.p_abort;
        cfg.seed = spec.seed;
        cfg.record_history = protocol == ProtocolKind::O2pcP1;
        let mut e = Engine::new(cfg);
        wl.generate().install(&mut e);
        let r = e.run(Duration::secs(600));

        // Termination.
        let outcomes = r.global_committed + r.global_aborted;
        prop_assert_eq!(outcomes as usize, spec.transfers, "{} must terminate all", protocol);
        // Persistence of compensation.
        prop_assert_eq!(r.compensations_pending, 0);
        // Conservation of money (delta compensation is exact).
        prop_assert_eq!(r.total_value, wl.expected_total(), "{} leaked money", protocol);
        // P1 histories satisfy the criterion.
        if protocol == ProtocolKind::O2pcP1 {
            let report = audit(&r.history, 8_000, 8);
            prop_assert!(report.is_correct(), "P1 violated the criterion: {:?}", report.regular_cycle);
            prop_assert!(report.compensation_atomicity_violations.is_empty());
        }
    }
}
