//! Chaos smoke on the *threaded* transport: crash + duplicate + drop at
//! once, off the deterministic simulator.
//!
//! The chaos harness proper (`cargo run --bin chaos`) fuzzes the sim
//! substrate, where every fault is replayable. This test confirms the same
//! hardening (retransmission, cooperative termination, duplicate-delivery
//! idempotence) holds on the sharded wall-clock transport, whose faults are
//! injected by the link policies themselves: lossy duplicating links plus a
//! mid-run site crash, checked against the protocol's schedule-independent
//! invariants (every transaction decided, value conserved, no compensation
//! left pending, loss accounting reconciled).

use o2pc_common::{Duration, Key, Op, SimTime, SiteId, Value};
use o2pc_core::{Engine, Msg, SystemConfig, TimerEvent, TxnRequest};
use o2pc_protocol::ProtocolKind;
use o2pc_runtime::{LinkPolicy, ThreadedRuntime, ThreadedRuntimeConfig, ThreadedTransport};
use o2pc_sim::FailurePlan;
use std::time::Duration as StdDuration;

fn lossy_engine(mut cfg: SystemConfig) -> Engine<ThreadedRuntime<TimerEvent, Msg>> {
    // PR 2 hardening, at the chaos harness's standard settings: without a
    // vote timeout a spawn swallowed by the crashed site leaves its
    // coordinator with no liveness path (and its sibling's executed-but-
    // unvoted write wedged behind a lock); without retransmission a lost
    // VOTE-REQ wedges the run; without termination a participant prepared
    // across the crash stays blocked.
    cfg.vote_timeout = Some(Duration::millis(40));
    cfg.retransmit_base = Some(Duration::millis(10));
    cfg.retransmit_cap = Duration::millis(160);
    cfg.termination_timeout = Some(Duration::millis(50));
    let transport: ThreadedTransport<Msg> = ThreadedTransport::with_policy(LinkPolicy {
        latency: StdDuration::from_micros(500),
        drop_probability: 0.05,
        duplicate_probability: 0.05,
    });
    let rt = ThreadedRuntime::new(
        transport,
        ThreadedRuntimeConfig {
            idle_grace: StdDuration::from_millis(60),
        },
    );
    Engine::with_runtime(cfg, rt)
}

/// Contended transfers over lossy, duplicating links while one participant
/// crashes and recovers mid-run. Which transactions commit is
/// schedule-dependent; that all of them decide, that money is conserved,
/// and that the loss ledger reconciles is not.
#[test]
fn crash_drop_duplicate_smoke_on_threaded_transport() {
    let mut cfg = SystemConfig::new(3, ProtocolKind::O2pcP1);
    cfg.seed = 0xC4A0;
    cfg.op_service_time = Duration::micros(100);
    // Site 2 is dark from 5 ms to 120 ms: decisions sent into the outage
    // are re-driven by retransmission, and anything prepared across it is
    // resolved by the termination protocol.
    let mut failures = FailurePlan::new();
    failures.site_crash(
        SiteId(2),
        SimTime::ZERO + Duration::millis(5),
        SimTime::ZERO + Duration::millis(120),
    );
    cfg.failures = failures;
    let mut engine = lossy_engine(cfg);

    let keys = [Key(1), Key(2), Key(3)];
    let initial = 1_000i64;
    for s in [SiteId(0), SiteId(1), SiteId(2)] {
        for k in keys {
            engine.load(s, k, Value(initial));
        }
    }
    let n_global = 10u64;
    for i in 0..n_global {
        let a = SiteId((i % 3) as u32);
        let b = SiteId(((i + 1) % 3) as u32);
        let k = keys[(i % 3) as usize];
        engine.submit_at(
            SimTime(i * 2_000),
            TxnRequest::global(vec![(a, vec![Op::Add(k, -3)]), (b, vec![Op::Add(k, 3)])]),
        );
    }
    let report = engine.run(Duration::secs(60));

    // Every submitted transaction was decided despite loss + crash.
    assert_eq!(
        report.global_committed + report.global_aborted,
        n_global,
        "undecided transactions: {:?}",
        report.counters.iter().collect::<Vec<_>>()
    );
    // Semantic atomicity across compensation (PR 2 idempotence: duplicate
    // deliveries must not double-apply, lost decisions must be re-driven).
    assert_eq!(report.total_value, initial * 9, "value not conserved");
    assert_eq!(report.compensations_pending, 0, "compensation left pending");

    // Loss accounting stays honest off the sim substrate: every policy
    // drop the transport performed is attributed to a labelled message
    // counter at the engine layer, and nothing was unroutable (all sites
    // stay registered; a crash parks the site, it does not deregister it).
    let transport = engine.runtime().transport();
    let engine_drops: u64 = report
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("msg.dropped."))
        .map(|(_, v)| v)
        .sum();
    assert_eq!(
        engine_drops,
        transport.policy_dropped_count(),
        "engine drop counters must reconcile with the transport's ledger"
    );
    let engine_unroutable: u64 = report
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("msg.unroutable."))
        .map(|(_, v)| v)
        .sum();
    assert_eq!(engine_unroutable, 0, "no destination ever deregistered");
    assert!(
        transport.policy_dropped_count() > 0,
        "a 5% loss rate over a full run must actually drop something"
    );
    assert!(
        transport.duplicated_count() > 0,
        "a 5% duplication rate over a full run must actually duplicate"
    );
    assert_eq!(
        transport.in_flight(),
        0,
        "run ended with messages in flight"
    );
}
