//! End-to-end CLI checks for harness parallelism: `chaos --cores N` must
//! print byte-identical stdout at every core count (progress and timing go
//! to stderr precisely so this can hold), and `--replay-corpus` must gate
//! on saved entries.

use std::process::Command;

fn chaos(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_chaos"))
        .args(args)
        .output()
        .expect("spawn chaos")
}

#[test]
fn stdout_is_byte_identical_across_core_counts() {
    let base = ["--schedules", "50", "--seed", "0"];
    let one = chaos(&[&base[..], &["--cores", "1"]].concat());
    assert!(
        one.status.success(),
        "cores=1 run failed:\n{}",
        String::from_utf8_lossy(&one.stderr)
    );
    for cores in ["2", "4"] {
        let n = chaos(&[&base[..], &["--cores", cores]].concat());
        assert!(n.status.success(), "cores={cores} run failed");
        assert_eq!(
            String::from_utf8_lossy(&one.stdout),
            String::from_utf8_lossy(&n.stdout),
            "stdout diverged between --cores 1 and --cores {cores}"
        );
    }
}

#[test]
fn replay_corpus_judges_saved_entries() {
    let dir = std::env::temp_dir().join(format!("o2pc-cli-corpus-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Mine a small block with corpus persistence on; interesting schedules
    // exist in the first 50 seeds (the library round-trip test pins that).
    let mine = chaos(&[
        "--schedules",
        "50",
        "--seed",
        "0",
        "--corpus",
        dir.to_str().unwrap(),
    ]);
    assert!(mine.status.success());
    let entries = std::fs::read_dir(&dir)
        .expect("corpus dir was created")
        .count();
    assert!(entries > 0, "no corpus entries were written");

    let replayed = chaos(&["--replay-corpus", dir.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&replayed.stdout).to_string();
    assert!(
        replayed.status.success(),
        "corpus replay reported violations:\n{stdout}"
    );
    assert!(
        stdout.contains(&format!("{entries} corpus entries replayed, 0 violations")),
        "unexpected replay summary:\n{stdout}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
