//! Determinism of the whole stack: identical seeds must reproduce identical
//! virtual-time executions — events, histories, statistics — across protocol
//! variants, failure plans, and workloads. This is the property that makes
//! every number in EXPERIMENTS.md exactly re-derivable.

use o2pc_common::{Duration, SimTime, SiteId};
use o2pc_core::{Engine, RunReport, SystemConfig};
use o2pc_protocol::ProtocolKind;
use o2pc_sim::FailurePlan;
use o2pc_workload::{BankingWorkload, GenericWorkload};

type Fingerprint = (u64, u64, u64, u64, u64, usize, Vec<(String, u64)>);

fn fingerprint(r: &RunReport) -> Fingerprint {
    (
        r.global_committed,
        r.global_aborted,
        r.local_committed,
        r.local_aborted,
        r.end_time.micros(),
        r.history.len(),
        r.counters.iter().map(|(k, v)| (k.to_owned(), v)).collect(),
    )
}

fn run_once(protocol: ProtocolKind, seed: u64, with_failures: bool) -> RunReport {
    let wl = GenericWorkload {
        sites: 4,
        keys_per_site: 8,
        txns: 120,
        write_fraction: 0.6,
        zipf_theta: 0.7,
        local_fraction: 0.25,
        mean_interarrival: Duration::micros(700),
        seed: seed ^ 0xF00D,
        ..Default::default()
    };
    let mut cfg = SystemConfig::new(wl.sites, protocol);
    cfg.vote_abort_probability = 0.25;
    cfg.seed = seed;
    if with_failures {
        let mut f = FailurePlan::new();
        f.site_crash(SiteId(3), SimTime(20_000), SimTime(60_000));
        cfg.failures = f;
        cfg.vote_timeout = Some(Duration::millis(50));
    }
    let mut e = Engine::new(cfg);
    wl.generate().install(&mut e);
    e.run(Duration::secs(600))
}

#[test]
fn identical_seed_identical_run_all_protocols() {
    for protocol in ProtocolKind::all() {
        let a = run_once(protocol, 7, false);
        let b = run_once(protocol, 7, false);
        assert_eq!(fingerprint(&a), fingerprint(&b), "{protocol}");
    }
}

#[test]
fn identical_seed_identical_run_with_failures() {
    let a = run_once(ProtocolKind::O2pc, 9, true);
    let b = run_once(ProtocolKind::O2pc, 9, true);
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn histories_replay_identically() {
    let a = run_once(ProtocolKind::O2pcP1, 11, false);
    let b = run_once(ProtocolKind::O2pcP1, 11, false);
    assert_eq!(a.history.len(), b.history.len());
    for (x, y) in a.history.events().iter().zip(b.history.events()) {
        assert_eq!(x, y);
    }
}

/// Golden digests pinned from the engine *before* the hot-path rewrite
/// (incremental SG audit, zero-allocation loop, pluggable history sinks).
/// Identical seeds must keep producing byte-identical event streams: any
/// drift here means an "optimization" changed observable behavior.
#[test]
fn golden_history_digests_are_stable() {
    let cases: [(ProtocolKind, u64, bool, u64, usize); 4] = [
        (ProtocolKind::O2pc, 7, false, 686464693030732886, 1532),
        (ProtocolKind::O2pcP1, 11, false, 14583858794710470918, 831),
        (ProtocolKind::O2pcP2, 7, true, 16150712325492644207, 810),
        (ProtocolKind::D2pl2pc, 5, false, 1211984530926276219, 1260),
    ];
    for (protocol, seed, with_failures, digest, events) in cases {
        let r = run_once(protocol, seed, with_failures);
        assert_eq!(
            (r.history.digest(), r.history.len()),
            (digest, events),
            "golden history fingerprint drifted: {protocol} seed {seed} failures {with_failures}"
        );
    }
}

#[test]
fn different_seeds_differ() {
    let a = run_once(ProtocolKind::O2pc, 1, false);
    let b = run_once(ProtocolKind::O2pc, 2, false);
    // Outcomes may coincide, but the fine-grained trace will not.
    assert_ne!(
        fingerprint(&a).4,
        fingerprint(&b).4,
        "end times should differ across seeds"
    );
}

#[test]
fn workload_generation_is_pure() {
    let w = BankingWorkload {
        transfers: 60,
        seed: 3,
        ..Default::default()
    };
    let a = w.generate();
    let b = w.generate();
    assert_eq!(a.arrivals.len(), b.arrivals.len());
    assert_eq!(a.loads, b.loads);
    for (x, y) in a.arrivals.iter().zip(&b.arrivals) {
        assert_eq!(x.0, y.0);
    }
}
