//! Theory validation on *real* histories.
//!
//! The graph-level property tests in `crates/sgraph/tests` exercise the
//! detectors; here the theorems are checked against histories recorded from
//! actual engine executions — realizable by construction. All checks run on
//! the **exposure-semantics** SG (`build_exposed_sgs`): the paper models a
//! roll-back as the compensating transaction (§3.2), i.e. a rolled-back
//! subtransaction's forward operations are *replaced* by the CT's undo
//! operations in the serialization graph — keeping both would flag regular
//! cycles in histories where nothing was ever exposed (we verified this
//! breaks Lemma 1 on real runs; see DESIGN.md).
//!
//! * **Theorem 1** (S1 ∨ S2 ⇒ no regular cycles) over bare-O2PC runs with
//!   aborts: whenever a stratification property happens to hold on the run's
//!   global SG, no regular cycle may exist in it.
//! * **Lemma 1** (every regular cycle includes a compensating transaction in
//!   its node set): regular cycles only ever arise from aborted-transaction
//!   exposure, so their SGs always carry the CT.
//! * **Lemma 2** (regular cycle ⇒ cycle conditions C1 and C2 hold).
//! * **P1 ⇒ S1** (the §6.2 claim): histories produced under O2PC+P1 satisfy
//!   stratification property S1.

use o2pc_common::{Duration, SimTime, SiteId};
use o2pc_core::{Engine, SystemConfig};
use o2pc_protocol::ProtocolKind;
use o2pc_sgraph::build_exposed_sgs;
use o2pc_sgraph::strat::{holds_c1, holds_c2};
use o2pc_sgraph::{find_regular_cycle, holds_s1, holds_s2};
use o2pc_workload::BankingWorkload;

fn adversarial_run(protocol: ProtocolKind, seed: u64) -> o2pc_core::RunReport {
    let wl = BankingWorkload {
        sites: 3,
        accounts_per_site: 2,
        transfers: 80,
        mean_interarrival: Duration::micros(300),
        seed: seed.wrapping_mul(0x9E3779B97F4A7C15) | 1,
        ..Default::default()
    };
    let mut cfg = SystemConfig::new(wl.sites, protocol);
    cfg.network = o2pc_sim::NetworkConfig::fixed(Duration::millis(2));
    cfg.vote_abort_probability = 0.35;
    cfg.seed = seed;
    let mut e = Engine::new(cfg);
    wl.generate().install(&mut e);
    e.run(Duration::secs(600))
}

/// Theorem 1 in its actual domain.
///
/// The stratification properties are *sufficient conditions enforced by the
/// protocols*: P1 maintains S1 by construction, and Theorem 1 then promises
/// no regular cycles. Testing the bare implication "S1 ⇒ no regular cycle"
/// on arbitrary bare-O2PC histories is subtly outside the theorem's scope:
/// a subtransaction unilaterally aborted mid-flight never "appears" at some
/// sites, which can make `active-with-respect-to` (and hence S1) hold
/// *vacuously* on a history whose exposed effects still form a regular
/// cycle — we found such runs. The theorem's premises presuppose the full
/// marking lifecycle that P1 (and the Simple variant) impose, so that is
/// where it is validated; `p1_runs_satisfy_s1_and_have_no_regular_cycles`
/// covers P1, and this test covers the Simple protocol and the abort-free
/// boundary case.
#[test]
fn theorem1_on_governed_runs() {
    for seed in 0..10u64 {
        let r = adversarial_run(ProtocolKind::O2pcSimple, seed);
        let gsg = build_exposed_sgs(&r.history);
        assert!(holds_s1(&gsg), "seed {seed}: Simple run violated S1");
        assert!(
            find_regular_cycle(&gsg, 8_000, 8).is_none(),
            "seed {seed}: Simple run produced a regular cycle"
        );
    }
    // Abort-free boundary: no CTs, S1 vacuous, and no cycles at all.
    for seed in 0..4u64 {
        let wl = BankingWorkload {
            sites: 3,
            accounts_per_site: 32,
            transfers: 60,
            mean_interarrival: Duration::millis(3),
            seed: seed + 1,
            ..Default::default()
        };
        let mut cfg = SystemConfig::new(wl.sites, ProtocolKind::O2pc);
        cfg.seed = seed;
        let mut e = Engine::new(cfg);
        wl.generate().install(&mut e);
        let r = e.run(Duration::secs(600));
        assert_eq!(r.global_aborted, 0);
        let gsg = build_exposed_sgs(&r.history);
        assert!(holds_s1(&gsg) && holds_s2(&gsg));
        assert!(find_regular_cycle(&gsg, 8_000, 8).is_none());
    }
}

#[test]
fn lemma1_regular_cycles_include_a_ct() {
    let mut found = 0;
    for seed in 0..16u64 {
        let r = adversarial_run(ProtocolKind::O2pc, seed);
        let gsg = build_exposed_sgs(&r.history);
        if let Some(rc) = find_regular_cycle(&gsg, 8_000, 8) {
            found += 1;
            assert!(
                rc.nodes.iter().any(|n| n.is_compensation()),
                "seed {seed}: regular cycle without a CT node: {:?}",
                rc.nodes
            );
        }
    }
    assert!(
        found > 0,
        "the adversarial workload must produce some regular cycles"
    );
}

#[test]
fn lemma2_regular_cycle_implies_cycle_conditions() {
    let mut found = 0;
    for seed in 0..16u64 {
        let r = adversarial_run(ProtocolKind::O2pc, seed);
        let gsg = build_exposed_sgs(&r.history);
        if find_regular_cycle(&gsg, 8_000, 8).is_some() {
            found += 1;
            assert!(holds_c1(&gsg), "seed {seed}: regular cycle without C1");
            assert!(holds_c2(&gsg), "seed {seed}: regular cycle without C2");
        }
    }
    assert!(found > 0);
}

#[test]
fn p1_runs_satisfy_s1_and_have_no_regular_cycles() {
    for seed in 0..10u64 {
        let r = adversarial_run(ProtocolKind::O2pcP1, seed);
        let gsg = build_exposed_sgs(&r.history);
        assert!(holds_s1(&gsg), "seed {seed}: P1 run violated S1");
        assert!(
            find_regular_cycle(&gsg, 8_000, 8).is_none(),
            "seed {seed}: P1 run produced a regular cycle"
        );
    }
}

#[test]
fn d2pl_runs_are_always_serializable_over_committed_globals() {
    // The baseline never exposes uncommitted data, so under exposure
    // semantics (the audit's view — see `build_exposed_sgs`) its histories
    // can have no regular cycles, whatever aborts occurred.
    for seed in 0..8u64 {
        let r = adversarial_run(ProtocolKind::D2pl2pc, seed);
        let gsg = build_exposed_sgs(&r.history);
        assert!(
            find_regular_cycle(&gsg, 8_000, 8).is_none(),
            "seed {seed}: 2PL-2PC produced an exposed regular cycle"
        );
    }
}

#[test]
fn coordinator_site_placement_does_not_change_outcomes() {
    // Determinism sanity across coordinator placements: same workload, same
    // seeds, different coordinator host — commit/abort counts must be stable
    // because placement only shifts zero-latency legs.
    use o2pc_common::{Key, Op, Value};
    use o2pc_core::TxnRequest;
    for coord in [SiteId(0), SiteId(1), SiteId(2)] {
        let mut cfg = SystemConfig::new(3, ProtocolKind::O2pc);
        cfg.seed = 5;
        let mut e = Engine::new(cfg);
        e.load(SiteId(1), Key(0), Value(10));
        e.load(SiteId(2), Key(0), Value(10));
        e.submit_at(
            SimTime::ZERO,
            TxnRequest::global_with_coordinator(
                coord,
                vec![
                    (SiteId(1), vec![Op::Add(Key(0), -1)]),
                    (SiteId(2), vec![Op::Add(Key(0), 1)]),
                ],
            ),
        );
        let r = e.run(Duration::secs(5));
        assert_eq!(r.global_committed, 1, "coordinator at {coord}");
    }
}
