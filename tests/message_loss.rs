//! Lossy-network behaviour: with random message drops and the coordinator's
//! presumed-abort timeout, every transaction still terminates and semantic
//! atomicity holds. (Without the timeout, lost votes block coordinators
//! forever — which the engine surfaces as undecided transactions, counted
//! as aborts at quiescence.)

use o2pc_common::Duration;
use o2pc_core::{Engine, SystemConfig};
use o2pc_protocol::ProtocolKind;
use o2pc_workload::BankingWorkload;

fn lossy_run(
    protocol: ProtocolKind,
    drop_p: f64,
    timeout: Option<Duration>,
) -> (o2pc_core::RunReport, i64) {
    let wl = BankingWorkload {
        sites: 4,
        accounts_per_site: 8,
        transfers: 150,
        mean_interarrival: Duration::millis(2),
        seed: 0x70_55,
        ..Default::default()
    };
    let mut cfg = SystemConfig::new(wl.sites, protocol);
    cfg.network.drop_probability = drop_p;
    cfg.vote_timeout = timeout;
    cfg.seed = 0x70_55;
    cfg.record_history = false;
    let mut e = Engine::new(cfg);
    wl.generate().install(&mut e);
    (e.run(Duration::secs(300)), wl.expected_total())
}

#[test]
fn lossy_network_with_timeout_terminates_everything() {
    for protocol in [ProtocolKind::O2pc, ProtocolKind::D2pl2pc] {
        let (r, expected) = lossy_run(protocol, 0.05, Some(Duration::millis(100)));
        assert_eq!(
            r.global_committed + r.global_aborted,
            150,
            "{protocol}: every transfer must terminate despite 5% loss"
        );
        assert!(
            r.global_aborted > 0,
            "{protocol}: drops must cause presumed aborts"
        );
        assert!(r.counters.get("net.dropped") > 0);
        if protocol == ProtocolKind::O2pc {
            // Money conservation holds only when every site's abort
            // decision eventually arrives; drops can strand a locally
            // committed site whose Decision was lost — unless the
            // coordinator keeps its decision log. Our coordinator does not
            // retransmit spontaneously, so allow pending compensations to
            // be the difference. What must NOT happen is silent
            // inconsistency: any imbalance must be explained by stranded
            // in-doubt sites.
            let imbalance = (r.total_value - expected).abs();
            let explained = r.counters.get("msg.decision") >= r.counters.get("msg.decision_ack");
            assert!(
                explained,
                "imbalance {imbalance} must come from undelivered decisions"
            );
        }
    }
}

#[test]
fn zero_loss_with_timeout_is_clean() {
    let (r, expected) = lossy_run(ProtocolKind::O2pc, 0.0, Some(Duration::millis(100)));
    assert_eq!(r.global_committed + r.global_aborted, 150);
    assert_eq!(r.total_value, expected, "no loss ⇒ exact conservation");
    assert_eq!(r.compensations_pending, 0);
    assert_eq!(r.counters.get("net.dropped"), 0);
}

#[test]
fn loss_without_timeout_strands_transactions() {
    let (r, _) = lossy_run(ProtocolKind::O2pc, 0.05, None);
    // Undecided coordinators are counted as aborted at quiescence; the run
    // still terminates because the engine drains its event queue.
    assert_eq!(r.global_committed + r.global_aborted, 150);
    assert!(r.counters.get("net.dropped") > 0);
}
