//! Equivalence of the incremental serialization-graph builder with the
//! batch (whole-history replay) builder, on *real* engine output: recorded
//! chaos histories with crashes, message loss, duplication, retransmission,
//! aborts and compensations — the richest event streams the system
//! produces. For every history, feeding the events one at a time into
//! [`o2pc_sgraph::IncrementalSg`] must yield exactly the node and edge sets
//! of `build_sgs` / `build_exposed_sgs`.

use o2pc_chaos::{run_plan, ChaosConfig, ChaosPlan, Hardening};
use o2pc_common::{Duration, SiteId};
use o2pc_core::{Engine, SystemConfig};
use o2pc_protocol::ProtocolKind;
use o2pc_sgraph::{audit, build_exposed_sgs, build_sgs, incremental, GlobalSg};
use o2pc_workload::GenericWorkload;

fn assert_graphs_equal(inc: &GlobalSg, batch: &GlobalSg, what: &str) {
    assert_eq!(inc.nodes(), batch.nodes(), "{what}: node sets differ");
    assert_eq!(inc.edges(), batch.edges(), "{what}: union edge sets differ");
    let inc_sites: Vec<SiteId> = inc.sites().map(|(s, _)| s).collect();
    let batch_sites: Vec<SiteId> = batch.sites().map(|(s, _)| s).collect();
    assert_eq!(inc_sites, batch_sites, "{what}: site sets differ");
    for (site, bsg) in batch.sites() {
        let isg = inc.site(site).expect("site present");
        let b_nodes: Vec<_> = bsg.nodes().collect();
        let i_nodes: Vec<_> = isg.nodes().collect();
        assert_eq!(i_nodes, b_nodes, "{what}: site {site} node sets differ");
        let mut b_edges: Vec<_> = bsg.edges().collect();
        let mut i_edges: Vec<_> = isg.edges().collect();
        b_edges.sort_unstable();
        i_edges.sort_unstable();
        assert_eq!(i_edges, b_edges, "{what}: site {site} edge sets differ");
    }
}

#[test]
fn incremental_matches_batch_on_chaos_histories() {
    let cfg = ChaosConfig::default();
    for seed in 0..10u64 {
        let outcome = run_plan(&ChaosPlan::generate(seed, &cfg), Hardening::default());
        assert!(outcome.survived(), "chaos seed {seed} violated invariants");
        let h = &outcome.report.history;
        assert_graphs_equal(
            &incremental::replay(h, true),
            &build_exposed_sgs(h),
            &format!("chaos seed {seed}, exposed"),
        );
        assert_graphs_equal(
            &incremental::replay(h, false),
            &build_sgs(h),
            &format!("chaos seed {seed}, complete"),
        );
    }
}

/// High-abort contended workload (the E7 regime where regular cycles form):
/// the audit verdict over the incrementally-built graph must match the
/// history-level audit.
#[test]
fn incremental_graph_audits_identically() {
    for seed in 0..6u64 {
        let wl = GenericWorkload {
            sites: 4,
            keys_per_site: 2,
            txns: 100,
            write_fraction: 0.8,
            zipf_theta: 0.9,
            local_fraction: 0.2,
            mean_interarrival: Duration::micros(300),
            seed: seed ^ 0xABCD,
            ..Default::default()
        };
        let mut cfg = SystemConfig::new(wl.sites, ProtocolKind::O2pc);
        cfg.vote_abort_probability = 0.4;
        cfg.seed = seed;
        let mut e = Engine::new(cfg);
        wl.generate().install(&mut e);
        let r = e.run(Duration::secs(600));

        let gsg = incremental::replay(&r.history, true);
        let from_inc = o2pc_sgraph::audit_graph(&gsg, &r.history, 10_000, 8);
        let from_hist = audit(&r.history, 10_000, 8);
        assert_eq!(from_inc.is_correct(), from_hist.is_correct(), "seed {seed}");
        assert_eq!(from_inc.serializable, from_hist.serializable, "seed {seed}");
        assert_eq!(from_inc.cyclic_sccs, from_hist.cyclic_sccs, "seed {seed}");
        assert_eq!(
            from_inc.regular_cycle.is_some(),
            from_hist.regular_cycle.is_some(),
            "seed {seed}"
        );
    }
}
