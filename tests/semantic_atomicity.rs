//! Cross-crate integration tests of the headline guarantee: **semantic
//! atomicity** — every global transaction either commits everywhere, or
//! every locally-committed subtransaction is compensated and the rest are
//! rolled back — validated through workload-level invariants at quiescence.

use o2pc_common::Duration;
use o2pc_compensation::CompensationModel;
use o2pc_core::{Engine, SystemConfig};
use o2pc_protocol::ProtocolKind;
use o2pc_sgraph::audit;
use o2pc_workload::{BankingWorkload, GenericWorkload, TravelWorkload};

fn run_banking(protocol: ProtocolKind, p_abort: f64, seed: u64) -> (o2pc_core::RunReport, i64) {
    let wl = BankingWorkload {
        sites: 4,
        accounts_per_site: 8,
        transfers: 250,
        sites_per_transfer: 3,
        mean_interarrival: Duration::millis(1),
        local_fraction: 0.2,
        seed,
        ..Default::default()
    };
    let mut cfg = SystemConfig::new(wl.sites, protocol);
    cfg.vote_abort_probability = p_abort;
    cfg.seed = seed;
    cfg.record_history = false;
    let mut e = Engine::new(cfg);
    wl.generate().install(&mut e);
    (e.run(Duration::secs(600)), wl.expected_total())
}

#[test]
fn money_conserved_across_protocols_and_abort_rates() {
    for protocol in ProtocolKind::all() {
        for p in [0.0, 0.2, 0.6] {
            let (r, expected) = run_banking(protocol, p, 0xABCD);
            assert_eq!(
                r.total_value, expected,
                "{protocol} p={p}: money must be conserved at quiescence"
            );
            assert_eq!(
                r.compensations_pending, 0,
                "{protocol} p={p}: compensation persists"
            );
        }
    }
}

#[test]
fn all_submitted_transactions_terminate() {
    for protocol in [
        ProtocolKind::D2pl2pc,
        ProtocolKind::O2pc,
        ProtocolKind::O2pcP1,
    ] {
        let (r, _) = run_banking(protocol, 0.3, 0x1234);
        let globals = r.global_committed + r.global_aborted;
        // 250 arrivals, ~20% locals → ~200 globals; every one terminates.
        assert!(globals > 150, "{protocol}: {globals} global outcomes");
        assert!(r.local_committed + r.local_aborted > 0);
        assert_eq!(r.compensations_pending, 0);
    }
}

#[test]
fn travel_inventory_never_leaks_partial_bookings() {
    for capacity in [5, 20] {
        let wl = TravelWorkload {
            sites: 3,
            items_per_site: 4,
            capacity,
            bookings: 120,
            legs: 3,
            mean_interarrival: Duration::millis(1),
            seed: 0x77,
        };
        let mut cfg = SystemConfig::new(wl.sites, ProtocolKind::O2pc);
        cfg.seed = 0x77;
        cfg.record_history = false;
        let mut e = Engine::new(cfg);
        wl.generate().install(&mut e);
        let r = e.run(Duration::secs(600));
        // Exactly 3 units leave inventory per committed booking; aborted
        // bookings release everything they reserved.
        assert_eq!(
            r.total_value,
            wl.total_units() - 3 * r.global_committed as i64,
            "capacity {capacity}: partial bookings leaked"
        );
        if capacity == 5 {
            assert!(r.global_aborted > 0, "scarcity must cause organic aborts");
        }
    }
}

#[test]
fn generic_model_also_preserves_semantic_atomicity() {
    // Before-image compensation (generic model): conservation is NOT
    // guaranteed for deltas clobbered by restores, but termination,
    // persistence and the correctness criterion still hold.
    let wl = BankingWorkload {
        sites: 3,
        accounts_per_site: 4,
        transfers: 120,
        mean_interarrival: Duration::millis(1),
        seed: 0x6E,
        ..Default::default()
    };
    let mut cfg = SystemConfig::new(wl.sites, ProtocolKind::O2pcP1);
    cfg.compensation_model = CompensationModel::Generic;
    cfg.vote_abort_probability = 0.3;
    cfg.seed = 0x6E;
    let mut e = Engine::new(cfg);
    wl.generate().install(&mut e);
    let r = e.run(Duration::secs(600));
    assert_eq!(r.compensations_pending, 0);
    assert!(r.global_aborted > 0);
    let report = audit(&r.history, 8_000, 8);
    assert!(
        report.is_correct(),
        "P1 keeps the criterion under the generic model too"
    );
}

#[test]
fn read_write_mix_terminates_under_all_protocols() {
    for protocol in ProtocolKind::all() {
        let wl = GenericWorkload {
            sites: 3,
            keys_per_site: 8,
            txns: 150,
            ops_per_sub: 3,
            sites_per_txn: 2,
            write_fraction: 0.6,
            local_fraction: 0.3,
            zipf_theta: 0.9,
            mean_interarrival: Duration::micros(500),
            seed: 0x5A,
            ..Default::default()
        };
        let mut cfg = SystemConfig::new(wl.sites, protocol);
        cfg.vote_abort_probability = 0.15;
        cfg.seed = 0x5A;
        cfg.record_history = false;
        let mut e = Engine::new(cfg);
        wl.generate().install(&mut e);
        let r = e.run(Duration::secs(600));
        let total = r.global_committed + r.global_aborted + r.local_committed + r.local_aborted;
        assert!(
            total >= 150,
            "{protocol}: all {total} arrivals must terminate"
        );
        assert_eq!(r.compensations_pending, 0, "{protocol}");
    }
}

#[test]
fn no_aborts_means_plain_serializability_for_every_protocol() {
    for protocol in ProtocolKind::all() {
        // Gentle enough that no protocol suffers deadlock aborts: the point
        // is the abort-free boundary, where the criterion must reduce to
        // plain serializability.
        let wl = BankingWorkload {
            sites: 3,
            accounts_per_site: 32,
            transfers: 100,
            mean_interarrival: Duration::millis(3),
            seed: 0xFE,
            ..Default::default()
        };
        let mut cfg = SystemConfig::new(wl.sites, protocol);
        cfg.seed = 0xFE;
        let mut e = Engine::new(cfg);
        wl.generate().install(&mut e);
        let r = e.run(Duration::secs(600));
        // The admission-restricting variants (P2, Simple) may reject and
        // abort even without failures — P2 keys on the locally-committed
        // marks every transaction carries between vote and decision. The
        // unrestricted protocols must be abort-free here.
        if matches!(
            protocol,
            ProtocolKind::D2pl2pc | ProtocolKind::O2pc | ProtocolKind::O2pcP1
        ) {
            assert_eq!(r.global_aborted, 0, "{protocol}");
        }
        if r.global_aborted == 0 {
            let report = audit(&r.history, 8_000, 8);
            assert!(
                report.serializable,
                "{protocol}: abort-free runs are serializable"
            );
        }
    }
}
