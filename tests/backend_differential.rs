//! Cross-backend differential tests: the same `Engine` (identical protocol
//! logic, identical configuration, identical workload) run once on the
//! deterministic simulator and once on the threaded wall-clock runtime.
//!
//! What can be compared depends on contention:
//!
//! * a **conflict-free** schedule has one outcome regardless of message
//!   interleaving, so commit / abort / compensation counts must match the
//!   simulator *exactly*;
//! * a **contended** schedule is schedule-dependent on real threads, so the
//!   threaded run is checked against the protocol's invariants (every
//!   transaction decided, value conserved, no compensation left pending)
//!   while the simulated run stays bit-reproducible.

use o2pc_common::{Duration, Key, Op, SimTime, SiteId, Value};
use o2pc_core::{Engine, Msg, RunReport, SystemConfig, TimerEvent, TxnRequest};
use o2pc_protocol::ProtocolKind;
use o2pc_runtime::{Runtime, ThreadedRuntime, ThreadedRuntimeConfig, ThreadedTransport};
use std::time::Duration as StdDuration;

fn threaded_engine(cfg: SystemConfig) -> Engine<ThreadedRuntime<TimerEvent, Msg>> {
    let transport = ThreadedTransport::new(StdDuration::from_millis(1));
    let rt = ThreadedRuntime::new(
        transport,
        ThreadedRuntimeConfig {
            idle_grace: StdDuration::from_millis(30),
        },
    );
    Engine::with_runtime(cfg, rt)
}

/// Install a fixed workload into an engine on any substrate.
fn install<R: Runtime<TimerEvent, Msg>>(
    engine: &mut Engine<R>,
    loads: &[(SiteId, Key, Value)],
    arrivals: &[(SimTime, TxnRequest)],
) {
    for &(s, k, v) in loads {
        engine.load(s, k, v);
    }
    for (t, req) in arrivals {
        engine.submit_at(*t, req.clone());
    }
}

fn counts(r: &RunReport) -> (u64, u64, u64, u64, u64, usize, i64) {
    (
        r.global_committed,
        r.global_aborted,
        r.local_committed,
        r.local_aborted,
        r.compensations_completed,
        r.compensations_pending,
        r.total_value,
    )
}

type Workload = (Vec<(SiteId, Key, Value)>, Vec<(SimTime, TxnRequest)>);

/// Disjoint keys per transaction: no lock conflicts, no aborts, and hence
/// one possible outcome on every substrate.
fn conflict_free_workload() -> Workload {
    let mut loads = Vec::new();
    let mut arrivals = Vec::new();
    for i in 0u64..6 {
        let a = SiteId((i % 3) as u32);
        let b = SiteId(((i + 1) % 3) as u32);
        let k = Key(100 + i);
        loads.push((a, k, Value(50)));
        loads.push((b, k, Value(50)));
        arrivals.push((
            SimTime(i * 2_000),
            TxnRequest::global(vec![(a, vec![Op::Add(k, -10)]), (b, vec![Op::Add(k, 10)])]),
        ));
    }
    // A couple of independent local transactions on their own keys.
    for i in 0u64..3 {
        let s = SiteId((i % 3) as u32);
        let k = Key(500 + i);
        loads.push((s, k, Value(7)));
        arrivals.push((
            SimTime(1_000 + i * 2_000),
            TxnRequest::Local {
                site: s,
                ops: vec![Op::Add(k, 1)],
            },
        ));
    }
    (loads, arrivals)
}

/// Golden fingerprint of the conflict-free run on the simulator, pinned
/// before the hot-path rewrite. The threaded backend cannot be digested
/// (wall-clock timestamps differ run to run), but the simulator side of the
/// differential must stay byte-identical across optimizations.
#[test]
fn conflict_free_sim_history_digest_is_golden() {
    let (loads, arrivals) = conflict_free_workload();
    let mut cfg = SystemConfig::new(3, ProtocolKind::O2pc);
    cfg.seed = 11;
    cfg.op_service_time = Duration::micros(100);
    let mut sim = Engine::new(cfg);
    install(&mut sim, &loads, &arrivals);
    let r = sim.run(Duration::secs(30));
    assert_eq!(
        (r.history.digest(), r.history.len()),
        (3469630476736176198u64, 57usize),
        "golden sim fingerprint drifted"
    );
}

#[test]
fn conflict_free_counts_match_across_backends() {
    let (loads, arrivals) = conflict_free_workload();
    let mk_cfg = || {
        let mut cfg = SystemConfig::new(3, ProtocolKind::O2pc);
        cfg.seed = 11;
        cfg.op_service_time = Duration::micros(100);
        cfg
    };

    let mut sim = Engine::new(mk_cfg());
    install(&mut sim, &loads, &arrivals);
    let sim_report = sim.run(Duration::secs(30));

    let mut thr = threaded_engine(mk_cfg());
    install(&mut thr, &loads, &arrivals);
    let thr_report = thr.run(Duration::secs(30));

    assert_eq!(sim_report.global_committed, 6);
    assert_eq!(sim_report.local_committed, 3);
    assert_eq!(
        counts(&sim_report),
        counts(&thr_report),
        "conflict-free outcome diverged between backends"
    );
}

/// One participant is forced to vote abort (autonomy) after its sibling has
/// optimistically committed and released — so the decided outcome *requires*
/// a compensation. Both engines consume the same RNG stream (the seed is
/// calibrated on the simulator), so the commit/abort/compensation counts are
/// a hard equality even though the two backends may deliver the vote
/// requests in different orders.
#[test]
fn forced_abort_compensates_identically_on_both_backends() {
    let mk_cfg = |seed: u64| {
        let mut cfg = SystemConfig::new(2, ProtocolKind::O2pc);
        cfg.seed = seed;
        cfg.op_service_time = Duration::micros(100);
        cfg.vote_abort_probability = 0.5;
        cfg
    };
    let loads = [
        (SiteId(0), Key(1), Value(100)),
        (SiteId(1), Key(2), Value(100)),
    ];
    let arrivals = [(
        SimTime::ZERO,
        TxnRequest::global(vec![
            (SiteId(0), vec![Op::Add(Key(1), -5)]),
            (SiteId(1), vec![Op::Add(Key(2), 5)]),
        ]),
    )];

    // Calibrate: find a seed whose two vote draws are (abort, commit) in
    // some order — exactly one compensation on the simulator.
    let mut chosen = None;
    for seed in 0..64 {
        let mut sim = Engine::new(mk_cfg(seed));
        install(&mut sim, &loads, &arrivals);
        let r = sim.run(Duration::secs(30));
        if r.global_aborted == 1 && r.compensations_completed == 1 {
            chosen = Some((seed, r));
            break;
        }
    }
    let (seed, sim_report) = chosen.expect("some seed in 0..64 yields a single-sided no-vote");

    let mut thr = threaded_engine(mk_cfg(seed));
    install(&mut thr, &loads, &arrivals);
    let thr_report = thr.run(Duration::secs(30));

    assert_eq!(counts(&sim_report), counts(&thr_report), "seed {seed}");
    assert_eq!(thr_report.global_committed, 0);
    assert_eq!(thr_report.global_aborted, 1);
    assert_eq!(thr_report.compensations_completed, 1);
    assert_eq!(thr_report.compensations_pending, 0);
}

/// A dense conflict-free burst: every transaction arrives within 600 µs, so
/// with `admission_window = Some(2)` the coordinators *must* park arrivals
/// in the admission queue and re-admit them as completions free slots.
fn dense_conflict_free_workload() -> Workload {
    let mut loads = Vec::new();
    let mut arrivals = Vec::new();
    for i in 0u64..12 {
        let a = SiteId((i % 3) as u32);
        let b = SiteId(((i + 1) % 3) as u32);
        let k = Key(200 + i);
        loads.push((a, k, Value(50)));
        loads.push((b, k, Value(50)));
        arrivals.push((
            SimTime(i * 50),
            TxnRequest::global(vec![(a, vec![Op::Add(k, -10)]), (b, vec![Op::Add(k, 10)])]),
        ));
    }
    (loads, arrivals)
}

/// The pipelined coordinator (bounded admission window, completion-driven
/// refill) must decide the same commit/abort multiset as the unbounded
/// coordinator, on both substrates: windowing reorders *when* transactions
/// run, never *what* they decide. The workload is conflict-free so the
/// outcome is unique and the comparison is exact equality.
#[test]
fn pipelined_coordinator_matches_across_backends() {
    let (loads, arrivals) = dense_conflict_free_workload();
    let mk_cfg = |window: Option<usize>| {
        let mut cfg = SystemConfig::new(3, ProtocolKind::O2pc);
        cfg.seed = 29;
        cfg.op_service_time = Duration::micros(100);
        cfg.admission_window = window;
        cfg
    };

    let mut sim_unbounded = Engine::new(mk_cfg(None));
    install(&mut sim_unbounded, &loads, &arrivals);
    let unbounded = sim_unbounded.run(Duration::secs(30));

    let mut sim_windowed = Engine::new(mk_cfg(Some(2)));
    install(&mut sim_windowed, &loads, &arrivals);
    let windowed = sim_windowed.run(Duration::secs(30));

    let mut thr = threaded_engine(mk_cfg(Some(2)));
    install(&mut thr, &loads, &arrivals);
    let thr_report = thr.run(Duration::secs(30));

    assert_eq!(unbounded.global_committed, 12);
    assert!(
        windowed.counters.get("txn.admit_queued") > 0,
        "the 2-wide window must actually park arrivals under a 50 µs burst"
    );
    assert!(
        thr_report.counters.get("txn.admit_queued") > 0,
        "the threaded run must exercise the admission queue too"
    );
    assert_eq!(
        counts(&unbounded),
        counts(&windowed),
        "admission windowing changed the decided outcome on the simulator"
    );
    assert_eq!(
        counts(&windowed),
        counts(&thr_report),
        "pipelined outcome diverged between sim and threaded backends"
    );
}

/// Heavy contention on a handful of keys. On real threads the interleaving
/// (and therefore which transactions win) is schedule-dependent, so the
/// check is the protocol's own guarantees, not equality with the simulator.
#[test]
fn contended_workload_upholds_invariants_on_threaded_runtime() {
    let mut cfg = SystemConfig::new(3, ProtocolKind::O2pcP1);
    cfg.seed = 23;
    cfg.op_service_time = Duration::micros(100);
    let mut engine = threaded_engine(cfg);

    let keys = [Key(1), Key(2), Key(3)];
    let initial = 1_000i64;
    for s in [SiteId(0), SiteId(1), SiteId(2)] {
        for k in keys {
            engine.load(s, k, Value(initial));
        }
    }
    let n_global = 12u64;
    for i in 0..n_global {
        let a = SiteId((i % 3) as u32);
        let b = SiteId(((i + 1) % 3) as u32);
        let k = keys[(i % 3) as usize]; // only 3 keys: constant collisions
        engine.submit_at(
            SimTime(i * 500),
            TxnRequest::global(vec![(a, vec![Op::Add(k, -3)]), (b, vec![Op::Add(k, 3)])]),
        );
    }
    let report = engine.run(Duration::secs(30));

    // Every submitted transaction was decided one way or the other.
    assert_eq!(report.global_committed + report.global_aborted, n_global);
    // Semantic atomicity: aborted transfers were fully compensated, so the
    // system-wide balance is conserved no matter which subset committed.
    assert_eq!(report.total_value, initial * 9, "value not conserved");
    assert_eq!(report.compensations_pending, 0, "compensation left pending");
    // Nothing was lost on a reliable transport.
    assert_eq!(report.counters.get("net.dropped"), 0);
}
