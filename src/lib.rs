//! # o2pc-repro
//!
//! Umbrella crate for the reproduction of Levy, Korth & Silberschatz,
//! *"An Optimistic Commit Protocol for Distributed Transaction Management"*
//! (SIGMOD 1991). Re-exports every member crate so the examples and the
//! cross-crate integration tests have a single import root.
//!
//! Start with the `quickstart` example, then see `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for the reproduced results.

#![forbid(unsafe_code)]

pub use o2pc_common as common;
pub use o2pc_compensation as compensation;
pub use o2pc_core as core;
pub use o2pc_locking as locking;
pub use o2pc_marking as marking;
pub use o2pc_protocol as protocol;
pub use o2pc_runtime as runtime;
pub use o2pc_sgraph as sgraph;
pub use o2pc_sim as sim;
pub use o2pc_site as site;
pub use o2pc_storage as storage;
pub use o2pc_workload as workload;
