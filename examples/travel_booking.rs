//! Travel booking across autonomous reservation systems — the restricted
//! model of §3.1: every subtransaction is a semantic operation
//! (`Reserve`/`Release`) with a pre-registered inverse, aborts happen
//! *organically* when inventory sells out, and compensation releases the
//! already-reserved legs.
//!
//! ```sh
//! cargo run --example travel_booking
//! ```

use o2pc_repro::common::Duration;
use o2pc_repro::core::{Engine, SystemConfig};
use o2pc_repro::protocol::ProtocolKind;
use o2pc_repro::workload::TravelWorkload;

fn main() {
    println!("== federated travel booking (flight + hotel + car) ==\n");
    for capacity in [40, 12, 6] {
        let workload = TravelWorkload {
            sites: 3,
            items_per_site: 8,
            capacity,
            bookings: 150,
            legs: 3,
            mean_interarrival: Duration::millis(2),
            seed: 0x7A7A,
        };
        let schedule = workload.generate();
        let mut cfg = SystemConfig::new(workload.sites, ProtocolKind::O2pc);
        cfg.network = o2pc_repro::sim::NetworkConfig::fixed(Duration::millis(8));
        cfg.seed = 0x7A7A;
        cfg.record_history = false;
        let mut engine = Engine::new(cfg);
        schedule.install(&mut engine);
        let r = engine.run(Duration::secs(600));

        let units_after = r.total_value;
        let booked_units = 3 * r.global_committed as i64; // 3 legs × 1 unit
        println!(
            "capacity/item = {capacity:>3}: booked {} trips, {} sold out",
            r.global_committed, r.global_aborted
        );
        println!(
            "   abort rate {:.1}% (scarcity-driven), compensations {}",
            r.abort_rate() * 100.0,
            r.compensations_completed
        );
        println!(
            "   inventory check: {} loaded - {} booked = {} remaining ({})",
            workload.total_units(),
            booked_units,
            units_after,
            if workload.total_units() - booked_units == units_after {
                "exact"
            } else {
                "MISMATCH"
            }
        );
        assert_eq!(
            workload.total_units() - booked_units,
            units_after,
            "every aborted booking must release all reserved legs"
        );
        println!();
    }
    println!("No trip ever holds a partial reservation: semantic atomicity.");
}
