//! The engine is substrate-agnostic: this example runs the *real*
//! `o2pc_core::Engine` — the same coordinator/site/marking/compensation
//! logic every simulated experiment uses — on the threaded wall-clock
//! runtime. Messages travel through a router thread with genuine 2 ms link
//! latency; timers fire on real elapsed time; the run ends when the
//! transport quiesces. No protocol code is duplicated here: only the
//! runtime differs from `quickstart`.
//!
//! ```sh
//! cargo run --example threaded_transport
//! ```

use o2pc_repro::common::{Duration, Key, Op, SimTime, SiteId, Value};
use o2pc_repro::core::{Engine, Msg, SystemConfig, TimerEvent, TxnRequest};
use o2pc_repro::protocol::ProtocolKind;
use o2pc_repro::runtime::{LinkPolicy, ThreadedRuntime, ThreadedRuntimeConfig, ThreadedTransport};
use std::time::Duration as StdDuration;

fn main() {
    // A transport with real per-link latency: every message crosses a
    // router thread and arrives ~2 ms later on the wall clock.
    let transport: ThreadedTransport<Msg> =
        ThreadedTransport::with_policy(LinkPolicy::fixed(StdDuration::from_millis(2)));
    let rt: ThreadedRuntime<TimerEvent, Msg> =
        ThreadedRuntime::new(transport, ThreadedRuntimeConfig::default());

    let mut cfg = SystemConfig::new(3, ProtocolKind::O2pc);
    cfg.seed = 42;
    // Virtual durations are microseconds of *wall* time on this runtime.
    cfg.op_service_time = Duration::micros(200);

    let mut engine = Engine::with_runtime(cfg, rt);
    for site in [SiteId(0), SiteId(1), SiteId(2)] {
        engine.load(site, Key(1), Value(100));
    }

    // Three money transfers between sites, submitted 5 ms apart.
    for (i, (a, b)) in [(0u32, 1u32), (1, 2), (2, 0)].iter().enumerate() {
        engine.submit_at(
            SimTime(5_000 * i as u64),
            TxnRequest::global(vec![
                (SiteId(*a), vec![Op::Add(Key(1), -25)]),
                (SiteId(*b), vec![Op::Add(Key(1), 25)]),
            ]),
        );
    }

    let report = engine.run(Duration::secs(10));

    println!("ran on the threaded runtime:");
    println!("  committed: {}", report.global_committed);
    println!("  aborted:   {}", report.global_aborted);
    println!("  end time:  {} (wall)", report.end_time);
    println!("  2PC msgs/txn: {:.1}", report.msgs_2pc_per_txn());
    let total: i64 = [SiteId(0), SiteId(1), SiteId(2)]
        .iter()
        .map(|&s| engine.value(s, Key(1)).unwrap().0)
        .sum();
    println!("  conservation: total balance = {total} (expected 300)");
    assert_eq!(
        report.global_committed, 3,
        "conflict-free transfers all commit"
    );
    assert_eq!(total, 300);
    // The engine drops the runtime (and its transport) here; the router
    // thread is joined by `Drop` — no detached threads survive the run.
}
