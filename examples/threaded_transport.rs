//! The protocol state machines are substrate-agnostic: this example runs a
//! complete O2PC commit round on *real threads* over the crossbeam-channel
//! transport (instead of the deterministic simulator) — one thread per
//! participant site, one for the coordinator.
//!
//! ```sh
//! cargo run --example threaded_transport
//! ```

use o2pc_repro::common::{ExecId, GlobalTxnId, History, Key, Op, SimTime, SiteId, Value};
use o2pc_repro::protocol::{CoordAction, TwoPhaseCoordinator};
use o2pc_repro::sim::transport::{recv_timeout, ThreadedTransport};
use o2pc_repro::site::{LockPolicy, OpResult, Site, SiteConfig};
use std::sync::Arc;
use std::thread;
use std::time::Duration as StdDuration;

/// Wire messages (mirrors the engine's `Msg`).
#[derive(Clone, Debug)]
#[allow(dead_code)] // txn fields document the wire format even where one txn makes them redundant
enum Wire {
    Spawn { txn: GlobalTxnId, ops: Vec<Op> },
    Ack { txn: GlobalTxnId, from: SiteId, ok: bool },
    VoteReq { txn: GlobalTxnId },
    Vote { txn: GlobalTxnId, from: SiteId, yes: bool },
    Decision { txn: GlobalTxnId, commit: bool },
    DecisionAck { txn: GlobalTxnId, from: SiteId },
    Shutdown,
}

fn main() {
    let transport: Arc<ThreadedTransport<Wire>> =
        Arc::new(ThreadedTransport::new(StdDuration::from_millis(5)));
    let coord_id = SiteId(0);
    let participants = [SiteId(1), SiteId(2)];
    let coord_rx = transport.register(coord_id);

    // Participant threads: a real Site kernel each.
    let mut handles = Vec::new();
    for &sid in &participants {
        let rx = transport.register(sid);
        let t = Arc::clone(&transport);
        handles.push(thread::spawn(move || {
            let mut site = Site::new(sid, SiteConfig::default());
            site.load(Key(1), Value(100));
            let mut hist = History::new();
            let mut clock = 0u64;
            loop {
                let Some(env) = recv_timeout(&rx, StdDuration::from_secs(5)) else { break };
                clock += 1;
                let now = SimTime(clock);
                match env.msg {
                    Wire::Spawn { txn, ops } => {
                        let exec = ExecId::Sub(txn);
                        site.begin(exec, ops, now, &mut hist);
                        let mut ok = true;
                        loop {
                            match site.execute_next_op(exec, now, &mut hist) {
                                OpResult::Done { finished: true, .. } => break,
                                OpResult::Done { .. } => {}
                                OpResult::Blocked => unreachable!("single txn per site here"),
                                OpResult::Failed(_) => {
                                    ok = false;
                                    break;
                                }
                            }
                        }
                        t.send(sid, coord_id, Wire::Ack { txn, from: sid, ok });
                    }
                    Wire::VoteReq { txn } => {
                        let out = site.vote(txn, LockPolicy::ReleaseAll, false, now, &mut hist);
                        let yes = matches!(out.vote, o2pc_repro::site::Vote::Yes);
                        println!("[{sid}] voted {} and released all locks", if yes { "YES" } else { "NO" });
                        t.send(sid, coord_id, Wire::Vote { txn, from: sid, yes });
                    }
                    Wire::Decision { txn, commit } => {
                        let out = site.decide(txn, commit, now, &mut hist);
                        if let Some(plan) = out.compensation {
                            site.begin_compensation(txn, &plan, now, &mut hist);
                            while let OpResult::Done { finished: false, .. } =
                                site.execute_next_op(ExecId::CompSub(txn), now, &mut hist)
                            {}
                            site.finish_compensation(txn, now, &mut hist);
                            println!("[{sid}] compensated {txn}");
                        } else {
                            println!("[{sid}] decision applied: {}", if commit { "COMMIT" } else { "ABORT" });
                        }
                        t.send(sid, coord_id, Wire::DecisionAck { txn, from: sid });
                    }
                    Wire::Shutdown => break,
                    _ => {}
                }
            }
            (sid, site.get(Key(1)))
        }));
    }

    // Coordinator thread logic (inline on main).
    let txn = GlobalTxnId(1);
    let mut coord = TwoPhaseCoordinator::new(txn, participants.to_vec());
    transport.send(coord_id, SiteId(1), Wire::Spawn { txn, ops: vec![Op::Add(Key(1), -25)] });
    transport.send(coord_id, SiteId(2), Wire::Spawn { txn, ops: vec![Op::Add(Key(1), 25)] });

    let mut outcome = None;
    while outcome.is_none() {
        let env = recv_timeout(&coord_rx, StdDuration::from_secs(10)).expect("protocol stalled");
        let action = match env.msg {
            Wire::Ack { txn: _, from, ok } => coord.on_subtxn_ack(from, ok),
            Wire::Vote { txn: _, from, yes } => coord.on_vote(
                from,
                if yes { o2pc_repro::site::Vote::Yes } else { o2pc_repro::site::Vote::No },
            ),
            Wire::DecisionAck { txn: _, from } => coord.on_decision_ack(from),
            _ => None,
        };
        match action {
            Some(CoordAction::SendVoteReq(sites)) => {
                println!("[coordinator] all acks in — sending VOTE-REQ");
                for s in sites {
                    transport.send(coord_id, s, Wire::VoteReq { txn });
                }
            }
            Some(CoordAction::SendDecision(commit, sites)) => {
                println!("[coordinator] decision logged: {}", if commit { "COMMIT" } else { "ABORT" });
                for s in sites {
                    transport.send(coord_id, s, Wire::Decision { txn, commit });
                }
            }
            Some(CoordAction::Complete(commit)) => outcome = Some(commit),
            None => {}
        }
    }
    for &s in &participants {
        transport.send(coord_id, s, Wire::Shutdown);
    }
    println!("[coordinator] transaction {} {}", txn, if outcome.unwrap() { "COMMITTED" } else { "ABORTED" });
    for h in handles {
        let (sid, v) = h.join().unwrap();
        println!("[{sid}] final balance: {v:?}");
    }
}
