//! Quickstart: run one distributed transfer under O2PC and watch what the
//! protocol does — the early lock release, the vote round, and (on a second
//! run with a forced abort) the compensating transaction.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use o2pc_repro::common::{Duration, Key, Op, SimTime, SiteId, Value};
use o2pc_repro::core::{Engine, SystemConfig, TxnRequest};
use o2pc_repro::protocol::ProtocolKind;

fn main() {
    println!("== O2PC quickstart ==\n");

    // --- A committing transfer -------------------------------------------
    let mut cfg = SystemConfig::new(2, ProtocolKind::O2pc);
    cfg.seed = 1;
    let mut engine = Engine::new(cfg);
    engine.load(SiteId(0), Key(1), Value(100)); // Alice's account at branch 0
    engine.load(SiteId(1), Key(1), Value(100)); // Bob's account at branch 1

    engine.submit_at(
        SimTime::ZERO,
        TxnRequest::global(vec![
            (SiteId(0), vec![Op::Add(Key(1), -30)]), // debit Alice
            (SiteId(1), vec![Op::Add(Key(1), 30)]),  // credit Bob
        ]),
    );
    let report = engine.run(Duration::secs(5));
    println!("transfer #1 (both sites vote yes):");
    println!("  committed: {}", report.global_committed);
    println!(
        "  Alice: {:?}  Bob: {:?}",
        engine.value(SiteId(0), Key(1)),
        engine.value(SiteId(1), Key(1))
    );
    println!(
        "  mean exclusive-lock hold: {:.2} ms",
        report.locks.exclusive_hold.mean() / 1000.0
    );
    println!("  2PC messages per txn: {:.0}", report.msgs_2pc_per_txn());

    // --- An aborting transfer: semantic atomicity via compensation --------
    let mut cfg = SystemConfig::new(2, ProtocolKind::O2pc);
    cfg.seed = 2;
    cfg.vote_abort_probability = 1.0; // every site exercises its autonomy
    let mut engine = Engine::new(cfg);
    engine.load(SiteId(0), Key(1), Value(100));
    engine.load(SiteId(1), Key(1), Value(100));
    engine.submit_at(
        SimTime::ZERO,
        TxnRequest::global(vec![
            (SiteId(0), vec![Op::Add(Key(1), -30)]),
            (SiteId(1), vec![Op::Add(Key(1), 30)]),
        ]),
    );
    let report = engine.run(Duration::secs(5));
    println!("\ntransfer #2 (sites vote no → rolled back / compensated):");
    println!("  aborted: {}", report.global_aborted);
    println!(
        "  Alice: {:?}  Bob: {:?}",
        engine.value(SiteId(0), Key(1)),
        engine.value(SiteId(1), Key(1))
    );
    println!(
        "  outstanding compensations: {}",
        report.compensations_pending
    );
    assert_eq!(engine.value(SiteId(0), Key(1)), Some(Value(100)));
    assert_eq!(engine.value(SiteId(1), Key(1)), Some(Value(100)));
    println!("\nSemantic atomicity held: balances restored without blocking anyone.");
}
