//! Correctness audit: record full execution histories, rebuild the local
//! and global serialization graphs, and check the paper's §5 criterion —
//! no local cycles, no *regular* cycles (cycles whose minimal representation
//! includes a regular global transaction), plus Theorem 2's atomicity of
//! compensation (no one reads from both `T_i` and `CT_i`).
//!
//! Run bare O2PC (regular cycles possible) against O2PC+P1 (provably none).
//!
//! ```sh
//! cargo run --example correctness_audit
//! ```

use o2pc_repro::common::Duration;
use o2pc_repro::core::{Engine, SystemConfig};
use o2pc_repro::protocol::ProtocolKind;
use o2pc_repro::sgraph::build_exposed_sgs;
use o2pc_repro::sgraph::{audit, holds_s1};
use o2pc_repro::workload::BankingWorkload;

fn main() {
    println!("== serialization-graph audit: O2PC vs O2PC+P1 ==\n");
    for protocol in [ProtocolKind::O2pc, ProtocolKind::O2pcP1] {
        let mut regular_runs = 0;
        let mut total_cycles = 0;
        let mut aoc_violations = 0;
        let runs = 12;
        for salt in 0..runs {
            let workload = BankingWorkload {
                sites: 4,
                accounts_per_site: 2, // tiny key space → heavy conflicts
                transfers: 120,
                mean_interarrival: Duration::micros(400),
                seed: 0xA0D1 ^ (salt * 7919),
                ..Default::default()
            };
            let mut cfg = SystemConfig::new(workload.sites, protocol);
            cfg.network = o2pc_repro::sim::NetworkConfig::fixed(Duration::millis(3));
            cfg.vote_abort_probability = 0.4;
            cfg.seed = salt;
            let mut engine = Engine::new(cfg);
            workload.generate().install(&mut engine);
            let r = engine.run(Duration::secs(600));

            let report = audit(&r.history, 10_000, 8);
            total_cycles += report.cyclic_sccs;
            aoc_violations += report.compensation_atomicity_violations.len();
            if let Some(rc) = &report.regular_cycle {
                regular_runs += 1;
                if regular_runs == 1 {
                    println!(
                        "[{protocol}] regular cycle witnessed (seed {salt}): {:?} via {:?}",
                        rc.nodes, rc.witness_endpoints
                    );
                    let gsg = build_exposed_sgs(&r.history);
                    println!("           S1 holds on this history: {}", holds_s1(&gsg));
                }
            }
        }
        println!(
            "[{protocol}] {runs} adversarial runs: {total_cycles} cyclic SCCs in the union SGs, \
             {regular_runs} runs with regular cycles, {aoc_violations} atomicity-of-compensation violations\n"
        );
        if protocol == ProtocolKind::O2pcP1 {
            assert_eq!(regular_runs, 0, "P1 must prevent regular cycles");
        }
    }
    println!("P1 admits fewer schedules but every admitted history satisfies the criterion.");
}
