//! Banking workload: hundreds of concurrent multi-branch transfers with a
//! 20% spontaneous-abort rate, run under the 2PC baseline and under O2PC.
//! Demonstrates (a) conservation of money as a checkable invariant of
//! semantic compensation, and (b) the lock-hold / waiting advantage of the
//! optimistic protocol.
//!
//! ```sh
//! cargo run --example banking_transfers
//! ```

use o2pc_repro::common::Duration;
use o2pc_repro::core::{Engine, SystemConfig};
use o2pc_repro::protocol::ProtocolKind;
use o2pc_repro::workload::BankingWorkload;

fn main() {
    println!("== banking transfers: 2PL-2PC vs O2PC ==\n");
    let workload = BankingWorkload {
        sites: 4,
        accounts_per_site: 16,
        initial_balance: 1_000,
        transfers: 400,
        sites_per_transfer: 2,
        mean_interarrival: Duration::millis(1),
        local_fraction: 0.2,
        seed: 0xBEEF,
    };
    let schedule = workload.generate();
    println!(
        "{} arrivals over 4 branches, expected total money = {}\n",
        schedule.arrivals.len(),
        workload.expected_total()
    );

    for protocol in [ProtocolKind::D2pl2pc, ProtocolKind::O2pc] {
        let mut cfg = SystemConfig::new(workload.sites, protocol);
        cfg.network = o2pc_repro::sim::NetworkConfig::fixed(Duration::millis(5));
        cfg.vote_abort_probability = 0.2;
        cfg.seed = 0xBEEF;
        cfg.record_history = false;
        let mut engine = Engine::new(cfg);
        schedule.install(&mut engine);
        let r = engine.run(Duration::secs(600));

        println!("--- {protocol} ---");
        println!(
            "  committed {} / aborted {} globals, {} locals",
            r.global_committed, r.global_aborted, r.local_committed
        );
        println!("  throughput:            {:>8.1} txn/s", r.throughput());
        println!(
            "  mean txn latency:      {:>8.2} ms",
            r.global_latency.mean() / 1000.0
        );
        println!(
            "  mean X-lock hold:      {:>8.2} ms",
            r.locks.exclusive_hold.mean() / 1000.0
        );
        println!(
            "  mean lock wait:        {:>8.2} ms  ({} waits)",
            r.locks.wait_time.mean() / 1000.0,
            r.locks.wait_time.count()
        );
        println!("  compensations:         {:>8}", r.compensations_completed);
        let conserved = r.total_value == workload.expected_total();
        println!(
            "  money conserved:       {:>8}  ({} == {})",
            conserved,
            r.total_value,
            workload.expected_total()
        );
        assert!(conserved, "semantic atomicity must conserve money");
        println!();
    }
}
