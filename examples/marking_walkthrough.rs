//! A guided walk through §6 of the paper: the marking state machine
//! (Figure 2), the `sitemarks`/`transmarks` sets, rule R1's compatibility
//! check with both rejection modes, and the UDUM1 detection that licenses
//! rule R3.
//!
//! ```sh
//! cargo run --example marking_walkthrough
//! ```

use o2pc_repro::common::{GlobalTxnId, SiteId};
use o2pc_repro::marking::{
    MarkEvent, MarkState, MarkingProtocol, SiteMarks, TransMarks, UdumTracker,
};

fn main() {
    let t5 = GlobalTxnId(5);

    println!("== 1. Figure 2: one site's marking with respect to T5 ==");
    let mut site_a = SiteMarks::new();
    println!("  initial:                {}", site_a.mark_of(t5));
    site_a.apply(t5, MarkEvent::VoteCommit).unwrap();
    println!("  after vote-commit:      {}", site_a.mark_of(t5));
    site_a.apply(t5, MarkEvent::DecisionAbort).unwrap();
    println!(
        "  after decision-abort:   {} (CT_5 ran here — rule R2)",
        site_a.mark_of(t5)
    );
    assert_eq!(site_a.mark_of(t5), MarkState::Undone);

    println!("\n== 2. Rule R1: T9 tries to execute at sites with mixed markings ==");
    // Site A is undone with respect to T5; site B is unmarked.
    let site_b = SiteMarks::new();
    let mut transmarks_t9 = TransMarks::new();
    // First subtransaction at site A: fine (nothing seen yet).
    transmarks_t9
        .check_and_absorb(MarkingProtocol::P1, &site_a)
        .unwrap();
    println!(
        "  T9 admitted at site A (undone wrt T5) — transmarks now {:?}",
        transmarks_t9.undone_seen()
    );
    // Second subtransaction at site B: REJECTED — T9 would mix an
    // undone-wrt-T5 site with an unmarked one, the regular-cycle recipe.
    let err = transmarks_t9
        .check(MarkingProtocol::P1, &site_b)
        .unwrap_err();
    println!(
        "  T9 rejected at site B: incompatible with T{} (site is {})",
        err.with.0, err.site_mark
    );

    println!("\n== 3. The other direction: unmarked first, undone second ==");
    let mut transmarks_t10 = TransMarks::new();
    transmarks_t10
        .check_and_absorb(MarkingProtocol::P1, &site_b)
        .unwrap();
    let err = transmarks_t10
        .check(MarkingProtocol::P1, &site_a)
        .unwrap_err();
    println!("  T10 (ran at unmarked B) rejected at undone A: {:?}", err);
    println!("  → the paper: \"only aborting the corresponding global transaction");
    println!("    can resolve the situation\" — unless the mark is forgotten first.");

    println!("\n== 4. UDUM1: when may site A forget 'undone wrt T5'? ==");
    let mut udum = UdumTracker::new();
    // T5 executed at sites A(0) and C(2); both must see a post-undo access.
    udum.register_aborted(t5, [SiteId(0), SiteId(2)]);
    println!(
        "  T5's execution sites registered: missing fences at {:?}",
        udum.missing_sites(t5)
    );
    assert!(!udum.observe_access(t5, SiteId(0)));
    println!("  some transaction executed at A while undone wrt T5 → still waiting on C");
    let fired = udum.observe_access(t5, SiteId(2));
    println!("  some transaction executed at C while undone wrt T5 → UDUM1 fired: {fired}");
    assert!(fired);

    println!("\n== 5. Rule R3: forget the marking; T10 can now retry ==");
    site_a.unmark(t5);
    println!("  site A wrt T5: {}", site_a.mark_of(t5));
    transmarks_t10
        .check_and_absorb(MarkingProtocol::P1, &site_a)
        .unwrap();
    println!("  T10 admitted at A after the retry — no messages were ever added.");
}
