//! Failure injection: crash the 2PC coordinator between VOTE-REQ and
//! DECISION and watch the difference the paper is about — under distributed
//! 2PL the participants' write locks stay held for the whole outage
//! (unbounded in the limit); under O2PC they were released at the vote and
//! only the *compensation* waits for the recovered coordinator's abort.
//!
//! ```sh
//! cargo run --example failure_injection
//! ```

use o2pc_repro::common::{Duration, Key, Op, SimTime, SiteId, Value};
use o2pc_repro::core::{Engine, SystemConfig, TxnRequest};
use o2pc_repro::protocol::ProtocolKind;
use o2pc_repro::sim::FailurePlan;

fn run(protocol: ProtocolKind, downtime: Duration) -> (f64, u64, u64) {
    let mut cfg = SystemConfig::new(3, protocol);
    cfg.network = o2pc_repro::sim::NetworkConfig::fixed(Duration::millis(1));
    cfg.seed = 0xFA11;
    let mut failures = FailurePlan::new();
    let crash_at = SimTime::ZERO + Duration::millis(3);
    failures.site_crash(SiteId(0), crash_at, crash_at + downtime);
    cfg.failures = failures;
    let mut engine = Engine::new(cfg);
    engine.load(SiteId(1), Key(0), Value(100));
    engine.load(SiteId(2), Key(0), Value(100));
    // Coordinator at site 0 (holds no data); participants at 1 and 2.
    engine.submit_at(
        SimTime::ZERO,
        TxnRequest::global_with_coordinator(
            SiteId(0),
            vec![
                (SiteId(1), vec![Op::Add(Key(0), -5)]),
                (SiteId(2), vec![Op::Add(Key(0), 5)]),
            ],
        ),
    );
    let r = engine.run(Duration::secs(120));
    (
        r.locks.exclusive_hold.max() as f64 / 1000.0,
        r.global_committed,
        r.global_aborted,
    )
}

fn main() {
    println!("== coordinator crash between VOTE-REQ and DECISION ==\n");
    println!(
        "{:>14} | {:>22} | {:>22}",
        "downtime", "2PL-2PC max hold (ms)", "O2PC max hold (ms)"
    );
    println!("{:-<66}", "");
    for down_ms in [10u64, 100, 1000, 10_000, 60_000] {
        let (h2pc, _, _) = run(ProtocolKind::D2pl2pc, Duration::millis(down_ms));
        let (ho2pc, _, _) = run(ProtocolKind::O2pc, Duration::millis(down_ms));
        println!("{:>11} ms | {:>22.1} | {:>22.1}", down_ms, h2pc, ho2pc);
    }
    println!(
        "\n2PC participants stay blocked for the entire coordinator outage;\n\
         O2PC participants released their locks at the vote — the blocking\n\
         window does not grow with the failure duration."
    );
}
