//! End-to-end engine tests: full commit rounds, semantic atomicity under
//! aborts, lock-hold-time separation between 2PC and O2PC, blocking under
//! coordinator failure, determinism.

use o2pc_common::{Duration, Key, Op, SimTime, SiteId, Value};
use o2pc_core::{Engine, RunReport, SystemConfig, TxnRequest};
use o2pc_protocol::ProtocolKind;
use o2pc_sgraph::audit;

fn transfer(from: SiteId, to: SiteId, key: Key, amount: i64) -> TxnRequest {
    TxnRequest::global(vec![
        (from, vec![Op::Add(key, -amount)]),
        (to, vec![Op::Add(key, amount)]),
    ])
}

fn loaded_engine(cfg: SystemConfig, keys_per_site: u64, initial: i64) -> Engine {
    let sites = cfg.num_sites;
    let mut e = Engine::new(cfg);
    for s in 0..sites {
        for k in 0..keys_per_site {
            e.load(SiteId(s), Key(k), Value(initial));
        }
    }
    e
}

#[test]
fn single_global_txn_commits() {
    let mut cfg = SystemConfig::new(2, ProtocolKind::O2pc);
    cfg.seed = 1;
    let mut e = loaded_engine(cfg, 2, 100);
    e.submit_at(SimTime::ZERO, transfer(SiteId(0), SiteId(1), Key(0), 30));
    let r = e.run(Duration::secs(5));
    assert_eq!(r.global_committed, 1);
    assert_eq!(r.global_aborted, 0);
    assert_eq!(e.value(SiteId(0), Key(0)), Some(Value(70)));
    assert_eq!(e.value(SiteId(1), Key(0)), Some(Value(130)));
    assert_eq!(r.global_latency.count(), 1);
    // Message pattern: 2 spawns, 2 acks, 2 vote-reqs, 2 votes, 2 decisions, 2 decision-acks.
    for label in [
        "msg.spawn",
        "msg.subtxn_ack",
        "msg.vote_req",
        "msg.vote",
        "msg.decision",
        "msg.decision_ack",
    ] {
        assert_eq!(r.counters.get(label), 2, "{label}");
    }
    assert!(!r.history.is_empty());
}

#[test]
fn forced_abort_is_semantically_atomic() {
    // Every vote aborts: all transfers must be fully compensated and money
    // conserved, even though sites locally committed and exposed updates.
    let mut cfg = SystemConfig::new(3, ProtocolKind::O2pc);
    cfg.vote_abort_probability = 1.0;
    cfg.seed = 2;
    let mut e = loaded_engine(cfg, 4, 1000);
    for i in 0..10u64 {
        let from = SiteId((i % 3) as u32);
        let to = SiteId(((i + 1) % 3) as u32);
        e.submit_at(SimTime(i * 100), transfer(from, to, Key(i % 4), 50));
    }
    let r = e.run(Duration::secs(30));
    assert_eq!(r.global_committed, 0);
    assert_eq!(r.global_aborted, 10);
    assert_eq!(r.compensations_pending, 0, "persistence of compensation");
    assert_eq!(
        r.total_value,
        3 * 4 * 1000,
        "money conserved after full compensation"
    );
}

#[test]
fn mixed_aborts_conserve_money_with_delta_compensation() {
    let mut cfg = SystemConfig::new(4, ProtocolKind::O2pc);
    cfg.vote_abort_probability = 0.3;
    cfg.seed = 3;
    let mut e = loaded_engine(cfg, 8, 500);
    for i in 0..200u64 {
        let from = SiteId((i % 4) as u32);
        let to = SiteId(((i + 1 + i / 7) % 4) as u32);
        if from == to {
            continue;
        }
        e.submit_at(SimTime(i * 200), transfer(from, to, Key(i % 8), 10));
    }
    let r = e.run(Duration::secs(120));
    assert!(r.global_committed > 0, "some must commit");
    assert!(r.global_aborted > 0, "some must abort (p=0.3)");
    assert_eq!(r.compensations_pending, 0);
    assert_eq!(
        r.total_value,
        4 * 8 * 500,
        "conservation under partial compensation"
    );
}

#[test]
fn o2pc_releases_locks_earlier_than_2pc() {
    // One writer transaction, high network latency: under 2PL-2PC the write
    // locks are held across the decision round-trip; under O2PC they are
    // released at the vote.
    let run = |protocol: ProtocolKind| -> RunReport {
        let mut cfg = SystemConfig::new(2, protocol);
        cfg.network = o2pc_sim::NetworkConfig::fixed(Duration::millis(20));
        cfg.seed = 4;
        let mut e = loaded_engine(cfg, 1, 100);
        e.submit_at(SimTime::ZERO, transfer(SiteId(0), SiteId(1), Key(0), 5));
        e.run(Duration::secs(10))
    };
    let d2pl = run(ProtocolKind::D2pl2pc);
    let o2pc = run(ProtocolKind::O2pc);
    assert_eq!(d2pl.global_committed, 1);
    assert_eq!(o2pc.global_committed, 1);
    let h_d2pl = d2pl.locks.exclusive_hold.mean();
    let h_o2pc = o2pc.locks.exclusive_hold.mean();
    assert!(
        h_d2pl > h_o2pc + 20_000.0,
        "2PC holds across the decision leg: {h_d2pl} vs {h_o2pc}"
    );
}

#[test]
fn waiting_txn_proceeds_after_early_release() {
    // T1 and a local transaction contend on the same item. Under O2PC the
    // local proceeds as soon as the site votes; under 2PC it waits for the
    // decision. Measure the local's effective completion via lock wait time.
    let run = |protocol: ProtocolKind| -> RunReport {
        let mut cfg = SystemConfig::new(2, protocol);
        cfg.network = o2pc_sim::NetworkConfig::fixed(Duration::millis(10));
        cfg.seed = 5;
        let mut e = loaded_engine(cfg, 1, 100);
        e.submit_at(SimTime::ZERO, transfer(SiteId(0), SiteId(1), Key(0), 5));
        // Local writer arrives while the subtransaction holds k0 at site 0
        // (before the vote round completes).
        e.submit_at(
            SimTime(15_000),
            TxnRequest::local(SiteId(0), vec![Op::Add(Key(0), 1)]),
        );
        e.run(Duration::secs(10))
    };
    let d2pl = run(ProtocolKind::D2pl2pc);
    let o2pc = run(ProtocolKind::O2pc);
    assert_eq!(d2pl.local_committed, 1);
    assert_eq!(o2pc.local_committed, 1);
    assert!(
        d2pl.locks.wait_time.mean() > o2pc.locks.wait_time.mean(),
        "blocked local waits longer under 2PC: {} vs {}",
        d2pl.locks.wait_time.mean(),
        o2pc.locks.wait_time.mean()
    );
}

#[test]
fn identical_seeds_give_identical_runs() {
    let build = || {
        let mut cfg = SystemConfig::new(3, ProtocolKind::O2pc);
        cfg.vote_abort_probability = 0.2;
        cfg.seed = 42;
        let mut e = loaded_engine(cfg, 4, 100);
        for i in 0..50u64 {
            e.submit_at(
                SimTime(i * 300),
                transfer(
                    SiteId((i % 3) as u32),
                    SiteId(((i + 1) % 3) as u32),
                    Key(i % 4),
                    1,
                ),
            );
        }
        e.run(Duration::secs(60))
    };
    let a = build();
    let b = build();
    assert_eq!(a.global_committed, b.global_committed);
    assert_eq!(a.global_aborted, b.global_aborted);
    assert_eq!(a.end_time, b.end_time);
    assert_eq!(a.history.len(), b.history.len());
    let ca: Vec<_> = a.counters.iter().collect();
    let cb: Vec<_> = b.counters.iter().collect();
    assert_eq!(ca, cb);
}

#[test]
fn histories_with_no_aborts_are_serializable() {
    let mut cfg = SystemConfig::new(3, ProtocolKind::O2pc);
    cfg.seed = 6;
    let mut e = loaded_engine(cfg, 3, 100);
    for i in 0..40u64 {
        e.submit_at(
            SimTime(i * 150),
            transfer(
                SiteId((i % 3) as u32),
                SiteId(((i + 2) % 3) as u32),
                Key(i % 3),
                1,
            ),
        );
    }
    let r = e.run(Duration::secs(60));
    assert_eq!(r.global_aborted, 0);
    let report = audit(&r.history, 8_000, 8);
    assert!(report.is_correct());
    assert!(
        report.serializable,
        "no aborts ⇒ criterion reduces to serializability"
    );
}

#[test]
fn p1_keeps_histories_correct_under_aborts() {
    let mut cfg = SystemConfig::new(4, ProtocolKind::O2pcP1);
    cfg.vote_abort_probability = 0.3;
    cfg.seed = 7;
    let mut e = loaded_engine(cfg, 2, 200);
    for i in 0..150u64 {
        let a = SiteId((i % 4) as u32);
        let b = SiteId(((i + 1 + i / 5) % 4) as u32);
        if a == b {
            continue;
        }
        e.submit_at(SimTime(i * 120), transfer(a, b, Key(i % 2), 1));
    }
    let r = e.run(Duration::secs(120));
    assert!(r.global_aborted > 0);
    let report = audit(&r.history, 8_000, 8);
    assert!(
        report.is_correct(),
        "P1 must prevent regular cycles: {:?}",
        report.regular_cycle
    );
    assert!(
        report.compensation_atomicity_violations.is_empty(),
        "Theorem 2: no mixed reads of T_i and CT_i"
    );
}

#[test]
fn coordinator_crash_blocks_2pc_until_recovery() {
    // Coordinator at site 0 (no data there); participants at 1 and 2.
    // Crash the coordinator just after VOTE-REQ goes out; recover later.
    let run = |protocol: ProtocolKind, crash_ms: (u64, u64)| -> RunReport {
        let mut cfg = SystemConfig::new(3, protocol);
        cfg.network = o2pc_sim::NetworkConfig::fixed(Duration::millis(1));
        cfg.seed = 8;
        let mut failures = o2pc_sim::FailurePlan::new();
        failures.site_crash(
            SiteId(0),
            SimTime::ZERO + Duration::millis(crash_ms.0),
            SimTime::ZERO + Duration::millis(crash_ms.1),
        );
        cfg.failures = failures;
        let mut e = Engine::new(cfg);
        e.load(SiteId(1), Key(0), Value(100));
        e.load(SiteId(2), Key(0), Value(100));
        e.submit_at(
            SimTime::ZERO,
            TxnRequest::global_with_coordinator(
                SiteId(0),
                vec![
                    (SiteId(1), vec![Op::Add(Key(0), -5)]),
                    (SiteId(2), vec![Op::Add(Key(0), 5)]),
                ],
            ),
        );
        e.run(Duration::secs(10))
    };
    // Crash window covers the vote collection: participants voted yes and
    // (under 2PC) hold write locks until the recovered coordinator resends.
    let d2pl = run(ProtocolKind::D2pl2pc, (3, 500));
    let o2pc = run(ProtocolKind::O2pc, (3, 500));
    assert!(
        d2pl.locks.exclusive_hold.mean() > 400_000.0,
        "2PC participants blocked ~500ms: {}",
        d2pl.locks.exclusive_hold.mean()
    );
    assert!(
        o2pc.locks.exclusive_hold.mean() < 50_000.0,
        "O2PC released at the vote: {}",
        o2pc.locks.exclusive_hold.mean()
    );
}

#[test]
fn real_action_sites_hold_locks_under_o2pc() {
    // Dedicated coordinator at site 2; participants at sites 0 and 1.
    // With 20 ms links: both subtransactions lock at ~20 ms, VOTE-REQ
    // arrives ~60 ms, the decision ~100 ms. The compensatable site releases
    // at the vote (~40 ms hold), the real-action site at the decision
    // (~80 ms hold).
    let mut cfg = SystemConfig::new(3, ProtocolKind::O2pc);
    cfg.network = o2pc_sim::NetworkConfig::fixed(Duration::millis(20));
    cfg.real_action_sites.insert(SiteId(1));
    cfg.seed = 9;
    let mut e = loaded_engine(cfg, 1, 100);
    e.submit_at(
        SimTime::ZERO,
        TxnRequest::global_with_coordinator(
            SiteId(2),
            vec![
                (SiteId(0), vec![Op::Add(Key(0), -5)]),
                (SiteId(1), vec![Op::Add(Key(0), 5)]),
            ],
        ),
    );
    let r = e.run(Duration::secs(10));
    assert_eq!(r.global_committed, 1);
    assert!(
        r.locks.exclusive_hold.max() > 70_000,
        "real-action site blocked until decision"
    );
    assert!(
        r.locks.exclusive_hold.quantile(0.01) < 50_000,
        "compensatable site released at vote"
    );
}

#[test]
fn reserve_failure_aborts_globally_and_restores_stock() {
    let mut cfg = SystemConfig::new(2, ProtocolKind::O2pc);
    cfg.seed = 10;
    let mut e = Engine::new(cfg);
    e.load(SiteId(0), Key(0), Value(10)); // flight seats
    e.load(SiteId(1), Key(0), Value(0)); // hotel rooms: none left
    e.submit_at(
        SimTime::ZERO,
        TxnRequest::global(vec![
            (SiteId(0), vec![Op::Reserve(Key(0), 1)]),
            (SiteId(1), vec![Op::Reserve(Key(0), 1)]),
        ]),
    );
    let r = e.run(Duration::secs(5));
    assert_eq!(r.global_aborted, 1);
    assert_eq!(
        e.value(SiteId(0), Key(0)),
        Some(Value(10)),
        "seat released by compensation"
    );
    assert_eq!(e.value(SiteId(1), Key(0)), Some(Value(0)));
}

#[test]
fn local_transactions_run_and_deadlocks_resolve() {
    let mut cfg = SystemConfig::new(1, ProtocolKind::O2pc);
    cfg.seed = 11;
    let mut e = loaded_engine(cfg, 2, 100);
    // Two locals in lock order k0,k1 and k1,k0: classic deadlock shape.
    e.submit_at(
        SimTime::ZERO,
        TxnRequest::local(SiteId(0), vec![Op::Add(Key(0), 1), Op::Add(Key(1), 1)]),
    );
    e.submit_at(
        SimTime(10),
        TxnRequest::local(SiteId(0), vec![Op::Add(Key(1), 1), Op::Add(Key(0), 1)]),
    );
    let r = e.run(Duration::secs(5));
    assert_eq!(r.local_committed + r.local_aborted, 2);
    assert!(r.compensations_pending == 0);
    // Either they interleaved cleanly or a victim died; both are fine, but
    // nothing may hang.
    assert!(r.end_time < SimTime::ZERO + Duration::secs(5));
}

#[test]
fn vote_timeout_aborts_when_participant_site_is_down() {
    let mut cfg = SystemConfig::new(3, ProtocolKind::O2pc);
    cfg.vote_timeout = Some(Duration::millis(100));
    cfg.seed = 12;
    let mut failures = o2pc_sim::FailurePlan::new();
    // Participant site 2 is down for the whole run.
    failures.site_crash(SiteId(2), SimTime::ZERO, SimTime::ZERO + Duration::secs(60));
    cfg.failures = failures;
    let mut e = Engine::new(cfg);
    e.load(SiteId(0), Key(0), Value(100));
    e.load(SiteId(1), Key(0), Value(100));
    e.submit_at(
        SimTime(1),
        TxnRequest::global_with_coordinator(
            SiteId(0),
            vec![
                (SiteId(1), vec![Op::Add(Key(0), 5)]),
                (SiteId(2), vec![Op::Add(Key(0), -5)]),
            ],
        ),
    );
    let r = e.run(Duration::secs(10));
    assert_eq!(r.global_committed, 0);
    assert_eq!(r.global_aborted, 1, "timeout presumes abort");
    assert_eq!(
        e.value(SiteId(1), Key(0)),
        Some(Value(100)),
        "site 1 compensated"
    );
}
