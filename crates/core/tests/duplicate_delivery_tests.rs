//! Duplicate-delivery idempotence: every protocol message delivered twice
//! must leave the system in exactly the state a single delivery produces.
//!
//! The wrapper runtime here sends *every* engine message twice, so a run
//! exercises duplicate `SpawnSubtxn`, `SubtxnAck`, `VoteReq`, `VoteMsg`,
//! `Decision`, `DecisionAck`, `TermReq`, and `TermAnswer` deliveries. Each
//! scenario is compared field-for-field against a baseline run on the
//! plain simulator with the same seed — duplication must change nothing
//! observable: not the decision counts, not the stores, not the number of
//! compensations.

use o2pc_common::{DetRng, Duration, Key, Op, SimTime, SiteId, Value};
use o2pc_core::{DefaultSimRuntime, Engine, Msg, RunReport, SystemConfig, TimerEvent, TxnRequest};
use o2pc_protocol::ProtocolKind;
use o2pc_runtime::{Clock, Runtime, SendOutcome, Step};
use o2pc_sim::{FailurePlan, Network, NetworkConfig};

/// Sends every message twice. The second copy is a faithful duplicate:
/// same payload, same link, same instant (the simulator's FIFO order
/// delivers it right behind the original).
struct DuplicatingRuntime {
    inner: DefaultSimRuntime,
}

impl Clock for DuplicatingRuntime {
    fn now(&self) -> SimTime {
        self.inner.now()
    }
}

impl Runtime<TimerEvent, Msg> for DuplicatingRuntime {
    fn register_endpoint(&mut self, id: SiteId) {
        self.inner.register_endpoint(id);
    }
    fn schedule(&mut self, at: SimTime, timer: TimerEvent) {
        self.inner.schedule(at, timer);
    }
    fn send(&mut self, now: SimTime, from: SiteId, to: SiteId, msg: Msg) -> SendOutcome {
        let first = self.inner.send(now, from, to, msg.clone());
        let _ = self.inner.send(now, from, to, msg);
        first
    }
    fn next(&mut self, deadline: SimTime) -> Option<(SimTime, Step<TimerEvent, Msg>)> {
        self.inner.next(deadline)
    }
    fn messages_dropped(&self) -> u64 {
        self.inner.messages_dropped()
    }
}

/// Run the same configured scenario twice — once on the plain simulator,
/// once with every message duplicated — and return both reports plus the
/// engines for store inspection.
fn run_both(
    cfg: &SystemConfig,
    install: impl Fn(&mut Engine) + Copy,
    install_dup: impl Fn(&mut Engine<DuplicatingRuntime>) + Copy,
) -> ((Engine, RunReport), (Engine<DuplicatingRuntime>, RunReport)) {
    let mut base = Engine::new(cfg.clone());
    install(&mut base);
    let base_report = base.run(Duration::secs(30));

    let mut root = DetRng::new(cfg.seed);
    let net_rng = root.fork(0x6e65);
    let network = Network::new(cfg.network.clone(), net_rng).with_failures(cfg.failures.clone());
    let rt = DuplicatingRuntime {
        inner: DefaultSimRuntime::new(network),
    };
    let mut dup = Engine::with_runtime(cfg.clone(), rt);
    install_dup(&mut dup);
    let dup_report = dup.run(Duration::secs(30));

    ((base, base_report), (dup, dup_report))
}

fn assert_same_outcome(base: &RunReport, dup: &RunReport) {
    assert_eq!(
        dup.global_committed, base.global_committed,
        "commits differ"
    );
    assert_eq!(dup.global_aborted, base.global_aborted, "aborts differ");
    assert_eq!(
        dup.compensations_completed, base.compensations_completed,
        "compensation counts differ"
    );
    assert_eq!(dup.compensations_pending, 0);
}

/// O2PC happy path plus a forced abort (empty inventory fails `Reserve`):
/// covers duplicate spawn/ack/vote-req/vote/decision/decision-ack on both
/// the commit and the abort+compensation paths.
#[test]
fn duplicated_commit_and_abort_paths_match_baseline() {
    let mut cfg = SystemConfig::new(3, ProtocolKind::O2pcP1);
    cfg.seed = 0xD0B1;
    cfg.network = NetworkConfig::fixed(Duration::millis(1));
    let install_ops = |e: &mut dyn FnMut(SimTime, TxnRequest)| {
        // T1: commits (transfer site1 → site2).
        e(
            SimTime::ZERO,
            TxnRequest::global_with_coordinator(
                SiteId(0),
                vec![
                    (SiteId(1), vec![Op::Add(Key(0), -5)]),
                    (SiteId(2), vec![Op::Add(Key(0), 5)]),
                ],
            ),
        );
        // T2: aborts — site 2 exposes +7, site 1's Reserve on an empty
        // item votes no, and site 2 must compensate.
        e(
            SimTime::ZERO + Duration::millis(40),
            TxnRequest::global_with_coordinator(
                SiteId(0),
                vec![
                    (SiteId(1), vec![Op::Reserve(Key(1), 1)]),
                    (SiteId(2), vec![Op::Add(Key(0), 7)]),
                ],
            ),
        );
    };
    let load = [
        (SiteId(1), Key(0), Value(100)),
        (SiteId(1), Key(1), Value(0)),
        (SiteId(2), Key(0), Value(100)),
    ];
    let ((base, br), (dup, dr)) = run_both(
        &cfg,
        |e| {
            for &(s, k, v) in &load {
                e.load(s, k, v);
            }
            install_ops(&mut |at, req| e.submit_at(at, req));
        },
        |e| {
            for &(s, k, v) in &load {
                e.load(s, k, v);
            }
            install_ops(&mut |at, req| e.submit_at(at, req));
        },
    );
    assert_eq!(br.global_committed, 1);
    assert_eq!(br.global_aborted, 1);
    assert!(br.compensations_completed > 0, "T2 must compensate");
    assert_same_outcome(&br, &dr);
    for &(s, k, _) in &load {
        assert_eq!(
            dup.value(s, k),
            base.value(s, k),
            "store differs at {s:?} {k:?}"
        );
    }
}

/// 2PC participant crash while prepared, resolved through the termination
/// protocol after recovery: covers duplicate `TermReq`/`TermAnswer` (and
/// duplicate decisions against a recovered site).
#[test]
fn duplicated_termination_round_matches_baseline() {
    let mut cfg = SystemConfig::new(3, ProtocolKind::D2pl2pc);
    cfg.seed = 0xD0B2;
    cfg.network = NetworkConfig::fixed(Duration::millis(1));
    cfg.termination_timeout = Some(Duration::millis(50));
    let mut failures = FailurePlan::new();
    failures.site_crash(
        SiteId(2),
        SimTime::ZERO + Duration::millis(4),
        SimTime::ZERO + Duration::millis(1000),
    );
    cfg.failures = failures;
    let load = [
        (SiteId(1), Key(0), Value(100)),
        (SiteId(2), Key(0), Value(100)),
    ];
    let txn = || {
        TxnRequest::global_with_coordinator(
            SiteId(0),
            vec![
                (SiteId(1), vec![Op::Add(Key(0), -5)]),
                (SiteId(2), vec![Op::Add(Key(0), 5)]),
            ],
        )
    };
    let ((base, br), (dup, dr)) = run_both(
        &cfg,
        |e| {
            for &(s, k, v) in &load {
                e.load(s, k, v);
            }
            e.submit_at(SimTime::ZERO, txn());
        },
        |e| {
            for &(s, k, v) in &load {
                e.load(s, k, v);
            }
            e.submit_at(SimTime::ZERO, txn());
        },
    );
    assert_eq!(br.global_committed, 1);
    assert!(
        br.counters.get("term.resolved_commit") > 0,
        "baseline must resolve through the termination protocol"
    );
    assert!(
        dr.counters.get("term.resolved_commit") > 0,
        "duplicated run must resolve through the termination protocol too"
    );
    assert_same_outcome(&br, &dr);
    for &(s, k, _) in &load {
        assert_eq!(
            dup.value(s, k),
            base.value(s, k),
            "store differs at {s:?} {k:?}"
        );
    }
    // The round actually flowed twice per message.
    assert!(dr.counters.get("msg.term_req") > 0);
    assert!(dr.counters.get("msg.term_answer") > 0);
}
