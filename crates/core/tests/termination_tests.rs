//! Engine tests for the cooperative termination protocol extension.

use o2pc_common::{Duration, Key, Op, SimTime, SiteId, Value};
use o2pc_core::{Engine, SystemConfig, TxnRequest};
use o2pc_protocol::ProtocolKind;
use o2pc_sim::FailurePlan;

/// Coordinator at site 0 (no data), participants at 1 and 2.
fn crash_coordinator_setup(
    protocol: ProtocolKind,
    termination: Option<Duration>,
    crash: (u64, u64),
) -> Engine {
    let mut cfg = SystemConfig::new(3, protocol);
    cfg.seed = 0x7E01;
    cfg.termination_timeout = termination;
    let mut failures = FailurePlan::new();
    failures.site_crash(
        SiteId(0),
        SimTime::ZERO + Duration::millis(crash.0),
        SimTime::ZERO + Duration::millis(crash.1),
    );
    cfg.failures = failures;
    let mut e = Engine::new(cfg);
    e.load(SiteId(1), Key(0), Value(100));
    e.load(SiteId(2), Key(0), Value(100));
    e.submit_at(
        SimTime::ZERO,
        TxnRequest::global_with_coordinator(
            SiteId(0),
            vec![
                (SiteId(1), vec![Op::Add(Key(0), -5)]),
                (SiteId(2), vec![Op::Add(Key(0), 5)]),
            ],
        ),
    );
    e
}

#[test]
fn all_uncertain_participants_stay_blocked() {
    // Both participants are prepared when the coordinator dies: the
    // termination protocol runs but cannot unblock them (the fundamental
    // 2PC blocking case). They stay blocked until the coordinator recovers.
    let mut e =
        crash_coordinator_setup(ProtocolKind::D2pl2pc, Some(Duration::millis(20)), (3, 500));
    let r = e.run(Duration::secs(10));
    assert!(
        r.counters.get("term.rounds") > 0,
        "termination rounds must run"
    );
    assert!(
        r.counters.get("term.still_blocked") > 0,
        "all-uncertain ⇒ still blocked"
    );
    assert!(
        r.locks.exclusive_hold.mean() > 400_000.0,
        "blocked through the outage despite the termination protocol: {}",
        r.locks.exclusive_hold.mean()
    );
    assert!(r.counters.get("msg.term_req") > 0);
}

#[test]
fn unprepared_peer_lets_blocked_participant_abort() {
    // Site 1 is prepared; site 2's VOTE-REQ is still crawling down a slow
    // (directional) link when the coordinator dies. Site 1's termination
    // round finds site 2 not prepared — site 2 aborts itself and answers,
    // licensing site 1 to abort instead of blocking for 30 s.
    let mut cfg = SystemConfig::new(3, ProtocolKind::D2pl2pc);
    cfg.seed = 0x7E02;
    cfg.termination_timeout = Some(Duration::millis(20));
    // Only the coordinator→site2 direction is slow: the spawn reaches site 2
    // slowly too, but its ack comes back fast; the VOTE-REQ then takes
    // another 400 ms during which the coordinator dies.
    cfg.network.link_latency.insert(
        (SiteId(0), SiteId(2)),
        o2pc_sim::LatencyModel::Fixed(Duration::millis(400)),
    );
    let mut failures = FailurePlan::new();
    failures.site_crash(
        SiteId(0),
        SimTime::ZERO + Duration::millis(405),
        SimTime::ZERO + Duration::secs(30),
    );
    cfg.failures = failures;
    let mut e = Engine::new(cfg);
    e.load(SiteId(1), Key(0), Value(100));
    e.load(SiteId(2), Key(0), Value(100));
    e.submit_at(
        SimTime::ZERO,
        TxnRequest::global_with_coordinator(
            SiteId(0),
            vec![
                (SiteId(1), vec![Op::Add(Key(0), -5)]),
                (SiteId(2), vec![Op::Add(Key(0), 5)]),
            ],
        ),
    );
    let r = e.run(Duration::secs(10));
    assert!(
        r.counters.get("term.resolved_abort") > 0,
        "{:?}",
        r.counters.iter().collect::<Vec<_>>()
    );
    assert_eq!(
        e.value(SiteId(1), Key(0)),
        Some(Value(100)),
        "site 1 rolled back via termination"
    );
    assert_eq!(e.value(SiteId(2), Key(0)), Some(Value(100)));
    // Site 1 unblocked long before the coordinator's 30s recovery.
    assert!(
        r.locks.exclusive_hold.max() < 5_000_000,
        "{}",
        r.locks.exclusive_hold.max()
    );
}

#[test]
fn peer_that_knows_the_decision_shares_it() {
    // Dedicated coordinator at site 0 with a slow (300 ms) link to site 1.
    // Site 2 learns COMMIT ~300 ms before site 1 would; site 1's
    // termination round queries site 2, which answers KnowsCommit. (The
    // timeout must exceed the slow leg, else an early round would observe
    // site 1 before it even voted and — correctly, per the protocol's
    // safety rule — abort the whole transaction.)
    let mut cfg = SystemConfig::new(3, ProtocolKind::D2pl2pc);
    cfg.seed = 0x7E03;
    cfg.termination_timeout = Some(Duration::millis(300));
    cfg.network.link_latency.insert(
        (SiteId(0), SiteId(1)),
        o2pc_sim::LatencyModel::Fixed(Duration::millis(300)),
    );
    let mut e = Engine::new(cfg);
    e.load(SiteId(1), Key(0), Value(100));
    e.load(SiteId(2), Key(0), Value(100));
    e.submit_at(
        SimTime::ZERO,
        TxnRequest::global_with_coordinator(
            SiteId(0),
            vec![
                (SiteId(1), vec![Op::Add(Key(0), -5)]),
                (SiteId(2), vec![Op::Add(Key(0), 5)]),
            ],
        ),
    );
    let r = e.run(Duration::secs(10));
    assert_eq!(r.global_committed, 1);
    assert_eq!(e.value(SiteId(1), Key(0)), Some(Value(95)));
    assert_eq!(e.value(SiteId(2), Key(0)), Some(Value(105)));
    assert!(
        r.counters.get("term.rounds") > 0,
        "site 1 must have started termination rounds"
    );
    assert!(
        r.counters.get("term.resolved_commit") > 0,
        "the round must learn COMMIT from the peer: {:?}",
        r.counters.iter().collect::<Vec<_>>()
    );
}

#[test]
fn termination_disabled_means_pure_blocking() {
    let mut e = crash_coordinator_setup(ProtocolKind::D2pl2pc, None, (3, 2_000));
    let r = e.run(Duration::secs(10));
    assert_eq!(r.counters.get("term.rounds"), 0);
    assert_eq!(r.counters.get("msg.term_req"), 0);
    assert!(r.locks.exclusive_hold.mean() > 1_900_000.0);
}

/// A runtime that swallows the first `TermAnswer` it is asked to carry.
/// Everything else passes through to the deterministic simulator.
struct DropFirstTermAnswer {
    inner: o2pc_core::DefaultSimRuntime,
    dropped: bool,
}

impl o2pc_runtime::Clock for DropFirstTermAnswer {
    fn now(&self) -> SimTime {
        self.inner.now()
    }
}

impl o2pc_runtime::Runtime<o2pc_core::TimerEvent, o2pc_core::Msg> for DropFirstTermAnswer {
    fn register_endpoint(&mut self, id: SiteId) {
        self.inner.register_endpoint(id);
    }
    fn schedule(&mut self, at: SimTime, timer: o2pc_core::TimerEvent) {
        self.inner.schedule(at, timer);
    }
    fn send(
        &mut self,
        now: SimTime,
        from: SiteId,
        to: SiteId,
        msg: o2pc_core::Msg,
    ) -> o2pc_runtime::SendOutcome {
        if !self.dropped && matches!(msg, o2pc_core::Msg::TermAnswer { .. }) {
            self.dropped = true;
            return o2pc_runtime::SendOutcome::DroppedByPolicy;
        }
        self.inner.send(now, from, to, msg)
    }
    fn next(
        &mut self,
        deadline: SimTime,
    ) -> Option<(
        SimTime,
        o2pc_runtime::Step<o2pc_core::TimerEvent, o2pc_core::Msg>,
    )> {
        self.inner.next(deadline)
    }
    fn messages_dropped(&self) -> u64 {
        self.inner.messages_dropped()
    }
}

/// Losing a `TermAnswer` must only delay resolution by one timeout: each
/// firing of the termination timer re-arms the chain, so the next round
/// re-queries the peers and the repeated answer resolves the in-doubt
/// participant. (Without retry, the lost answer leaves the round open
/// forever and the recovered participant stays in doubt.)
#[test]
fn dropped_term_answer_is_retried_until_resolution() {
    // Participant-crash shape: site 2 crashes prepared at 4 ms (the
    // DECISION at 5.05 ms hits a dead site) and recovers at 1 s in doubt.
    // Its only path to the decision is the termination round against
    // site 1 — whose first answer is eaten by the runtime wrapper.
    let mut cfg = SystemConfig::new(3, ProtocolKind::D2pl2pc);
    cfg.seed = 0x7E04;
    cfg.termination_timeout = Some(Duration::millis(50));
    let mut failures = FailurePlan::new();
    failures.site_crash(
        SiteId(2),
        SimTime::ZERO + Duration::millis(4),
        SimTime::ZERO + Duration::millis(1000),
    );
    cfg.failures = failures;
    let mut root = o2pc_common::DetRng::new(cfg.seed);
    let net_rng = root.fork(0x6e65);
    let network =
        o2pc_sim::Network::new(cfg.network.clone(), net_rng).with_failures(cfg.failures.clone());
    let rt = DropFirstTermAnswer {
        inner: o2pc_core::DefaultSimRuntime::new(network),
        dropped: false,
    };
    let mut e = Engine::with_runtime(cfg, rt);
    e.load(SiteId(1), Key(0), Value(100));
    e.load(SiteId(2), Key(0), Value(100));
    e.submit_at(
        SimTime::ZERO,
        TxnRequest::global_with_coordinator(
            SiteId(0),
            vec![
                (SiteId(1), vec![Op::Add(Key(0), -5)]),
                (SiteId(2), vec![Op::Add(Key(0), 5)]),
            ],
        ),
    );
    let r = e.run(Duration::secs(30));
    assert!(e.runtime().dropped, "the first TermAnswer must be eaten");
    assert_eq!(r.global_committed, 1);
    assert_eq!(e.value(SiteId(1), Key(0)), Some(Value(95)));
    assert_eq!(
        e.value(SiteId(2), Key(0)),
        Some(Value(105)),
        "the retried round must finalize the prepared update"
    );
    assert!(
        r.counters.get("term.rounds") >= 2,
        "a retried round is required after the lost answer: {:?}",
        r.counters.iter().collect::<Vec<_>>()
    );
    assert!(
        r.counters.get("term.resolved_commit") > 0,
        "the repeat answer resolves the in-doubt participant"
    );
}

#[test]
fn o2pc_needs_no_termination_protocol() {
    // Under O2PC the participants released at the vote: nothing is blocked,
    // so no termination round ever fires even when enabled.
    let mut e = crash_coordinator_setup(ProtocolKind::O2pc, Some(Duration::millis(20)), (3, 500));
    let r = e.run(Duration::secs(10));
    assert_eq!(
        r.counters.get("term.rounds"),
        0,
        "no prepared-blocked participants under O2PC"
    );
    assert!(r.locks.exclusive_hold.mean() < 50_000.0);
}
