//! Regression tests: timers that outlive their transaction must be inert.
//!
//! A `VoteTimeout` (or `Retransmit`) event can fire long after its
//! transaction completed and was garbage-collected — the engine keeps no
//! handle to cancel in-queue timers, so stale firings are a normal part of
//! steady state under chaos schedules. The engine used to index `txns`
//! unconditionally on these paths, which panics once GC removes the entry.

use o2pc_common::{Duration, Key, Op, SimTime, SiteId, Value};
use o2pc_core::{Engine, SystemConfig, TxnRequest};
use o2pc_protocol::ProtocolKind;

fn transfer(from: SiteId, to: SiteId, key: Key, amount: i64) -> TxnRequest {
    TxnRequest::Global {
        subs: vec![
            (from, vec![Op::Add(key, -amount)]),
            (to, vec![Op::Add(key, amount)]),
        ],
        coordinator: from,
    }
}

/// The vote timeout fires seconds after the transaction committed, acked,
/// and was retired by GC. The regression is the absence of a panic.
#[test]
fn vote_timeout_after_completion_and_gc_is_inert() {
    let mut cfg = SystemConfig::new(2, ProtocolKind::O2pc);
    cfg.seed = 0x57A1;
    // Far longer than the transaction needs to finish: by the time the
    // timer fires, the GTxn record is gone.
    cfg.vote_timeout = Some(Duration::secs(2));
    let mut e = Engine::new(cfg);
    e.load(SiteId(0), Key(0), Value(100));
    e.load(SiteId(1), Key(0), Value(100));
    e.submit_at(SimTime::ZERO, transfer(SiteId(0), SiteId(1), Key(0), 5));
    let r = e.run(Duration::secs(10));
    assert_eq!(r.global_committed, 1);
    assert_eq!(
        r.counters.get("txn.gc"),
        1,
        "the transaction must actually be retired before the timer fires"
    );
    assert_eq!(e.value(SiteId(0), Key(0)), Some(Value(95)));
    assert_eq!(e.value(SiteId(1), Key(0)), Some(Value(105)));
}

/// Same shape for the retransmission chain: a `Retransmit` timer scheduled
/// while the decision was outstanding fires after GC retired the record.
#[test]
fn retransmit_timer_after_gc_is_inert() {
    let mut cfg = SystemConfig::new(2, ProtocolKind::O2pc);
    cfg.seed = 0x57A2;
    // A capped chain with a long cap: once the transaction completes at
    // ~millisecond scale, the pending chain link fires against a retired id.
    cfg.retransmit_base = Some(Duration::millis(900));
    cfg.retransmit_cap = Duration::secs(4);
    cfg.vote_timeout = Some(Duration::secs(3));
    let mut e = Engine::new(cfg);
    e.load(SiteId(0), Key(0), Value(100));
    e.load(SiteId(1), Key(0), Value(100));
    e.submit_at(SimTime::ZERO, transfer(SiteId(0), SiteId(1), Key(0), 7));
    let r = e.run(Duration::secs(20));
    assert_eq!(r.global_committed, 1);
    assert_eq!(r.counters.get("txn.gc"), 1);
    assert_eq!(e.value(SiteId(0), Key(0)), Some(Value(93)));
    assert_eq!(e.value(SiteId(1), Key(0)), Some(Value(107)));
}
