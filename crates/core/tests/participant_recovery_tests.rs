//! Participant crash/recovery: the prepared window (2PC) and the
//! locally-committed window (O2PC) are both durable, and a recovered
//! in-doubt participant resolves its fate through the termination protocol.

use o2pc_common::{Duration, Key, Op, SimTime, SiteId, Value};
use o2pc_core::{Engine, SystemConfig, TxnRequest};
use o2pc_protocol::ProtocolKind;
use o2pc_sim::FailurePlan;

/// Coordinator at site 0 (no data); participants at sites 1 and 2.
/// Site 2 crashes in the window `crash` (ms) and recovers.
fn run_with_participant_crash(
    protocol: ProtocolKind,
    crash: (u64, u64),
    termination_ms: Option<u64>,
) -> (Engine, o2pc_core::RunReport) {
    let mut cfg = SystemConfig::new(3, protocol);
    cfg.seed = 0xC4A5;
    cfg.termination_timeout = termination_ms.map(Duration::millis);
    let mut failures = FailurePlan::new();
    failures.site_crash(
        SiteId(2),
        SimTime::ZERO + Duration::millis(crash.0),
        SimTime::ZERO + Duration::millis(crash.1),
    );
    cfg.failures = failures;
    let mut e = Engine::new(cfg);
    e.load(SiteId(1), Key(0), Value(100));
    e.load(SiteId(2), Key(0), Value(100));
    e.submit_at(
        SimTime::ZERO,
        TxnRequest::global_with_coordinator(
            SiteId(0),
            vec![
                (SiteId(1), vec![Op::Add(Key(0), -5)]),
                (SiteId(2), vec![Op::Add(Key(0), 5)]),
            ],
        ),
    );
    let r = e.run(Duration::secs(30));
    (e, r)
}

// Timeline (1 ms links, 50 µs ops): spawns arrive 1 ms, acks 2.05 ms,
// VOTE-REQ arrives 3.05 ms (participants prepared / locally committed),
// votes arrive 4.05 ms, DECISION arrives 5.05 ms.

#[test]
fn o2pc_participant_crash_after_local_commit_compensates_after_recovery() {
    // Site 2 dies at 4 ms: it voted yes (locally committed, durable via the
    // LocalCommit WAL record) but the DECISION at 5.05 ms hits a dead site.
    // The coordinator decides COMMIT (both votes arrived at 4.05? No — site
    // 2's vote left at 3.05, arrives 4.05, before the crash at 4.0? The
    // vote left the site while it was alive and delivers in flight; the
    // coordinator commits. After recovery the termination protocol lets
    // site 2 learn COMMIT from its peer.
    let (e, r) = run_with_participant_crash(ProtocolKind::O2pc, (4, 1000), Some(50));
    assert_eq!(
        r.global_committed,
        1,
        "{:?}",
        r.counters.iter().collect::<Vec<_>>()
    );
    assert_eq!(e.value(SiteId(1), Key(0)), Some(Value(95)));
    assert_eq!(
        e.value(SiteId(2), Key(0)),
        Some(Value(105)),
        "locally-committed update survived the crash and was finalized"
    );
    assert!(
        r.counters.get("term.resolved_commit") > 0,
        "resolved via peers after recovery"
    );
}

#[test]
fn o2pc_participant_crash_with_abort_decision_compensates_after_recovery() {
    // Same crash window, but the coordinator decides ABORT (site 1 votes no
    // via autonomy). Site 2's exposed +5 must be compensated after recovery.
    let mut cfg = SystemConfig::new(3, ProtocolKind::O2pc);
    cfg.seed = 0xC4A6;
    cfg.termination_timeout = Some(Duration::millis(50));
    cfg.vote_abort_probability = 1.0; // site 1 votes no; site 2 is crashed at its VoteReq? No:
                                      // with p = 1.0 both sites would vote no — but site 2 votes at 3.05 ms,
                                      // before the crash at 4 ms, so it also votes no and rolls back
                                      // immediately. To exercise the compensation-after-recovery path we need
                                      // site 2 to vote YES and site 1 NO — use a site-1-only failure: give
                                      // site 1 an impossible Reserve instead.
    cfg.vote_abort_probability = 0.0;
    let mut failures = FailurePlan::new();
    failures.site_crash(
        SiteId(2),
        SimTime::ZERO + Duration::millis(4),
        SimTime::ZERO + Duration::millis(1000),
    );
    cfg.failures = failures;
    let mut e = Engine::new(cfg);
    e.load(SiteId(1), Key(0), Value(0)); // empty inventory → Reserve fails
    e.load(SiteId(2), Key(0), Value(100));
    e.submit_at(
        SimTime::ZERO,
        TxnRequest::global_with_coordinator(
            SiteId(0),
            vec![
                (SiteId(1), vec![Op::Reserve(Key(0), 1)]),
                (SiteId(2), vec![Op::Add(Key(0), 5)]),
            ],
        ),
    );
    let r = e.run(Duration::secs(30));
    assert_eq!(r.global_aborted, 1);
    assert_eq!(
        e.value(SiteId(2), Key(0)),
        Some(Value(100)),
        "exposed +5 compensated after the participant recovered"
    );
    assert!(r.counters.get("term.resolved_abort") > 0);
    assert_eq!(r.compensations_pending, 0);
}

#[test]
fn d2pl_participant_crash_while_prepared_recovers_locks_and_resolves() {
    // Under 2PC the participant crashes *prepared*: its updates and write
    // locks must survive recovery, and the termination protocol then learns
    // the commit from the peer.
    let (e, r) = run_with_participant_crash(ProtocolKind::D2pl2pc, (4, 1000), Some(50));
    assert_eq!(r.global_committed, 1);
    assert_eq!(e.value(SiteId(1), Key(0)), Some(Value(95)));
    assert_eq!(
        e.value(SiteId(2), Key(0)),
        Some(Value(105)),
        "prepared update finalized"
    );
    assert!(r.counters.get("term.resolved_commit") > 0);
}

#[test]
fn prepared_participant_without_termination_stays_in_doubt() {
    // No termination protocol: the recovered prepared participant has no way
    // to learn the decision (with `retransmit_base` unset — the default —
    // the coordinator sends each decision exactly once and only resends on
    // its own crash recovery) — the in-doubt data stays locked. This is
    // 2PC blocking surviving a *participant* restart; enabling either
    // `termination_timeout` or `retransmit_base` resolves it.
    let (e, r) = run_with_participant_crash(ProtocolKind::D2pl2pc, (4, 1000), None);
    // The coordinator logged COMMIT; site 1 applied it; site 2 is in doubt.
    assert_eq!(r.global_committed, 1);
    assert_eq!(e.value(SiteId(1), Key(0)), Some(Value(95)));
    assert_eq!(
        e.value(SiteId(2), Key(0)),
        Some(Value(105)),
        "update durable but unresolved"
    );
    assert_eq!(r.counters.get("term.rounds"), 0);
    // The write lock is still held at site 2: a probing local transaction
    // would block (verified via the lock manager's view at end of run).
    assert_eq!(r.compensations_pending, 0);
}
