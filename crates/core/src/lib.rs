//! # o2pc-core
//!
//! The distributed transaction engine: sites (`o2pc-site`) + commit
//! protocols (`o2pc-protocol`) + marking (`o2pc-marking`), generic over the
//! runtime substrate (`o2pc-runtime`). `Engine::new` runs on the
//! deterministic simulator; `Engine::with_runtime` accepts any other
//! backend, e.g. the threaded wall-clock runtime.
//!
//! The engine is an event loop over one clock. A run is configured
//! with a [`config::SystemConfig`] and a workload schedule of
//! [`config::TxnRequest`]s, and produces a [`report::RunReport`] containing
//! every quantity the paper's claims are measured by: exclusive-lock hold
//! times, transaction latency and throughput, message counts per type, R1
//! rejection/retry counts, compensation statistics, and the full execution
//! [`o2pc_common::History`] for post-hoc serialization-graph audits.
//!
//! ```
//! use o2pc_core::{Engine, SystemConfig, TxnRequest};
//! use o2pc_common::{Duration, Key, Op, SimTime, SiteId, Value};
//! use o2pc_protocol::ProtocolKind;
//!
//! let mut cfg = SystemConfig::new(2, ProtocolKind::O2pc);
//! cfg.seed = 7;
//! let mut engine = Engine::new(cfg);
//! engine.load(SiteId(0), Key(1), Value(100));
//! engine.load(SiteId(1), Key(1), Value(100));
//! engine.submit_at(SimTime::ZERO, TxnRequest::global(vec![
//!     (SiteId(0), vec![Op::Add(Key(1), -10)]),
//!     (SiteId(1), vec![Op::Add(Key(1), 10)]),
//! ]));
//! let report = engine.run(Duration::secs(10));
//! assert_eq!(report.global_committed, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod msg;
pub mod report;

pub use config::{SystemConfig, TxnRequest};
pub use engine::{DefaultSimRuntime, Engine, TimerEvent};
pub use msg::Msg;
pub use report::RunReport;
