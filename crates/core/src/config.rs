//! Engine configuration and workload requests.

use o2pc_common::{Duration, Op, SiteId};
use o2pc_compensation::CompensationModel;
use o2pc_protocol::ProtocolKind;
use o2pc_sim::{FailurePlan, NetworkConfig};
use std::collections::BTreeSet;

/// One transaction submitted to the engine.
#[derive(Clone, Debug)]
pub enum TxnRequest {
    /// A global transaction: one subtransaction per site (≥ 2 sites, or 1
    /// for degenerate tests). The coordinator defaults to the first site.
    Global {
        /// Per-site operation programs.
        subs: Vec<(SiteId, Vec<Op>)>,
        /// Site hosting the coordinator (need not hold a subtransaction).
        coordinator: SiteId,
    },
    /// An independent local transaction.
    Local {
        /// Site it runs at.
        site: SiteId,
        /// Its operations.
        ops: Vec<Op>,
    },
}

impl TxnRequest {
    /// Global transaction coordinated from its first participant.
    pub fn global(subs: Vec<(SiteId, Vec<Op>)>) -> Self {
        assert!(!subs.is_empty());
        let coordinator = subs[0].0;
        TxnRequest::Global { subs, coordinator }
    }

    /// Global transaction with an explicit coordinator site.
    pub fn global_with_coordinator(coordinator: SiteId, subs: Vec<(SiteId, Vec<Op>)>) -> Self {
        assert!(!subs.is_empty());
        TxnRequest::Global { subs, coordinator }
    }

    /// Local transaction.
    pub fn local(site: SiteId, ops: Vec<Op>) -> Self {
        TxnRequest::Local { site, ops }
    }
}

/// Full system configuration for one run.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Number of sites (ids `0..num_sites`).
    pub num_sites: u32,
    /// Commit-protocol variant.
    pub protocol: ProtocolKind,
    /// Network model.
    pub network: NetworkConfig,
    /// Scripted failures.
    pub failures: FailurePlan,
    /// CPU time per operation at a site.
    pub op_service_time: Duration,
    /// Probability that a site exercises its autonomy and votes to abort a
    /// global transaction despite successful execution (§1: a site may
    /// "abort any local (sub)transaction at any time before it terminates").
    pub vote_abort_probability: f64,
    /// Compensation model used by all sites.
    pub compensation_model: CompensationModel,
    /// Sites performing non-compensatable *real actions* (§2): they retain
    /// locks until the decision even under O2PC.
    pub real_action_sites: BTreeSet<SiteId>,
    /// Maximum R1 retries before the global transaction is aborted.
    pub r1_max_retries: u32,
    /// Delay before re-running a rejected R1 check.
    pub r1_retry_delay: Duration,
    /// Delay before re-submitting a deadlock-victim compensating
    /// subtransaction (persistence of compensation).
    pub comp_retry_delay: Duration,
    /// Coordinator vote-collection timeout (None = wait forever, the pure
    /// blocking behaviour).
    pub vote_timeout: Option<Duration>,
    /// Prepared participants run the cooperative termination protocol after
    /// this much silence from the coordinator (None = classic 2PC: wait
    /// forever). Adds `msg.term_req`/`msg.term_answer` traffic only when it
    /// actually fires.
    pub termination_timeout: Option<Duration>,
    /// Coordinator retransmission of unacked VOTE-REQ / DECISION messages:
    /// first resend after this much silence, doubling each attempt up to
    /// [`SystemConfig::retransmit_cap`]. `None` (the default) sends each
    /// message exactly once — the classic model where only crash recovery
    /// resends — so message-count experiments are unaffected unless a run
    /// opts in (the chaos harness does).
    pub retransmit_base: Option<Duration>,
    /// Upper bound on the retransmission backoff interval.
    pub retransmit_cap: Duration,
    /// Enable the UDUM1-gated *undone → unmarked* transition (rule R3).
    /// Disabling it is an ablation: markings accumulate forever, so P1
    /// rejects ever more subtransactions — quantifying how much concurrency
    /// the paper's "safe forgetting" machinery buys (experiment E5b).
    pub enable_udum: bool,
    /// Record the execution history for post-hoc SG audits.
    pub record_history: bool,
    /// Maintain the exposed serialization graphs *incrementally* while the
    /// run executes (an `o2pc-sgraph` builder fed event by event). Off by
    /// default; the chaos harness turns it on so its oracle audits the live
    /// graph instead of replaying the whole history through the batch
    /// builder after every run.
    pub live_audit_graph: bool,
    /// RNG seed; identical seeds give identical runs.
    pub seed: u64,
    /// Safety cap on processed events.
    pub max_events: u64,
    /// Per-coordinator-site bound on concurrently executing global
    /// transactions. `None` (the default) admits every arrival immediately —
    /// the historical behaviour. `Some(w)` pipelines the coordinator:
    /// arrivals beyond `w` in-flight transactions queue at their coordinator
    /// site and are admitted as completions free a slot, so an open-loop
    /// client layer can offer load far above capacity without the engine
    /// thrashing. Queueing delay stays visible: latency is measured from the
    /// *scheduled* arrival, not admission.
    pub admission_window: Option<usize>,
    /// Directory for per-site durable WAL files (`site-<id>.wal`). `None`
    /// (the default) keeps the historical in-memory WAL with simulated
    /// durability. When set, every site logs through the file-backed
    /// backend: externally visible promises (yes-votes, decision acks,
    /// fate-bearing termination answers) are held until the records they
    /// depend on are fsynced — the group-commit protocol.
    pub durable_wal_dir: Option<std::path::PathBuf>,
    /// Group-commit window: how long a site batches appended records before
    /// the next flush (inline fsync on the simulator, a sealed batch to the
    /// background flusher on the threaded substrate). Longer windows
    /// amortise fsync across more transactions at the cost of commit
    /// latency. Ignored unless [`SystemConfig::durable_wal_dir`] is set.
    pub wal_flush_interval: Duration,
    /// Gate durability promises on *physical* fsync completion instead of
    /// the deterministic sealed watermark. With the default (`false`), a
    /// flush point seals the window's bytes into the background pipeline and
    /// releases parked messages immediately — release timing is a pure
    /// function of virtual time (deterministic: chaos replay and shrinking
    /// depend on it), and physical durability is enforced at barriers
    /// (simulated crash, checkpoint compaction, end of run). With `true`,
    /// parked messages wait for the fsync watermark itself — nondeterministic
    /// timing, but honest against a real `SIGKILL` that can land between a
    /// released promise and its fsync (`kill_recover` runs this mode).
    pub wal_background_flush: bool,
    /// Segment capacity of the durable WAL: the log rotates to a new
    /// preallocated segment file when the next record would not fit.
    /// Checkpoint compaction deletes whole stale segments. Small values
    /// exercise rotation and compaction aggressively (CI smoke); the default
    /// keeps rotation off the hot path.
    pub wal_segment_bytes: u64,
    /// Adaptive group-commit trigger: a site whose pending (unsealed) WAL
    /// bytes reach this threshold flushes immediately instead of waiting out
    /// [`SystemConfig::wal_flush_interval`] — whichever comes first. Byte
    /// counts are deterministic, so the early trigger is too.
    pub wal_flush_bytes: u64,
}

impl SystemConfig {
    /// Sensible defaults: 1 ms fixed network latency, 50 µs per operation,
    /// no spontaneous aborts, restricted-model compensation, history on.
    pub fn new(num_sites: u32, protocol: ProtocolKind) -> Self {
        SystemConfig {
            num_sites,
            protocol,
            network: NetworkConfig::fixed(Duration::millis(1)),
            failures: FailurePlan::new(),
            op_service_time: Duration::micros(50),
            vote_abort_probability: 0.0,
            compensation_model: CompensationModel::Restricted,
            real_action_sites: BTreeSet::new(),
            r1_max_retries: 3,
            r1_retry_delay: Duration::millis(2),
            comp_retry_delay: Duration::millis(1),
            vote_timeout: None,
            termination_timeout: None,
            retransmit_base: None,
            retransmit_cap: Duration::millis(200),
            enable_udum: true,
            record_history: true,
            live_audit_graph: false,
            seed: 0x5EED,
            max_events: 50_000_000,
            admission_window: None,
            durable_wal_dir: None,
            wal_flush_interval: Duration::millis(1),
            wal_background_flush: false,
            wal_segment_bytes: 4 * 1024 * 1024,
            wal_flush_bytes: 256 * 1024,
        }
    }

    /// All site ids.
    pub fn sites(&self) -> impl Iterator<Item = SiteId> {
        (0..self.num_sites).map(SiteId)
    }

    /// Liveness footguns in this configuration, as human-readable warnings.
    ///
    /// The one that bit PR 6: crashes scheduled while `vote_timeout` is
    /// `None`. A coordinator whose SPAWN lands on a crashed site then waits
    /// forever for a vote that cannot come — the transaction hangs, and a
    /// conservation check at the horizon sees money pinned in limbo. The
    /// default stays `None` (the paper's pure blocking protocol, and the
    /// blocking-window experiments depend on it), so the engine surfaces the
    /// combination loudly instead of silently changing behaviour.
    pub fn liveness_warnings(&self) -> Vec<String> {
        let mut w = Vec::new();
        if self.vote_timeout.is_none() && self.failures.crashes().next().is_some() {
            w.push(
                "config: site crashes are scheduled but vote_timeout is None — \
                 a coordinator that spawns onto a crashed site has no liveness \
                 path and its transaction never terminates (set vote_timeout, \
                 e.g. SystemConfig::vote_timeout = Some(Duration::millis(40)))"
                    .to_string(),
            );
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2pc_common::Key;

    #[test]
    fn request_constructors() {
        let g = TxnRequest::global(vec![(SiteId(1), vec![Op::Read(Key(0))])]);
        match g {
            TxnRequest::Global { coordinator, subs } => {
                assert_eq!(coordinator, SiteId(1));
                assert_eq!(subs.len(), 1);
            }
            _ => panic!(),
        }
        let g = TxnRequest::global_with_coordinator(SiteId(9), vec![(SiteId(1), vec![])]);
        match g {
            TxnRequest::Global { coordinator, .. } => assert_eq!(coordinator, SiteId(9)),
            _ => panic!(),
        }
    }

    #[test]
    fn config_sites() {
        let cfg = SystemConfig::new(3, ProtocolKind::O2pc);
        let sites: Vec<SiteId> = cfg.sites().collect();
        assert_eq!(sites, vec![SiteId(0), SiteId(1), SiteId(2)]);
        assert!(cfg.record_history);
    }
}
