//! The event-driven distributed engine.

use crate::config::{SystemConfig, TxnRequest};
use crate::msg::Msg;
use crate::report::RunReport;
use o2pc_common::{
    DetRng, Duration, ExecId, GlobalTxnId, GlobalTxnIdGen, History, Key, SimTime, SiteId, Value,
};
use o2pc_compensation::{CompensationPlan, PersistenceGuard};
use o2pc_marking::{MarkingProtocol, TransMarks, UdumTracker};
use o2pc_protocol::{CoordAction, TerminationOutcome, TerminationRound, TwoPhaseCoordinator};
use o2pc_site::{LockPolicy, OpResult, Site, SiteConfig};
use o2pc_sim::{EventQueue, Network};
use o2pc_storage::Wal;
use std::collections::{BTreeSet, HashMap};

/// Find one cycle in a directed graph given as an adjacency map.
fn find_cycle<N: Copy + Eq + std::hash::Hash + Ord>(adj: &HashMap<N, Vec<N>>) -> Option<Vec<N>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Colour {
        Grey,
        Black,
    }
    let mut colour: HashMap<N, Colour> = HashMap::new();
    let mut roots: Vec<N> = adj.keys().copied().collect();
    roots.sort();
    for root in roots {
        if colour.contains_key(&root) {
            continue;
        }
        let mut stack: Vec<(N, usize)> = vec![(root, 0)];
        let mut path: Vec<N> = vec![root];
        colour.insert(root, Colour::Grey);
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let succs = adj.get(&node).map(Vec::as_slice).unwrap_or(&[]);
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                match colour.get(&s) {
                    Some(Colour::Grey) => {
                        let pos = path.iter().position(|&n| n == s).unwrap();
                        return Some(path[pos..].to_vec());
                    }
                    Some(Colour::Black) => {}
                    None => {
                        colour.insert(s, Colour::Grey);
                        stack.push((s, 0));
                        path.push(s);
                    }
                }
            } else {
                colour.insert(node, Colour::Black);
                stack.pop();
                path.pop();
            }
        }
    }
    None
}

/// Internal engine events.
#[derive(Clone, Debug)]
enum Event {
    Arrive(TxnRequest),
    Deliver { to: SiteId, msg: Msg },
    OpDone { site: SiteId, exec: ExecId },
    R1Retry { txn: GlobalTxnId, site: SiteId },
    CompRetry { txn: GlobalTxnId, site: SiteId },
    VoteTimeout { txn: GlobalTxnId },
    TermTimeout { txn: GlobalTxnId, site: SiteId },
    Crash { site: SiteId },
    Recover { site: SiteId },
}

/// Book-keeping for one global transaction.
struct GTxn {
    coord_site: SiteId,
    coord: TwoPhaseCoordinator,
    subs: HashMap<SiteId, Vec<o2pc_common::Op>>,
    tm: TransMarks,
    start: SimTime,
    spawn_retries: HashMap<SiteId, u32>,
    /// Sites where the subtransaction actually began executing. Only these
    /// can ever carry an *undone* marking for this transaction, so only
    /// these count as UDUM1 execution sites — registering all participants
    /// would leave markings that can never be cleared (an R1-rejected site
    /// never executes, never marks, never fences).
    began: BTreeSet<SiteId>,
    done: bool,
}

/// The engine: sites + coordinators + network on one virtual clock.
pub struct Engine {
    cfg: SystemConfig,
    sites: Vec<Option<Site>>,
    crashed_wals: HashMap<SiteId, Wal>,
    queue: EventQueue<Event>,
    network: Network,
    rng: DetRng,
    idgen: GlobalTxnIdGen,
    txns: HashMap<GlobalTxnId, GTxn>,
    pending_comp: HashMap<(GlobalTxnId, SiteId), CompensationPlan>,
    term_rounds: HashMap<(GlobalTxnId, SiteId), TerminationRound>,
    local_starts: HashMap<ExecId, SimTime>,
    persistence: PersistenceGuard,
    udum: UdumTracker,
    hist: History,
    report: RunReport,
    checkpointed: bool,
}

impl Engine {
    /// Build an engine from a configuration.
    pub fn new(cfg: SystemConfig) -> Self {
        let mut root = DetRng::new(cfg.seed);
        let net_rng = root.fork(0x6e65);
        let network = Network::new(cfg.network.clone(), net_rng).with_failures(cfg.failures.clone());
        let site_cfg = SiteConfig { compensation_model: cfg.compensation_model };
        let sites = cfg.sites().map(|id| Some(Site::new(id, site_cfg))).collect();
        let mut queue = EventQueue::new();
        for (site, from, to) in cfg.failures.crashes() {
            queue.schedule(from, Event::Crash { site });
            queue.schedule(to, Event::Recover { site });
        }
        Engine {
            cfg,
            sites,
            crashed_wals: HashMap::new(),
            queue,
            network,
            rng: root,
            idgen: GlobalTxnIdGen::new(),
            txns: HashMap::new(),
            pending_comp: HashMap::new(),
            term_rounds: HashMap::new(),
            local_starts: HashMap::new(),
            persistence: PersistenceGuard::new(),
            udum: UdumTracker::new(),
            hist: History::new(),
            report: RunReport::default(),
            checkpointed: false,
        }
    }

    /// Pre-load a data item at a site.
    pub fn load(&mut self, site: SiteId, key: Key, value: Value) {
        self.site_mut(site).load(key, value);
    }

    /// Submit a transaction for arrival at `at`.
    pub fn submit_at(&mut self, at: SimTime, req: TxnRequest) {
        self.queue.schedule(at, Event::Arrive(req));
    }

    /// Read an item's current value (tests / invariants).
    pub fn value(&self, site: SiteId, key: Key) -> Option<Value> {
        self.sites[site.index()].as_ref().and_then(|s| s.get(key))
    }

    fn site_mut(&mut self, site: SiteId) -> &mut Site {
        self.sites[site.index()].as_mut().unwrap_or_else(|| panic!("{site} is crashed"))
    }

    fn site_up(&self, site: SiteId) -> bool {
        self.sites[site.index()].is_some()
    }

    /// Run until the event queue drains, virtual time exceeds `horizon`, or
    /// the event cap trips. Returns the collected report.
    pub fn run(&mut self, horizon: Duration) -> RunReport {
        if !self.checkpointed {
            for s in self.sites.iter_mut().flatten() {
                s.checkpoint();
            }
            self.checkpointed = true;
        }
        let deadline = SimTime::ZERO + horizon;
        let mut events = 0u64;
        while let Some(t) = self.queue.peek_time() {
            if t > deadline || events >= self.cfg.max_events {
                break;
            }
            let (now, ev) = self.queue.pop().expect("peeked");
            events += 1;
            self.handle(now, ev);
        }
        self.report.events_processed += events;
        self.finalize()
    }

    fn finalize(&mut self) -> RunReport {
        let mut report = self.report.clone();
        report.end_time = self.queue.now();
        // Transactions that never reached Complete: count by logged decision
        // (presumed abort when undecided — the coordinator discipline).
        for g in self.txns.values() {
            if !g.done {
                match g.coord.decision() {
                    Some(true) => report.global_committed += 1,
                    _ => report.global_aborted += 1,
                }
            }
        }
        for s in self.sites.iter().flatten() {
            report.locks.merge(s.lock_stats());
            report.total_value += s.total();
            report.counters.add("comp.skipped_ops", s.skipped_comp_ops);
        }
        report.counters.add("net.dropped", self.network.dropped_count());
        report.compensations_pending = self.persistence.pending_count();
        report.compensations_completed = self.persistence.completed_count();
        report.counters.add("comp.retries", self.persistence.total_retries());
        if self.cfg.record_history {
            report.history = self.hist.clone();
        }
        report
    }

    // ----- messaging -------------------------------------------------------

    fn send(&mut self, now: SimTime, from: SiteId, to: SiteId, msg: Msg) {
        self.report.counters.inc(msg.label());
        if from == to {
            self.queue.schedule(now, Event::Deliver { to, msg });
            return;
        }
        // A `None` from transmit means the message was lost (link down or
        // random drop); the network counts it.
        if let Some(delay) = self.network.transmit(from, to, now) {
            self.queue.schedule(now + delay, Event::Deliver { to, msg });
        }
    }

    fn wake(&mut self, now: SimTime, site: SiteId, woken: Vec<ExecId>) {
        for exec in woken {
            self.queue.schedule(now, Event::OpDone { site, exec });
        }
    }

    // ----- event handling --------------------------------------------------

    fn handle(&mut self, now: SimTime, ev: Event) {
        match ev {
            Event::Arrive(req) => self.on_arrive(now, req),
            Event::Deliver { to, msg } => self.on_deliver(now, to, msg),
            Event::OpDone { site, exec } => self.on_op_done(now, site, exec),
            Event::R1Retry { txn, site } => self.try_spawn(now, txn, site),
            Event::CompRetry { txn, site } => self.resume_compensation(now, txn, site),
            Event::VoteTimeout { txn } => self.on_vote_timeout(now, txn),
            Event::TermTimeout { txn, site } => self.on_term_timeout(now, txn, site),
            Event::Crash { site } => self.on_crash(site),
            Event::Recover { site } => self.on_recover(now, site),
        }
    }

    fn on_arrive(&mut self, now: SimTime, req: TxnRequest) {
        match req {
            TxnRequest::Local { site, ops } => {
                if !self.site_up(site) {
                    self.report.local_aborted += 1;
                    return;
                }
                let hist = &mut self.hist;
                let s = self.sites[site.index()].as_mut().unwrap();
                let exec = ExecId::Local(s.next_local_id());
                s.begin(exec, ops, now, hist);
                self.local_starts.insert(exec, now);
                let service = self.cfg.op_service_time;
                self.queue.schedule(now + service, Event::OpDone { site, exec });
            }
            TxnRequest::Global { subs, coordinator } => {
                let id = self.idgen.next_id();
                let participants: Vec<SiteId> = subs.iter().map(|&(s, _)| s).collect();
                debug_assert_eq!(
                    participants.iter().collect::<BTreeSet<_>>().len(),
                    participants.len(),
                    "duplicate participant sites"
                );
                let coord = TwoPhaseCoordinator::new(id, participants);
                let gtxn = GTxn {
                    coord_site: coordinator,
                    coord,
                    subs: subs.iter().cloned().collect(),
                    tm: TransMarks::new(),
                    start: now,
                    spawn_retries: HashMap::new(),
                    began: BTreeSet::new(),
                    done: false,
                };
                self.txns.insert(id, gtxn);
                for (site, ops) in subs {
                    self.send(now, coordinator, site, Msg::SpawnSubtxn { txn: id, ops });
                }
                if let Some(t) = self.cfg.vote_timeout {
                    // Overall progress timeout: covers a participant that
                    // never acks (down site) as well as lost votes.
                    self.queue.schedule(now + t, Event::VoteTimeout { txn: id });
                }
            }
        }
    }

    fn marking(&self) -> MarkingProtocol {
        self.cfg.protocol.marking()
    }

    fn lock_policy_at(&self, site: SiteId) -> LockPolicy {
        if self.cfg.real_action_sites.contains(&site) {
            LockPolicy::HoldWrites
        } else {
            self.cfg.protocol.lock_policy()
        }
    }

    fn on_deliver(&mut self, now: SimTime, to: SiteId, msg: Msg) {
        if !self.site_up(to) {
            return; // message to a crashed site is lost
        }
        match msg {
            Msg::SpawnSubtxn { txn, .. } => self.try_spawn(now, txn, to),
            Msg::SubtxnAck { txn, from, ok } => {
                let Some(g) = self.txns.get_mut(&txn) else { return };
                if g.done {
                    return;
                }
                if let Some(action) = g.coord.on_subtxn_ack(from, ok) {
                    self.coord_action(now, txn, action);
                }
            }
            Msg::VoteReq { txn } => {
                let force = self.cfg.vote_abort_probability > 0.0
                    && self.rng.gen_bool(self.cfg.vote_abort_probability);
                let policy = self.lock_policy_at(to);
                let hist = &mut self.hist;
                let site = self.sites[to.index()].as_mut().unwrap();
                let had_exec = site.exec_state(ExecId::Sub(txn)).is_some();
                let out = site.vote(txn, policy, force, now, hist);
                if force && had_exec {
                    self.report.counters.inc("vote.autonomy_aborts");
                }
                self.wake(now, to, out.woken);
                if out.vote == o2pc_site::Vote::No {
                    self.invalidate_incompatible_subs(now, to);
                }
                if out.vote == o2pc_site::Vote::Yes && policy == LockPolicy::HoldWrites {
                    if let Some(t) = self.cfg.termination_timeout {
                        self.queue.schedule(now + t, Event::TermTimeout { txn, site: to });
                    }
                }
                let coord_site = self.txns[&txn].coord_site;
                self.send(now, to, coord_site, Msg::VoteMsg { txn, from: to, vote: out.vote });
            }
            Msg::VoteMsg { txn, from, vote } => {
                let Some(g) = self.txns.get_mut(&txn) else { return };
                if g.done {
                    return;
                }
                if let Some(action) = g.coord.on_vote(from, vote) {
                    self.coord_action(now, txn, action);
                }
            }
            Msg::Decision { txn, commit } => {
                let hist = &mut self.hist;
                let site = self.sites[to.index()].as_mut().unwrap();
                let out = site.decide(txn, commit, now, hist);
                self.wake(now, to, out.woken);
                if let Some(plan) = out.compensation {
                    self.report.counters.inc("comp.plans");
                    self.persistence.initiated(txn, to);
                    self.pending_comp.insert((txn, to), plan);
                    self.start_compensation(now, txn, to);
                }
                if !commit {
                    self.invalidate_incompatible_subs(now, to);
                }
                let coord_site = self.txns[&txn].coord_site;
                self.send(now, to, coord_site, Msg::DecisionAck { txn, from: to });
            }
            Msg::DecisionAck { txn, from } => {
                let Some(g) = self.txns.get_mut(&txn) else { return };
                if g.done {
                    return;
                }
                if let Some(action) = g.coord.on_decision_ack(from) {
                    self.coord_action(now, txn, action);
                }
            }
            Msg::TermReq { txn, from } => {
                let hist = &mut self.hist;
                let site = self.sites[to.index()].as_mut().unwrap();
                let (state, woken) = site.answer_termination_query(txn, now, hist);
                self.wake(now, to, woken);
                self.send(now, to, from, Msg::TermAnswer { txn, from: to, state });
            }
            Msg::TermAnswer { txn, from, state } => {
                let Some(round) = self.term_rounds.get_mut(&(txn, to)) else { return };
                match round.on_answer(from, state) {
                    Some(TerminationOutcome::Commit) => {
                        self.term_rounds.remove(&(txn, to));
                        self.report.counters.inc("term.resolved_commit");
                        self.apply_peer_decision(now, txn, to, true);
                    }
                    Some(TerminationOutcome::Abort) => {
                        self.term_rounds.remove(&(txn, to));
                        self.report.counters.inc("term.resolved_abort");
                        self.apply_peer_decision(now, txn, to, false);
                    }
                    Some(TerminationOutcome::StillBlocked) => {
                        self.term_rounds.remove(&(txn, to));
                        self.report.counters.inc("term.still_blocked");
                        // Retry after another timeout period.
                        if let Some(t) = self.cfg.termination_timeout {
                            self.queue.schedule(now + t, Event::TermTimeout { txn, site: to });
                        }
                    }
                    None => {}
                }
            }
        }
    }

    /// Apply a decision learned via the termination protocol (not from the
    /// coordinator). The coordinator, once recovered, will resend its own
    /// DECISION; `Site::decide` is idempotent for repeats.
    fn apply_peer_decision(&mut self, now: SimTime, txn: GlobalTxnId, site_id: SiteId, commit: bool) {
        let hist = &mut self.hist;
        let site = self.sites[site_id.index()].as_mut().unwrap();
        let out = site.decide(txn, commit, now, hist);
        self.wake(now, site_id, out.woken);
        if let Some(plan) = out.compensation {
            self.report.counters.inc("comp.plans");
            self.persistence.initiated(txn, site_id);
            self.pending_comp.insert((txn, site_id), plan);
            self.start_compensation(now, txn, site_id);
        }
    }

    /// A prepared participant has waited too long for the decision: run a
    /// cooperative-termination round against its peers.
    fn on_term_timeout(&mut self, now: SimTime, txn: GlobalTxnId, site_id: SiteId) {
        if !self.site_up(site_id) {
            return;
        }
        // Still uncertain? (Prepared under 2PC, or locally committed under
        // O2PC with the decision unknown — e.g. after a participant crash
        // swallowed the DECISION message.)
        {
            let site = self.sites[site_id.index()].as_ref().unwrap();
            let prepared = site
                .exec_state(ExecId::Sub(txn))
                .map(|s| s.phase == o2pc_site::ExecPhase::Prepared)
                .unwrap_or(false);
            let pending_lc = site.pending_local_commits().contains(&txn);
            if !prepared && !pending_lc {
                return;
            }
        }
        let peers: Vec<SiteId> = self.txns[&txn]
            .coord
            .participants()
            .iter()
            .copied()
            .filter(|&p| p != site_id)
            .collect();
        if peers.is_empty() {
            return;
        }
        self.report.counters.inc("term.rounds");
        self.term_rounds.insert((txn, site_id), TerminationRound::new(txn, peers.clone()));
        for p in peers {
            self.send(now, site_id, p, Msg::TermReq { txn, from: site_id });
        }
    }

    fn coord_action(&mut self, now: SimTime, txn: GlobalTxnId, action: CoordAction) {
        let coord_site = self.txns[&txn].coord_site;
        match action {
            CoordAction::SendVoteReq(sites) => {
                for s in sites {
                    self.send(now, coord_site, s, Msg::VoteReq { txn });
                }
                if let Some(t) = self.cfg.vote_timeout {
                    self.queue.schedule(now + t, Event::VoteTimeout { txn });
                }
            }
            CoordAction::SendDecision(commit, sites) => {
                if !commit {
                    // Piggy-backed on the DECISION messages: the aborted
                    // transaction's *actual* execution-site set, enabling
                    // UDUM1 detection at the sites (no extra messages).
                    let began = self.txns[&txn].began.clone();
                    self.udum.register_aborted(txn, began);
                }
                for s in sites {
                    self.send(now, coord_site, s, Msg::Decision { txn, commit });
                }
            }
            CoordAction::Complete(commit) => {
                let g = self.txns.get_mut(&txn).expect("txn exists");
                if g.done {
                    return;
                }
                g.done = true;
                if commit {
                    self.report.global_committed += 1;
                } else {
                    self.report.global_aborted += 1;
                }
                self.report.global_latency.record((now - g.start).as_micros());
            }
        }
    }

    fn on_vote_timeout(&mut self, now: SimTime, txn: GlobalTxnId) {
        if !self.site_up(self.txns[&txn].coord_site) {
            return; // a crashed coordinator times out nothing
        }
        let Some(g) = self.txns.get_mut(&txn) else { return };
        if g.done {
            return;
        }
        if let Some(action) = g.coord.on_timeout() {
            self.coord_action(now, txn, action);
        }
    }

    /// Rule R1: admission check before (re)starting a subtransaction.
    fn try_spawn(&mut self, now: SimTime, txn: GlobalTxnId, site_id: SiteId) {
        if !self.site_up(site_id) {
            return;
        }
        let marking = self.marking();
        let Some(g) = self.txns.get_mut(&txn) else { return };
        if g.done || g.coord.decision().is_some() {
            return;
        }
        self.report.counters.inc("r1.checks");
        let site = self.sites[site_id.index()].as_ref().unwrap();
        match g.tm.check_and_absorb(marking, site.marks()) {
            Ok(()) => {
                let ops = g.subs[&site_id].clone();
                g.began.insert(site_id);
                let exec = ExecId::Sub(txn);
                let empty = ops.is_empty();
                let hist = &mut self.hist;
                let site = self.sites[site_id.index()].as_mut().unwrap();
                site.begin(exec, ops, now, hist);
                if empty {
                    let coord_site = g.coord_site;
                    let _ = coord_site;
                    self.send(now, site_id, self.txns[&txn].coord_site, Msg::SubtxnAck {
                        txn,
                        from: site_id,
                        ok: true,
                    });
                } else {
                    let service = self.cfg.op_service_time;
                    self.queue.schedule(now + service, Event::OpDone { site: site_id, exec });
                }
            }
            Err(inc) => {
                self.report.counters.inc("r1.rejections");
                let retries = g.spawn_retries.entry(site_id).or_insert(0);
                *retries += 1;
                if inc.retryable && *retries <= self.cfg.r1_max_retries {
                    self.report.counters.inc("r1.retries");
                    let delay = self.cfg.r1_retry_delay;
                    self.queue.schedule(now + delay, Event::R1Retry { txn, site: site_id });
                } else {
                    self.report.counters.inc("r1.forced_aborts");
                    let coord_site = g.coord_site;
                    self.send(now, site_id, coord_site, Msg::SubtxnAck { txn, from: site_id, ok: false });
                }
            }
        }
    }

    fn on_op_done(&mut self, now: SimTime, site_id: SiteId, exec: ExecId) {
        if !self.site_up(site_id) {
            return;
        }
        if self.sites[site_id.index()].as_ref().unwrap().exec_state(exec).is_none() {
            return; // aborted while this event was in flight
        }
        if self.sites[site_id.index()].as_ref().unwrap().is_blocked(exec) {
            return; // spurious wake-up; a grant event will reschedule us
        }
        let hist = &mut self.hist;
        let site = self.sites[site_id.index()].as_mut().unwrap();
        let result = site.execute_next_op(exec, now, hist);
        match result {
            OpResult::Done { finished, .. } => {
                // UDUM observation: this execution's first operation at the
                // site "executed while the site was undone wrt T_i".
                // UDUM1 fences: "there is a transaction that has also
                // executed at that site while that site was undone" —
                // subtransactions and independent locals both qualify;
                // compensating subtransactions do not (they are the
                // *mechanism* of undoing, not evidence that the marking is
                // stale). The mark-change invalidation rule above is what
                // keeps fencing safe for in-flight admissions.
                if self.cfg.enable_udum
                    && !matches!(exec, ExecId::CompSub(_))
                    && site.exec_state(exec).map(|s| s.pc) == Some(1)
                {
                    let undone = site.marks().undone_set();
                    for ti in undone {
                        if self.udum.observe_access(ti, site_id) {
                            self.fire_udum(ti);
                        }
                    }
                }
                if !finished {
                    let service = self.cfg.op_service_time;
                    self.queue.schedule(now + service, Event::OpDone { site: site_id, exec });
                    return;
                }
                match exec {
                    ExecId::Local(_) => {
                        let hist = &mut self.hist;
                        let site = self.sites[site_id.index()].as_mut().unwrap();
                        let woken = site.commit_local(exec, now, hist);
                        self.report.local_committed += 1;
                        if let Some(start) = self.local_starts.remove(&exec) {
                            self.report.local_latency.record((now - start).as_micros());
                        }
                        self.wake(now, site_id, woken);
                    }
                    ExecId::Sub(g) => {
                        // Late revalidation of R1 (the paper's compromise for
                        // marking-set deadlock avoidance): re-check as the
                        // subtransaction's last action.
                        let marking = self.marking();
                        let ok = if marking == MarkingProtocol::None {
                            true
                        } else {
                            let gt = &self.txns[&g];
                            let site = self.sites[site_id.index()].as_ref().unwrap();
                            gt.tm.check(marking, site.marks()).is_ok()
                        };
                        if !ok {
                            self.report.counters.inc("r1.revalidation_failures");
                            let hist = &mut self.hist;
                            let site = self.sites[site_id.index()].as_mut().unwrap();
                            let woken = site.unilateral_abort(g, now, hist);
                            self.wake(now, site_id, woken);
                            self.invalidate_incompatible_subs(now, site_id);
                        }
                        let coord_site = self.txns[&g].coord_site;
                        self.send(now, site_id, coord_site, Msg::SubtxnAck { txn: g, from: site_id, ok });
                    }
                    ExecId::CompSub(g) => {
                        let hist = &mut self.hist;
                        let site = self.sites[site_id.index()].as_mut().unwrap();
                        let woken = site.finish_compensation(g, now, hist);
                        self.wake(now, site_id, woken);
                        self.pending_comp.remove(&(g, site_id));
                        self.persistence.completed(g, site_id);
                        // R2 set the undone marking: future accesses count
                        // toward UDUM1, and running subtransactions admitted
                        // under the old marks must be re-checked.
                        self.invalidate_incompatible_subs(now, site_id);
                    }
                }
            }
            OpResult::Blocked => {
                self.resolve_deadlocks(now, site_id);
                self.resolve_global_deadlocks(now);
            }
            OpResult::Failed(_) => match exec {
                ExecId::Local(_) => {
                    let hist = &mut self.hist;
                    let site = self.sites[site_id.index()].as_mut().unwrap();
                    let woken = site.abort_exec(exec, now, hist);
                    self.report.local_aborted += 1;
                    self.wake(now, site_id, woken);
                }
                ExecId::Sub(g) => {
                    let hist = &mut self.hist;
                    let site = self.sites[site_id.index()].as_mut().unwrap();
                    let woken = site.unilateral_abort(g, now, hist);
                    self.wake(now, site_id, woken);
                    let coord_site = self.txns[&g].coord_site;
                    self.send(now, site_id, coord_site, Msg::SubtxnAck { txn: g, from: site_id, ok: false });
                    self.invalidate_incompatible_subs(now, site_id);
                }
                ExecId::CompSub(_) => unreachable!("compensation ops never fail (they skip)"),
            },
        }
    }

    fn fire_udum(&mut self, ti: GlobalTxnId) {
        self.report.counters.inc("udum.fired");
        for s in self.sites.iter_mut().flatten() {
            s.unmark(ti);
        }
        self.udum.forget(ti);
    }

    fn resolve_deadlocks(&mut self, now: SimTime, site_id: SiteId) {
        loop {
            let Some(cycle) = self.sites[site_id.index()].as_mut().unwrap().find_deadlock() else {
                return;
            };
            // Victim preference: local < subtransaction < compensation
            // (compensations are the most expensive to redo, and must
            // eventually succeed anyway).
            let victim = cycle
                .iter()
                .copied()
                .min_by_key(|e| match e {
                    ExecId::Local(_) => 0,
                    ExecId::Sub(_) => 1,
                    ExecId::CompSub(_) => 2,
                })
                .expect("cycle non-empty");
            match victim {
                ExecId::Local(_) => {
                    self.report.counters.inc("deadlock.victims.local");
                    let hist = &mut self.hist;
                    let site = self.sites[site_id.index()].as_mut().unwrap();
                    let woken = site.abort_exec(victim, now, hist);
                    self.report.local_aborted += 1;
                    self.wake(now, site_id, woken);
                }
                ExecId::Sub(g) => {
                    self.report.counters.inc("deadlock.victims.sub");
                    let hist = &mut self.hist;
                    let site = self.sites[site_id.index()].as_mut().unwrap();
                    let woken = site.unilateral_abort(g, now, hist);
                    self.wake(now, site_id, woken);
                    let coord_site = self.txns[&g].coord_site;
                    self.send(now, site_id, coord_site, Msg::SubtxnAck { txn: g, from: site_id, ok: false });
                    self.invalidate_incompatible_subs(now, site_id);
                }
                ExecId::CompSub(g) => {
                    self.report.counters.inc("deadlock.victims.comp");
                    let site = self.sites[site_id.index()].as_mut().unwrap();
                    let woken = site.rollback_compensation(g, now);
                    self.persistence.retried(g, site_id);
                    self.wake(now, site_id, woken);
                    let delay = self.cfg.comp_retry_delay;
                    self.queue.schedule(now + delay, Event::CompRetry { txn: g, site: site_id });
                }
            }
        }
    }

    /// Distributed deadlock detection.
    ///
    /// A subtransaction that finished executing holds its locks until its
    /// global transaction votes, and the vote waits for *every* sibling
    /// subtransaction to ack — so a lock wait on a subtransaction is really
    /// a wait on the whole global transaction. Lifting each site's waits-for
    /// edges to transaction granularity (compensating subtransactions stay
    /// independent, per §3.2) exposes cross-site cycles that no local
    /// detector can see. The engine plays the role a real deployment gives
    /// to timeouts or a global deadlock detector; the victim's *blocked*
    /// subtransaction is aborted unilaterally at its site (autonomy), and
    /// the 2PC abort cleans up the siblings.
    fn resolve_global_deadlocks(&mut self, now: SimTime) {
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
        enum Node {
            G(GlobalTxnId),
            L(SiteId, ExecId),
            C(SiteId, GlobalTxnId),
        }
        loop {
            let mut edges: HashMap<Node, Vec<Node>> = HashMap::new();
            // Where each node has a blocked execution (for victim handling).
            let mut blocked_at: HashMap<Node, (SiteId, ExecId)> = HashMap::new();
            for (idx, site) in self.sites.iter().enumerate() {
                let Some(site) = site else { continue };
                let sid = SiteId(idx as u32);
                let lift = |e: ExecId| match e {
                    ExecId::Sub(g) => Node::G(g),
                    ExecId::Local(_) => Node::L(sid, e),
                    ExecId::CompSub(g) => Node::C(sid, g),
                };
                for (w, h) in site.waits_for_edges() {
                    let wn = lift(w);
                    let hn = lift(h);
                    if wn != hn {
                        edges.entry(wn).or_default().push(hn);
                        blocked_at.entry(wn).or_insert((sid, w));
                    }
                }
            }
            if edges.is_empty() {
                return;
            }
            let Some(cycle) = find_cycle(&edges) else { return };
            // Victim: prefer a local, else the youngest global on the cycle.
            let victim = cycle
                .iter()
                .copied()
                .min_by_key(|n| match n {
                    Node::L(..) => (0, 0),
                    Node::C(..) => (2, 0),
                    Node::G(g) => (1, u64::MAX - g.0),
                })
                .expect("cycle non-empty");
            let Some(&(sid, exec)) = blocked_at.get(&victim) else { return };
            self.report.counters.inc("deadlock.global");
            match exec {
                ExecId::Local(_) => {
                    let hist = &mut self.hist;
                    let site = self.sites[sid.index()].as_mut().unwrap();
                    let woken = site.abort_exec(exec, now, hist);
                    self.report.local_aborted += 1;
                    self.wake(now, sid, woken);
                }
                ExecId::Sub(g) => {
                    let hist = &mut self.hist;
                    let site = self.sites[sid.index()].as_mut().unwrap();
                    let woken = site.unilateral_abort(g, now, hist);
                    self.wake(now, sid, woken);
                    let coord_site = self.txns[&g].coord_site;
                    self.send(now, sid, coord_site, Msg::SubtxnAck { txn: g, from: sid, ok: false });
                }
                ExecId::CompSub(g) => {
                    let site = self.sites[sid.index()].as_mut().unwrap();
                    let woken = site.rollback_compensation(g, now);
                    self.persistence.retried(g, sid);
                    self.wake(now, sid, woken);
                    let delay = self.cfg.comp_retry_delay;
                    self.queue.schedule(now + delay, Event::CompRetry { txn: g, site: sid });
                }
            }
        }
    }

    /// A mark was just added at `site_id` (a roll-back or a completed
    /// compensation turned it *undone* with respect to some transaction).
    /// With the marking sets protected by the site's own strict 2PL, any
    /// still-running subtransaction admitted under the previous marks would
    /// now deadlock with the marking update — the resolution is to abort it
    /// before it touches data under the new marks. Without this, a blocked
    /// subtransaction could execute *after* a compensation it was never
    /// checked against, recreating exactly the regular cycles P1 exists to
    /// prevent.
    fn invalidate_incompatible_subs(&mut self, now: SimTime, site_id: SiteId) {
        let marking = self.marking();
        if marking == MarkingProtocol::None {
            return;
        }
        let running = self.sites[site_id.index()].as_ref().unwrap().running_subs();
        for g in running {
            let Some(gt) = self.txns.get(&g) else { continue };
            if gt.done || gt.coord.decision().is_some() {
                continue;
            }
            let ok = {
                let site = self.sites[site_id.index()].as_ref().unwrap();
                gt.tm.check(marking, site.marks()).is_ok()
            };
            if !ok {
                self.report.counters.inc("r1.mark_invalidations");
                let hist = &mut self.hist;
                let site = self.sites[site_id.index()].as_mut().unwrap();
                let woken = site.unilateral_abort(g, now, hist);
                self.wake(now, site_id, woken);
                let coord_site = self.txns[&g].coord_site;
                self.send(now, site_id, coord_site, Msg::SubtxnAck { txn: g, from: site_id, ok: false });
            }
        }
    }

    fn start_compensation(&mut self, now: SimTime, txn: GlobalTxnId, site_id: SiteId) {
        let plan = self.pending_comp[&(txn, site_id)].clone();
        let hist = &mut self.hist;
        let site = self.sites[site_id.index()].as_mut().unwrap();
        site.begin_compensation(txn, &plan, now, hist);
        if plan.is_empty() {
            let woken = site.finish_compensation(txn, now, hist);
            self.wake(now, site_id, woken);
            self.pending_comp.remove(&(txn, site_id));
            self.persistence.completed(txn, site_id);
            self.invalidate_incompatible_subs(now, site_id);
        } else {
            let service = self.cfg.op_service_time;
            self.queue
                .schedule(now + service, Event::OpDone { site: site_id, exec: ExecId::CompSub(txn) });
        }
    }

    fn resume_compensation(&mut self, now: SimTime, txn: GlobalTxnId, site_id: SiteId) {
        if !self.site_up(site_id) || !self.pending_comp.contains_key(&(txn, site_id)) {
            return;
        }
        self.start_compensation(now, txn, site_id);
    }

    fn on_crash(&mut self, site: SiteId) {
        if let Some(s) = self.sites[site.index()].take() {
            self.crashed_wals.insert(site, s.crash());
        }
    }

    fn on_recover(&mut self, now: SimTime, site: SiteId) {
        let Some(wal) = self.crashed_wals.remove(&site) else { return };
        let site_cfg = SiteConfig { compensation_model: self.cfg.compensation_model };
        self.sites[site.index()] = Some(Site::recover(site, site_cfg, wal));
        // Coordinators hosted here resume: resend logged decisions, presume
        // abort for undecided transactions.
        let to_recover: Vec<GlobalTxnId> = self
            .txns
            .iter()
            .filter(|(_, g)| g.coord_site == site && !g.done)
            .map(|(&id, _)| id)
            .collect();
        for txn in to_recover {
            if let Some(action) = self.txns.get_mut(&txn).unwrap().coord.recover() {
                self.coord_action(now, txn, action);
            }
        }
        // Recovered in-doubt participants (prepared, or locally committed
        // with the decision lost in the crash) resolve their fate through
        // the termination protocol when it is enabled.
        if let Some(t) = self.cfg.termination_timeout {
            let site_ref = self.sites[site.index()].as_ref().unwrap();
            let mut in_doubt = site_ref.prepared_subs();
            in_doubt.extend(site_ref.pending_local_commits());
            for txn in in_doubt {
                if self.txns.contains_key(&txn) {
                    self.queue.schedule(now + t, Event::TermTimeout { txn, site });
                }
            }
        }
    }
}
