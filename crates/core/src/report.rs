//! Run reports: every quantity the experiments print.

use o2pc_common::stats::CounterSet;
use o2pc_common::Histogram;
use o2pc_common::{History, SimTime};
use o2pc_locking::LockStats;

/// Everything measured during one engine run.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Virtual time at which the run quiesced.
    pub end_time: SimTime,
    /// Global transactions committed / aborted.
    pub global_committed: u64,
    /// Global transactions aborted (any cause: no-vote, autonomy, R1, deadlock).
    pub global_aborted: u64,
    /// Local transactions committed / aborted.
    pub local_committed: u64,
    /// Local transactions aborted (deadlock victims, semantic failures).
    pub local_aborted: u64,
    /// Commit latency of global transactions (µs, arrival → completion).
    pub global_latency: Histogram,
    /// Commit latency of independent local transactions (µs). The
    /// multidatabase-autonomy experiment (E9) watches how global traffic
    /// under each protocol inflates this.
    pub local_latency: Histogram,
    /// Merged lock-manager statistics of all sites (exclusive/shared hold
    /// times, wait times, deadlocks).
    pub locks: LockStats,
    /// Message counts by type (`msg.*`) plus engine counters:
    /// `r1.checks`, `r1.rejections`, `r1.retries`, `r1.forced_aborts`,
    /// `r1.revalidation_failures`, `comp.plans`, `comp.retries`,
    /// `comp.skipped_ops`, `udum.fired`, `deadlock.victims.*`,
    /// `vote.autonomy_aborts`, `net.dropped`.
    pub counters: CounterSet,
    /// Compensating subtransactions completed.
    pub compensations_completed: u64,
    /// Outstanding compensations at end of run (must be 0 at quiescence:
    /// persistence of compensation).
    pub compensations_pending: usize,
    /// The execution history (empty when `record_history` was off).
    pub history: History,
    /// History events recorded (counted even when `record_history` is off).
    pub history_events: u64,
    /// Order-sensitive digest over the event stream, filled in when
    /// `record_history` is *off* (determinism fingerprints for perf runs
    /// that skip the archive). With the archive kept it stays 0 — call
    /// `history.digest()` instead; both fold the same FNV stream.
    pub history_digest: u64,
    /// Sum of all data values across all sites at end of run (workload
    /// invariant checks, e.g. conservation of money).
    pub total_value: i64,
    /// Events processed (run-away detection in sweeps).
    pub events_processed: u64,
}

impl RunReport {
    /// Committed global transactions per virtual second.
    pub fn throughput(&self) -> f64 {
        let secs = self.end_time.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.global_committed as f64 / secs
        }
    }

    /// Fraction of terminated global transactions that aborted.
    pub fn abort_rate(&self) -> f64 {
        let total = self.global_committed + self.global_aborted;
        if total == 0 {
            0.0
        } else {
            self.global_aborted as f64 / total as f64
        }
    }

    /// 2PC messages per terminated global transaction.
    pub fn msgs_2pc_per_txn(&self) -> f64 {
        let total = (self.global_committed + self.global_aborted).max(1);
        let m = self.counters.get("msg.vote_req")
            + self.counters.get("msg.vote")
            + self.counters.get("msg.decision")
            + self.counters.get("msg.decision_ack");
        m as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let mut r = RunReport {
            end_time: SimTime(2_000_000),
            global_committed: 10,
            global_aborted: 10,
            ..Default::default()
        };
        assert_eq!(r.throughput(), 5.0);
        assert_eq!(r.abort_rate(), 0.5);
        r.counters.add("msg.vote_req", 40);
        r.counters.add("msg.vote", 40);
        r.counters.add("msg.decision", 40);
        r.counters.add("msg.decision_ack", 40);
        assert_eq!(r.msgs_2pc_per_txn(), 8.0);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = RunReport::default();
        assert_eq!(r.throughput(), 0.0);
        assert_eq!(r.abort_rate(), 0.0);
        assert_eq!(r.msgs_2pc_per_txn(), 0.0);
    }
}
