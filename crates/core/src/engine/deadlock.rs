//! Local and lifted (cross-site) deadlock detection and victim resolution.

use super::{Engine, TimerEvent};
use crate::msg::Msg;
use o2pc_common::FastHashMap;
use o2pc_common::{ExecId, GlobalTxnId, SimTime, SiteId};
use o2pc_runtime::Runtime;

/// Find one cycle in a directed graph given as an adjacency map.
fn find_cycle<N: Copy + Eq + std::hash::Hash + Ord>(
    adj: &FastHashMap<N, Vec<N>>,
) -> Option<Vec<N>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Colour {
        Grey,
        Black,
    }
    let mut colour: FastHashMap<N, Colour> = FastHashMap::default();
    let mut roots: Vec<N> = adj.keys().copied().collect();
    roots.sort();
    for root in roots {
        if colour.contains_key(&root) {
            continue;
        }
        let mut stack: Vec<(N, usize)> = vec![(root, 0)];
        let mut path: Vec<N> = vec![root];
        colour.insert(root, Colour::Grey);
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let succs = adj.get(&node).map(Vec::as_slice).unwrap_or(&[]);
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                match colour.get(&s) {
                    Some(Colour::Grey) => {
                        let pos = path.iter().position(|&n| n == s).unwrap();
                        return Some(path[pos..].to_vec());
                    }
                    Some(Colour::Black) => {}
                    None => {
                        colour.insert(s, Colour::Grey);
                        stack.push((s, 0));
                        path.push(s);
                    }
                }
            } else {
                colour.insert(node, Colour::Black);
                stack.pop();
                path.pop();
            }
        }
    }
    None
}

impl<R: Runtime<TimerEvent, Msg>> Engine<R> {
    pub(crate) fn resolve_deadlocks(&mut self, now: SimTime, site_id: SiteId) {
        loop {
            let Some(cycle) = self.sites[site_id.index()]
                .as_mut()
                .unwrap()
                .find_deadlock()
            else {
                return;
            };
            // Victim preference: local < subtransaction < compensation
            // (compensations are the most expensive to redo, and must
            // eventually succeed anyway).
            let victim = cycle
                .iter()
                .copied()
                .min_by_key(|e| match e {
                    ExecId::Local(_) => 0,
                    ExecId::Sub(_) => 1,
                    ExecId::CompSub(_) => 2,
                })
                .expect("cycle non-empty");
            match victim {
                ExecId::Local(_) => {
                    self.report.counters.inc("deadlock.victims.local");
                    let hist = &mut self.hist;
                    let site = self.sites[site_id.index()].as_mut().unwrap();
                    let woken = site.abort_exec(victim, now, hist);
                    self.report.local_aborted += 1;
                    self.wake(now, site_id, woken);
                }
                ExecId::Sub(g) => {
                    self.report.counters.inc("deadlock.victims.sub");
                    let hist = &mut self.hist;
                    let site = self.sites[site_id.index()].as_mut().unwrap();
                    let woken = site.unilateral_abort(g, now, hist);
                    self.wake(now, site_id, woken);
                    let coord_site = self.txns[&g].coord_site;
                    self.send(
                        now,
                        site_id,
                        coord_site,
                        Msg::SubtxnAck {
                            txn: g,
                            from: site_id,
                            ok: false,
                        },
                    );
                    self.invalidate_incompatible_subs(now, site_id);
                }
                ExecId::CompSub(g) => {
                    self.report.counters.inc("deadlock.victims.comp");
                    let site = self.sites[site_id.index()].as_mut().unwrap();
                    let woken = site.rollback_compensation(g, now);
                    self.persistence.retried(g, site_id);
                    self.wake(now, site_id, woken);
                    let delay = self.cfg.comp_retry_delay;
                    self.rt.schedule(
                        now + delay,
                        TimerEvent::CompRetry {
                            txn: g,
                            site: site_id,
                        },
                    );
                }
            }
        }
    }

    /// Distributed deadlock detection.
    ///
    /// A subtransaction that finished executing holds its locks until its
    /// global transaction votes, and the vote waits for *every* sibling
    /// subtransaction to ack — so a lock wait on a subtransaction is really
    /// a wait on the whole global transaction. Lifting each site's waits-for
    /// edges to transaction granularity (compensating subtransactions stay
    /// independent, per §3.2) exposes cross-site cycles that no local
    /// detector can see. The engine plays the role a real deployment gives
    /// to timeouts or a global deadlock detector; the victim's *blocked*
    /// subtransaction is aborted unilaterally at its site (autonomy), and
    /// the 2PC abort cleans up the siblings.
    pub(crate) fn resolve_global_deadlocks(&mut self, now: SimTime) {
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
        enum Node {
            G(GlobalTxnId),
            L(SiteId, ExecId),
            C(SiteId, GlobalTxnId),
        }
        loop {
            let mut edges: FastHashMap<Node, Vec<Node>> = FastHashMap::default();
            // Where each node has a blocked execution (for victim handling).
            let mut blocked_at: FastHashMap<Node, (SiteId, ExecId)> = FastHashMap::default();
            for (idx, site) in self.sites.iter().enumerate() {
                let Some(site) = site else { continue };
                let sid = SiteId(idx as u32);
                let lift = |e: ExecId| match e {
                    ExecId::Sub(g) => Node::G(g),
                    ExecId::Local(_) => Node::L(sid, e),
                    ExecId::CompSub(g) => Node::C(sid, g),
                };
                for (w, h) in site.waits_for_edges() {
                    let wn = lift(w);
                    let hn = lift(h);
                    if wn != hn {
                        edges.entry(wn).or_default().push(hn);
                        blocked_at.entry(wn).or_insert((sid, w));
                    }
                }
            }
            if edges.is_empty() {
                return;
            }
            let Some(cycle) = find_cycle(&edges) else {
                return;
            };
            // Victim: prefer a local, else the youngest global on the cycle.
            let victim = cycle
                .iter()
                .copied()
                .min_by_key(|n| match n {
                    Node::L(..) => (0, 0),
                    Node::C(..) => (2, 0),
                    Node::G(g) => (1, u64::MAX - g.0),
                })
                .expect("cycle non-empty");
            let Some(&(sid, exec)) = blocked_at.get(&victim) else {
                return;
            };
            self.report.counters.inc("deadlock.global");
            match exec {
                ExecId::Local(_) => {
                    let hist = &mut self.hist;
                    let site = self.sites[sid.index()].as_mut().unwrap();
                    let woken = site.abort_exec(exec, now, hist);
                    self.report.local_aborted += 1;
                    self.wake(now, sid, woken);
                }
                ExecId::Sub(g) => {
                    let hist = &mut self.hist;
                    let site = self.sites[sid.index()].as_mut().unwrap();
                    let woken = site.unilateral_abort(g, now, hist);
                    self.wake(now, sid, woken);
                    let coord_site = self.txns[&g].coord_site;
                    self.send(
                        now,
                        sid,
                        coord_site,
                        Msg::SubtxnAck {
                            txn: g,
                            from: sid,
                            ok: false,
                        },
                    );
                }
                ExecId::CompSub(g) => {
                    let site = self.sites[sid.index()].as_mut().unwrap();
                    let woken = site.rollback_compensation(g, now);
                    self.persistence.retried(g, sid);
                    self.wake(now, sid, woken);
                    let delay = self.cfg.comp_retry_delay;
                    self.rt
                        .schedule(now + delay, TimerEvent::CompRetry { txn: g, site: sid });
                }
            }
        }
    }
}
