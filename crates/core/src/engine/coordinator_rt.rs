//! Coordinator-side protocol logic: arrival, vote collection, decisions,
//! and coordinator crash/recovery.

use super::{Engine, GTxn, TimerEvent};
use crate::config::TxnRequest;
use crate::msg::Msg;
use o2pc_common::{ExecId, GlobalTxnId, HistorySink, SimTime, SiteId};
use o2pc_marking::TransMarks;
use o2pc_protocol::{CoordAction, TwoPhaseCoordinator};
use o2pc_runtime::Runtime;
use o2pc_site::{Site, SiteConfig};
use std::collections::BTreeSet;

impl<R: Runtime<TimerEvent, Msg>> Engine<R> {
    pub(crate) fn on_arrive(&mut self, now: SimTime, scheduled: SimTime, req: TxnRequest) {
        match req {
            TxnRequest::Local { site, ops } => {
                if !self.site_up(site) {
                    self.report.local_aborted += 1;
                    return;
                }
                let hist = &mut self.hist;
                let s = self.sites[site.index()].as_mut().unwrap();
                let exec = ExecId::Local(s.next_local_id());
                s.begin(exec, ops, now, hist);
                // Latency clocks from the client's submit time, so on a
                // wall-clock runtime a late-firing arrival timer shows up
                // as latency instead of silently vanishing.
                self.local_starts.insert(exec, scheduled);
                let service = self.cfg.op_service_time;
                self.rt
                    .schedule(now + service, TimerEvent::OpDone { site, exec });
            }
            TxnRequest::Global { subs, coordinator } => {
                if let Some(window) = self.cfg.admission_window {
                    let inflight = self.admitted.entry(coordinator).or_default();
                    if *inflight >= window {
                        // Coordinator at capacity: park the arrival. It is
                        // admitted (FIFO) when a completion frees a slot,
                        // still carrying its original submit time.
                        self.admit_q
                            .entry(coordinator)
                            .or_default()
                            .push_back(super::PendingAdmission { scheduled, subs });
                        self.report.counters.inc("txn.admit_queued");
                        return;
                    }
                    *inflight += 1;
                }
                self.admit_global(now, scheduled, subs, coordinator);
            }
        }
    }

    /// Start a global transaction: build its coordinator, fan out the
    /// subtransaction spawns, arm the progress timeout.
    fn admit_global(
        &mut self,
        now: SimTime,
        scheduled: SimTime,
        subs: Vec<(SiteId, Vec<o2pc_common::Op>)>,
        coordinator: SiteId,
    ) {
        let id = self.idgen.next_id();
        let participants: Vec<SiteId> = subs.iter().map(|&(s, _)| s).collect();
        debug_assert_eq!(
            participants.iter().collect::<BTreeSet<_>>().len(),
            participants.len(),
            "duplicate participant sites"
        );
        let coord = TwoPhaseCoordinator::new(id, participants);
        let gtxn = GTxn {
            coord_site: coordinator,
            coord,
            subs: subs.iter().cloned().collect(),
            tm: TransMarks::new(),
            start: scheduled,
            spawn_retries: Default::default(),
            began: BTreeSet::new(),
            done: false,
            retx_armed: false,
        };
        self.txns.insert(id, gtxn);
        for (site, ops) in subs {
            self.send(now, coordinator, site, Msg::SpawnSubtxn { txn: id, ops });
        }
        if let Some(t) = self.cfg.vote_timeout {
            // Overall progress timeout: covers a participant that
            // never acks (down site) as well as lost votes.
            self.rt
                .schedule(now + t, TimerEvent::VoteTimeout { txn: id });
        }
    }

    /// Completion-driven admission: a finished transaction frees one slot at
    /// its coordinator site; the oldest parked arrival (if any) takes it.
    fn refill_admission(&mut self, now: SimTime, site: SiteId) {
        if self.cfg.admission_window.is_none() {
            return;
        }
        if let Some(c) = self.admitted.get_mut(&site) {
            *c = c.saturating_sub(1);
        }
        let Some(next) = self.admit_q.get_mut(&site).and_then(|q| q.pop_front()) else {
            return;
        };
        *self.admitted.entry(site).or_default() += 1;
        self.admit_global(now, next.scheduled, next.subs, site);
    }

    pub(crate) fn coord_action(&mut self, now: SimTime, txn: GlobalTxnId, action: CoordAction) {
        let Some(g) = self.txns.get(&txn) else {
            return; // retired (garbage collected): nothing left to drive
        };
        let coord_site = g.coord_site;
        match action {
            CoordAction::SendVoteReq(sites) => {
                for s in sites {
                    self.send(now, coord_site, s, Msg::VoteReq { txn });
                }
                if let Some(t) = self.cfg.vote_timeout {
                    self.rt.schedule(now + t, TimerEvent::VoteTimeout { txn });
                }
                self.arm_retransmit(now, txn);
            }
            CoordAction::SendDecision(commit, sites) => {
                if !commit {
                    // Piggy-backed on the DECISION messages: the aborted
                    // transaction's *actual* execution-site set, enabling
                    // UDUM1 detection at the sites (no extra messages).
                    let began = self.txns[&txn].began.clone();
                    if !began.is_empty() {
                        self.udum.register_aborted(txn, began);
                    }
                }
                for s in sites {
                    self.send(now, coord_site, s, Msg::Decision { txn, commit });
                }
                self.arm_retransmit(now, txn);
            }
            CoordAction::Complete(commit) => {
                let g = self.txns.get_mut(&txn).expect("txn exists");
                if g.done {
                    return;
                }
                g.done = true;
                if commit {
                    self.report.global_committed += 1;
                } else {
                    self.report.global_aborted += 1;
                }
                self.report
                    .global_latency
                    .record((now - g.start).as_micros());
                self.try_gc(txn);
                self.refill_admission(now, coord_site);
            }
        }
    }

    pub(crate) fn on_vote_timeout(&mut self, now: SimTime, txn: GlobalTxnId) {
        let Some(g) = self.txns.get(&txn) else {
            return; // stale timer: the transaction has been retired
        };
        if g.done || !self.site_up(g.coord_site) {
            return; // finished, or a crashed coordinator times out nothing
        }
        let action = self.txns.get_mut(&txn).unwrap().coord.on_timeout();
        if let Some(action) = action {
            self.coord_action(now, txn, action);
        }
    }

    /// One link of the capped-exponential-backoff retransmission chain: if
    /// the coordinator is still waiting on votes or decision acks, resend to
    /// exactly the missing participants and schedule the next check.
    pub(crate) fn on_retransmit(&mut self, now: SimTime, txn: GlobalTxnId, attempt: u32) {
        let Some(base) = self.cfg.retransmit_base else {
            return;
        };
        let cap = self.cfg.retransmit_cap;
        let (done, coord_site) = match self.txns.get(&txn) {
            Some(g) => (g.done, g.coord_site),
            None => return, // stale timer: the transaction has been retired
        };
        if done {
            self.txns.get_mut(&txn).unwrap().retx_armed = false;
            return;
        }
        if !self.site_up(coord_site) {
            // The coordinator is down; keep the chain alive at the capped
            // interval so retransmission resumes after recovery (recovery
            // itself also resends, making this a cheap safety net).
            self.rt
                .schedule(now + cap, TimerEvent::Retransmit { txn, attempt });
            return;
        }
        match self.txns[&txn].coord.retransmit() {
            Some(action) => {
                self.report.counters.inc("msg.retransmit");
                self.coord_action_resend(now, txn, action);
                let exp = base.saturating_mul(1u64 << (attempt + 1).min(16));
                let delay = if exp > cap { cap } else { exp };
                self.rt.schedule(
                    now + delay,
                    TimerEvent::Retransmit {
                        txn,
                        attempt: attempt + 1,
                    },
                );
            }
            None => {
                // Nothing outstanding: the chain ends. `arm_retransmit`
                // starts a fresh one if a later phase sends again.
                if let Some(g) = self.txns.get_mut(&txn) {
                    g.retx_armed = false;
                }
            }
        }
    }

    /// Resend a `retransmit()` action without re-running decision side
    /// effects (UDUM registration, timers) or re-arming the chain.
    fn coord_action_resend(&mut self, now: SimTime, txn: GlobalTxnId, action: CoordAction) {
        let Some(g) = self.txns.get(&txn) else {
            return;
        };
        let coord_site = g.coord_site;
        match action {
            CoordAction::SendVoteReq(sites) => {
                for s in sites {
                    self.send(now, coord_site, s, Msg::VoteReq { txn });
                }
            }
            CoordAction::SendDecision(commit, sites) => {
                for s in sites {
                    self.send(now, coord_site, s, Msg::Decision { txn, commit });
                }
            }
            CoordAction::Complete(_) => unreachable!("retransmit never completes"),
        }
    }

    /// Retire a finished transaction once nothing in the system can still
    /// reference it: the decision is acked everywhere (`done`), no
    /// compensation or termination round is pending at any participant, and
    /// every participant is up and unmarked (an aborted transaction stays
    /// until UDUM1 clears its markings — rule R3 is the *correctness* gate
    /// for forgetting, so it is also the memory gate). Crashed participants
    /// defer GC to their recovery sweep.
    pub(crate) fn try_gc(&mut self, txn: GlobalTxnId) {
        let Some(g) = self.txns.get(&txn) else {
            return;
        };
        if !g.done {
            return;
        }
        let participants: Vec<SiteId> = g.coord.participants().to_vec();
        for &p in &participants {
            if self.pending_comp.contains_key(&(txn, p))
                || self.term_rounds.contains_key(&(txn, p))
                || self.term_armed.contains(&(txn, p))
            {
                return;
            }
            let Some(site) = self.sites[p.index()].as_ref() else {
                return;
            };
            if site.mark_of(txn) != o2pc_marking::MarkState::Unmarked {
                return;
            }
        }
        if !self.udum.missing_sites(txn).is_empty() {
            return;
        }
        for &p in &participants {
            if let Some(site) = self.sites[p.index()].as_mut() {
                site.forget(txn);
            }
        }
        self.txns.remove(&txn);
        self.report.counters.inc("txn.gc");
    }

    /// GC sweep over every finished transaction (used after recovery, when
    /// a crashed participant was the last thing blocking retirement).
    pub(crate) fn gc_sweep(&mut self) {
        let done: Vec<GlobalTxnId> = self
            .txns
            .iter()
            .filter(|(_, g)| g.done)
            .map(|(&id, _)| id)
            .collect();
        for txn in done {
            self.try_gc(txn);
        }
    }

    pub(crate) fn on_crash(&mut self, now: SimTime, site: SiteId) {
        if let Some(s) = self.sites[site.index()].take() {
            // Promises parked on unflushed records die with the site — the
            // records backing them never became durable, and the crash
            // transform below discards them from the log too.
            self.wal_parked.remove(&site);
            self.flush_armed.remove(&site);
            let seq_floor = s.local_seq_watermark();
            // Remember which records each compensation owns: the crash
            // transform truncates a durable WAL to its watermark, and any
            // compensation whose records ride the lost tail was undone by
            // that loss (its commit record is the exec's last, so a lost
            // record implies no durable commit) and will re-execute under
            // the same id. The history must void its pre-crash accesses,
            // or the audit would merge two physical executions into one
            // node and see cycles that never existed on any disk.
            let comp_of = |rec: &o2pc_storage::LogRecord| -> Option<GlobalTxnId> {
                use o2pc_common::ExecId;
                use o2pc_storage::LogRecord as LR;
                let exec = match rec {
                    LR::Begin(e) | LR::Commit(e) | LR::Abort(e) | LR::Prepared(e) => e,
                    LR::Update { exec, .. } => exec,
                    LR::LocalCommit { exec, .. } => exec,
                    LR::Outcome { .. } | LR::Checkpoint { .. } => return None,
                };
                match exec {
                    ExecId::CompSub(g) => Some(*g),
                    _ => None,
                }
            };
            // Only a durable WAL can lose a tail in the crash transform; the
            // in-memory backend keeps every record, so the voided set is
            // empty by construction and the full-log scan would be pure
            // overhead on the (hot) simulated-crash path.
            let pre_comps: Vec<Option<GlobalTxnId>> = if s.wal_is_durable() {
                s.wal_records().iter().map(comp_of).collect()
            } else {
                Vec::new()
            };
            let wal = s.crash();
            let voided: std::collections::BTreeSet<GlobalTxnId> = pre_comps
                .get(wal.len()..)
                .unwrap_or(&[])
                .iter()
                .flatten()
                .copied()
                .collect();
            for g in voided {
                self.hist.record(o2pc_common::HistEvent {
                    site,
                    txn: o2pc_common::TxnId::Compensation(g),
                    kind: o2pc_common::HistEventKind::RolledBack,
                    time: now,
                });
            }
            self.crashed_wals.insert(site, (wal, seq_floor));
        }
    }

    pub(crate) fn on_recover(&mut self, now: SimTime, site: SiteId) {
        let Some((wal, seq_floor)) = self.crashed_wals.remove(&site) else {
            return;
        };
        let site_cfg = SiteConfig {
            compensation_model: self.cfg.compensation_model,
        };
        let mut recovered_site = Site::recover(site, site_cfg, wal);
        // Durable crashes can truncate the log below ids already issued;
        // the engine's id-range reservation keeps the counter monotone.
        recovered_site.reserve_local_seq(seq_floor);
        // The WAL resurrects every logged decision (peers in doubt may
        // still ask), but decisions for transactions GC already retired
        // can never be queried again — drop them so recovery does not
        // grow the decided map without bound across crash cycles.
        recovered_site.retain_decisions(|g| self.txns.contains_key(&g));
        // Executions that died in-flight with the crash were rolled back
        // from the log; close them out in the history, else the SG audit
        // would treat their undone writes as observable accesses.
        for exec in recovered_site.take_recovery_rollbacks() {
            self.hist.record(o2pc_common::HistEvent {
                site,
                txn: exec.txn_id(),
                kind: o2pc_common::HistEventKind::RolledBack,
                time: now,
            });
        }
        self.sites[site.index()] = Some(recovered_site);
        // Coordinators hosted here resume: resend logged decisions, presume
        // abort for undecided transactions.
        let to_recover: Vec<GlobalTxnId> = self
            .txns
            .iter()
            .filter(|(_, g)| g.coord_site == site && !g.done)
            .map(|(&id, _)| id)
            .collect();
        let mut to_recover = to_recover;
        to_recover.sort_unstable(); // canonical resend order, independent of map iteration
        for txn in to_recover {
            if let Some(action) = self.txns.get_mut(&txn).unwrap().coord.recover() {
                self.coord_action(now, txn, action);
            }
        }
        // Recovered in-doubt participants (prepared, or locally committed
        // with the decision lost in the crash) resolve their fate through
        // the termination protocol when it is enabled.
        if self.cfg.termination_timeout.is_some() {
            let site_ref = self.sites[site.index()].as_ref().unwrap();
            let mut in_doubt = site_ref.prepared_subs();
            in_doubt.extend(site_ref.pending_local_commits());
            for txn in in_doubt {
                if self.txns.contains_key(&txn) {
                    self.arm_term_timer(now, txn, site);
                }
            }
        }
        // This site may have been the last thing blocking retirement of
        // finished transactions (GC defers while a participant is down).
        self.gc_sweep();
    }
}
