//! Coordinator-side protocol logic: arrival, vote collection, decisions,
//! and coordinator crash/recovery.

use super::{Engine, GTxn, TimerEvent};
use crate::config::TxnRequest;
use crate::msg::Msg;
use o2pc_common::{ExecId, GlobalTxnId, SimTime, SiteId};
use o2pc_marking::TransMarks;
use o2pc_protocol::{CoordAction, TwoPhaseCoordinator};
use o2pc_runtime::Runtime;
use o2pc_site::{Site, SiteConfig};
use std::collections::{BTreeSet, HashMap};

impl<R: Runtime<TimerEvent, Msg>> Engine<R> {
    pub(crate) fn on_arrive(&mut self, now: SimTime, req: TxnRequest) {
        match req {
            TxnRequest::Local { site, ops } => {
                if !self.site_up(site) {
                    self.report.local_aborted += 1;
                    return;
                }
                let hist = &mut self.hist;
                let s = self.sites[site.index()].as_mut().unwrap();
                let exec = ExecId::Local(s.next_local_id());
                s.begin(exec, ops, now, hist);
                self.local_starts.insert(exec, now);
                let service = self.cfg.op_service_time;
                self.rt
                    .schedule(now + service, TimerEvent::OpDone { site, exec });
            }
            TxnRequest::Global { subs, coordinator } => {
                let id = self.idgen.next_id();
                let participants: Vec<SiteId> = subs.iter().map(|&(s, _)| s).collect();
                debug_assert_eq!(
                    participants.iter().collect::<BTreeSet<_>>().len(),
                    participants.len(),
                    "duplicate participant sites"
                );
                let coord = TwoPhaseCoordinator::new(id, participants);
                let gtxn = GTxn {
                    coord_site: coordinator,
                    coord,
                    subs: subs.iter().cloned().collect(),
                    tm: TransMarks::new(),
                    start: now,
                    spawn_retries: HashMap::new(),
                    began: BTreeSet::new(),
                    done: false,
                };
                self.txns.insert(id, gtxn);
                for (site, ops) in subs {
                    self.send(now, coordinator, site, Msg::SpawnSubtxn { txn: id, ops });
                }
                if let Some(t) = self.cfg.vote_timeout {
                    // Overall progress timeout: covers a participant that
                    // never acks (down site) as well as lost votes.
                    self.rt
                        .schedule(now + t, TimerEvent::VoteTimeout { txn: id });
                }
            }
        }
    }

    pub(crate) fn coord_action(&mut self, now: SimTime, txn: GlobalTxnId, action: CoordAction) {
        let coord_site = self.txns[&txn].coord_site;
        match action {
            CoordAction::SendVoteReq(sites) => {
                for s in sites {
                    self.send(now, coord_site, s, Msg::VoteReq { txn });
                }
                if let Some(t) = self.cfg.vote_timeout {
                    self.rt.schedule(now + t, TimerEvent::VoteTimeout { txn });
                }
            }
            CoordAction::SendDecision(commit, sites) => {
                if !commit {
                    // Piggy-backed on the DECISION messages: the aborted
                    // transaction's *actual* execution-site set, enabling
                    // UDUM1 detection at the sites (no extra messages).
                    let began = self.txns[&txn].began.clone();
                    self.udum.register_aborted(txn, began);
                }
                for s in sites {
                    self.send(now, coord_site, s, Msg::Decision { txn, commit });
                }
            }
            CoordAction::Complete(commit) => {
                let g = self.txns.get_mut(&txn).expect("txn exists");
                if g.done {
                    return;
                }
                g.done = true;
                if commit {
                    self.report.global_committed += 1;
                } else {
                    self.report.global_aborted += 1;
                }
                self.report
                    .global_latency
                    .record((now - g.start).as_micros());
            }
        }
    }

    pub(crate) fn on_vote_timeout(&mut self, now: SimTime, txn: GlobalTxnId) {
        if !self.site_up(self.txns[&txn].coord_site) {
            return; // a crashed coordinator times out nothing
        }
        let Some(g) = self.txns.get_mut(&txn) else {
            return;
        };
        if g.done {
            return;
        }
        if let Some(action) = g.coord.on_timeout() {
            self.coord_action(now, txn, action);
        }
    }

    pub(crate) fn on_crash(&mut self, site: SiteId) {
        if let Some(s) = self.sites[site.index()].take() {
            self.crashed_wals.insert(site, s.crash());
        }
    }

    pub(crate) fn on_recover(&mut self, now: SimTime, site: SiteId) {
        let Some(wal) = self.crashed_wals.remove(&site) else {
            return;
        };
        let site_cfg = SiteConfig {
            compensation_model: self.cfg.compensation_model,
        };
        self.sites[site.index()] = Some(Site::recover(site, site_cfg, wal));
        // Coordinators hosted here resume: resend logged decisions, presume
        // abort for undecided transactions.
        let to_recover: Vec<GlobalTxnId> = self
            .txns
            .iter()
            .filter(|(_, g)| g.coord_site == site && !g.done)
            .map(|(&id, _)| id)
            .collect();
        for txn in to_recover {
            if let Some(action) = self.txns.get_mut(&txn).unwrap().coord.recover() {
                self.coord_action(now, txn, action);
            }
        }
        // Recovered in-doubt participants (prepared, or locally committed
        // with the decision lost in the crash) resolve their fate through
        // the termination protocol when it is enabled.
        if let Some(t) = self.cfg.termination_timeout {
            let site_ref = self.sites[site.index()].as_ref().unwrap();
            let mut in_doubt = site_ref.prepared_subs();
            in_doubt.extend(site_ref.pending_local_commits());
            for txn in in_doubt {
                if self.txns.contains_key(&txn) {
                    self.rt
                        .schedule(now + t, TimerEvent::TermTimeout { txn, site });
                }
            }
        }
    }
}
