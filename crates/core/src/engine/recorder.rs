//! Pluggable history recording for the engine's hot path.
//!
//! Every access and lifecycle transition a site emits flows through one
//! [`Recorder`]. What happens to the event is configuration, not code:
//!
//! * the [`CountingSink`] always runs — constant memory, no allocation —
//!   so every run (even with `record_history` off) ends with an event
//!   count and an order-sensitive digest for determinism checks;
//! * the archival [`History`] is kept only when
//!   `SystemConfig::record_history` is set (the default), for post-hoc
//!   serialization-graph audits and experiment plots;
//! * the [`IncrementalSg`] is maintained only when
//!   `SystemConfig::live_audit_graph` is set: it folds each event straight
//!   into the exposed serialization graphs, so an oracle can audit the run
//!   without replaying the whole history through the batch builder.

use o2pc_common::{CountingSink, HistEvent, History, HistorySink};
use o2pc_sgraph::IncrementalSg;

/// The engine's history sink: counting always, archival and live graph
/// maintenance by configuration.
#[derive(Clone, Debug)]
pub(crate) struct Recorder {
    /// Full event archive (`None` when `record_history` is off).
    pub(crate) history: Option<History>,
    /// Counter + digest, fed only when the archive is *not* kept (the
    /// archive can answer both on demand; folding the digest on every
    /// event would tax the hot path twice).
    pub(crate) counting: CountingSink,
    /// Incrementally-maintained exposed serialization graphs (`None` when
    /// `live_audit_graph` is off).
    pub(crate) live_sg: Option<IncrementalSg>,
}

impl Recorder {
    pub(crate) fn new(record_history: bool, live_audit_graph: bool) -> Self {
        Recorder {
            history: record_history.then(History::new),
            counting: CountingSink::new(),
            live_sg: live_audit_graph.then(IncrementalSg::new_exposed),
        }
    }
}

impl HistorySink for Recorder {
    fn record(&mut self, ev: HistEvent) {
        if let Some(sg) = &mut self.live_sg {
            sg.observe(ev);
        }
        match &mut self.history {
            Some(h) => h.push(ev),
            None => self.counting.record(ev),
        }
    }
}
