//! Participant-side protocol logic: message handling, admission (rule R1),
//! operation execution, compensation, and cooperative termination.

use super::{Engine, TimerEvent};
use crate::msg::Msg;
use o2pc_common::{ExecId, GlobalTxnId, SimTime, SiteId};
use o2pc_marking::MarkingProtocol;
use o2pc_protocol::TerminationOutcome;
use o2pc_runtime::Runtime;
use o2pc_site::{LockPolicy, OpResult};

impl<R: Runtime<TimerEvent, Msg>> Engine<R> {
    pub(crate) fn on_deliver(&mut self, now: SimTime, to: SiteId, msg: Msg) {
        if !self.site_up(to) {
            return; // message to a crashed site is lost
        }
        match msg {
            Msg::SpawnSubtxn { txn, .. } => self.try_spawn(now, txn, to),
            Msg::SubtxnAck { txn, from, ok } => {
                let Some(g) = self.txns.get_mut(&txn) else {
                    return;
                };
                if g.done {
                    return;
                }
                if let Some(action) = g.coord.on_subtxn_ack(from, ok) {
                    self.coord_action(now, txn, action);
                }
            }
            Msg::VoteReq { txn } => {
                if !self.txns.contains_key(&txn) {
                    return; // stale duplicate for a retired transaction
                }
                let force = self.cfg.vote_abort_probability > 0.0
                    && self.rng.gen_bool(self.cfg.vote_abort_probability);
                let policy = self.lock_policy_at(to);
                let hist = &mut self.hist;
                let site = self.sites[to.index()].as_mut().unwrap();
                let had_exec = site.exec_state(ExecId::Sub(txn)).is_some();
                let out = site.vote(txn, policy, force, now, hist);
                if force && had_exec {
                    self.report.counters.inc("vote.autonomy_aborts");
                }
                self.wake(now, to, out.woken);
                if out.vote == o2pc_site::Vote::No {
                    self.invalidate_incompatible_subs(now, to);
                }
                if out.vote == o2pc_site::Vote::Yes && policy == LockPolicy::HoldWrites {
                    self.arm_term_timer(now, txn, to);
                }
                let coord_site = self.txns[&txn].coord_site;
                let reply = Msg::VoteMsg {
                    txn,
                    from: to,
                    vote: out.vote,
                };
                if out.vote == o2pc_site::Vote::Yes {
                    // A yes-vote promises the local-commit / prepare record
                    // is durable; hold it for the next group-commit flush. A
                    // no-vote promises nothing — recovery re-produces it.
                    self.send_gated(now, to, coord_site, reply);
                } else {
                    self.send(now, to, coord_site, reply);
                }
            }
            Msg::VoteMsg { txn, from, vote } => {
                let Some(g) = self.txns.get_mut(&txn) else {
                    return;
                };
                if g.done {
                    return;
                }
                if let Some(action) = g.coord.on_vote(from, vote) {
                    self.coord_action(now, txn, action);
                }
            }
            Msg::Decision { txn, commit } => {
                if !self.txns.contains_key(&txn) {
                    return; // stale duplicate for a retired transaction
                }
                let hist = &mut self.hist;
                let site = self.sites[to.index()].as_mut().unwrap();
                let out = site.decide(txn, commit, now, hist);
                self.wake(now, to, out.woken);
                if let Some(plan) = out.compensation {
                    self.report.counters.inc("comp.plans");
                    self.persistence.initiated(txn, to);
                    self.pending_comp.insert((txn, to), plan);
                    self.start_compensation(now, txn, to);
                }
                if !commit {
                    self.invalidate_incompatible_subs(now, to);
                }
                let coord_site = self.txns[&txn].coord_site;
                // The ack promises the Outcome record is durable: after it,
                // the coordinator may retire the transaction, so this site
                // must never again be in doubt about the fate — not even
                // across a crash.
                self.send_gated(now, to, coord_site, Msg::DecisionAck { txn, from: to });
            }
            Msg::DecisionAck { txn, from } => {
                let Some(g) = self.txns.get_mut(&txn) else {
                    return;
                };
                if g.done {
                    return;
                }
                if let Some(action) = g.coord.on_decision_ack(from) {
                    self.coord_action(now, txn, action);
                }
            }
            Msg::TermReq { txn, from } => {
                let hist = &mut self.hist;
                let site = self.sites[to.index()].as_mut().unwrap();
                let (state, woken) = site.answer_termination_query(txn, now, hist);
                self.wake(now, to, woken);
                let reply = Msg::TermAnswer {
                    txn,
                    from: to,
                    state,
                };
                if matches!(
                    state,
                    o2pc_site::PeerState::KnowsCommit | o2pc_site::PeerState::KnowsAbort
                ) {
                    // A fate answer lets the asker finalize; the Outcome
                    // record behind it must be durable first, or a crash
                    // here could leave this site presuming the other way.
                    self.send_gated(now, to, from, reply);
                } else {
                    self.send(now, to, from, reply);
                }
            }
            Msg::TermAnswer { txn, from, state } => {
                let Some(round) = self.term_rounds.get_mut(&(txn, to)) else {
                    return;
                };
                match round.on_answer(from, state) {
                    Some(TerminationOutcome::Commit) => {
                        self.term_rounds.remove(&(txn, to));
                        self.report.counters.inc("term.resolved_commit");
                        self.apply_peer_decision(now, txn, to, true);
                    }
                    Some(TerminationOutcome::Abort) => {
                        self.term_rounds.remove(&(txn, to));
                        self.report.counters.inc("term.resolved_abort");
                        self.apply_peer_decision(now, txn, to, false);
                    }
                    Some(TerminationOutcome::StillBlocked) => {
                        self.term_rounds.remove(&(txn, to));
                        self.report.counters.inc("term.still_blocked");
                        // Retry after another timeout period.
                        self.arm_term_timer(now, txn, to);
                    }
                    None => {}
                }
            }
        }
    }

    /// Apply a decision learned via the termination protocol (not from the
    /// coordinator). The coordinator, once recovered, will resend its own
    /// DECISION; `Site::decide` is idempotent for repeats.
    fn apply_peer_decision(
        &mut self,
        now: SimTime,
        txn: GlobalTxnId,
        site_id: SiteId,
        commit: bool,
    ) {
        let hist = &mut self.hist;
        let site = self.sites[site_id.index()].as_mut().unwrap();
        let out = site.decide(txn, commit, now, hist);
        self.wake(now, site_id, out.woken);
        if let Some(plan) = out.compensation {
            self.report.counters.inc("comp.plans");
            self.persistence.initiated(txn, site_id);
            self.pending_comp.insert((txn, site_id), plan);
            self.start_compensation(now, txn, site_id);
        }
        self.try_gc(txn);
    }

    /// A prepared participant has waited too long for the decision: run a
    /// cooperative-termination round against its peers. Each firing consumes
    /// its `term_armed` slot and re-arms after sending, so a lost `TermReq`
    /// or `TermAnswer` only delays the next round by one timeout — the
    /// chain dies only when the site leaves doubt (or stays crashed, in
    /// which case recovery re-arms it).
    pub(crate) fn on_term_timeout(&mut self, now: SimTime, txn: GlobalTxnId, site_id: SiteId) {
        self.term_armed.remove(&(txn, site_id));
        if !self.site_up(site_id) {
            return;
        }
        // Still uncertain? (Prepared under 2PC, or locally committed under
        // O2PC with the decision unknown — e.g. after a participant crash
        // swallowed the DECISION message.)
        {
            let site = self.sites[site_id.index()].as_ref().unwrap();
            let prepared = site
                .exec_state(ExecId::Sub(txn))
                .map(|s| s.phase == o2pc_site::ExecPhase::Prepared)
                .unwrap_or(false);
            let pending_lc = site.has_pending_local_commit(txn);
            if !prepared && !pending_lc {
                self.try_gc(txn); // this chain may have been the last blocker
                return;
            }
        }
        let Some(g) = self.txns.get(&txn) else {
            return; // retired while the timer was in flight
        };
        let peers: Vec<SiteId> = g
            .coord
            .participants()
            .iter()
            .copied()
            .filter(|&p| p != site_id)
            .collect();
        if peers.is_empty() {
            return;
        }
        self.report.counters.inc("term.rounds");
        // Overwrite any stalled previous round: answers carry the sender id,
        // so replies to the old round simply refill the new one.
        self.term_rounds.insert(
            (txn, site_id),
            o2pc_protocol::TerminationRound::new(txn, peers.clone()),
        );
        for p in peers {
            self.send(now, site_id, p, Msg::TermReq { txn, from: site_id });
        }
        self.arm_term_timer(now, txn, site_id);
    }

    /// Rule R1: admission check before (re)starting a subtransaction.
    pub(crate) fn try_spawn(&mut self, now: SimTime, txn: GlobalTxnId, site_id: SiteId) {
        if !self.site_up(site_id) {
            return;
        }
        let marking = self.marking();
        let Some(g) = self.txns.get_mut(&txn) else {
            return;
        };
        if g.done || g.coord.decision().is_some() {
            return;
        }
        if g.began.contains(&site_id) {
            // Duplicate SpawnSubtxn: the subtransaction already began here.
            // Its original ack (or the vote-timeout's presumed abort)
            // resolves the coordinator; re-beginning would clobber live
            // execution state.
            return;
        }
        self.report.counters.inc("r1.checks");
        let site = self.sites[site_id.index()].as_ref().unwrap();
        match g.tm.check_and_absorb(marking, site.marks()) {
            Ok(()) => {
                let ops = g.subs[&site_id].clone();
                g.began.insert(site_id);
                let exec = ExecId::Sub(txn);
                let empty = ops.is_empty();
                let hist = &mut self.hist;
                let site = self.sites[site_id.index()].as_mut().unwrap();
                site.begin(exec, ops, now, hist);
                if empty {
                    let coord_site = g.coord_site;
                    let _ = coord_site;
                    self.send(
                        now,
                        site_id,
                        self.txns[&txn].coord_site,
                        Msg::SubtxnAck {
                            txn,
                            from: site_id,
                            ok: true,
                        },
                    );
                } else {
                    let service = self.cfg.op_service_time;
                    self.rt.schedule(
                        now + service,
                        TimerEvent::OpDone {
                            site: site_id,
                            exec,
                        },
                    );
                }
            }
            Err(inc) => {
                self.report.counters.inc("r1.rejections");
                let retries = g.spawn_retries.entry(site_id).or_insert(0);
                *retries += 1;
                if inc.retryable && *retries <= self.cfg.r1_max_retries {
                    self.report.counters.inc("r1.retries");
                    let delay = self.cfg.r1_retry_delay;
                    self.rt
                        .schedule(now + delay, TimerEvent::R1Retry { txn, site: site_id });
                } else {
                    self.report.counters.inc("r1.forced_aborts");
                    let coord_site = g.coord_site;
                    self.send(
                        now,
                        site_id,
                        coord_site,
                        Msg::SubtxnAck {
                            txn,
                            from: site_id,
                            ok: false,
                        },
                    );
                }
            }
        }
    }

    pub(crate) fn on_op_done(&mut self, now: SimTime, site_id: SiteId, exec: ExecId) {
        if !self.site_up(site_id) {
            return;
        }
        if self.sites[site_id.index()]
            .as_ref()
            .unwrap()
            .exec_state(exec)
            .is_none()
        {
            return; // aborted while this event was in flight
        }
        if self.sites[site_id.index()]
            .as_ref()
            .unwrap()
            .is_blocked(exec)
        {
            return; // spurious wake-up; a grant event will reschedule us
        }
        let hist = &mut self.hist;
        let site = self.sites[site_id.index()].as_mut().unwrap();
        let result = site.execute_next_op(exec, now, hist);
        match result {
            OpResult::Done { finished, .. } => {
                // UDUM observation: this execution's first operation at the
                // site "executed while the site was undone wrt T_i".
                // UDUM1 fences: "there is a transaction that has also
                // executed at that site while that site was undone" —
                // subtransactions and independent locals both qualify;
                // compensating subtransactions do not (they are the
                // *mechanism* of undoing, not evidence that the marking is
                // stale). The mark-change invalidation rule above is what
                // keeps fencing safe for in-flight admissions.
                if self.cfg.enable_udum
                    && !matches!(exec, ExecId::CompSub(_))
                    && site.exec_state(exec).map(|s| s.pc) == Some(1)
                {
                    let undone = site.marks().undone_set();
                    for ti in undone {
                        if self.udum.observe_access(ti, site_id) {
                            self.fire_udum(ti);
                        }
                    }
                }
                if !finished {
                    let service = self.cfg.op_service_time;
                    self.rt.schedule(
                        now + service,
                        TimerEvent::OpDone {
                            site: site_id,
                            exec,
                        },
                    );
                    return;
                }
                match exec {
                    ExecId::Local(_) => {
                        let hist = &mut self.hist;
                        let site = self.sites[site_id.index()].as_mut().unwrap();
                        let woken = site.commit_local(exec, now, hist);
                        self.report.local_committed += 1;
                        if let Some(start) = self.local_starts.remove(&exec) {
                            self.report.local_latency.record((now - start).as_micros());
                        }
                        self.wake(now, site_id, woken);
                    }
                    ExecId::Sub(g) => {
                        // Late revalidation of R1 (the paper's compromise for
                        // marking-set deadlock avoidance): re-check as the
                        // subtransaction's last action.
                        let marking = self.marking();
                        let ok = if marking == MarkingProtocol::None {
                            true
                        } else {
                            let gt = &self.txns[&g];
                            let site = self.sites[site_id.index()].as_ref().unwrap();
                            gt.tm.check(marking, site.marks()).is_ok()
                        };
                        if !ok {
                            self.report.counters.inc("r1.revalidation_failures");
                            let hist = &mut self.hist;
                            let site = self.sites[site_id.index()].as_mut().unwrap();
                            let woken = site.unilateral_abort(g, now, hist);
                            self.wake(now, site_id, woken);
                            self.invalidate_incompatible_subs(now, site_id);
                        }
                        let coord_site = self.txns[&g].coord_site;
                        self.send(
                            now,
                            site_id,
                            coord_site,
                            Msg::SubtxnAck {
                                txn: g,
                                from: site_id,
                                ok,
                            },
                        );
                    }
                    ExecId::CompSub(g) => {
                        let hist = &mut self.hist;
                        let site = self.sites[site_id.index()].as_mut().unwrap();
                        let woken = site.finish_compensation(g, now, hist);
                        self.wake(now, site_id, woken);
                        self.pending_comp.remove(&(g, site_id));
                        self.persistence.completed(g, site_id);
                        // R2 set the undone marking: future accesses count
                        // toward UDUM1, and running subtransactions admitted
                        // under the old marks must be re-checked.
                        self.invalidate_incompatible_subs(now, site_id);
                        self.try_gc(g);
                    }
                }
            }
            OpResult::Blocked => {
                self.resolve_deadlocks(now, site_id);
                self.resolve_global_deadlocks(now);
            }
            OpResult::Failed(_) => match exec {
                ExecId::Local(_) => {
                    let hist = &mut self.hist;
                    let site = self.sites[site_id.index()].as_mut().unwrap();
                    let woken = site.abort_exec(exec, now, hist);
                    self.report.local_aborted += 1;
                    self.wake(now, site_id, woken);
                }
                ExecId::Sub(g) => {
                    let hist = &mut self.hist;
                    let site = self.sites[site_id.index()].as_mut().unwrap();
                    let woken = site.unilateral_abort(g, now, hist);
                    self.wake(now, site_id, woken);
                    let coord_site = self.txns[&g].coord_site;
                    self.send(
                        now,
                        site_id,
                        coord_site,
                        Msg::SubtxnAck {
                            txn: g,
                            from: site_id,
                            ok: false,
                        },
                    );
                    self.invalidate_incompatible_subs(now, site_id);
                }
                ExecId::CompSub(_) => unreachable!("compensation ops never fail (they skip)"),
            },
        }
    }

    pub(crate) fn fire_udum(&mut self, ti: GlobalTxnId) {
        self.report.counters.inc("udum.fired");
        for s in self.sites.iter_mut().flatten() {
            s.unmark(ti);
        }
        self.udum.forget(ti);
        // Unmarking was usually the last condition holding the aborted
        // transaction's record alive.
        self.try_gc(ti);
    }

    /// A mark was just added at `site_id` (a roll-back or a completed
    /// compensation turned it *undone* with respect to some transaction).
    /// With the marking sets protected by the site's own strict 2PL, any
    /// still-running subtransaction admitted under the previous marks would
    /// now deadlock with the marking update — the resolution is to abort it
    /// before it touches data under the new marks. Without this, a blocked
    /// subtransaction could execute *after* a compensation it was never
    /// checked against, recreating exactly the regular cycles P1 exists to
    /// prevent.
    pub(crate) fn invalidate_incompatible_subs(&mut self, now: SimTime, site_id: SiteId) {
        let marking = self.marking();
        if marking == MarkingProtocol::None {
            return;
        }
        let running = self.sites[site_id.index()].as_ref().unwrap().running_subs();
        for g in running {
            let Some(gt) = self.txns.get(&g) else {
                continue;
            };
            if gt.done || gt.coord.decision().is_some() {
                continue;
            }
            let ok = {
                let site = self.sites[site_id.index()].as_ref().unwrap();
                gt.tm.check(marking, site.marks()).is_ok()
            };
            if !ok {
                self.report.counters.inc("r1.mark_invalidations");
                let hist = &mut self.hist;
                let site = self.sites[site_id.index()].as_mut().unwrap();
                let woken = site.unilateral_abort(g, now, hist);
                self.wake(now, site_id, woken);
                let coord_site = self.txns[&g].coord_site;
                self.send(
                    now,
                    site_id,
                    coord_site,
                    Msg::SubtxnAck {
                        txn: g,
                        from: site_id,
                        ok: false,
                    },
                );
            }
        }
    }

    pub(crate) fn start_compensation(&mut self, now: SimTime, txn: GlobalTxnId, site_id: SiteId) {
        let plan = self.pending_comp[&(txn, site_id)].clone();
        let hist = &mut self.hist;
        let site = self.sites[site_id.index()].as_mut().unwrap();
        site.begin_compensation(txn, &plan, now, hist);
        if plan.is_empty() {
            let woken = site.finish_compensation(txn, now, hist);
            self.wake(now, site_id, woken);
            self.pending_comp.remove(&(txn, site_id));
            self.persistence.completed(txn, site_id);
            self.invalidate_incompatible_subs(now, site_id);
            self.try_gc(txn);
        } else {
            let service = self.cfg.op_service_time;
            self.rt.schedule(
                now + service,
                TimerEvent::OpDone {
                    site: site_id,
                    exec: ExecId::CompSub(txn),
                },
            );
        }
    }

    pub(crate) fn resume_compensation(&mut self, now: SimTime, txn: GlobalTxnId, site_id: SiteId) {
        if !self.site_up(site_id) || !self.pending_comp.contains_key(&(txn, site_id)) {
            return;
        }
        self.start_compensation(now, txn, site_id);
    }
}
