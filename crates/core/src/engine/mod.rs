//! The distributed engine, generic over its [`Runtime`] substrate.
//!
//! The engine wires sites, coordinators, marking, and compensation into one
//! event loop. Everything substrate-specific — where time comes from, how
//! messages travel, what order simultaneous steps arrive in — lives behind
//! `o2pc_runtime::Runtime`. The same protocol logic therefore runs on:
//!
//! * [`DefaultSimRuntime`] — the deterministic event-queue simulator (the
//!   default type parameter, so `Engine::new(cfg)` behaves as it always
//!   has: seeded, replayable bit-for-bit);
//! * `ThreadedRuntime` — real threads and wall-clock latency, where
//!   outcomes are schedule-dependent and verified by invariant.
//!
//! Module layout:
//!
//! * [`mod@self`] — the `Engine` type, its constructors, and shared helpers
//!   (messaging, site access);
//! * `driver` — the run loop pulling [`Step`]s from the runtime;
//! * `coordinator_rt` — transaction arrival and the coordinator side of
//!   2PC/O2PC (vote collection, decisions, crash recovery);
//! * `site_rt` — the participant side: admission (rule R1), operation
//!   execution, unilateral aborts, compensation, cooperative termination;
//! * `deadlock` — local and lifted (cross-site) waits-for cycle resolution;
//! * `metrics` — folding engine state into the final [`RunReport`].

mod coordinator_rt;
mod deadlock;
mod driver;
mod metrics;
mod site_rt;

use crate::config::{SystemConfig, TxnRequest};
use crate::msg::Msg;
use crate::report::RunReport;
use o2pc_common::{
    DetRng, ExecId, GlobalTxnId, GlobalTxnIdGen, History, Key, SimTime, SiteId, Value,
};
use o2pc_compensation::{CompensationPlan, PersistenceGuard};
use o2pc_marking::{MarkingProtocol, TransMarks, UdumTracker};
use o2pc_protocol::{TerminationRound, TwoPhaseCoordinator};
use o2pc_runtime::{Runtime, SimRuntime};
use o2pc_sim::Network;
use o2pc_site::{LockPolicy, Site, SiteConfig};
use o2pc_storage::Wal;
use std::collections::{BTreeSet, HashMap};

/// Engine timers: everything the engine schedules against its own clock.
/// Message deliveries are *not* timers — they arrive through the runtime's
/// transport as [`o2pc_runtime::Step::Deliver`] steps.
#[derive(Clone, Debug)]
pub enum TimerEvent {
    /// A workload transaction arrives.
    Arrive(TxnRequest),
    /// An executing (sub)transaction finishes its current operation.
    OpDone {
        /// Site where the execution runs.
        site: SiteId,
        /// The execution.
        exec: ExecId,
    },
    /// Re-attempt an R1-rejected subtransaction admission.
    R1Retry {
        /// Global transaction.
        txn: GlobalTxnId,
        /// Site to admit at.
        site: SiteId,
    },
    /// Re-attempt a rolled-back compensating subtransaction.
    CompRetry {
        /// Global transaction being compensated.
        txn: GlobalTxnId,
        /// Site being compensated.
        site: SiteId,
    },
    /// Coordinator progress timeout (missing acks or votes).
    VoteTimeout {
        /// Global transaction.
        txn: GlobalTxnId,
    },
    /// A prepared participant has waited too long for the decision.
    TermTimeout {
        /// Global transaction.
        txn: GlobalTxnId,
        /// The in-doubt participant.
        site: SiteId,
    },
    /// Scripted site crash.
    Crash {
        /// Crashing site.
        site: SiteId,
    },
    /// Scripted site recovery.
    Recover {
        /// Recovering site.
        site: SiteId,
    },
}

/// Book-keeping for one global transaction.
pub(crate) struct GTxn {
    pub(crate) coord_site: SiteId,
    pub(crate) coord: TwoPhaseCoordinator,
    pub(crate) subs: HashMap<SiteId, Vec<o2pc_common::Op>>,
    pub(crate) tm: TransMarks,
    pub(crate) start: SimTime,
    pub(crate) spawn_retries: HashMap<SiteId, u32>,
    /// Sites where the subtransaction actually began executing. Only these
    /// can ever carry an *undone* marking for this transaction, so only
    /// these count as UDUM1 execution sites — registering all participants
    /// would leave markings that can never be cleared (an R1-rejected site
    /// never executes, never marks, never fences).
    pub(crate) began: BTreeSet<SiteId>,
    pub(crate) done: bool,
}

/// The runtime `Engine::new` builds: the deterministic simulator.
pub type DefaultSimRuntime = SimRuntime<TimerEvent, Msg>;

/// The engine: sites + coordinators + a message substrate on one clock.
///
/// Generic over the [`Runtime`]; defaults to the deterministic simulator so
/// `Engine::new(cfg)` needs no type annotations and replays from its seed.
pub struct Engine<R: Runtime<TimerEvent, Msg> = DefaultSimRuntime> {
    pub(crate) cfg: SystemConfig,
    pub(crate) sites: Vec<Option<Site>>,
    pub(crate) crashed_wals: HashMap<SiteId, Wal>,
    pub(crate) rt: R,
    pub(crate) rng: DetRng,
    pub(crate) idgen: GlobalTxnIdGen,
    pub(crate) txns: HashMap<GlobalTxnId, GTxn>,
    pub(crate) pending_comp: HashMap<(GlobalTxnId, SiteId), CompensationPlan>,
    pub(crate) term_rounds: HashMap<(GlobalTxnId, SiteId), TerminationRound>,
    pub(crate) local_starts: HashMap<ExecId, SimTime>,
    pub(crate) persistence: PersistenceGuard,
    pub(crate) udum: UdumTracker,
    pub(crate) hist: History,
    pub(crate) report: RunReport,
    pub(crate) checkpointed: bool,
}

impl Engine {
    /// Build an engine on the deterministic simulator from a configuration.
    pub fn new(cfg: SystemConfig) -> Self {
        let mut root = DetRng::new(cfg.seed);
        let net_rng = root.fork(0x6e65);
        let network =
            Network::new(cfg.network.clone(), net_rng).with_failures(cfg.failures.clone());
        Self::assemble(cfg, SimRuntime::new(network), root)
    }
}

impl<R: Runtime<TimerEvent, Msg>> Engine<R> {
    /// Build an engine on an explicit runtime (e.g. a `ThreadedRuntime`).
    ///
    /// The engine's own RNG stream (vote-abort sampling) is derived exactly
    /// as in [`Engine::new`] — including the discarded network fork — so a
    /// given seed drives the same autonomy decisions on every substrate.
    pub fn with_runtime(cfg: SystemConfig, rt: R) -> Self {
        let mut root = DetRng::new(cfg.seed);
        let _net_rng = root.fork(0x6e65);
        Self::assemble(cfg, rt, root)
    }

    fn assemble(cfg: SystemConfig, mut rt: R, rng: DetRng) -> Self {
        for id in cfg.sites() {
            rt.register_endpoint(id);
        }
        let site_cfg = SiteConfig {
            compensation_model: cfg.compensation_model,
        };
        let sites = cfg
            .sites()
            .map(|id| Some(Site::new(id, site_cfg)))
            .collect();
        for (site, from, to) in cfg.failures.crashes() {
            rt.schedule(from, TimerEvent::Crash { site });
            rt.schedule(to, TimerEvent::Recover { site });
        }
        Engine {
            cfg,
            sites,
            crashed_wals: HashMap::new(),
            rt,
            rng,
            idgen: GlobalTxnIdGen::new(),
            txns: HashMap::new(),
            pending_comp: HashMap::new(),
            term_rounds: HashMap::new(),
            local_starts: HashMap::new(),
            persistence: PersistenceGuard::new(),
            udum: UdumTracker::new(),
            hist: History::new(),
            report: RunReport::default(),
            checkpointed: false,
        }
    }

    /// Pre-load a data item at a site.
    pub fn load(&mut self, site: SiteId, key: Key, value: Value) {
        self.site_mut(site).load(key, value);
    }

    /// Submit a transaction for arrival at `at`.
    pub fn submit_at(&mut self, at: SimTime, req: TxnRequest) {
        self.rt.schedule(at, TimerEvent::Arrive(req));
    }

    /// Read an item's current value (tests / invariants).
    pub fn value(&self, site: SiteId, key: Key) -> Option<Value> {
        self.sites[site.index()].as_ref().and_then(|s| s.get(key))
    }

    /// The runtime the engine runs on.
    pub fn runtime(&self) -> &R {
        &self.rt
    }

    pub(crate) fn site_mut(&mut self, site: SiteId) -> &mut Site {
        self.sites[site.index()]
            .as_mut()
            .unwrap_or_else(|| panic!("{site} is crashed"))
    }

    pub(crate) fn site_up(&self, site: SiteId) -> bool {
        self.sites[site.index()].is_some()
    }

    pub(crate) fn marking(&self) -> MarkingProtocol {
        self.cfg.protocol.marking()
    }

    pub(crate) fn lock_policy_at(&self, site: SiteId) -> LockPolicy {
        if self.cfg.real_action_sites.contains(&site) {
            LockPolicy::HoldWrites
        } else {
            self.cfg.protocol.lock_policy()
        }
    }

    // ----- messaging -------------------------------------------------------

    pub(crate) fn send(&mut self, now: SimTime, from: SiteId, to: SiteId, msg: Msg) {
        self.report.counters.inc(msg.label());
        // A `false` return means the substrate lost the message at send time
        // (link down or random drop); the runtime counts it.
        let _ = self.rt.send(now, from, to, msg);
    }

    pub(crate) fn wake(&mut self, now: SimTime, site: SiteId, woken: Vec<ExecId>) {
        for exec in woken {
            self.rt.schedule(now, TimerEvent::OpDone { site, exec });
        }
    }
}
