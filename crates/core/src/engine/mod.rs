//! The distributed engine, generic over its [`Runtime`] substrate.
//!
//! The engine wires sites, coordinators, marking, and compensation into one
//! event loop. Everything substrate-specific — where time comes from, how
//! messages travel, what order simultaneous steps arrive in — lives behind
//! `o2pc_runtime::Runtime`. The same protocol logic therefore runs on:
//!
//! * [`DefaultSimRuntime`] — the deterministic event-queue simulator (the
//!   default type parameter, so `Engine::new(cfg)` behaves as it always
//!   has: seeded, replayable bit-for-bit);
//! * `ThreadedRuntime` — real threads and wall-clock latency, where
//!   outcomes are schedule-dependent and verified by invariant.
//!
//! Module layout:
//!
//! * [`mod@self`] — the `Engine` type, its constructors, and shared helpers
//!   (messaging, site access);
//! * `driver` — the run loop pulling [`Step`]s from the runtime;
//! * `coordinator_rt` — transaction arrival and the coordinator side of
//!   2PC/O2PC (vote collection, decisions, crash recovery);
//! * `site_rt` — the participant side: admission (rule R1), operation
//!   execution, unilateral aborts, compensation, cooperative termination;
//! * `deadlock` — local and lifted (cross-site) waits-for cycle resolution;
//! * `metrics` — folding engine state into the final [`RunReport`].

mod coordinator_rt;
mod deadlock;
mod driver;
mod metrics;
mod recorder;
mod site_rt;

use crate::config::{SystemConfig, TxnRequest};
use crate::msg::Msg;
use crate::report::RunReport;
use o2pc_common::{
    DetRng, ExecId, FastHashMap, GlobalTxnId, GlobalTxnIdGen, Key, SimTime, SiteId, Value,
};
use o2pc_compensation::{CompensationPlan, PersistenceGuard};
use o2pc_marking::{MarkingProtocol, TransMarks, UdumTracker};
use o2pc_protocol::{TerminationRound, TwoPhaseCoordinator};
use o2pc_runtime::FlushScheduler;
use o2pc_runtime::{Runtime, SimRuntime};
use o2pc_sim::Network;
use o2pc_site::{LockPolicy, Site, SiteConfig};
use o2pc_storage::{DurableWal, WalBackend, WalOptions};
use recorder::Recorder;
use std::collections::BTreeSet;

/// Engine timers: everything the engine schedules against its own clock.
/// Message deliveries are *not* timers — they arrive through the runtime's
/// transport as [`o2pc_runtime::Step::Deliver`] steps.
#[derive(Clone, Debug)]
pub enum TimerEvent {
    /// A workload transaction arrives.
    Arrive {
        /// The request.
        req: TxnRequest,
        /// When the client issued it. On the simulator the timer fires at
        /// exactly this instant; on a wall-clock runtime under load it may
        /// fire later, and measuring latency from `scheduled` keeps that
        /// queueing delay visible (open-loop honesty).
        scheduled: SimTime,
    },
    /// An executing (sub)transaction finishes its current operation.
    OpDone {
        /// Site where the execution runs.
        site: SiteId,
        /// The execution.
        exec: ExecId,
    },
    /// Re-attempt an R1-rejected subtransaction admission.
    R1Retry {
        /// Global transaction.
        txn: GlobalTxnId,
        /// Site to admit at.
        site: SiteId,
    },
    /// Re-attempt a rolled-back compensating subtransaction.
    CompRetry {
        /// Global transaction being compensated.
        txn: GlobalTxnId,
        /// Site being compensated.
        site: SiteId,
    },
    /// Coordinator progress timeout (missing acks or votes).
    VoteTimeout {
        /// Global transaction.
        txn: GlobalTxnId,
    },
    /// Coordinator retransmission check: resend unacked VOTE-REQ/DECISION
    /// with capped exponential backoff (armed only when
    /// `SystemConfig::retransmit_base` is set).
    Retransmit {
        /// Global transaction.
        txn: GlobalTxnId,
        /// Backoff attempt number (0 = first resend check).
        attempt: u32,
    },
    /// A prepared participant has waited too long for the decision.
    TermTimeout {
        /// Global transaction.
        txn: GlobalTxnId,
        /// The in-doubt participant.
        site: SiteId,
    },
    /// Scripted site crash.
    Crash {
        /// Crashing site.
        site: SiteId,
    },
    /// Scripted site recovery.
    Recover {
        /// Recovering site.
        site: SiteId,
    },
    /// Group-commit flush point for a site's durable WAL: everything
    /// appended since the last flush becomes durable and the messages parked
    /// on its tickets are released. Armed only in durable mode, and only
    /// while the site's WAL is dirty.
    WalFlush {
        /// Site whose WAL flushes.
        site: SiteId,
    },
}

/// Book-keeping for one global transaction.
pub(crate) struct GTxn {
    pub(crate) coord_site: SiteId,
    pub(crate) coord: TwoPhaseCoordinator,
    pub(crate) subs: FastHashMap<SiteId, Vec<o2pc_common::Op>>,
    pub(crate) tm: TransMarks,
    pub(crate) start: SimTime,
    pub(crate) spawn_retries: FastHashMap<SiteId, u32>,
    /// Sites where the subtransaction actually began executing. Only these
    /// can ever carry an *undone* marking for this transaction, so only
    /// these count as UDUM1 execution sites — registering all participants
    /// would leave markings that can never be cleared (an R1-rejected site
    /// never executes, never marks, never fences).
    pub(crate) began: BTreeSet<SiteId>,
    pub(crate) done: bool,
    /// A retransmission timer chain is live for this transaction (at most
    /// one chain per transaction; re-armed from the chain itself).
    pub(crate) retx_armed: bool,
}

/// A global arrival parked at its coordinator's admission gate: the client's
/// scheduled submit time (latency is measured from here, so admission
/// queueing stays visible) plus the per-site programs.
pub(crate) struct PendingAdmission {
    pub(crate) scheduled: SimTime,
    pub(crate) subs: Vec<(SiteId, Vec<o2pc_common::Op>)>,
}

/// The runtime `Engine::new` builds: the deterministic simulator.
pub type DefaultSimRuntime = SimRuntime<TimerEvent, Msg>;

/// The engine: sites + coordinators + a message substrate on one clock.
///
/// Generic over the [`Runtime`]; defaults to the deterministic simulator so
/// `Engine::new(cfg)` needs no type annotations and replays from its seed.
pub struct Engine<R: Runtime<TimerEvent, Msg> = DefaultSimRuntime> {
    pub(crate) cfg: SystemConfig,
    pub(crate) sites: Vec<Option<Site>>,
    /// WALs of down sites, with the pre-crash local-id watermark (the
    /// engine's durable id-range reservation — see `Site::reserve_local_seq`).
    pub(crate) crashed_wals: FastHashMap<SiteId, (WalBackend, u64)>,
    pub(crate) rt: R,
    pub(crate) rng: DetRng,
    pub(crate) idgen: GlobalTxnIdGen,
    pub(crate) txns: FastHashMap<GlobalTxnId, GTxn>,
    pub(crate) pending_comp: FastHashMap<(GlobalTxnId, SiteId), CompensationPlan>,
    pub(crate) term_rounds: FastHashMap<(GlobalTxnId, SiteId), TerminationRound>,
    /// In-doubt participants with a live termination-timer chain. Exactly
    /// one chain per `(txn, site)` exists while the site is in doubt, so a
    /// lost `TermReq`/`TermAnswer` re-fires instead of blocking forever.
    pub(crate) term_armed: BTreeSet<(GlobalTxnId, SiteId)>,
    pub(crate) local_starts: FastHashMap<ExecId, SimTime>,
    /// Global arrivals awaiting an admission slot at their coordinator site
    /// (`scheduled`, per-site programs), FIFO. Only populated when
    /// `SystemConfig::admission_window` is set.
    pub(crate) admit_q: FastHashMap<SiteId, std::collections::VecDeque<PendingAdmission>>,
    /// Currently admitted (not yet completed) global transactions per
    /// coordinator site, against which the window is enforced.
    pub(crate) admitted: FastHashMap<SiteId, usize>,
    pub(crate) persistence: PersistenceGuard,
    pub(crate) udum: UdumTracker,
    pub(crate) hist: Recorder,
    pub(crate) report: RunReport,
    pub(crate) checkpointed: bool,
    /// Durable mode only: messages held back until their site's WAL is
    /// durable past the recorded byte ticket, as `(ticket, to, msg)` in
    /// append order per sender.
    pub(crate) wal_parked: FastHashMap<SiteId, Vec<(u64, SiteId, Msg)>>,
    /// Sites with a live `WalFlush` timer (at most one per site).
    pub(crate) flush_armed: BTreeSet<SiteId>,
    /// Background flusher (durable mode with `wal_background_flush` only).
    pub(crate) flusher: Option<FlushScheduler>,
    /// Configuration footguns detected at assembly (see
    /// [`SystemConfig::liveness_warnings`]).
    pub(crate) warnings: Vec<String>,
}

impl Engine {
    /// Build an engine on the deterministic simulator from a configuration.
    pub fn new(cfg: SystemConfig) -> Self {
        let mut root = DetRng::new(cfg.seed);
        let net_rng = root.fork(0x6e65);
        let network =
            Network::new(cfg.network.clone(), net_rng).with_failures(cfg.failures.clone());
        Self::assemble(cfg, SimRuntime::new(network), root)
    }
}

impl<R: Runtime<TimerEvent, Msg>> Engine<R> {
    /// Build an engine on an explicit runtime (e.g. a `ThreadedRuntime`).
    ///
    /// The engine's own RNG stream (vote-abort sampling) is derived exactly
    /// as in [`Engine::new`] — including the discarded network fork — so a
    /// given seed drives the same autonomy decisions on every substrate.
    pub fn with_runtime(cfg: SystemConfig, rt: R) -> Self {
        let mut root = DetRng::new(cfg.seed);
        let _net_rng = root.fork(0x6e65);
        Self::assemble(cfg, rt, root)
    }

    fn assemble(cfg: SystemConfig, mut rt: R, rng: DetRng) -> Self {
        let hist = Recorder::new(cfg.record_history, cfg.live_audit_graph);
        for id in cfg.sites() {
            rt.register_endpoint(id);
        }
        let site_cfg = SiteConfig {
            compensation_model: cfg.compensation_model,
        };
        let sites = cfg
            .sites()
            .map(|id| Some(Site::with_wal(id, site_cfg, Self::make_wal(&cfg, id))))
            .collect();
        for (site, from, to) in cfg.failures.crashes() {
            rt.schedule(from, TimerEvent::Crash { site });
            rt.schedule(to, TimerEvent::Recover { site });
        }
        // Durable mode always runs the sharded flush pipeline: the engine
        // seals batches at flush points and the pool coalesces them into few
        // fsyncs. (Fault-armed WALs opt out per flush and sync inline.)
        let flusher = cfg
            .durable_wal_dir
            .is_some()
            .then(|| FlushScheduler::new((cfg.num_sites as usize).clamp(1, 4)));
        let warnings = cfg.liveness_warnings();
        #[cfg(debug_assertions)]
        for w in &warnings {
            eprintln!("warning: {w}");
        }
        Engine {
            cfg,
            sites,
            crashed_wals: FastHashMap::default(),
            rt,
            rng,
            idgen: GlobalTxnIdGen::new(),
            txns: FastHashMap::default(),
            pending_comp: FastHashMap::default(),
            term_rounds: FastHashMap::default(),
            term_armed: BTreeSet::new(),
            local_starts: FastHashMap::default(),
            admit_q: FastHashMap::default(),
            admitted: FastHashMap::default(),
            persistence: PersistenceGuard::new(),
            udum: UdumTracker::new(),
            hist,
            report: RunReport::default(),
            checkpointed: false,
            wal_parked: FastHashMap::default(),
            flush_armed: BTreeSet::new(),
            flusher,
            warnings,
        }
    }

    /// Build one site's WAL backend per the configuration: durable when a
    /// WAL directory is set (reopening an existing file — recovery across
    /// *process* restarts — is exactly the open path), in-memory otherwise.
    fn make_wal(cfg: &SystemConfig, id: SiteId) -> WalBackend {
        match &cfg.durable_wal_dir {
            None => WalBackend::default(),
            Some(dir) => {
                std::fs::create_dir_all(dir).expect("create durable WAL dir");
                let path = dir.join(format!("site-{}.wal", id.0));
                let opts = WalOptions {
                    segment_bytes: cfg.wal_segment_bytes,
                    fault: None,
                };
                WalBackend::from(DurableWal::open_with_opts(&path, opts).expect("open durable WAL"))
            }
        }
    }

    /// Warnings about liveness footguns in the active configuration,
    /// computed once at assembly (see [`SystemConfig::liveness_warnings`]).
    pub fn config_warnings(&self) -> &[String] {
        &self.warnings
    }

    /// Pre-load a data item at a site.
    pub fn load(&mut self, site: SiteId, key: Key, value: Value) {
        self.site_mut(site).load(key, value);
    }

    /// Submit a transaction for arrival at `at`.
    pub fn submit_at(&mut self, at: SimTime, req: TxnRequest) {
        self.rt
            .schedule(at, TimerEvent::Arrive { req, scheduled: at });
    }

    /// Read an item's current value (tests / invariants).
    pub fn value(&self, site: SiteId, key: Key) -> Option<Value> {
        self.sites[site.index()].as_ref().and_then(|s| s.get(key))
    }

    /// The runtime the engine runs on.
    pub fn runtime(&self) -> &R {
        &self.rt
    }

    // ----- oracle probes ---------------------------------------------------
    //
    // Read-only views of engine state for post-run invariant checking (the
    // chaos oracle): these expose *whether* the run quiesced cleanly, never
    // protocol internals.

    /// Global transactions still tracked (completed ones are garbage
    /// collected once decided, acked, and unmarked everywhere).
    pub fn live_txn_count(&self) -> usize {
        self.txns.len()
    }

    /// Arrivals still parked at an admission gate (a clean quiescent run
    /// admits and decides everything it was offered).
    pub fn queued_admissions(&self) -> usize {
        self.admit_q.values().map(|q| q.len()).sum()
    }

    /// Transactions whose coordinator never reached `Complete`.
    pub fn unfinished_txns(&self) -> Vec<GlobalTxnId> {
        let mut v: Vec<GlobalTxnId> = self
            .txns
            .iter()
            .filter(|(_, g)| !g.done)
            .map(|(&id, _)| id)
            .collect();
        v.sort_unstable();
        v
    }

    /// Participants still in doubt: prepared under hold-writes, or locally
    /// committed under O2PC without a known decision.
    pub fn in_doubt_participants(&self) -> Vec<(GlobalTxnId, SiteId)> {
        let mut v = Vec::new();
        for s in self.sites.iter().flatten() {
            for txn in s.prepared_subs() {
                v.push((txn, s.id()));
            }
            for txn in s.pending_local_commits() {
                v.push((txn, s.id()));
            }
        }
        v.sort_unstable();
        v
    }

    /// Sites currently crashed.
    pub fn down_sites(&self) -> Vec<SiteId> {
        self.cfg.sites().filter(|s| !self.site_up(*s)).collect()
    }

    /// Up sites whose WAL no longer replays to their live store — a crash
    /// right now would lose or invent data.
    ///
    /// This is a quiescence/oracle-time probe: each site replays its full
    /// WAL to answer. Nothing on the timer/message path calls it, and
    /// nothing should — run it once per run after the engine drains.
    pub fn wal_divergent_sites(&self) -> Vec<SiteId> {
        self.sites
            .iter()
            .flatten()
            .filter(|s| !s.wal_matches_store())
            .map(|s| s.id())
            .collect()
    }

    /// Per-site WAL/store discrepancies as `(site, key, recovered, live)` —
    /// the diagnostic detail behind [`Engine::wal_divergent_sites`].
    pub fn wal_store_diffs(&self) -> Vec<(SiteId, Key, Option<Value>, Option<Value>)> {
        self.sites
            .iter()
            .flatten()
            .flat_map(|s| {
                let id = s.id();
                s.wal_store_diff()
                    .into_iter()
                    .map(move |(k, r, l)| (id, k, r, l))
            })
            .collect()
    }

    /// One site's raw WAL records (diagnostics: tracing chaos
    /// counterexamples back to the log).
    pub fn wal_records(&self, site: SiteId) -> Option<&[o2pc_storage::LogRecord]> {
        self.sites[site.index()].as_ref().map(|s| s.wal_records())
    }

    /// The site's durable-WAL I/O counters (`None` if the site is down or
    /// logging in memory). The counters are shared with the flush pipeline,
    /// so they reflect background fsyncs too.
    pub fn wal_stats(&self, site: SiteId) -> Option<std::sync::Arc<o2pc_storage::WalStats>> {
        self.sites[site.index()]
            .as_ref()
            .and_then(|s| s.wal_stats())
    }

    /// Sum of every live site's item values (conservation checks).
    pub fn total_value(&self) -> i64 {
        self.sites.iter().flatten().map(|s| s.total()).sum()
    }

    /// Total retained per-site decision records (bounded-memory checks).
    pub fn decided_records(&self) -> usize {
        self.sites.iter().flatten().map(|s| s.decided_count()).sum()
    }

    /// Snapshot of the incrementally-maintained exposed serialization
    /// graphs, when `SystemConfig::live_audit_graph` is on. The chaos
    /// oracle audits this instead of replaying the recorded history through
    /// the batch builder.
    pub fn live_audit_graph(&self) -> Option<o2pc_sgraph::GlobalSg> {
        self.hist.live_sg.as_ref().map(|sg| sg.snapshot())
    }

    pub(crate) fn site_mut(&mut self, site: SiteId) -> &mut Site {
        self.sites[site.index()]
            .as_mut()
            .unwrap_or_else(|| panic!("{site} is crashed"))
    }

    pub(crate) fn site_up(&self, site: SiteId) -> bool {
        self.sites[site.index()].is_some()
    }

    pub(crate) fn marking(&self) -> MarkingProtocol {
        self.cfg.protocol.marking()
    }

    pub(crate) fn lock_policy_at(&self, site: SiteId) -> LockPolicy {
        if self.cfg.real_action_sites.contains(&site) {
            LockPolicy::HoldWrites
        } else {
            self.cfg.protocol.lock_policy()
        }
    }

    // ----- messaging -------------------------------------------------------

    pub(crate) fn send(&mut self, now: SimTime, from: SiteId, to: SiteId, msg: Msg) {
        let (label, dropped, unroutable) =
            (msg.label(), msg.dropped_label(), msg.unroutable_label());
        self.report.counters.inc(label);
        // Account send-time losses per message type *and* per cause, so E6
        // and the chaos oracle can reconcile message conservation: policy
        // drops (injected link loss) must sum to the network's own dropped
        // counter, while unroutable refusals (crashed endpoint, shutdown —
        // threaded transport only) are a different ledger entirely.
        match self.rt.send(now, from, to, msg) {
            o2pc_runtime::SendOutcome::Sent => {}
            o2pc_runtime::SendOutcome::DroppedByPolicy => self.report.counters.inc(dropped),
            o2pc_runtime::SendOutcome::NoRoute => self.report.counters.inc(unroutable),
        }
    }

    /// Send a message whose content *promises* durability of records `from`
    /// has logged — a yes-vote (the local commit / prepare record), a
    /// decision ack (the `Outcome` record), a fate-bearing termination
    /// answer. In durable mode such a message is parked until the sender's
    /// WAL is durable past its current append ticket; the next group-commit
    /// flush releases it. On the in-memory backend (and for messages that
    /// promise nothing — a no-vote, a SPAWN) this is just [`Engine::send`]:
    /// the WAL reports clean and nothing parks.
    ///
    /// The write-before-promise ordering this enforces is the only explicit
    /// barrier the protocol needs. Everything else is covered by prefix
    /// durability: the log is written and fsynced strictly in order, so a
    /// durable record implies every earlier record is durable too, and
    /// strict 2PL guarantees no later writer's record precedes the commit
    /// record it depends on.
    pub(crate) fn send_gated(&mut self, now: SimTime, from: SiteId, to: SiteId, msg: Msg) {
        let ticket = match self.sites[from.index()].as_ref() {
            Some(s) if s.wal_append_ticket() > self.release_gate(s) => s.wal_append_ticket(),
            // WAL already covered by the release gate (always true
            // in-memory) or site down: nothing to hold the message for.
            _ => {
                self.send(now, from, to, msg);
                return;
            }
        };
        self.wal_parked
            .entry(from)
            .or_default()
            .push((ticket, to, msg));
        self.report.counters.inc("wal.parked_msgs");
        self.arm_wal_flush(now, from);
    }

    /// The watermark parked messages release against. Deterministic mode:
    /// the *sealed* ticket — a sealed byte is committed to the flush
    /// pipeline, and every path that consults the physical log (simulated
    /// crash, compaction, shutdown) synchronises on the pipeline first, so a
    /// released promise can never outlive its record. Physical mode
    /// (`wal_background_flush`): the fsync watermark itself, for honesty
    /// against real kills that bypass those barriers.
    #[inline]
    fn release_gate(&self, s: &Site) -> u64 {
        if self.cfg.wal_background_flush {
            s.wal_durable_ticket()
        } else {
            s.wal_sealed_ticket()
        }
    }

    /// Arm the group-commit flush timer for a site with unflushed WAL bytes
    /// (at most one live timer per site), or flush immediately if the
    /// pending bytes already exceed the adaptive group-commit threshold —
    /// interval or bytes, whichever trips first.
    pub(crate) fn arm_wal_flush(&mut self, now: SimTime, site: SiteId) {
        if !self.site_up(site) {
            return;
        }
        let s = self.sites[site.index()].as_ref().unwrap();
        let pending = s.wal_pending_bytes();
        let owed = pending > 0
            || (self.cfg.wal_background_flush
                && (s.wal_is_dirty() || self.wal_parked.get(&site).is_some_and(|q| !q.is_empty())));
        if !owed {
            return;
        }
        if pending >= self.cfg.wal_flush_bytes {
            self.on_wal_flush(now, site);
            return;
        }
        if self.flush_armed.insert(site) {
            self.rt.schedule(
                now + self.cfg.wal_flush_interval,
                TimerEvent::WalFlush { site },
            );
        }
    }

    /// Group-commit flush point: seal everything the site appended since
    /// the last flush into one batch for the flush pipeline (or fsync
    /// inline for fault-armed WALs, whose fault point must stay
    /// deterministic) and release every parked message the release gate now
    /// covers. One batch — and, after coalescing, one fsync — covers every
    /// transaction that logged in the window: that batching *is* group
    /// commit.
    pub(crate) fn on_wal_flush(&mut self, now: SimTime, site: SiteId) {
        self.flush_armed.remove(&site);
        if !self.site_up(site) {
            return;
        }
        {
            let s = self.sites[site.index()].as_mut().unwrap();
            if s.wal_wants_inline_flush() {
                if s.wal_sync().is_err() {
                    // The log device failed (an injected fault): the site
                    // can no longer make durable promises. Treat it exactly
                    // like a crash — volatile state gone, disk state as the
                    // fault left it.
                    self.report.counters.inc("wal.fault_crashes");
                    self.on_crash(now, site);
                    return;
                }
            } else if let Some(batch) = s.wal_seal_batch() {
                match &self.flusher {
                    Some(f) => f.submit(site.0, batch),
                    // No pipeline (not a durable run — unreachable in
                    // practice): execute inline.
                    None => {
                        if batch.execute().is_err() {
                            self.report.counters.inc("wal.fault_crashes");
                            self.on_crash(now, site);
                            return;
                        }
                    }
                }
            }
            self.report.counters.inc("wal.flushes");
        }
        self.release_parked(now, site);
        // Physical-gating mode: the watermark advances asynchronously, so
        // keep a short timer chain alive until every parked message drains.
        if self.cfg.wal_background_flush
            && (self.sites[site.index()]
                .as_ref()
                .is_some_and(|s| s.wal_is_dirty())
                || self.wal_parked.get(&site).is_some_and(|q| !q.is_empty()))
            && self.flush_armed.insert(site)
        {
            self.rt.schedule(
                now + self.cfg.wal_flush_interval,
                TimerEvent::WalFlush { site },
            );
        }
    }

    /// Release parked messages covered by the site's release gate.
    fn release_parked(&mut self, now: SimTime, site: SiteId) {
        let Some(queue) = self.wal_parked.get_mut(&site) else {
            return;
        };
        let gate = match self.sites[site.index()].as_ref() {
            Some(s) => {
                if self.cfg.wal_background_flush {
                    s.wal_durable_ticket()
                } else {
                    s.wal_sealed_ticket()
                }
            }
            None => 0,
        };
        let ready = queue.partition_point(|&(t, _, _)| t <= gate);
        if ready == 0 {
            return;
        }
        let release: Vec<(u64, SiteId, Msg)> = queue.drain(..ready).collect();
        for (_, to, msg) in release {
            self.send(now, site, to, msg);
        }
    }

    /// Make every live site's WAL fully durable (end of run / shutdown) and
    /// release whatever that unparks. Inline even in background mode: the
    /// run is over, latency no longer matters, completeness does.
    pub(crate) fn sync_all_wals(&mut self, now: SimTime) {
        if self.cfg.durable_wal_dir.is_none() {
            return;
        }
        for id in self.cfg.sites().collect::<Vec<_>>() {
            if let Some(s) = self.sites[id.index()].as_mut() {
                let _ = s.wal_sync();
                self.release_parked(now, id);
            }
        }
    }

    /// Start (or refresh) the termination-timer chain for an in-doubt
    /// participant. At most one chain per `(txn, site)` is live: the chain
    /// re-arms itself from `on_term_timeout`, so arming is idempotent and a
    /// lost answer can never strand the participant.
    pub(crate) fn arm_term_timer(&mut self, now: SimTime, txn: GlobalTxnId, site: SiteId) {
        let Some(t) = self.cfg.termination_timeout else {
            return;
        };
        if self.term_armed.insert((txn, site)) {
            self.rt
                .schedule(now + t, TimerEvent::TermTimeout { txn, site });
        }
    }

    /// Start the retransmission backoff chain for a transaction's
    /// coordinator, if retransmission is enabled and no chain is live.
    pub(crate) fn arm_retransmit(&mut self, now: SimTime, txn: GlobalTxnId) {
        let Some(base) = self.cfg.retransmit_base else {
            return;
        };
        let Some(g) = self.txns.get_mut(&txn) else {
            return;
        };
        if g.done || g.retx_armed {
            return;
        }
        g.retx_armed = true;
        self.rt
            .schedule(now + base, TimerEvent::Retransmit { txn, attempt: 0 });
    }

    pub(crate) fn wake(&mut self, now: SimTime, site: SiteId, woken: Vec<ExecId>) {
        for exec in woken {
            self.rt.schedule(now, TimerEvent::OpDone { site, exec });
        }
    }
}
