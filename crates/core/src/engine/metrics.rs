//! Folding engine state into the final [`RunReport`].

use super::{Engine, TimerEvent};
use crate::msg::Msg;
use crate::report::RunReport;
use o2pc_runtime::Runtime;

impl<R: Runtime<TimerEvent, Msg>> Engine<R> {
    /// Snapshot the report: decided-but-unfinished transactions, per-site
    /// lock statistics and value totals, network losses, and compensation
    /// accounting. Identical on every substrate — the report is the shared
    /// currency between a simulated experiment and its wall-clock twin.
    pub(crate) fn finalize(&mut self) -> RunReport {
        let mut report = self.report.clone();
        report.end_time = self.rt.now();
        // Transactions that never reached Complete: count by logged decision
        // (presumed abort when undecided — the coordinator discipline).
        for g in self.txns.values() {
            if !g.done {
                match g.coord.decision() {
                    Some(true) => report.global_committed += 1,
                    _ => report.global_aborted += 1,
                }
            }
        }
        for s in self.sites.iter().flatten() {
            report.locks.merge(s.lock_stats());
            report.total_value += s.total();
            report.counters.add("comp.skipped_ops", s.skipped_comp_ops);
        }
        report
            .counters
            .add("net.dropped", self.rt.messages_dropped());
        report
            .counters
            .add("txn.live_at_end", self.txns.len() as u64);
        report.compensations_pending = self.persistence.pending_count();
        report.compensations_completed = self.persistence.completed_count();
        report
            .counters
            .add("comp.retries", self.persistence.total_retries());
        match &self.hist.history {
            Some(h) => {
                report.history_events = h.len() as u64;
                report.history = h.clone();
            }
            None => {
                report.history_events = self.hist.counting.events;
                report.history_digest = self.hist.counting.digest();
            }
        }
        report
    }
}
