//! The run loop: pull [`Step`]s from the runtime and dispatch them.

use super::{Engine, TimerEvent};
use crate::msg::Msg;
use crate::report::RunReport;
use o2pc_common::{Duration, SimTime};
use o2pc_runtime::{Runtime, Step};

impl<R: Runtime<TimerEvent, Msg>> Engine<R> {
    /// Run until the runtime yields no step at or before `horizon` (queue
    /// drained / quiescent / past the deadline) or the event cap trips.
    /// Returns the collected report. May be called again to continue.
    pub fn run(&mut self, horizon: Duration) -> RunReport {
        if !self.checkpointed {
            for s in self.sites.iter_mut().flatten() {
                s.checkpoint();
            }
            // Durable mode: make the base image durable before any traffic,
            // so a kill at any later point recovers the loaded accounts.
            self.sync_all_wals(SimTime::ZERO);
            self.checkpointed = true;
        }
        let deadline = SimTime::ZERO + horizon;
        let durable = self.cfg.durable_wal_dir.is_some();
        let mut events = 0u64;
        let mut last_now = SimTime::ZERO;
        while events < self.cfg.max_events {
            let Some((now, step)) = self.rt.next(deadline) else {
                break;
            };
            events += 1;
            last_now = now;
            self.step(now, step);
            if durable {
                // Any step may have appended to a WAL; a dirty WAL must
                // always have a flush timer pending, else parked promises
                // (and the records themselves) would wait forever.
                for i in 0..self.cfg.num_sites {
                    self.arm_wal_flush(now, o2pc_common::SiteId(i));
                }
            }
        }
        // End of run: whatever is still buffered becomes durable now, so the
        // on-disk logs are complete for post-run inspection and kill tests.
        self.sync_all_wals(last_now);
        self.report.events_processed += events;
        self.finalize()
    }

    fn step(&mut self, now: SimTime, step: Step<TimerEvent, Msg>) {
        match step {
            Step::Timer(ev) => self.handle_timer(now, ev),
            Step::Deliver { to, msg } => self.on_deliver(now, to, msg),
        }
    }

    fn handle_timer(&mut self, now: SimTime, ev: TimerEvent) {
        match ev {
            TimerEvent::Arrive { req, scheduled } => self.on_arrive(now, scheduled, req),
            TimerEvent::OpDone { site, exec } => self.on_op_done(now, site, exec),
            TimerEvent::R1Retry { txn, site } => self.try_spawn(now, txn, site),
            TimerEvent::CompRetry { txn, site } => self.resume_compensation(now, txn, site),
            TimerEvent::VoteTimeout { txn } => self.on_vote_timeout(now, txn),
            TimerEvent::Retransmit { txn, attempt } => self.on_retransmit(now, txn, attempt),
            TimerEvent::TermTimeout { txn, site } => self.on_term_timeout(now, txn, site),
            TimerEvent::Crash { site } => self.on_crash(now, site),
            TimerEvent::Recover { site } => self.on_recover(now, site),
            TimerEvent::WalFlush { site } => self.on_wal_flush(now, site),
        }
    }
}
