//! Inter-site messages.
//!
//! `SpawnSubtxn` / `SubtxnAck` are the transaction's *data* traffic (any
//! distributed execution has them); `VoteReq` / `VoteMsg` / `Decision` /
//! `DecisionAck` are the 2PC commit traffic. The paper claims O2PC (and P1)
//! change *nothing* about this pattern — the engine counts each type so
//! experiment E6 can verify it. The P1 bookkeeping (transmarks snapshots,
//! execution-site sets for UDUM1) piggy-backs on `SpawnSubtxn` and
//! `Decision` in a real deployment; here the engine keeps it in the global
//! transaction record, and the absence of any new message variant *is* the
//! verification.

use o2pc_common::{GlobalTxnId, Op, SiteId};
use o2pc_site::{PeerState, Vote};

/// One message on the simulated network.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Msg {
    /// Coordinator → participant: start the subtransaction.
    SpawnSubtxn {
        /// Global transaction.
        txn: GlobalTxnId,
        /// Operation program for this site.
        ops: Vec<Op>,
    },
    /// Participant → coordinator: the subtransaction finished executing
    /// (`ok = false`: it failed and was rolled back; abort the transaction).
    SubtxnAck {
        /// Global transaction.
        txn: GlobalTxnId,
        /// Reporting participant.
        from: SiteId,
        /// Execution outcome.
        ok: bool,
    },
    /// Coordinator → participant: VOTE-REQ.
    VoteReq {
        /// Global transaction.
        txn: GlobalTxnId,
    },
    /// Participant → coordinator: VOTE.
    VoteMsg {
        /// Global transaction.
        txn: GlobalTxnId,
        /// Voting participant.
        from: SiteId,
        /// The vote.
        vote: Vote,
    },
    /// Coordinator → participant: DECISION.
    Decision {
        /// Global transaction.
        txn: GlobalTxnId,
        /// `true` = commit.
        commit: bool,
    },
    /// Participant → coordinator: decision acknowledged.
    DecisionAck {
        /// Global transaction.
        txn: GlobalTxnId,
        /// Acknowledging participant.
        from: SiteId,
    },
    /// Blocked participant → peer: cooperative-termination query (only sent
    /// when `termination_timeout` is configured; 2PC itself never needs it).
    TermReq {
        /// Global transaction.
        txn: GlobalTxnId,
        /// Asking participant.
        from: SiteId,
    },
    /// Peer → blocked participant: termination answer.
    TermAnswer {
        /// Global transaction.
        txn: GlobalTxnId,
        /// Answering peer.
        from: SiteId,
        /// The peer's state.
        state: PeerState,
    },
}

impl Msg {
    /// Metric label for message counting.
    pub fn label(&self) -> &'static str {
        match self {
            Msg::SpawnSubtxn { .. } => "msg.spawn",
            Msg::SubtxnAck { .. } => "msg.subtxn_ack",
            Msg::VoteReq { .. } => "msg.vote_req",
            Msg::VoteMsg { .. } => "msg.vote",
            Msg::Decision { .. } => "msg.decision",
            Msg::DecisionAck { .. } => "msg.decision_ack",
            Msg::TermReq { .. } => "msg.term_req",
            Msg::TermAnswer { .. } => "msg.term_answer",
        }
    }

    /// Counter label charged when the substrate loses this message at send
    /// time — the static twin of `format!("msg.dropped.{kind}")`, kept out
    /// of the per-send hot path.
    pub fn dropped_label(&self) -> &'static str {
        match self {
            Msg::SpawnSubtxn { .. } => "msg.dropped.spawn",
            Msg::SubtxnAck { .. } => "msg.dropped.subtxn_ack",
            Msg::VoteReq { .. } => "msg.dropped.vote_req",
            Msg::VoteMsg { .. } => "msg.dropped.vote",
            Msg::Decision { .. } => "msg.dropped.decision",
            Msg::DecisionAck { .. } => "msg.dropped.decision_ack",
            Msg::TermReq { .. } => "msg.dropped.term_req",
            Msg::TermAnswer { .. } => "msg.dropped.term_answer",
        }
    }

    /// Counter label charged when the substrate refuses this message because
    /// the destination has no route (crashed endpoint, shutdown) — kept
    /// separate from [`Msg::dropped_label`] so injected link loss and
    /// infrastructure unreachability reconcile independently. The simulator
    /// never produces these; they are a threaded-transport phenomenon.
    pub fn unroutable_label(&self) -> &'static str {
        match self {
            Msg::SpawnSubtxn { .. } => "msg.unroutable.spawn",
            Msg::SubtxnAck { .. } => "msg.unroutable.subtxn_ack",
            Msg::VoteReq { .. } => "msg.unroutable.vote_req",
            Msg::VoteMsg { .. } => "msg.unroutable.vote",
            Msg::Decision { .. } => "msg.unroutable.decision",
            Msg::DecisionAck { .. } => "msg.unroutable.decision_ack",
            Msg::TermReq { .. } => "msg.unroutable.term_req",
            Msg::TermAnswer { .. } => "msg.unroutable.term_answer",
        }
    }

    /// Is this one of the four standard 2PC message types?
    pub fn is_2pc(&self) -> bool {
        matches!(
            self,
            Msg::VoteReq { .. }
                | Msg::VoteMsg { .. }
                | Msg::Decision { .. }
                | Msg::DecisionAck { .. }
        )
    }

    /// The transaction the message concerns.
    pub fn txn(&self) -> GlobalTxnId {
        match *self {
            Msg::SpawnSubtxn { txn, .. }
            | Msg::SubtxnAck { txn, .. }
            | Msg::VoteReq { txn }
            | Msg::VoteMsg { txn, .. }
            | Msg::Decision { txn, .. }
            | Msg::DecisionAck { txn, .. }
            | Msg::TermReq { txn, .. }
            | Msg::TermAnswer { txn, .. } => txn,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_classification() {
        let g = GlobalTxnId(1);
        let msgs = [
            Msg::SpawnSubtxn {
                txn: g,
                ops: vec![],
            },
            Msg::SubtxnAck {
                txn: g,
                from: SiteId(0),
                ok: true,
            },
            Msg::VoteReq { txn: g },
            Msg::VoteMsg {
                txn: g,
                from: SiteId(0),
                vote: Vote::Yes,
            },
            Msg::Decision {
                txn: g,
                commit: true,
            },
            Msg::DecisionAck {
                txn: g,
                from: SiteId(0),
            },
        ];
        let labels: Vec<_> = msgs.iter().map(Msg::label).collect();
        assert_eq!(
            labels,
            vec![
                "msg.spawn",
                "msg.subtxn_ack",
                "msg.vote_req",
                "msg.vote",
                "msg.decision",
                "msg.decision_ack"
            ]
        );
        assert_eq!(msgs.iter().filter(|m| m.is_2pc()).count(), 4);
        assert!(msgs.iter().all(|m| m.txn() == g));
    }
}
