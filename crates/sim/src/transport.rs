//! A threaded, wall-clock transport over `crossbeam` channels.
//!
//! The deterministic simulator is the primary substrate, but the protocol
//! state machines in `o2pc-protocol` are pure (inputs in, actions out), so
//! they also run unchanged over a real asynchronous transport. This module
//! provides that second backend: every endpoint gets a mailbox; `send`
//! optionally delays delivery on a router thread to emulate latency. The
//! `threaded_transport` example drives a full commit round over it.

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use o2pc_common::SiteId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::thread;
use std::time::Duration as StdDuration;

/// One addressed message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sender endpoint.
    pub from: SiteId,
    /// Destination endpoint.
    pub to: SiteId,
    /// Payload.
    pub msg: M,
}

/// A threaded in-process network: endpoints register mailboxes; sends are
/// routed (with optional latency) on dedicated delivery threads.
pub struct ThreadedTransport<M> {
    mailboxes: Arc<Mutex<HashMap<SiteId, Sender<Envelope<M>>>>>,
    latency: StdDuration,
}

impl<M: Send + 'static> Default for ThreadedTransport<M> {
    fn default() -> Self {
        Self::new(StdDuration::ZERO)
    }
}

impl<M: Send + 'static> ThreadedTransport<M> {
    /// Create a transport applying `latency` to every delivery.
    pub fn new(latency: StdDuration) -> Self {
        ThreadedTransport { mailboxes: Arc::new(Mutex::new(HashMap::new())), latency }
    }

    /// Register an endpoint, returning its receiving side.
    pub fn register(&self, id: SiteId) -> Receiver<Envelope<M>> {
        let (tx, rx) = unbounded();
        let previous = self.mailboxes.lock().insert(id, tx);
        assert!(previous.is_none(), "endpoint {id} registered twice");
        rx
    }

    /// Remove an endpoint (simulates a crash: subsequent sends are dropped).
    pub fn deregister(&self, id: SiteId) {
        self.mailboxes.lock().remove(&id);
    }

    /// Send `msg` from `from` to `to`. Returns `false` if the destination is
    /// not registered (message dropped, like a crashed site).
    pub fn send(&self, from: SiteId, to: SiteId, msg: M) -> bool {
        let tx = match self.mailboxes.lock().get(&to) {
            Some(tx) => tx.clone(),
            None => return false,
        };
        let env = Envelope { from, to, msg };
        if self.latency.is_zero() {
            tx.send(env).is_ok()
        } else {
            let latency = self.latency;
            thread::spawn(move || {
                thread::sleep(latency);
                let _ = tx.send(env);
            });
            true
        }
    }
}

/// Receive with a timeout, mapping the channel error space onto an Option.
pub fn recv_timeout<M>(rx: &Receiver<Envelope<M>>, timeout: StdDuration) -> Option<Envelope<M>> {
    match rx.recv_timeout(timeout) {
        Ok(env) => Some(env),
        Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_delivery() {
        let t: ThreadedTransport<&'static str> = ThreadedTransport::default();
        let rx0 = t.register(SiteId(0));
        let _rx1 = t.register(SiteId(1));
        assert!(t.send(SiteId(1), SiteId(0), "hello"));
        let env = recv_timeout(&rx0, StdDuration::from_secs(1)).unwrap();
        assert_eq!(env.from, SiteId(1));
        assert_eq!(env.msg, "hello");
    }

    #[test]
    fn send_to_unregistered_is_dropped() {
        let t: ThreadedTransport<u32> = ThreadedTransport::default();
        let _rx = t.register(SiteId(0));
        assert!(!t.send(SiteId(0), SiteId(9), 1));
    }

    #[test]
    fn deregister_simulates_crash() {
        let t: ThreadedTransport<u32> = ThreadedTransport::default();
        let _rx0 = t.register(SiteId(0));
        let rx1 = t.register(SiteId(1));
        t.deregister(SiteId(1));
        assert!(!t.send(SiteId(0), SiteId(1), 7));
        assert!(recv_timeout(&rx1, StdDuration::from_millis(20)).is_none());
    }

    #[test]
    fn latency_delays_but_delivers() {
        let t: ThreadedTransport<u32> = ThreadedTransport::new(StdDuration::from_millis(20));
        let rx = t.register(SiteId(0));
        let _ = t.register(SiteId(1));
        let start = std::time::Instant::now();
        assert!(t.send(SiteId(1), SiteId(0), 42));
        let env = recv_timeout(&rx, StdDuration::from_secs(2)).unwrap();
        assert_eq!(env.msg, 42);
        assert!(start.elapsed() >= StdDuration::from_millis(15));
    }

    #[test]
    fn many_messages_preserve_channel_order_without_latency() {
        let t: ThreadedTransport<u32> = ThreadedTransport::default();
        let rx = t.register(SiteId(0));
        let _ = t.register(SiteId(1));
        for i in 0..100 {
            assert!(t.send(SiteId(1), SiteId(0), i));
        }
        for i in 0..100 {
            assert_eq!(recv_timeout(&rx, StdDuration::from_secs(1)).unwrap().msg, i);
        }
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn double_registration_panics() {
        let t: ThreadedTransport<u32> = ThreadedTransport::default();
        let _a = t.register(SiteId(0));
        let _b = t.register(SiteId(0));
    }
}
