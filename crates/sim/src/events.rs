//! The discrete-event queue.

use o2pc_common::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered event queue. Events scheduled for the same instant pop in
/// FIFO order (a strictly increasing sequence number breaks ties), which
/// keeps runs deterministic regardless of heap internals.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: SimTime,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// New empty queue at time zero. Pre-sizes the heap: engine runs keep
    /// hundreds of timers and in-flight messages live, and growing the heap
    /// through the doubling sequence on every fresh run is pure overhead.
    pub fn new() -> Self {
        Self::with_capacity(1024)
    }

    /// New empty queue with an explicit initial heap capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The virtual time of the most recently popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`. Scheduling in the past is a
    /// logic error (events would appear to travel back in time).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduled event in the past: {at:?} < {:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry {
            time: at.max(self.now),
            seq,
            event,
        }));
    }

    /// Pop the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| {
            self.now = e.time;
            (e.time, e.event)
        })
    }

    /// Time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2pc_common::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.now(), SimTime(20));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((SimTime(5), i)));
        }
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), ());
        q.pop();
        // Scheduling relative to `now`.
        let next = q.now() + Duration::micros(5);
        q.schedule(next, ());
        assert_eq!(q.pop(), Some((SimTime(15), ())));
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime(7), 1);
        q.schedule(SimTime(3), 2);
        assert_eq!(q.peek_time(), Some(SimTime(3)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    #[cfg(debug_assertions)]
    fn scheduling_in_the_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), ());
        q.pop();
        q.schedule(SimTime(5), ());
    }
}
