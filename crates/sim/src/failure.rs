//! Scripted failure injection.
//!
//! The paper's motivation is precisely the behaviour of 2PC *under failures*
//! ("the length of time these locks are held can be unbounded"). The failure
//! plan scripts site crashes and link outages at virtual times so experiment
//! E4 can crash a coordinator at its decision point deterministically.

use o2pc_common::{SimTime, SiteId};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Window {
    from: SimTime,
    to: SimTime,
}

impl Window {
    fn contains(&self, t: SimTime) -> bool {
        self.from <= t && t < self.to
    }
}

/// A scripted set of site crashes and link outages.
#[derive(Clone, Debug, Default)]
pub struct FailurePlan {
    site_down: Vec<(SiteId, Window)>,
    link_down: Vec<((SiteId, SiteId), Window)>,
}

impl FailurePlan {
    /// New empty plan (nothing ever fails).
    pub fn new() -> Self {
        Self::default()
    }

    /// Crash `site` during `[from, to)`; it recovers at `to` (with its WAL
    /// intact — recovery is the site's problem, scheduling it is the
    /// engine's).
    pub fn site_crash(&mut self, site: SiteId, from: SimTime, to: SimTime) {
        assert!(from < to, "empty crash window");
        self.site_down.push((site, Window { from, to }));
    }

    /// Take the (bidirectional) link between `a` and `b` down during
    /// `[from, to)`.
    pub fn link_outage(&mut self, a: SiteId, b: SiteId, from: SimTime, to: SimTime) {
        assert!(from < to, "empty outage window");
        let key = if a <= b { (a, b) } else { (b, a) };
        self.link_down.push((key, Window { from, to }));
    }

    /// Is `site` up at time `t`?
    pub fn site_up(&self, site: SiteId, t: SimTime) -> bool {
        !self
            .site_down
            .iter()
            .any(|&(s, w)| s == site && w.contains(t))
    }

    /// Is the link `a ↔ b` usable at time `t`? (Requires both endpoints up
    /// and no outage on the link.)
    pub fn link_up(&self, a: SiteId, b: SiteId, t: SimTime) -> bool {
        if !self.site_up(a, t) || !self.site_up(b, t) {
            return false;
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        !self
            .link_down
            .iter()
            .any(|&(k, w)| k == key && w.contains(t))
    }

    /// The time `site` next recovers at or after `t`, if it is down at `t`.
    pub fn recovery_time(&self, site: SiteId, t: SimTime) -> Option<SimTime> {
        self.site_down
            .iter()
            .filter(|&&(s, w)| s == site && w.contains(t))
            .map(|&(_, w)| w.to)
            .max()
    }

    /// All scripted crash windows (engine schedules crash/recover events).
    pub fn crashes(&self) -> impl Iterator<Item = (SiteId, SimTime, SimTime)> + '_ {
        self.site_down.iter().map(|&(s, w)| (s, w.from, w.to))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_windows() {
        let mut p = FailurePlan::new();
        p.site_crash(SiteId(1), SimTime(100), SimTime(200));
        assert!(p.site_up(SiteId(1), SimTime(99)));
        assert!(!p.site_up(SiteId(1), SimTime(100)));
        assert!(!p.site_up(SiteId(1), SimTime(199)));
        assert!(
            p.site_up(SiteId(1), SimTime(200)),
            "recovered at window end"
        );
        assert!(p.site_up(SiteId(0), SimTime(150)), "other sites unaffected");
        assert_eq!(p.recovery_time(SiteId(1), SimTime(150)), Some(SimTime(200)));
        assert_eq!(p.recovery_time(SiteId(1), SimTime(250)), None);
    }

    #[test]
    fn link_symmetry_and_endpoint_liveness() {
        let mut p = FailurePlan::new();
        p.link_outage(SiteId(2), SiteId(0), SimTime(10), SimTime(20));
        assert!(!p.link_up(SiteId(0), SiteId(2), SimTime(15)));
        assert!(!p.link_up(SiteId(2), SiteId(0), SimTime(15)));
        assert!(p.link_up(SiteId(0), SiteId(2), SimTime(25)));
        // A crashed endpoint takes the link down implicitly.
        p.site_crash(SiteId(0), SimTime(30), SimTime(40));
        assert!(!p.link_up(SiteId(0), SiteId(2), SimTime(35)));
    }

    #[test]
    fn overlapping_crashes_take_latest_recovery() {
        let mut p = FailurePlan::new();
        p.site_crash(SiteId(1), SimTime(10), SimTime(50));
        p.site_crash(SiteId(1), SimTime(30), SimTime(80));
        assert_eq!(p.recovery_time(SiteId(1), SimTime(35)), Some(SimTime(80)));
        assert_eq!(p.crashes().count(), 2);
    }

    #[test]
    #[should_panic(expected = "empty crash window")]
    fn empty_window_rejected() {
        let mut p = FailurePlan::new();
        p.site_crash(SiteId(0), SimTime(5), SimTime(5));
    }
}
