//! The simulated network: latency models, loss, and partitions.

use crate::failure::FailurePlan;
use o2pc_common::{DetRng, Duration, SimTime, SiteId};
use std::collections::HashMap;

/// How long a message takes on a link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LatencyModel {
    /// Constant latency.
    Fixed(Duration),
    /// Uniform in `[lo, hi]`.
    Uniform(Duration, Duration),
    /// Exponential with the given mean, capped at 10× the mean (keeps the
    /// virtual clock well-behaved without changing the distribution shape
    /// meaningfully).
    Exponential(Duration),
}

impl LatencyModel {
    /// Draw one latency sample.
    pub fn sample(&self, rng: &mut DetRng) -> Duration {
        match *self {
            LatencyModel::Fixed(d) => d,
            LatencyModel::Uniform(lo, hi) => {
                debug_assert!(lo <= hi);
                Duration::micros(rng.gen_range_inclusive(lo.as_micros(), hi.as_micros()))
            }
            LatencyModel::Exponential(mean) => {
                let cap = mean.as_micros().saturating_mul(10);
                let v = rng.gen_exp(mean.as_micros() as f64) as u64;
                Duration::micros(v.min(cap))
            }
        }
    }

    /// Mean of the model (exact).
    pub fn mean(&self) -> Duration {
        match *self {
            LatencyModel::Fixed(d) => d,
            LatencyModel::Uniform(lo, hi) => {
                Duration::micros((lo.as_micros() + hi.as_micros()) / 2)
            }
            LatencyModel::Exponential(mean) => mean,
        }
    }
}

/// Static configuration of the simulated network.
#[derive(Clone, Debug)]
pub struct NetworkConfig {
    /// Latency applied to every link without an override.
    pub default_latency: LatencyModel,
    /// Per-ordered-link overrides.
    pub link_latency: HashMap<(SiteId, SiteId), LatencyModel>,
    /// Probability that any given message is dropped (0.0 = reliable).
    pub drop_probability: f64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            default_latency: LatencyModel::Fixed(Duration::millis(1)),
            link_latency: HashMap::new(),
            drop_probability: 0.0,
        }
    }
}

impl NetworkConfig {
    /// Reliable network with a fixed latency everywhere.
    pub fn fixed(latency: Duration) -> Self {
        NetworkConfig {
            default_latency: LatencyModel::Fixed(latency),
            ..Default::default()
        }
    }
}

/// The live network: configuration + RNG stream + failure plan.
#[derive(Clone, Debug)]
pub struct Network {
    config: NetworkConfig,
    rng: DetRng,
    failures: FailurePlan,
    sent: u64,
    dropped: u64,
}

impl Network {
    /// Build a network from configuration and a dedicated RNG stream.
    pub fn new(config: NetworkConfig, rng: DetRng) -> Self {
        Network {
            config,
            rng,
            failures: FailurePlan::new(),
            sent: 0,
            dropped: 0,
        }
    }

    /// Attach a failure plan (site crashes / link outages).
    pub fn with_failures(mut self, failures: FailurePlan) -> Self {
        self.failures = failures;
        self
    }

    /// The failure plan (engine queries site liveness through it too).
    pub fn failures(&self) -> &FailurePlan {
        &self.failures
    }

    /// Decide the fate of a message sent `from → to` at time `now`:
    /// `Some(delay)` = deliver after `delay`; `None` = lost (link down,
    /// partition, or random drop). Destination-site liveness is checked at
    /// *send* time by the link test; the engine re-checks at delivery (the
    /// site may crash in flight).
    pub fn transmit(&mut self, from: SiteId, to: SiteId, now: SimTime) -> Option<Duration> {
        self.sent += 1;
        if !self.failures.link_up(from, to, now) {
            self.dropped += 1;
            return None;
        }
        if self.config.drop_probability > 0.0 && self.rng.gen_bool(self.config.drop_probability) {
            self.dropped += 1;
            return None;
        }
        let model = self
            .config
            .link_latency
            .get(&(from, to))
            .copied()
            .unwrap_or(self.config.default_latency);
        Some(model.sample(&mut self.rng))
    }

    /// Messages handed to the network so far.
    pub fn sent_count(&self) -> u64 {
        self.sent
    }

    /// Messages lost so far.
    pub fn dropped_count(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::new(7)
    }

    #[test]
    fn fixed_latency() {
        let mut n = Network::new(NetworkConfig::fixed(Duration::millis(2)), rng());
        let d = n.transmit(SiteId(0), SiteId(1), SimTime::ZERO).unwrap();
        assert_eq!(d, Duration::millis(2));
        assert_eq!(n.sent_count(), 1);
        assert_eq!(n.dropped_count(), 0);
    }

    #[test]
    fn uniform_latency_in_bounds() {
        let cfg = NetworkConfig {
            default_latency: LatencyModel::Uniform(Duration::micros(100), Duration::micros(200)),
            ..Default::default()
        };
        let mut n = Network::new(cfg, rng());
        for _ in 0..1000 {
            let d = n.transmit(SiteId(0), SiteId(1), SimTime::ZERO).unwrap();
            assert!((100..=200).contains(&d.as_micros()), "{d:?}");
        }
    }

    #[test]
    fn exponential_latency_mean_and_cap() {
        let model = LatencyModel::Exponential(Duration::micros(500));
        let mut r = rng();
        let n = 100_000;
        let mut sum = 0u64;
        for _ in 0..n {
            let d = model.sample(&mut r);
            assert!(d.as_micros() <= 5000, "cap at 10x mean");
            sum += d.as_micros();
        }
        let mean = sum as f64 / n as f64;
        assert!((mean - 500.0).abs() < 15.0, "mean {mean}");
        assert_eq!(model.mean(), Duration::micros(500));
    }

    #[test]
    fn per_link_override() {
        let mut cfg = NetworkConfig::fixed(Duration::millis(1));
        cfg.link_latency.insert(
            (SiteId(0), SiteId(2)),
            LatencyModel::Fixed(Duration::millis(50)),
        );
        let mut n = Network::new(cfg, rng());
        assert_eq!(
            n.transmit(SiteId(0), SiteId(1), SimTime::ZERO),
            Some(Duration::millis(1))
        );
        assert_eq!(
            n.transmit(SiteId(0), SiteId(2), SimTime::ZERO),
            Some(Duration::millis(50))
        );
        // Overrides are directional.
        assert_eq!(
            n.transmit(SiteId(2), SiteId(0), SimTime::ZERO),
            Some(Duration::millis(1))
        );
    }

    #[test]
    fn random_drops_counted() {
        let cfg = NetworkConfig {
            drop_probability: 0.5,
            ..NetworkConfig::fixed(Duration::millis(1))
        };
        let mut n = Network::new(cfg, rng());
        let mut delivered = 0;
        for _ in 0..10_000 {
            if n.transmit(SiteId(0), SiteId(1), SimTime::ZERO).is_some() {
                delivered += 1;
            }
        }
        assert_eq!(n.sent_count(), 10_000);
        assert_eq!(n.dropped_count() + delivered, 10_000);
        let rate = delivered as f64 / 10_000.0;
        assert!((rate - 0.5).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn link_outage_blocks_messages() {
        let mut plan = FailurePlan::new();
        plan.link_outage(SiteId(0), SiteId(1), SimTime(100), SimTime(200));
        let mut n =
            Network::new(NetworkConfig::fixed(Duration::millis(1)), rng()).with_failures(plan);
        assert!(n.transmit(SiteId(0), SiteId(1), SimTime(50)).is_some());
        assert!(n.transmit(SiteId(0), SiteId(1), SimTime(150)).is_none());
        assert!(
            n.transmit(SiteId(1), SiteId(0), SimTime(150)).is_none(),
            "outage is symmetric"
        );
        assert!(n.transmit(SiteId(0), SiteId(1), SimTime(250)).is_some());
    }

    #[test]
    fn crashed_site_cannot_receive() {
        let mut plan = FailurePlan::new();
        plan.site_crash(SiteId(1), SimTime(100), SimTime(300));
        let mut n =
            Network::new(NetworkConfig::fixed(Duration::millis(1)), rng()).with_failures(plan);
        assert!(n.transmit(SiteId(0), SiteId(1), SimTime(150)).is_none());
        assert!(n.transmit(SiteId(0), SiteId(1), SimTime(350)).is_some());
    }
}
