//! The simulated network: latency models, loss, and partitions.

use crate::failure::FailurePlan;
use o2pc_common::{DetRng, Duration, SimTime, SiteId};
use std::collections::HashMap;

/// How long a message takes on a link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LatencyModel {
    /// Constant latency.
    Fixed(Duration),
    /// Uniform in `[lo, hi]`.
    Uniform(Duration, Duration),
    /// Exponential with the given mean, capped at 10× the mean (keeps the
    /// virtual clock well-behaved without changing the distribution shape
    /// meaningfully).
    Exponential(Duration),
}

impl LatencyModel {
    /// Draw one latency sample.
    pub fn sample(&self, rng: &mut DetRng) -> Duration {
        match *self {
            LatencyModel::Fixed(d) => d,
            LatencyModel::Uniform(lo, hi) => {
                debug_assert!(lo <= hi);
                Duration::micros(rng.gen_range_inclusive(lo.as_micros(), hi.as_micros()))
            }
            LatencyModel::Exponential(mean) => {
                let cap = mean.as_micros().saturating_mul(10);
                let v = rng.gen_exp(mean.as_micros() as f64) as u64;
                Duration::micros(v.min(cap))
            }
        }
    }

    /// Mean of the model (exact).
    pub fn mean(&self) -> Duration {
        match *self {
            LatencyModel::Fixed(d) => d,
            LatencyModel::Uniform(lo, hi) => {
                Duration::micros((lo.as_micros() + hi.as_micros()) / 2)
            }
            LatencyModel::Exponential(mean) => mean,
        }
    }
}

/// A time-windowed message-level fault injection layer: additional random
/// loss, duplication, and delay jitter applied on top of the base network
/// model while active. The window closing (`until`) is the *heal* point —
/// after it the network behaves exactly as the base configuration, which is
/// what makes liveness-under-quiescence a checkable invariant.
#[derive(Clone, Copy, Debug)]
pub struct MessageChaos {
    /// Extra per-message drop probability while active.
    pub drop_probability: f64,
    /// Probability that a delivered message is also delivered a second time
    /// (with an independently sampled latency).
    pub duplicate_probability: f64,
    /// Extra delay added to every delivery while active.
    pub extra_delay: Option<LatencyModel>,
    /// Chaos is active for sends at `t < until`; `None` = never heals.
    pub until: Option<SimTime>,
}

impl MessageChaos {
    /// Is the chaos window open at `t`?
    pub fn active(&self, t: SimTime) -> bool {
        match self.until {
            Some(until) => t < until,
            None => true,
        }
    }
}

/// Static configuration of the simulated network.
#[derive(Clone, Debug)]
pub struct NetworkConfig {
    /// Latency applied to every link without an override.
    pub default_latency: LatencyModel,
    /// Per-ordered-link overrides.
    pub link_latency: HashMap<(SiteId, SiteId), LatencyModel>,
    /// Probability that any given message is dropped (0.0 = reliable).
    pub drop_probability: f64,
    /// Optional windowed fault layer (extra loss / duplication / jitter).
    pub chaos: Option<MessageChaos>,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            default_latency: LatencyModel::Fixed(Duration::millis(1)),
            link_latency: HashMap::new(),
            drop_probability: 0.0,
            chaos: None,
        }
    }
}

impl NetworkConfig {
    /// Reliable network with a fixed latency everywhere.
    pub fn fixed(latency: Duration) -> Self {
        NetworkConfig {
            default_latency: LatencyModel::Fixed(latency),
            ..Default::default()
        }
    }
}

/// The live network: configuration + RNG stream + failure plan.
#[derive(Clone, Debug)]
pub struct Network {
    config: NetworkConfig,
    rng: DetRng,
    failures: FailurePlan,
    sent: u64,
    dropped: u64,
    duplicated: u64,
}

impl Network {
    /// Build a network from configuration and a dedicated RNG stream.
    pub fn new(config: NetworkConfig, rng: DetRng) -> Self {
        Network {
            config,
            rng,
            failures: FailurePlan::new(),
            sent: 0,
            dropped: 0,
            duplicated: 0,
        }
    }

    /// Attach a failure plan (site crashes / link outages).
    pub fn with_failures(mut self, failures: FailurePlan) -> Self {
        self.failures = failures;
        self
    }

    /// The failure plan (engine queries site liveness through it too).
    pub fn failures(&self) -> &FailurePlan {
        &self.failures
    }

    /// Decide the fate of a message sent `from → to` at time `now`:
    /// `Some(delay)` = deliver after `delay`; `None` = lost (link down,
    /// partition, or random drop). Destination-site liveness is checked at
    /// *send* time by the link test; the engine re-checks at delivery (the
    /// site may crash in flight).
    pub fn transmit(&mut self, from: SiteId, to: SiteId, now: SimTime) -> Option<Duration> {
        self.sent += 1;
        if !self.failures.link_up(from, to, now) {
            self.dropped += 1;
            return None;
        }
        if self.config.drop_probability > 0.0 && self.rng.gen_bool(self.config.drop_probability) {
            self.dropped += 1;
            return None;
        }
        let chaos = self.config.chaos.filter(|c| c.active(now));
        if let Some(c) = chaos {
            if c.drop_probability > 0.0 && self.rng.gen_bool(c.drop_probability) {
                self.dropped += 1;
                return None;
            }
        }
        Some(self.sample_delay(from, to, chaos))
    }

    /// Decide whether the message just accepted by [`Network::transmit`] is
    /// *also* delivered a second time (chaos duplication). Returns the
    /// independently sampled latency of the duplicate. Call at most once per
    /// successful `transmit`.
    pub fn maybe_duplicate(&mut self, from: SiteId, to: SiteId, now: SimTime) -> Option<Duration> {
        let chaos = self.config.chaos.filter(|c| c.active(now))?;
        if chaos.duplicate_probability > 0.0 && self.rng.gen_bool(chaos.duplicate_probability) {
            self.duplicated += 1;
            Some(self.sample_delay(from, to, Some(chaos)))
        } else {
            None
        }
    }

    fn sample_delay(&mut self, from: SiteId, to: SiteId, chaos: Option<MessageChaos>) -> Duration {
        let model = self
            .config
            .link_latency
            .get(&(from, to))
            .copied()
            .unwrap_or(self.config.default_latency);
        let mut delay = model.sample(&mut self.rng);
        if let Some(extra) = chaos.and_then(|c| c.extra_delay) {
            delay += extra.sample(&mut self.rng);
        }
        delay
    }

    /// Messages handed to the network so far.
    pub fn sent_count(&self) -> u64 {
        self.sent
    }

    /// Messages lost so far.
    pub fn dropped_count(&self) -> u64 {
        self.dropped
    }

    /// Chaos-duplicated deliveries so far.
    pub fn duplicated_count(&self) -> u64 {
        self.duplicated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::new(7)
    }

    #[test]
    fn fixed_latency() {
        let mut n = Network::new(NetworkConfig::fixed(Duration::millis(2)), rng());
        let d = n.transmit(SiteId(0), SiteId(1), SimTime::ZERO).unwrap();
        assert_eq!(d, Duration::millis(2));
        assert_eq!(n.sent_count(), 1);
        assert_eq!(n.dropped_count(), 0);
    }

    #[test]
    fn uniform_latency_in_bounds() {
        let cfg = NetworkConfig {
            default_latency: LatencyModel::Uniform(Duration::micros(100), Duration::micros(200)),
            ..Default::default()
        };
        let mut n = Network::new(cfg, rng());
        for _ in 0..1000 {
            let d = n.transmit(SiteId(0), SiteId(1), SimTime::ZERO).unwrap();
            assert!((100..=200).contains(&d.as_micros()), "{d:?}");
        }
    }

    #[test]
    fn exponential_latency_mean_and_cap() {
        let model = LatencyModel::Exponential(Duration::micros(500));
        let mut r = rng();
        let n = 100_000;
        let mut sum = 0u64;
        for _ in 0..n {
            let d = model.sample(&mut r);
            assert!(d.as_micros() <= 5000, "cap at 10x mean");
            sum += d.as_micros();
        }
        let mean = sum as f64 / n as f64;
        assert!((mean - 500.0).abs() < 15.0, "mean {mean}");
        assert_eq!(model.mean(), Duration::micros(500));
    }

    #[test]
    fn per_link_override() {
        let mut cfg = NetworkConfig::fixed(Duration::millis(1));
        cfg.link_latency.insert(
            (SiteId(0), SiteId(2)),
            LatencyModel::Fixed(Duration::millis(50)),
        );
        let mut n = Network::new(cfg, rng());
        assert_eq!(
            n.transmit(SiteId(0), SiteId(1), SimTime::ZERO),
            Some(Duration::millis(1))
        );
        assert_eq!(
            n.transmit(SiteId(0), SiteId(2), SimTime::ZERO),
            Some(Duration::millis(50))
        );
        // Overrides are directional.
        assert_eq!(
            n.transmit(SiteId(2), SiteId(0), SimTime::ZERO),
            Some(Duration::millis(1))
        );
    }

    #[test]
    fn random_drops_counted() {
        let cfg = NetworkConfig {
            drop_probability: 0.5,
            ..NetworkConfig::fixed(Duration::millis(1))
        };
        let mut n = Network::new(cfg, rng());
        let mut delivered = 0;
        for _ in 0..10_000 {
            if n.transmit(SiteId(0), SiteId(1), SimTime::ZERO).is_some() {
                delivered += 1;
            }
        }
        assert_eq!(n.sent_count(), 10_000);
        assert_eq!(n.dropped_count() + delivered, 10_000);
        let rate = delivered as f64 / 10_000.0;
        assert!((rate - 0.5).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn chaos_window_drops_and_duplicates_until_heal() {
        let cfg = NetworkConfig {
            chaos: Some(MessageChaos {
                drop_probability: 0.3,
                duplicate_probability: 0.3,
                extra_delay: None,
                until: Some(SimTime(1_000)),
            }),
            ..NetworkConfig::fixed(Duration::millis(1))
        };
        let mut n = Network::new(cfg, rng());
        let mut delivered = 0u64;
        let mut dups = 0u64;
        for _ in 0..10_000 {
            if n.transmit(SiteId(0), SiteId(1), SimTime(500)).is_some() {
                delivered += 1;
                if n.maybe_duplicate(SiteId(0), SiteId(1), SimTime(500))
                    .is_some()
                {
                    dups += 1;
                }
            }
        }
        assert_eq!(delivered + n.dropped_count(), 10_000);
        assert_eq!(n.duplicated_count(), dups);
        let drop_rate = n.dropped_count() as f64 / 10_000.0;
        assert!((drop_rate - 0.3).abs() < 0.03, "drop rate {drop_rate}");
        let dup_rate = dups as f64 / delivered as f64;
        assert!((dup_rate - 0.3).abs() < 0.03, "dup rate {dup_rate}");
        // Past the heal point the base (reliable) model is back.
        for _ in 0..1000 {
            assert!(n.transmit(SiteId(0), SiteId(1), SimTime(2_000)).is_some());
            assert!(n
                .maybe_duplicate(SiteId(0), SiteId(1), SimTime(2_000))
                .is_none());
        }
    }

    #[test]
    fn chaos_extra_delay_inflates_latency() {
        let cfg = NetworkConfig {
            chaos: Some(MessageChaos {
                drop_probability: 0.0,
                duplicate_probability: 0.0,
                extra_delay: Some(LatencyModel::Fixed(Duration::millis(7))),
                until: None,
            }),
            ..NetworkConfig::fixed(Duration::millis(1))
        };
        let mut n = Network::new(cfg, rng());
        let d = n.transmit(SiteId(0), SiteId(1), SimTime::ZERO).unwrap();
        assert_eq!(d, Duration::millis(8));
    }

    #[test]
    fn link_outage_blocks_messages() {
        let mut plan = FailurePlan::new();
        plan.link_outage(SiteId(0), SiteId(1), SimTime(100), SimTime(200));
        let mut n =
            Network::new(NetworkConfig::fixed(Duration::millis(1)), rng()).with_failures(plan);
        assert!(n.transmit(SiteId(0), SiteId(1), SimTime(50)).is_some());
        assert!(n.transmit(SiteId(0), SiteId(1), SimTime(150)).is_none());
        assert!(
            n.transmit(SiteId(1), SiteId(0), SimTime(150)).is_none(),
            "outage is symmetric"
        );
        assert!(n.transmit(SiteId(0), SiteId(1), SimTime(250)).is_some());
    }

    #[test]
    fn crashed_site_cannot_receive() {
        let mut plan = FailurePlan::new();
        plan.site_crash(SiteId(1), SimTime(100), SimTime(300));
        let mut n =
            Network::new(NetworkConfig::fixed(Duration::millis(1)), rng()).with_failures(plan);
        assert!(n.transmit(SiteId(0), SiteId(1), SimTime(150)).is_none());
        assert!(n.transmit(SiteId(0), SiteId(1), SimTime(350)).is_some());
    }
}
