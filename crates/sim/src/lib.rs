//! # o2pc-sim
//!
//! The deterministic discrete-event substrate on which the distributed
//! engine runs. This replaces a real network/runtime (the paper's testbed
//! would have been an R\*-era distributed system): all protocol-visible
//! delays — message latency, operation service time, lock-hold windows,
//! blocking intervals — happen on a virtual clock, so every experiment is
//! reproducible bit-for-bit from its seed, and pathological schedules (the
//! unbounded 2PC blocking window of experiment E4) can be measured rather
//! than waited out.
//!
//! * [`events`] — the time-ordered event queue (stable FIFO among
//!   simultaneous events).
//! * [`network`] — per-link latency models (fixed / uniform / exponential),
//!   message loss, and partitions.
//! * [`failure`] — scripted site-crash and link-outage plans.
//!
//! The wall-clock (threaded) substrate lives in `o2pc-runtime`, which wraps
//! this crate's event queue and network behind the same `Runtime` trait the
//! engine is generic over.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod failure;
pub mod network;

pub use events::EventQueue;
pub use failure::FailurePlan;
pub use network::{LatencyModel, MessageChaos, Network, NetworkConfig};
