//! Simulator-level determinism and distribution sanity.

use o2pc_common::{DetRng, Duration, SimTime, SiteId};
use o2pc_sim::{EventQueue, FailurePlan, LatencyModel, Network, NetworkConfig};

#[test]
fn network_streams_are_seed_deterministic() {
    let cfg = NetworkConfig {
        default_latency: LatencyModel::Exponential(Duration::micros(700)),
        drop_probability: 0.1,
        ..Default::default()
    };
    let mut a = Network::new(cfg.clone(), DetRng::new(99));
    let mut b = Network::new(cfg, DetRng::new(99));
    for i in 0..5_000u64 {
        let from = SiteId((i % 4) as u32);
        let to = SiteId(((i + 1) % 4) as u32);
        assert_eq!(
            a.transmit(from, to, SimTime(i)),
            b.transmit(from, to, SimTime(i))
        );
    }
    assert_eq!(a.dropped_count(), b.dropped_count());
}

#[test]
fn event_queue_is_stable_under_interleaved_scheduling() {
    // Schedule from two "producers" with interleaved times; the pop order
    // must be fully determined by (time, insertion order).
    let mut q = EventQueue::new();
    for i in 0..100u64 {
        q.schedule(SimTime(i / 2), ("a", i));
        q.schedule(SimTime(i / 2), ("b", i));
    }
    let mut last = (SimTime::ZERO, 0u64);
    let mut seq = Vec::new();
    while let Some((t, e)) = q.pop() {
        assert!(t >= last.0);
        last = (t, e.1);
        seq.push(e);
    }
    // Within one timestamp, insertion order: a_i before b_i before a_{i+1}.
    for w in seq.chunks(4) {
        if w.len() == 4 {
            assert_eq!(w[0].0, "a");
            assert_eq!(w[1].0, "b");
        }
    }
}

#[test]
fn failure_plan_composition() {
    let mut p = FailurePlan::new();
    p.site_crash(SiteId(0), SimTime(10), SimTime(20));
    p.link_outage(SiteId(1), SiteId(2), SimTime(5), SimTime(15));
    // Independent failures compose.
    assert!(!p.link_up(SiteId(1), SiteId(2), SimTime(10)));
    assert!(!p.link_up(SiteId(0), SiteId(1), SimTime(10)), "site 0 down");
    assert!(p.link_up(SiteId(1), SiteId(2), SimTime(16)));
    assert!(p.link_up(SiteId(0), SiteId(1), SimTime(25)));
}

#[test]
fn latency_models_differ_but_reproduce() {
    for model in [
        LatencyModel::Fixed(Duration::micros(500)),
        LatencyModel::Uniform(Duration::micros(100), Duration::micros(900)),
        LatencyModel::Exponential(Duration::micros(500)),
    ] {
        let mut r1 = DetRng::new(5);
        let mut r2 = DetRng::new(5);
        for _ in 0..1000 {
            assert_eq!(model.sample(&mut r1), model.sample(&mut r2));
        }
        assert_eq!(model.mean(), Duration::micros(500));
    }
}
