//! End-to-end chaos harness tests: hardened runs survive randomized fault
//! schedules, the deliberately-fragile engine is caught by the oracle
//! (negative control), and garbage collection keeps memory bounded.

use o2pc_chaos::{run_plan, ChaosConfig, ChaosPlan, Hardening, Violation};

/// A block of seeded schedules, fully hardened: zero oracle violations.
#[test]
fn hardened_runs_survive_a_seed_block() {
    let cfg = ChaosConfig::default();
    let mut crashed_coordinator = false;
    for seed in 0..25 {
        let plan = ChaosPlan::generate(seed, &cfg);
        let outcome = run_plan(&plan, Hardening::default());
        assert!(
            outcome.survived(),
            "seed {seed} violated invariants: {:?}\nplan:\n{}",
            outcome.violations,
            plan.describe()
        );
        crashed_coordinator |= outcome.crashed_a_coordinator;
    }
    assert!(
        crashed_coordinator,
        "the seed block never crashed a coordinator-hosting site"
    );
}

/// Negative control: with retransmission and termination retry disabled
/// (the classic send-once engine), randomized loss + crash schedules must
/// produce oracle violations — proving the oracle can actually see the
/// failure modes the hardening exists to fix. Pinned so the harness itself
/// is regression-tested: if this starts passing cleanly, the oracle went
/// blind.
#[test]
fn send_once_engine_is_caught_by_the_oracle() {
    let cfg = ChaosConfig::default();
    let mut violations = 0usize;
    for seed in 0..25 {
        let plan = ChaosPlan::generate(seed, &cfg);
        let outcome = run_plan(&plan, Hardening::none());
        violations += outcome.violations.len();
    }
    assert!(
        violations > 0,
        "hardening off yet no violations over the seed block: the oracle is blind"
    );
}

/// Disabling only retransmission (termination still on) must also be
/// caught: a lost DECISION leaves a participant in doubt or the
/// coordinator waiting for acks forever.
#[test]
fn never_retransmit_decisions_is_caught() {
    let cfg = ChaosConfig::default();
    let no_retx = Hardening {
        retransmit: false,
        termination: true,
    };
    let mut liveness_violations = 0usize;
    for seed in 0..40 {
        let plan = ChaosPlan::generate(seed, &cfg);
        let outcome = run_plan(&plan, no_retx);
        liveness_violations += outcome
            .violations
            .iter()
            .filter(|v| {
                matches!(
                    v,
                    Violation::UnfinishedTxns(_)
                        | Violation::InDoubt(_)
                        | Violation::PendingEvents(_)
                        | Violation::PendingCompensations(_)
                )
            })
            .count();
    }
    assert!(
        liveness_violations > 0,
        "dropping DECISIONs with no retransmission must strand something"
    );
}

/// Long chaos run: garbage collection actually retires transactions and
/// end-state memory is bounded. A small residue is legitimate — an aborted
/// transaction's *undone* markings persist until a later access fires
/// UDUM1 (the paper's R3 gate is the memory gate), and a finite run may
/// simply end before anything touches those items again — but it must stay
/// a residue, not an accumulation.
#[test]
fn gc_keeps_memory_bounded_under_chaos() {
    let cfg = ChaosConfig::default();
    let mut retired = 0u64;
    let mut live = 0usize;
    let mut globals = 0u64;
    for seed in [2, 5, 8] {
        let plan = ChaosPlan::generate(seed, &cfg);
        let outcome = run_plan(&plan, Hardening::default());
        assert!(outcome.survived(), "seed {seed}: {:?}", outcome.violations);
        retired += outcome.gc_retired;
        live += outcome.live_at_end;
        globals += outcome.report.global_committed + outcome.report.global_aborted;
        assert_eq!(
            outcome.live_at_end,
            outcome.report.counters.get("txn.live_at_end") as usize
        );
    }
    assert!(retired > 0, "no transaction was ever garbage collected");
    assert!(
        retired > live as u64 * 3,
        "GC retired {retired} but left {live} live: residue, not retirement"
    );
    assert!(
        live < globals as usize / 5,
        "{live} live records after {globals} globals: memory is not bounded"
    );
}

/// The message-accounting oracle reconciles exactly on a chaotic run (this
/// is the `delivered + dropped + in-flight = sent` sanity gate from the
/// issue, strengthened with duplication).
#[test]
fn message_accounting_reconciles_under_chaos() {
    let cfg = ChaosConfig::default();
    for seed in [3, 11, 19] {
        let plan = ChaosPlan::generate(seed, &cfg);
        let outcome = run_plan(&plan, Hardening::default());
        assert!(
            !outcome.violations.iter().any(|v| matches!(
                v,
                Violation::MessageConservation { .. }
                    | Violation::SendCounterMismatch { .. }
                    | Violation::DropCounterMismatch { .. }
            )),
            "seed {seed}: {:?}",
            outcome.violations
        );
        // Chaos actually dropped and duplicated something, so the equation
        // was exercised with non-trivial terms.
        let dropped: u64 = o2pc_chaos::oracle::MSG_KINDS
            .iter()
            .map(|k| outcome.report.counters.get(&format!("msg.dropped.{k}")))
            .sum();
        assert!(dropped > 0, "seed {seed}: chaos never dropped a message");
    }
}
