//! Determinism under parallelism: fanning chaos runs out over the worker
//! pool must not change a single verdict, and the parallel shrinker must
//! land on exactly the plan the sequential one does. Plus corpus
//! round-trip: a persisted entry regenerates a schedule that re-judges to
//! the same verdict.

use o2pc_chaos::{
    classify, corpus, run_plan, shrink, shrink_with_cores, ChaosConfig, ChaosPlan, Hardening,
};
use o2pc_common::pool;

/// Everything the merged report would fold in from one run, as a
/// comparable value.
fn verdict(seed: u64, cfg: &ChaosConfig, harden: Hardening) -> String {
    let plan = ChaosPlan::generate(seed, cfg);
    let o = run_plan(&plan, harden);
    format!(
        "seed={} violations={:?} drop={} dup={} coord={} committed={} aborted={} gc={} live={}",
        seed,
        o.violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>(),
        o.drop_probability.to_bits(),
        o.duplicate_probability.to_bits(),
        o.crashed_a_coordinator,
        o.report.global_committed,
        o.report.global_aborted,
        o.gc_retired,
        o.live_at_end,
    )
}

/// Per-seed verdicts collected through the pool at 4 cores are identical,
/// in content and in consumption order, to a plain sequential loop.
#[test]
fn pooled_verdicts_match_sequential() {
    let cfg = ChaosConfig::default();
    let n = 16usize;
    let sequential: Vec<String> = (0..n)
        .map(|i| verdict(i as u64, &cfg, Hardening::default()))
        .collect();
    let mut pooled = Vec::new();
    pool::for_each_ordered(
        n,
        4,
        |i| verdict(i as u64, &cfg, Hardening::default()),
        |_, v| {
            pooled.push(v);
            true
        },
    );
    assert_eq!(sequential, pooled);
}

/// The parallel shrinker accepts the lowest-index failing candidate each
/// round, so its result is byte-identical to the sequential greedy scan.
#[test]
fn parallel_shrink_matches_sequential() {
    let cfg = ChaosConfig::default();
    // The send-once engine (negative control) fails deterministically on
    // some seed in this block — the oracle-visibility tests rely on it too.
    let failing = (0..25u64)
        .map(|s| ChaosPlan::generate(s, &cfg))
        .find(|p| !run_plan(p, Hardening::none()).survived())
        .expect("no failing seed in the block: the negative control went blind");
    let seq = shrink(&failing, Hardening::none(), None);
    let par = shrink_with_cores(&failing, Hardening::none(), None, 4);
    assert_eq!(seq.describe(), par.describe());
    assert!(
        !run_plan(&par, Hardening::none()).survived(),
        "the shrunk plan must still fail"
    );
}

/// Persist every interesting schedule in a seed block, reload the corpus,
/// regenerate each plan from its entry, and re-judge: same verdict, same
/// classification.
#[test]
fn corpus_round_trips_to_the_same_verdicts() {
    let cfg = ChaosConfig::default();
    let dir = std::env::temp_dir().join(format!("o2pc-corpus-rt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut saved = 0usize;
    for seed in 0..25u64 {
        let plan = ChaosPlan::generate(seed, &cfg);
        let outcome = run_plan(&plan, Hardening::default());
        if let Some((kind, detail, score)) = classify(&outcome) {
            corpus::CorpusEntry {
                seed,
                sites: cfg.num_sites,
                durable: false,
                kind,
                protocol: outcome.protocol.to_string(),
                detail,
                score,
            }
            .save(&dir)
            .unwrap();
            saved += 1;
        }
    }
    assert!(
        saved > 0,
        "no interesting schedule in 25 seeds: the classifier thresholds are off"
    );

    let entries = corpus::load_dir(&dir).unwrap();
    assert_eq!(entries.len(), saved);
    for e in &entries {
        let plan = ChaosPlan::generate(
            e.seed,
            &ChaosConfig {
                num_sites: e.sites,
                ..Default::default()
            },
        );
        let outcome = run_plan(&plan, Hardening::default());
        assert!(outcome.survived(), "seed {} regressed on replay", e.seed);
        let (kind, detail, _) = classify(&outcome).expect("replay lost its interest");
        assert_eq!(kind, e.kind, "seed {}", e.seed);
        assert_eq!(detail, e.detail, "seed {}", e.seed);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
