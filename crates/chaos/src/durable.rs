//! Durable-WAL crash checks: the kill-recover resolver and the injected
//! write-fault harness.
//!
//! Both sides of the real-crash story live here:
//!
//! * [`recover_killed_run`] reopens the on-disk WALs a killed process left
//!   behind (e.g. after a `SIGKILL` mid-run), replays every site's log,
//!   resolves in-doubt state with the presume-abort rule, and checks the two
//!   invariants a hard kill must not break — **outcome agreement** (no two
//!   sites durably logged conflicting decisions for one transaction) and
//!   **conservation** (after resolution, balances sum to the initial total).
//! * [`injected_fault_roundtrip`] drives a scripted append workload into a
//!   [`DurableWal`] armed with a seeded [`WriteFault`] (short write, write
//!   error, or handle loss mid-append), then reopens the file and checks that
//!   what survived is a clean frame-boundary prefix of the script and that it
//!   recovers exactly like the same prefix in memory.
//!
//! ## Why presume-abort is safe here
//!
//! Yes-votes are durability-gated: a site's `LocalCommit` (or `Prepared`)
//! record is fsynced *before* its VOTE reply leaves the site, and the
//! coordinator's decision requires every vote. So if any site durably logged
//! `Outcome{commit: true}`, every participant's local-commit record is
//! already durable — resolving "no outcome found anywhere" as abort can never
//! disagree with a commit some survivor will later surface. Compensating an
//! unresolved local commit and rolling back an unresolved prepared
//! subtransaction therefore yields a state equivalent to the transaction
//! never having run, which is exactly what conservation measures.

use crate::oracle::Violation;
use o2pc_common::{ExecId, GlobalTxnId, SiteId};
use o2pc_compensation::{plan_compensation, CompensationModel};
use o2pc_storage::codec::encode_frame;
use o2pc_storage::{DurableWal, FaultKind, LogRecord, RecoveredState, Wal, WriteFault};
use std::collections::HashMap;
use std::path::Path;

/// Outcome of resolving the WALs of a killed run.
#[derive(Debug)]
pub struct KillRecoveryReport {
    /// Invariants violated (empty = the kill was survived).
    pub violations: Vec<Violation>,
    /// Sites whose WAL was reopened.
    pub sites: usize,
    /// Total records replayed across all WALs.
    pub records: usize,
    /// Transactions with a durable outcome somewhere.
    pub decided: usize,
    /// Local commits compensated under presume-abort.
    pub compensated: usize,
    /// Prepared subtransactions rolled back under presume-abort.
    pub prepared_rolled_back: usize,
    /// Sum of balances after resolution.
    pub recovered_total: i64,
}

impl KillRecoveryReport {
    /// Did recovery satisfy every invariant?
    pub fn survived(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Reopen the per-site WALs under `dir` (named `site-<i>.wal`, the engine's
/// layout), resolve all in-doubt state, and check the kill invariants. See
/// the module docs for the resolution rules.
pub fn recover_killed_run(
    dir: &Path,
    num_sites: u32,
    model: CompensationModel,
    expected_total: i64,
) -> KillRecoveryReport {
    let mut violations = Vec::new();
    let mut states: Vec<(SiteId, RecoveredState)> = Vec::new();
    let mut records = 0usize;
    for i in 0..num_sites {
        let path = dir.join(format!("site-{i}.wal"));
        match DurableWal::open(&path) {
            Ok(wal) => {
                records += wal.len();
                states.push((SiteId(i), wal.recover()));
            }
            Err(e) => violations.push(Violation::WalUnreadable {
                site: SiteId(i),
                detail: e.to_string(),
            }),
        }
    }

    // Global fate map: the union of every site's durable Outcome records.
    // Two sites disagreeing on one transaction's fate is the cardinal 2PC
    // violation — no amount of local resolution can repair it.
    let mut fate: HashMap<GlobalTxnId, bool> = HashMap::new();
    for (site, st) in &states {
        for &(txn, commit) in &st.outcomes {
            match fate.insert(txn, commit) {
                Some(prev) if prev != commit => {
                    violations.push(Violation::ConflictingOutcomes { txn, site: *site });
                }
                _ => {}
            }
        }
    }
    let decided = fate.len();

    // Resolve each site: keep what committed, compensate or roll back what
    // presume-abort condemns, then measure conservation.
    let mut compensated = 0usize;
    let mut prepared_rolled_back = 0usize;
    let mut recovered_total = 0i64;
    for (_, st) in states.drain(..) {
        let prepared = st.prepared.clone();
        let unresolved = st.unresolved_local_commits.clone();
        let mut store = st.into_store();
        for (exec, undo) in prepared {
            let committed = matches!(exec, ExecId::Sub(g) if fate.get(&g) == Some(&true));
            if !committed {
                // Presume abort: reinstate the undo chain and reverse it.
                store.restore_pending(exec, undo);
                store.rollback(exec);
                prepared_rolled_back += 1;
            }
        }
        for (g, rec) in unresolved {
            if fate.get(&g) == Some(&true) {
                continue; // durably committed somewhere: effects stand
            }
            // Persistence of compensation: apply what applies, skip what the
            // recovered state no longer supports (a CT must never fail).
            let ct = ExecId::CompSub(g);
            for op in plan_compensation(model, &rec).ops {
                let _ = store.apply(ct, op);
            }
            store.commit(ct);
            compensated += 1;
        }
        recovered_total += store.total();
    }

    if recovered_total != expected_total && violations.is_empty() {
        violations.push(Violation::Conservation {
            expected: expected_total,
            actual: recovered_total,
        });
    }

    KillRecoveryReport {
        violations,
        sites: num_sites as usize,
        records,
        decided,
        compensated,
        prepared_rolled_back,
        recovered_total,
    }
}

/// What one injected-fault run observed.
#[derive(Debug)]
pub struct FaultRunStats {
    /// Records the script appended before (and including when) the fault hit.
    pub scripted: usize,
    /// Records that survived on disk after reopen.
    pub survived: usize,
    /// The fault flavour this seed selected.
    pub kind: FaultKind,
    /// Whether the fault actually fired (a late offset may never be reached).
    pub fired: bool,
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Build the deterministic append script for `seed`: a run of small
/// transactions (begin / update / commit-or-abort) over a handful of keys.
fn fault_script(seed: u64) -> Vec<LogRecord> {
    use o2pc_common::{Key, Value};
    let mut rng = seed | 1;
    let mut script = vec![LogRecord::Checkpoint {
        items: (0..4).map(|k| (Key(k), Value(100))).collect(),
    }];
    let txns = 24 + (xorshift(&mut rng) % 16);
    for t in 0..txns {
        let e = ExecId::Sub(GlobalTxnId(t));
        script.push(LogRecord::Begin(e));
        let writes = 1 + xorshift(&mut rng) % 3;
        for _ in 0..writes {
            let k = Key(xorshift(&mut rng) % 4);
            let v = (xorshift(&mut rng) % 1000) as i64;
            script.push(LogRecord::Update {
                exec: e,
                key: k,
                before: Some(Value(v)),
                after: Some(Value(v + 1)),
            });
        }
        if xorshift(&mut rng).is_multiple_of(8) {
            script.push(LogRecord::Abort(e));
        } else {
            script.push(LogRecord::Commit(e));
        }
    }
    script
}

/// Run one seeded fault-injection round-trip against a WAL file at `path`
/// (created fresh). Appends the seed's script, syncing in small groups, with
/// a [`WriteFault`] armed at a seed-derived byte offset; after the fault
/// fires (or the script ends) the file is reopened and checked:
///
/// 1. the surviving records are a **prefix** of the script — no record is
///    reordered, altered, or resurrected past a torn frame;
/// 2. recovery over the survivors equals recovery of the same prefix through
///    the in-memory [`Wal`] — the differential that pins the durable path to
///    the reference semantics.
///
/// Returns the observations, or a description of the violated check.
pub fn injected_fault_roundtrip(seed: u64, path: &Path) -> Result<FaultRunStats, String> {
    let script = fault_script(seed);
    let mut total_bytes = Vec::new();
    for rec in &script {
        encode_frame(rec, &mut total_bytes);
    }
    let mut rng = seed.wrapping_mul(0x2545_F491_4F6C_DD1D) | 1;
    let fail_after = xorshift(&mut rng) % (total_bytes.len() as u64 + 1);
    let kind = match xorshift(&mut rng) % 3 {
        0 => FaultKind::Torn,
        1 => FaultKind::Error,
        _ => FaultKind::DropHandle,
    };
    let group = 1 + (xorshift(&mut rng) % 5) as usize;

    let _ = std::fs::remove_file(path);
    let mut wal = DurableWal::open_with(path, Some(WriteFault { fail_after, kind }))
        .map_err(|e| format!("open failed: {e}"))?;
    let mut scripted = 0usize;
    for (i, rec) in script.iter().enumerate() {
        wal.append(rec.clone());
        scripted = i + 1;
        if scripted.is_multiple_of(group) && wal.sync().is_err() {
            break;
        }
    }
    if !wal.is_dead() {
        let _ = wal.sync();
    }
    let fired = wal.is_dead();
    drop(wal);

    let reopened = DurableWal::open(path).map_err(|e| format!("reopen failed: {e}"))?;
    let survived = reopened.len();
    if survived > scripted || reopened.records() != &script[..survived] {
        return Err(format!(
            "seed {seed}: surviving records are not a script prefix \
             (survived {survived}, scripted {scripted})"
        ));
    }
    let reference = Wal::from_records(script[..survived].to_vec()).recover();
    if reopened.recover() != reference {
        return Err(format!(
            "seed {seed}: durable recovery diverged from in-memory recovery \
             over the same {survived}-record prefix"
        ));
    }
    Ok(FaultRunStats {
        scripted,
        survived,
        kind,
        fired,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("o2pc-kchaos-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn fault_roundtrip_many_seeds() {
        let dir = tmpdir("faults");
        let mut fired = 0;
        for seed in 0..64 {
            let path = dir.join(format!("f{seed}.wal"));
            let stats = injected_fault_roundtrip(seed, &path).expect("invariant");
            assert!(stats.survived <= stats.scripted);
            if stats.fired {
                fired += 1;
            }
        }
        assert!(fired > 16, "faults must actually fire ({fired}/64)");
    }

    #[test]
    fn recover_killed_run_empty_dir_is_conservation_zero() {
        let dir = tmpdir("empty");
        let report = recover_killed_run(&dir, 3, CompensationModel::Restricted, 0);
        assert!(report.survived(), "{:?}", report.violations);
        assert_eq!(report.recovered_total, 0);
    }

    #[test]
    fn recover_killed_run_detects_conflicting_outcomes() {
        use o2pc_common::GlobalTxnId;
        let dir = tmpdir("conflict");
        for (i, commit) in [(0u32, true), (1u32, false)] {
            let mut w = DurableWal::open(dir.join(format!("site-{i}.wal"))).unwrap();
            w.append(LogRecord::Outcome {
                txn: GlobalTxnId(7),
                commit,
            });
            w.sync().unwrap();
        }
        let report = recover_killed_run(&dir, 2, CompensationModel::Restricted, 0);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::ConflictingOutcomes { .. })));
    }

    #[test]
    fn recover_killed_run_compensates_unresolved_local_commit() {
        use o2pc_common::{Key, Op, Value};
        use o2pc_storage::Store;
        use std::sync::Arc;
        let dir = tmpdir("comp");
        let mut store = Store::new();
        store.load(Key(0), Value(50));
        let mut w = DurableWal::open(dir.join("site-0.wal")).unwrap();
        w.checkpoint(&store);
        let e = ExecId::Sub(GlobalTxnId(1));
        w.append(LogRecord::Begin(e));
        store.apply(e, Op::Add(Key(0), 25)).unwrap();
        let u = *store.last_undo(e).unwrap();
        w.append_update(e, &u);
        let rec = Arc::new(store.commit(e));
        w.append(LogRecord::LocalCommit {
            exec: e,
            record: rec,
        });
        w.sync().unwrap();
        // Killed before any outcome: presume abort must give back the 25.
        let report = recover_killed_run(&dir, 1, CompensationModel::Restricted, 50);
        assert!(report.survived(), "{:?}", report.violations);
        assert_eq!(report.compensated, 1);
        assert_eq!(report.recovered_total, 50);
    }
}
