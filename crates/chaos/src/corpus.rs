//! A persisted corpus of *interesting* chaos schedules.
//!
//! Swarm mode mines seeds continuously; most schedules are boring (the
//! hardened engine shrugs them off without breaking a sweat). The corpus
//! keeps the ones worth re-running on every future change:
//!
//! * **violations** — a seed that broke an invariant (regression seed);
//! * **near misses** — the run survived, but only because the hardening
//!   machinery fired (cooperative termination resolved an in-doubt
//!   participant, a global deadlock was broken, a marking protocol skipped
//!   compensation ops, a crash landed mid-WAL-write);
//! * **coverage outliers** — schedules whose event count is far above the
//!   population (long fault cascades, retransmission storms).
//!
//! Because a [`ChaosPlan`](crate::ChaosPlan) is a pure function of
//! `(seed, ChaosConfig)`, an entry does not need to serialize the fault
//! list — it records the seed plus the generation parameters and a little
//! human-facing metadata, as one flat JSON file per seed under the corpus
//! directory. `chaos --replay-corpus DIR` regenerates and re-judges every
//! entry.

use crate::runner::ChaosOutcome;
use std::io;
use std::path::{Path, PathBuf};

/// Why a schedule earned its place in the corpus.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InterestKind {
    /// The run violated an invariant.
    Violation,
    /// The run survived, but hardening machinery had to intervene.
    NearMiss,
    /// The run's event count is an outlier (heavy schedule).
    Coverage,
}

impl InterestKind {
    fn as_str(self) -> &'static str {
        match self {
            InterestKind::Violation => "violation",
            InterestKind::NearMiss => "near_miss",
            InterestKind::Coverage => "coverage",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "violation" => Some(InterestKind::Violation),
            "near_miss" => Some(InterestKind::NearMiss),
            "coverage" => Some(InterestKind::Coverage),
            _ => None,
        }
    }
}

/// One corpus entry: everything needed to regenerate and re-judge the
/// schedule, plus metadata describing why it was kept.
#[derive(Clone, Debug)]
pub struct CorpusEntry {
    /// Chaos seed (the schedule is `ChaosPlan::generate(seed, cfg)`).
    pub seed: u64,
    /// `ChaosConfig::num_sites` the schedule was generated for.
    pub sites: u32,
    /// Whether the run used the durable (file-backed) WAL.
    pub durable: bool,
    /// Why the schedule is interesting.
    pub kind: InterestKind,
    /// Protocol variant the seed selects (informational; derived from the
    /// seed on replay).
    pub protocol: String,
    /// Which signals fired, e.g. `term_resolved=2 deadlock_global=1`.
    pub detail: String,
    /// Ranking score (higher = more interesting); used to keep the corpus
    /// bounded.
    pub score: u64,
}

/// Events-processed threshold above which a surviving schedule counts as a
/// coverage outlier. The chaos population sits around 2–3k events per
/// schedule; 5k is several standard deviations out.
pub const COVERAGE_EVENTS_THRESHOLD: u64 = 5_000;

/// Judge an outcome: `Some((kind, detail, score))` if the schedule belongs
/// in the corpus, `None` if it is boring.
pub fn classify(outcome: &ChaosOutcome) -> Option<(InterestKind, String, u64)> {
    if !outcome.survived() {
        let detail = format!("violations={}", outcome.violations.len());
        // Violations outrank everything else.
        return Some((
            InterestKind::Violation,
            detail,
            1_000_000 + outcome.violations.len() as u64,
        ));
    }
    let c = &outcome.report.counters;
    let term_resolved = c.get("term.resolved_commit") + c.get("term.resolved_abort");
    let deadlock_global = c.get("deadlock.global");
    let comp_skipped = c.get("comp.skipped_ops");
    let wal_fault_crashes = c.get("wal.fault_crashes");
    let mut detail = String::new();
    let mut score = 0u64;
    let push = |name: &str, v: u64, detail: &mut String, score: &mut u64| {
        if v > 0 {
            if !detail.is_empty() {
                detail.push(' ');
            }
            detail.push_str(&format!("{name}={v}"));
            *score += v;
        }
    };
    push("term_resolved", term_resolved, &mut detail, &mut score);
    push("deadlock_global", deadlock_global, &mut detail, &mut score);
    push("comp_skipped_ops", comp_skipped, &mut detail, &mut score);
    push(
        "wal_fault_crashes",
        wal_fault_crashes,
        &mut detail,
        &mut score,
    );
    if score > 0 {
        return Some((InterestKind::NearMiss, detail, score));
    }
    let events = outcome.report.events_processed;
    if events >= COVERAGE_EVENTS_THRESHOLD {
        return Some((InterestKind::Coverage, format!("events={events}"), events));
    }
    None
}

impl CorpusEntry {
    /// The entry's file name within a corpus directory. One file per seed:
    /// re-finding a seed overwrites (keeping the latest classification)
    /// rather than duplicating.
    pub fn file_name(&self) -> String {
        format!("seed-{}.json", self.seed)
    }

    /// Render as a flat JSON object (keys in fixed order, one per line).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"seed\": {},\n  \"sites\": {},\n  \"durable\": {},\n  \"kind\": \"{}\",\n  \"protocol\": \"{}\",\n  \"detail\": \"{}\",\n  \"score\": {}\n}}\n",
            self.seed,
            self.sites,
            self.durable,
            self.kind.as_str(),
            sanitize(&self.protocol),
            sanitize(&self.detail),
            self.score,
        )
    }

    /// Parse [`CorpusEntry::to_json`] output (tolerant of whitespace and
    /// key order; unknown keys are ignored).
    pub fn from_json(text: &str) -> Option<CorpusEntry> {
        let mut seed = None;
        let mut sites = None;
        let mut durable = None;
        let mut kind = None;
        let mut protocol = None;
        let mut detail = None;
        let mut score = None;
        for line in text.lines() {
            let line = line.trim().trim_end_matches(',');
            let Some((key, value)) = line.split_once(':') else {
                continue;
            };
            let key = key.trim().trim_matches('"');
            let value = value.trim();
            let unquoted = value.trim_matches('"');
            match key {
                "seed" => seed = value.parse().ok(),
                "sites" => sites = value.parse().ok(),
                "durable" => durable = value.parse().ok(),
                "kind" => kind = InterestKind::parse(unquoted),
                "protocol" => protocol = Some(unquoted.to_string()),
                "detail" => detail = Some(unquoted.to_string()),
                "score" => score = value.parse().ok(),
                _ => {}
            }
        }
        Some(CorpusEntry {
            seed: seed?,
            sites: sites?,
            durable: durable?,
            kind: kind?,
            protocol: protocol?,
            detail: detail?,
            score: score?,
        })
    }

    /// Write this entry into `dir` (created if missing). Returns the path
    /// written.
    pub fn save(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// Load every `*.json` entry in `dir`, sorted by seed (deterministic replay
/// order regardless of directory iteration order). Files that fail to parse
/// are reported as errors — a corrupt corpus should be loud, not silently
/// thinner.
pub fn load_dir(dir: &Path) -> io::Result<Vec<CorpusEntry>> {
    let mut entries = Vec::new();
    for dirent in std::fs::read_dir(dir)? {
        let path = dirent?.path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text = std::fs::read_to_string(&path)?;
        let entry = CorpusEntry::from_json(&text).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unparseable corpus entry: {}", path.display()),
            )
        })?;
        entries.push(entry);
    }
    entries.sort_by_key(|e| e.seed);
    Ok(entries)
}

/// Strip characters that would break the flat JSON encoding (quotes,
/// backslashes, control characters). Corpus metadata is plain ASCII
/// counters and protocol names, so this never fires in practice.
fn sanitize(s: &str) -> String {
    s.chars()
        .filter(|c| !c.is_control() && *c != '"' && *c != '\\')
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> CorpusEntry {
        CorpusEntry {
            seed: 0xDEAD_BEEF,
            sites: 4,
            durable: true,
            kind: InterestKind::NearMiss,
            protocol: "O2pcP2".into(),
            detail: "term_resolved=2 deadlock_global=1".into(),
            score: 3,
        }
    }

    #[test]
    fn json_round_trips() {
        let e = entry();
        let parsed = CorpusEntry::from_json(&e.to_json()).unwrap();
        assert_eq!(parsed.seed, e.seed);
        assert_eq!(parsed.sites, e.sites);
        assert_eq!(parsed.durable, e.durable);
        assert_eq!(parsed.kind, e.kind);
        assert_eq!(parsed.protocol, e.protocol);
        assert_eq!(parsed.detail, e.detail);
        assert_eq!(parsed.score, e.score);
    }

    #[test]
    fn save_and_load_dir_sorted_by_seed() {
        let dir = std::env::temp_dir().join(format!("o2pc-corpus-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for seed in [30u64, 10, 20] {
            let mut e = entry();
            e.seed = seed;
            e.save(&dir).unwrap();
        }
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(
            loaded.iter().map(|e| e.seed).collect::<Vec<_>>(),
            vec![10, 20, 30]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_entries_are_errors() {
        let dir = std::env::temp_dir().join(format!("o2pc-corpus-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("seed-1.json"), "{ not json at all").unwrap();
        assert!(load_dir(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
