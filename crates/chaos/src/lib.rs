//! # o2pc-chaos
//!
//! Randomized fault-injection harness for the engine: a single seed derives
//! a composed schedule of site crashes, link partitions, message loss,
//! duplication, and extra delay ([`ChaosPlan`]), a runner executes a
//! workload under that schedule with the hardening machinery switched on
//! ([`run_plan`]), and an invariant oracle ([`oracle::check`]) decides after
//! the fact whether the system survived:
//!
//! * **liveness under quiescence** — once every fault window closes and the
//!   queue drains, no transaction is unfinished, no participant in doubt,
//!   no compensation pending, and no event left in the queue;
//! * **semantic atomicity** — balances conserve and the serialization-graph
//!   audit finds no local or regular cycle and no atomicity-of-compensation
//!   violation;
//! * **durability** — every site's WAL still replays to its live store;
//! * **message accounting** — `sent + local + duplicated = delivered +
//!   dropped + in-flight`, and the engine's per-type counters reconcile
//!   exactly with the substrate's totals.
//!
//! Every plan is reproducible from `(seed, ChaosConfig)` alone, so a failing
//! schedule shrinks (drop one fault at a time, keep the failure) and replays
//! bit-for-bit — see the `chaos` binary in `o2pc-bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod durable;
pub mod oracle;
pub mod plan;
pub mod runner;

pub use corpus::{classify, CorpusEntry, InterestKind};
pub use durable::{injected_fault_roundtrip, recover_killed_run, KillRecoveryReport};
pub use oracle::Violation;
pub use plan::{ChaosConfig, ChaosPlan, Fault};
pub use runner::{
    run_plan, run_plan_with, shrink, shrink_with_cores, ChaosOutcome, DurableMode, Hardening,
};
