//! The post-run invariant oracle.
//!
//! Runs after a chaos schedule has healed and the engine has been given
//! generous quiet time to drain. Every check is an *end-state* property —
//! the oracle never peeks at protocol internals mid-run, so it is equally
//! valid on the deterministic simulator and the threaded runtime (the
//! message-accounting checks are simulator-only, where exact counters
//! exist on one clock).

use o2pc_common::{GlobalTxnId, SiteId};
use o2pc_core::{Engine, Msg, RunReport, TimerEvent};
use o2pc_runtime::Runtime;
use std::fmt;

/// The engine's message kinds, as used in `msg.<kind>` /
/// `msg.dropped.<kind>` counter labels.
pub const MSG_KINDS: [&str; 8] = [
    "spawn",
    "subtxn_ack",
    "vote_req",
    "vote",
    "decision",
    "decision_ack",
    "term_req",
    "term_answer",
];

/// One violated invariant.
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// Coordinators that never reached completion despite the network
    /// healing and the run draining to quiescence.
    UnfinishedTxns(usize),
    /// Participants still prepared / locally-committed-without-decision at
    /// the end of the run.
    InDoubt(usize),
    /// Sites still down after every scheduled recovery.
    SitesDown(usize),
    /// Compensating transactions still pending at quiescence (persistence
    /// of compensation demands they eventually complete).
    PendingCompensations(usize),
    /// Events still queued when the run stopped: the system had not
    /// actually quiesced (e.g. a timer chain that never terminates).
    PendingEvents(usize),
    /// Total balance drifted: commits and compensations did not conserve.
    Conservation {
        /// The workload's invariant total.
        expected: i64,
        /// The measured total across all sites.
        actual: i64,
    },
    /// The serialization-graph audit found local cycles at this many sites.
    LocalCycles(usize),
    /// The audit found a regular global cycle — the paper's correctness
    /// criterion is violated.
    RegularCycle,
    /// Committed global transactions with partially-undone siblings
    /// (atomicity-of-compensation violations).
    CompensationAtomicity(usize),
    /// Sites whose WAL no longer replays to their live store.
    WalDivergence(usize),
    /// A durable WAL file could not be reopened after a kill (kill-recover
    /// resolver only).
    WalUnreadable {
        /// Site whose log failed to reopen.
        site: SiteId,
        /// The I/O error.
        detail: String,
    },
    /// Two sites durably logged conflicting outcomes for one transaction
    /// (kill-recover resolver only) — the cardinal 2PC violation.
    ConflictingOutcomes {
        /// The transaction with disagreeing durable decisions.
        txn: GlobalTxnId,
        /// The site whose log exposed the disagreement.
        site: SiteId,
    },
    /// `sent + local + duplicated ≠ delivered + dropped + in-flight`.
    MessageConservation {
        /// Network sends (including duplicates).
        sent: u64,
        /// Same-site sends bypassing the network.
        local: u64,
        /// Duplicated deliveries (already included in `sent`).
        duplicated: u64,
        /// Messages handed to the engine.
        delivered: u64,
        /// Messages lost at send time.
        dropped: u64,
        /// Messages still queued.
        in_flight: u64,
    },
    /// The engine's per-type `msg.*` counters disagree with the substrate's
    /// send total.
    SendCounterMismatch {
        /// Sum of the engine's `msg.<kind>` counters.
        counted: u64,
        /// Substrate sends (network + local, duplicates excluded).
        substrate: u64,
    },
    /// The engine's per-type `msg.dropped.*` counters disagree with the
    /// substrate's drop total.
    DropCounterMismatch {
        /// Sum of the engine's `msg.dropped.<kind>` counters.
        counted: u64,
        /// Substrate drops.
        substrate: u64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::UnfinishedTxns(n) => write!(f, "{n} transaction(s) never completed"),
            Violation::InDoubt(n) => write!(f, "{n} participant(s) still in doubt"),
            Violation::SitesDown(n) => write!(f, "{n} site(s) still down"),
            Violation::PendingCompensations(n) => {
                write!(f, "{n} compensation(s) still pending")
            }
            Violation::PendingEvents(n) => write!(f, "{n} event(s) still queued (no quiescence)"),
            Violation::Conservation { expected, actual } => {
                write!(f, "conservation: expected {expected}, measured {actual}")
            }
            Violation::LocalCycles(n) => write!(f, "local serialization cycles at {n} site(s)"),
            Violation::RegularCycle => write!(f, "regular global serialization cycle"),
            Violation::CompensationAtomicity(n) => {
                write!(f, "{n} atomicity-of-compensation violation(s)")
            }
            Violation::WalDivergence(n) => write!(f, "{n} site(s) with WAL/store divergence"),
            Violation::WalUnreadable { site, detail } => {
                write!(f, "site {site}: WAL unreadable after kill: {detail}")
            }
            Violation::ConflictingOutcomes { txn, site } => {
                write!(f, "conflicting durable outcomes for {txn} (seen at {site})")
            }
            Violation::MessageConservation {
                sent,
                local,
                duplicated,
                delivered,
                dropped,
                in_flight,
            } => write!(
                f,
                "message conservation: sent {sent} + local {local} + dup {duplicated} \
                 ≠ delivered {delivered} + dropped {dropped} + in-flight {in_flight}"
            ),
            Violation::SendCounterMismatch { counted, substrate } => write!(
                f,
                "send counters: engine counted {counted}, substrate sent {substrate}"
            ),
            Violation::DropCounterMismatch { counted, substrate } => write!(
                f,
                "drop counters: engine counted {counted}, substrate dropped {substrate}"
            ),
        }
    }
}

/// End-state invariants that hold on any runtime substrate: liveness under
/// quiescence, conservation, serialization-graph correctness, durability.
pub fn check_state<R: Runtime<TimerEvent, Msg>>(
    engine: &Engine<R>,
    report: &RunReport,
    expected_total: i64,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let unfinished = engine.unfinished_txns();
    if !unfinished.is_empty() {
        out.push(Violation::UnfinishedTxns(unfinished.len()));
    }
    let in_doubt = engine.in_doubt_participants();
    if !in_doubt.is_empty() {
        out.push(Violation::InDoubt(in_doubt.len()));
    }
    let down = engine.down_sites();
    if !down.is_empty() {
        out.push(Violation::SitesDown(down.len()));
    }
    if report.compensations_pending > 0 {
        out.push(Violation::PendingCompensations(
            report.compensations_pending,
        ));
    }
    if engine.total_value() != expected_total {
        out.push(Violation::Conservation {
            expected: expected_total,
            actual: engine.total_value(),
        });
    }
    let divergent = engine.wal_divergent_sites();
    if !divergent.is_empty() {
        out.push(Violation::WalDivergence(divergent.len()));
    }
    // Prefer the serialization graphs the engine maintained incrementally
    // while the run executed (`live_audit_graph`); replaying the recorded
    // history through the batch builder is the fallback for engines that
    // did not keep one. The two are equivalent — `incremental_sg_equivalence`
    // proves it on exactly these chaos histories.
    let audit = match engine.live_audit_graph() {
        Some(gsg) => o2pc_sgraph::audit_graph(&gsg, &report.history, 10_000, 10),
        None => o2pc_sgraph::audit(&report.history, 10_000, 10),
    };
    if !audit.local_cycles.is_empty() {
        out.push(Violation::LocalCycles(audit.local_cycles.len()));
    }
    if audit.regular_cycle.is_some() {
        out.push(Violation::RegularCycle);
    }
    if !audit.compensation_atomicity_violations.is_empty() {
        out.push(Violation::CompensationAtomicity(
            audit.compensation_atomicity_violations.len(),
        ));
    }
    out
}

/// Simulator-only accounting: the message-conservation equation and the
/// cross-check between engine counters and substrate totals, plus full
/// event-queue quiescence.
pub fn check_accounting(engine: &Engine, report: &RunReport) -> Vec<Violation> {
    let mut out = Vec::new();
    let rt = engine.runtime();
    let net = rt.network();
    let lhs = net.sent_count() + rt.local_send_count() + net.duplicated_count();
    let rhs = rt.delivered_count() + net.dropped_count() + rt.in_flight_messages();
    if lhs != rhs {
        out.push(Violation::MessageConservation {
            sent: net.sent_count(),
            local: rt.local_send_count(),
            duplicated: net.duplicated_count(),
            delivered: rt.delivered_count(),
            dropped: net.dropped_count(),
            in_flight: rt.in_flight_messages(),
        });
    }
    let counted_sends: u64 = MSG_KINDS
        .iter()
        .map(|k| report.counters.get(&format!("msg.{k}")))
        .sum();
    // The network counts one send per engine `send` call (duplicates are
    // tracked separately), so the per-type counters must match exactly.
    let substrate_sends = net.sent_count() + rt.local_send_count();
    if counted_sends != substrate_sends {
        out.push(Violation::SendCounterMismatch {
            counted: counted_sends,
            substrate: substrate_sends,
        });
    }
    let counted_drops: u64 = MSG_KINDS
        .iter()
        .map(|k| report.counters.get(&format!("msg.dropped.{k}")))
        .sum();
    if counted_drops != net.dropped_count() {
        out.push(Violation::DropCounterMismatch {
            counted: counted_drops,
            substrate: net.dropped_count(),
        });
    }
    if rt.pending() != 0 {
        out.push(Violation::PendingEvents(rt.pending()));
    }
    out
}

/// The full oracle for a simulator run: state invariants plus exact message
/// accounting.
pub fn check(engine: &Engine, report: &RunReport, expected_total: i64) -> Vec<Violation> {
    let mut out = check_state(engine, report, expected_total);
    out.extend(check_accounting(engine, report));
    out
}
