//! Execute one chaos schedule against the engine and judge the outcome.

use crate::oracle::{self, Violation};
use crate::plan::ChaosPlan;
use o2pc_common::{Duration, SiteId};
use o2pc_core::{Engine, RunReport, SystemConfig, TxnRequest};
use o2pc_protocol::ProtocolKind;
use o2pc_workload::BankingWorkload;
use std::collections::BTreeSet;

/// Which hardening machinery the run may use. The chaos harness runs with
/// everything on; switching pieces off is the harness's *negative control* —
/// a deliberately fragile engine whose failures prove the oracle can see.
#[derive(Clone, Copy, Debug)]
pub struct Hardening {
    /// Coordinator retransmission of unacked VOTE-REQ / DECISION.
    pub retransmit: bool,
    /// Cooperative termination rounds (with retry) for in-doubt
    /// participants.
    pub termination: bool,
}

impl Default for Hardening {
    fn default() -> Self {
        Hardening {
            retransmit: true,
            termination: true,
        }
    }
}

impl Hardening {
    /// Everything off: the classic send-once engine (negative control).
    pub fn none() -> Self {
        Hardening {
            retransmit: false,
            termination: false,
        }
    }
}

/// Result of one chaos run: oracle verdict plus coverage accounting.
pub struct ChaosOutcome {
    /// Invariants violated (empty = the run survived).
    pub violations: Vec<Violation>,
    /// The engine's run report.
    pub report: RunReport,
    /// Protocol variant this seed selected.
    pub protocol: ProtocolKind,
    /// The plan's message-drop probability.
    pub drop_probability: f64,
    /// The plan's message-duplication probability.
    pub duplicate_probability: f64,
    /// At least one crash window hit a site hosting a coordinator.
    pub crashed_a_coordinator: bool,
    /// Transactions garbage-collected during the run.
    pub gc_retired: u64,
    /// Transactions still tracked at the end (bounded-memory signal).
    pub live_at_end: usize,
}

impl ChaosOutcome {
    /// Did the run satisfy every invariant?
    pub fn survived(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Protocol variant exercised by a seed (rotates so a seed block covers
/// blocking 2PC and every marking-protected O2PC variant against the same
/// fault machinery). Bare `O2pc` is deliberately excluded: without a
/// marking protocol it enforces neither S1 nor S2, and the paper's own
/// Example 1 shows it *can* admit regular cycles under adversarial
/// interleavings — exactly what chaos schedules produce — so it carries no
/// zero-violation guarantee for the oracle to check.
pub fn protocol_for(seed: u64) -> ProtocolKind {
    match seed % 4 {
        0 => ProtocolKind::D2pl2pc,
        1 => ProtocolKind::O2pcP2,
        2 => ProtocolKind::O2pcSimple,
        _ => ProtocolKind::O2pcP1,
    }
}

/// Run one plan under the given hardening and check every invariant.
///
/// The workload is banking (zero-sum transfers → conservation oracle), the
/// horizon is `heal_at` plus several virtual seconds of quiet drain, and a
/// seed also rotates protocol variant, occasional real-action sites, and
/// occasional autonomous abort probability so the schedule space crosses
/// the configuration space.
pub fn run_plan(plan: &ChaosPlan, harden: Hardening) -> ChaosOutcome {
    run_plan_with(plan, harden, None)
}

/// Durable-mode parameters for [`run_plan_with`]: where the per-seed WAL
/// scratch trees live, plus an optional segment-capacity override. Small
/// segments (a few hundred bytes) force the log to rotate and compact many
/// times per schedule, putting the rotation/recovery machinery itself under
/// chaos; `None` keeps the engine default, where chaos histories fit one
/// segment. Either way the run stays deterministic — rotation points are a
/// pure function of appended bytes.
#[derive(Clone, Copy, Debug)]
pub struct DurableMode<'a> {
    /// Base scratch directory (each seed gets `seed-<N>/` under it).
    pub dir: &'a std::path::Path,
    /// Override for [`SystemConfig::wal_segment_bytes`]; `None` = default.
    pub segment_bytes: Option<u64>,
}

/// Remove a schedule's scratch WAL directory. `NotFound` is the normal
/// first-run case; any *other* error (permissions, a file held open, a
/// non-directory in the way) means later runs would silently log into a
/// dirty or unwritable tree, so it is fatal rather than swallowed.
fn clear_run_dir(run_dir: &std::path::Path) {
    if let Err(e) = std::fs::remove_dir_all(run_dir) {
        if e.kind() != std::io::ErrorKind::NotFound {
            panic!("chaos: cannot clear WAL dir {}: {e}", run_dir.display());
        }
    }
}

/// [`run_plan`], optionally in durable-WAL mode: with `durable_dir` set,
/// every site logs through the file-backed backend under
/// `durable_dir/seed-<seed>/` (wiped first — each schedule starts from an
/// empty log). The run stays deterministic — flush points are virtual-time
/// events and fsync latency is never observed — so `--replay` and shrinking
/// work unchanged; what durable mode adds is the real write/fsync/recover
/// code under every crash the plan injects.
///
/// Surviving runs clean their `seed-<N>` dir back up afterwards (a large
/// sweep would otherwise leak one directory per schedule); a failing run
/// keeps its logs on disk for post-mortem inspection.
pub fn run_plan_with(
    plan: &ChaosPlan,
    harden: Hardening,
    durable: Option<DurableMode<'_>>,
) -> ChaosOutcome {
    let protocol = protocol_for(plan.seed);
    let wl = BankingWorkload {
        sites: plan.num_sites,
        accounts_per_site: 8,
        transfers: 120,
        mean_interarrival: Duration::millis(2),
        local_fraction: 0.1,
        seed: plan.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        ..Default::default()
    };
    let schedule = wl.generate();
    let coordinators: BTreeSet<SiteId> = schedule
        .arrivals
        .iter()
        .filter_map(|(_, req)| match req {
            TxnRequest::Global { coordinator, .. } => Some(*coordinator),
            TxnRequest::Local { .. } => None,
        })
        .collect();
    let crashed_a_coordinator = plan.crash_sites().iter().any(|s| coordinators.contains(s));

    let mut cfg = SystemConfig::new(plan.num_sites, protocol);
    cfg.seed = plan.seed;
    cfg.live_audit_graph = true; // the oracle audits the live graph
    cfg.network.chaos = plan.message_chaos();
    cfg.failures = plan.failure_plan();
    cfg.vote_timeout = Some(Duration::millis(40));
    cfg.termination_timeout = harden.termination.then(|| Duration::millis(50));
    cfg.retransmit_base = harden.retransmit.then(|| Duration::millis(10));
    cfg.retransmit_cap = Duration::millis(160);
    if plan.seed.is_multiple_of(5) {
        // A real-action site holds write locks until the decision even
        // under O2PC — the blocking shape chaos must not be able to wedge.
        cfg.real_action_sites.insert(SiteId(plan.num_sites - 1));
    }
    if plan.seed.is_multiple_of(7) {
        cfg.vote_abort_probability = 0.1;
    }
    let run_dir = durable.map(|m| m.dir.join(format!("seed-{}", plan.seed)));
    if let Some(dir) = &run_dir {
        clear_run_dir(dir);
        cfg.durable_wal_dir = Some(dir.clone());
        if let Some(sb) = durable.and_then(|m| m.segment_bytes) {
            cfg.wal_segment_bytes = sb;
        }
    }

    let mut engine = Engine::new(cfg);
    schedule.install(&mut engine);
    let horizon = Duration::micros(plan.heal_at.micros()) + Duration::secs(5);
    let report = engine.run(horizon);
    let violations = oracle::check(&engine, &report, wl.expected_total());
    let outcome = ChaosOutcome {
        gc_retired: report.counters.get("txn.gc"),
        live_at_end: engine.live_txn_count(),
        violations,
        report,
        protocol,
        drop_probability: plan.drop_probability(),
        duplicate_probability: plan.duplicate_probability(),
        crashed_a_coordinator,
    };
    if let Some(dir) = &run_dir {
        if outcome.survived() {
            drop(engine); // release the WAL file handles before deleting
            clear_run_dir(dir);
        }
        // A failing seed keeps its logs for post-mortem / --replay --durable.
    }
    outcome
}

/// Shrink a failing plan: greedily drop one fault at a time, keeping each
/// removal that still fails the oracle, until no single removal does. The
/// result is a (locally) minimal fault set reproducing the violation.
///
/// Candidate runs replay in the same mode as the original failure
/// (`durable_dir` forwarded), so a durable-only violation shrinks against
/// the durable engine instead of vacuously "passing" in memory.
pub fn shrink(plan: &ChaosPlan, harden: Hardening, durable: Option<DurableMode<'_>>) -> ChaosPlan {
    shrink_with_cores(plan, harden, durable, 1)
}

/// [`shrink`] with the candidate scan fanned out over `cores` worker
/// threads. Each round evaluates the single-removal candidates starting at
/// the current scan position and accepts the **lowest-index** failure
/// ([`o2pc_common::pool::min_where`] reproduces the sequential
/// first-failure scan exactly), so the shrunk plan is identical at every
/// core count.
///
/// After accepting removal `idx` the next round resumes scanning at `idx`
/// rather than index 0. Indices `< idx` were each just rejected against a
/// *superset* of the current fault set; fault injection is monotone (every
/// fault only adds adversity — a drop window, a crash, a partition — so a
/// schedule that survives some fault set survives every subset of it).
/// Hence a removal that left a surviving plan before still leaves a
/// surviving plan now, re-checking those prefixes is pure waste, and the
/// result remains 1-minimal: when a full pass from the final resume point
/// plus the accumulated prefix rejections finds no failing removal, no
/// single removal can fail. This turns the worst case from O(n²) engine
/// runs into O(n) beyond the accepted removals.
pub fn shrink_with_cores(
    plan: &ChaosPlan,
    harden: Hardening,
    durable: Option<DurableMode<'_>>,
    cores: usize,
) -> ChaosPlan {
    let mut current = plan.clone();
    let mut from = 0usize;
    loop {
        let n = current.faults.len();
        if from >= n {
            return current;
        }
        let hit = o2pc_common::pool::min_where(n - from, cores, |i| {
            let candidate = current.without(from + i);
            // Every candidate keeps the plan's seed, so concurrent durable
            // candidates would collide on one `seed-<N>` dir — give each
            // candidate slot its own scratch subtree.
            let scratch = durable.map(|m| (m.dir.join(format!("shrink-{i}")), m.segment_bytes));
            let mode = scratch.as_ref().map(|(d, sb)| DurableMode {
                dir: d,
                segment_bytes: *sb,
            });
            let failed = !run_plan_with(&candidate, harden, mode).survived();
            if let Some((dir, _)) = &scratch {
                clear_run_dir(dir); // scratch only; the original seed dir is the post-mortem
            }
            failed
        });
        match hit {
            Some(i) => {
                // Removing index `from + i` keeps the failure; the element
                // that shifted down into that slot has not been tried yet,
                // so the next scan resumes at the same position.
                current = current.without(from + i);
                from += i;
            }
            None => return current,
        }
    }
}
