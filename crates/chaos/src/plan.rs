//! Seeded chaos-schedule generation.
//!
//! A [`ChaosPlan`] is a list of [`Fault`]s, all derived from one seed and
//! all confined to the window `[0, heal_at)`. After `heal_at` every site is
//! up, every link whole, and the message layer reliable again — which is
//! exactly what licenses the oracle's liveness-under-quiescence check: a
//! hardened engine given unbounded quiet time has no excuse left.

use o2pc_common::{DetRng, Duration, SimTime, SiteId};
use o2pc_sim::{FailurePlan, LatencyModel, MessageChaos};

/// One injected fault.
#[derive(Clone, Debug)]
pub enum Fault {
    /// A site is down over `[from, to)`.
    Crash {
        /// The crashing site.
        site: SiteId,
        /// Crash instant.
        from: SimTime,
        /// Recovery instant.
        to: SimTime,
    },
    /// The (bidirectional) link between two sites is severed over
    /// `[from, to)`.
    Partition {
        /// One endpoint.
        a: SiteId,
        /// The other endpoint.
        b: SiteId,
        /// Outage start.
        from: SimTime,
        /// Outage end.
        to: SimTime,
    },
    /// Every message is independently lost with this probability while the
    /// chaos window is open.
    Drop {
        /// Per-message loss probability.
        probability: f64,
    },
    /// Every delivered message is independently delivered a second time
    /// with this probability while the chaos window is open.
    Duplicate {
        /// Per-message duplication probability.
        probability: f64,
    },
    /// Extra exponential delay added to every delivery while the chaos
    /// window is open.
    ExtraDelay {
        /// Mean of the extra delay.
        mean: Duration,
    },
}

/// Tunables for [`ChaosPlan::generate`].
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Number of sites in the system under test.
    pub num_sites: u32,
    /// Every fault window closes at or before this instant.
    pub heal_at: SimTime,
    /// Upper bound on crash windows per plan (capped at `num_sites - 1`:
    /// the generator never downs every site at once).
    pub max_crashes: usize,
    /// Upper bound on link partitions per plan.
    pub max_partitions: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            num_sites: 4,
            heal_at: SimTime::ZERO + Duration::millis(300),
            max_crashes: 2,
            max_partitions: 2,
        }
    }
}

/// A reproducible fault schedule: `generate(seed, cfg)` is a pure function,
/// so a failing seed replays bit-for-bit.
#[derive(Clone, Debug)]
pub struct ChaosPlan {
    /// The seed this plan (and the run driven by it) derives from.
    pub seed: u64,
    /// Number of sites the plan targets.
    pub num_sites: u32,
    /// Instant after which no fault is active.
    pub heal_at: SimTime,
    /// The faults, in generation order.
    pub faults: Vec<Fault>,
}

impl ChaosPlan {
    /// Derive a full fault schedule from a seed.
    ///
    /// Message-layer chaos is always present — drop and duplication
    /// probabilities each land in `[0.05, 0.15]` — and at least one site
    /// crash is always scheduled, so every plan exercises retransmission,
    /// deduplication, and crash recovery together.
    pub fn generate(seed: u64, cfg: &ChaosConfig) -> ChaosPlan {
        assert!(cfg.num_sites >= 2, "chaos plans need at least two sites");
        let heal = cfg.heal_at.micros();
        assert!(heal >= 8, "heal window too short to place fault windows");
        let mut rng = DetRng::new(seed ^ 0xC4A0_5EED);
        let mut faults = Vec::new();
        faults.push(Fault::Drop {
            probability: 0.05 + rng.gen_range(101) as f64 / 1_000.0,
        });
        faults.push(Fault::Duplicate {
            probability: 0.05 + rng.gen_range(101) as f64 / 1_000.0,
        });
        if rng.gen_bool(0.5) {
            faults.push(Fault::ExtraDelay {
                mean: Duration::micros(rng.gen_range_inclusive(500, 5_000)),
            });
        }
        let window = |rng: &mut DetRng| {
            let from = rng.gen_range(heal * 3 / 4);
            let len = rng.gen_range_inclusive(heal / 8, heal / 3);
            (SimTime(from), SimTime((from + len).min(heal)))
        };
        let max_crashes = cfg.max_crashes.clamp(1, cfg.num_sites as usize - 1);
        let crashes = 1 + rng.gen_range(max_crashes as u64) as usize;
        // Distinct sites: overlapping windows at one site would make the
        // scripted crash/recover event pairs ambiguous.
        let crash_sites = rng.sample_indices(cfg.num_sites as usize, crashes);
        for idx in crash_sites {
            let (from, to) = window(&mut rng);
            faults.push(Fault::Crash {
                site: SiteId(idx as u32),
                from,
                to,
            });
        }
        let partitions = rng.gen_range(cfg.max_partitions as u64 + 1) as usize;
        for _ in 0..partitions {
            let pair = rng.sample_indices(cfg.num_sites as usize, 2);
            let (from, to) = window(&mut rng);
            faults.push(Fault::Partition {
                a: SiteId(pair[0] as u32),
                b: SiteId(pair[1] as u32),
                from,
                to,
            });
        }
        ChaosPlan {
            seed,
            num_sites: cfg.num_sites,
            heal_at: cfg.heal_at,
            faults,
        }
    }

    /// The scripted crash/partition layer of this plan.
    pub fn failure_plan(&self) -> FailurePlan {
        let mut plan = FailurePlan::new();
        for f in &self.faults {
            match *f {
                Fault::Crash { site, from, to } => plan.site_crash(site, from, to),
                Fault::Partition { a, b, from, to } => plan.link_outage(a, b, from, to),
                _ => {}
            }
        }
        plan
    }

    /// The message-layer fault window of this plan (loss, duplication,
    /// jitter), healing at [`ChaosPlan::heal_at`]. `None` if the plan has no
    /// message-layer faults (possible after shrinking).
    pub fn message_chaos(&self) -> Option<MessageChaos> {
        let mut chaos = MessageChaos {
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            extra_delay: None,
            until: Some(self.heal_at),
        };
        let mut any = false;
        for f in &self.faults {
            match *f {
                Fault::Drop { probability } => {
                    chaos.drop_probability = probability;
                    any = true;
                }
                Fault::Duplicate { probability } => {
                    chaos.duplicate_probability = probability;
                    any = true;
                }
                Fault::ExtraDelay { mean } => {
                    chaos.extra_delay = Some(LatencyModel::Exponential(mean));
                    any = true;
                }
                _ => {}
            }
        }
        any.then_some(chaos)
    }

    /// Sites with a scheduled crash window (coverage accounting).
    pub fn crash_sites(&self) -> Vec<SiteId> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::Crash { site, .. } => Some(*site),
                _ => None,
            })
            .collect()
    }

    /// The plan's message-drop probability (0.0 if the fault was shrunk
    /// away).
    pub fn drop_probability(&self) -> f64 {
        self.faults
            .iter()
            .find_map(|f| match f {
                Fault::Drop { probability } => Some(*probability),
                _ => None,
            })
            .unwrap_or(0.0)
    }

    /// The plan's message-duplication probability (0.0 if shrunk away).
    pub fn duplicate_probability(&self) -> f64 {
        self.faults
            .iter()
            .find_map(|f| match f {
                Fault::Duplicate { probability } => Some(*probability),
                _ => None,
            })
            .unwrap_or(0.0)
    }

    /// A copy of the plan with fault `idx` removed (shrinking step).
    pub fn without(&self, idx: usize) -> ChaosPlan {
        let mut shrunk = self.clone();
        shrunk.faults.remove(idx);
        shrunk
    }

    /// Human-readable schedule, one fault per line.
    pub fn describe(&self) -> String {
        let mut out = format!(
            "seed {:#x}: {} sites, heal at {} µs, {} faults\n",
            self.seed,
            self.num_sites,
            self.heal_at.micros(),
            self.faults.len()
        );
        for f in &self.faults {
            let line = match *f {
                Fault::Crash { site, from, to } => {
                    format!(
                        "  crash     {site} down [{}, {}) µs",
                        from.micros(),
                        to.micros()
                    )
                }
                Fault::Partition { a, b, from, to } => {
                    format!(
                        "  partition {a}–{b} cut [{}, {}) µs",
                        from.micros(),
                        to.micros()
                    )
                }
                Fault::Drop { probability } => format!("  drop      p = {probability:.3}"),
                Fault::Duplicate { probability } => format!("  duplicate p = {probability:.3}"),
                Fault::ExtraDelay { mean } => {
                    format!("  delay     +Exp(mean {} µs)", mean.as_micros())
                }
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = ChaosConfig::default();
        let a = ChaosPlan::generate(42, &cfg);
        let b = ChaosPlan::generate(42, &cfg);
        assert_eq!(a.describe(), b.describe());
        let c = ChaosPlan::generate(43, &cfg);
        assert_ne!(a.describe(), c.describe());
    }

    #[test]
    fn every_plan_has_loss_duplication_and_a_crash() {
        let cfg = ChaosConfig::default();
        for seed in 0..200 {
            let p = ChaosPlan::generate(seed, &cfg);
            assert!(p.drop_probability() >= 0.05, "seed {seed}");
            assert!(p.drop_probability() <= 0.151, "seed {seed}");
            assert!(p.duplicate_probability() >= 0.05, "seed {seed}");
            assert!(!p.crash_sites().is_empty(), "seed {seed}");
            // Never every site at once.
            assert!(p.crash_sites().len() < cfg.num_sites as usize);
        }
    }

    #[test]
    fn fault_windows_close_by_heal() {
        let cfg = ChaosConfig::default();
        for seed in 0..200 {
            let p = ChaosPlan::generate(seed, &cfg);
            for f in &p.faults {
                match *f {
                    Fault::Crash { from, to, .. } | Fault::Partition { from, to, .. } => {
                        assert!(from < to, "seed {seed}: degenerate window");
                        assert!(to <= p.heal_at, "seed {seed}: window past heal");
                    }
                    _ => {}
                }
            }
            assert_eq!(p.message_chaos().unwrap().until, Some(p.heal_at));
        }
    }

    #[test]
    fn without_removes_exactly_one_fault() {
        let p = ChaosPlan::generate(7, &ChaosConfig::default());
        let n = p.faults.len();
        let q = p.without(0);
        assert_eq!(q.faults.len(), n - 1);
        // Dropping the Drop fault zeroes the probability.
        assert_eq!(q.drop_probability(), 0.0);
        assert!(p.drop_probability() > 0.0);
    }
}
