//! # o2pc-site
//!
//! One autonomous local DBMS ("site"): strict-2PL lock manager + in-place
//! store + write-ahead log + marking hooks, packaged behind the small
//! surface the distributed engine drives.
//!
//! The site understands three kinds of lock-holding executions
//! ([`o2pc_common::ExecId`]): local transactions, subtransactions of global
//! transactions, and compensating subtransactions (which, per §3.2, are
//! *treated as local transactions with respect to locking* — each follows
//! strict 2PL on its own and releases at its own completion, independent of
//! sibling compensations).
//!
//! Protocol-relevant behaviours implemented here:
//!
//! * **Vote handling** ([`Site::vote`]): a *yes* vote under
//!   [`LockPolicy::ReleaseAll`] (O2PC) locally commits — all locks released
//!   at once, the commit record retained for possible compensation. Under
//!   [`LockPolicy::HoldWrites`] (distributed 2PL, or an O2PC site running
//!   non-compensatable *real actions*) read locks are released and write
//!   locks retained until the decision. A *no* vote rolls back immediately —
//!   and the roll-back's undo writes are recorded in the history as
//!   operations of `CT_i`, the paper's "roll-back as a special case of a
//!   compensating transaction".
//! * **Decision handling** ([`Site::decide`]): commit finalizes; abort on a
//!   locally-committed site returns a compensation plan for the engine to
//!   run as a `CT_ij` execution; the *undone* marking is set only when the
//!   compensation completes (rule R2 — the marking is the CT's last action).
//! * **Crash/recovery** ([`Site::crash`] / [`Site::recover`]): the WAL
//!   survives; in-flight executions are rolled back on restart, while
//!   prepared and locally-committed (in-doubt) subtransactions are fully
//!   reconstructed — updates, write locks, and compensation obligations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod site;

pub use exec::{ExecPhase, ExecState, OpResult};
pub use site::{LockPolicy, PeerState, Site, SiteConfig, Vote};
