//! The site kernel.

use crate::exec::{ExecPhase, ExecState, OpResult};
use o2pc_common::FastHashMap;
use o2pc_common::{
    ExecId, GlobalTxnId, HistEvent, HistEventKind, HistorySink, Key, LocalTxnId, Op, OpKind,
    SimTime, SiteId, TxnId, Value,
};
use o2pc_compensation::{plan_compensation, CompensationModel, CompensationPlan};
use o2pc_locking::{LockManager, RequestOutcome};
use o2pc_marking::{MarkEvent, MarkState, SiteMarks};
use o2pc_storage::{CommitRecord, FlushBatch, LogRecord, Store, WalBackend};
use std::collections::BTreeSet;
use std::sync::Arc;

/// What a *yes* vote does with the subtransaction's locks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum LockPolicy {
    /// O2PC: release **all** locks at the commit vote (local commit).
    #[default]
    ReleaseAll,
    /// Distributed 2PL — or an O2PC site performing non-compensatable real
    /// actions: release read locks, retain write locks until the decision.
    HoldWrites,
}

/// A participant's vote.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Vote {
    /// Vote to commit.
    Yes,
    /// Vote to abort (the subtransaction has been rolled back locally).
    No,
}

/// What a participant can answer about a transaction's fate when a blocked
/// peer runs the cooperative termination protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PeerState {
    /// This site has not voted yes (and, per the protocol's safety rule,
    /// has now unilaterally aborted): the decision cannot be commit.
    NotPrepared,
    /// Voted yes, decision unknown here.
    PreparedUncertain,
    /// The decision commit is known here.
    KnowsCommit,
    /// The decision abort is known here.
    KnowsAbort,
    /// No answer (used by callers for unreachable peers; a site never
    /// answers this itself).
    Unreachable,
}

/// Site configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct SiteConfig {
    /// Which compensation model the site's interface supports.
    pub compensation_model: CompensationModel,
}

/// Result of [`Site::vote`].
#[derive(Clone, Debug)]
pub struct VoteOutcome {
    /// The vote sent back to the coordinator.
    pub vote: Vote,
    /// Executions unblocked by any lock release this triggered.
    pub woken: Vec<ExecId>,
}

/// Result of [`Site::decide`].
#[derive(Clone, Debug, Default)]
pub struct DecideOutcome {
    /// Executions unblocked by lock releases.
    pub woken: Vec<ExecId>,
    /// If the decision was *abort* for a locally-committed subtransaction:
    /// the compensation plan to execute as `CT_ij` (possibly empty for a
    /// read-only subtransaction — the caller should then complete the
    /// compensation immediately).
    pub compensation: Option<CompensationPlan>,
}

/// One autonomous local DBMS.
#[derive(Debug)]
pub struct Site {
    id: SiteId,
    config: SiteConfig,
    store: Store,
    wal: WalBackend,
    locks: LockManager,
    marks: SiteMarks,
    last_writer: FastHashMap<Key, TxnId>,
    execs: FastHashMap<ExecId, ExecState>,
    /// Locally-committed subtransactions awaiting the coordinator decision.
    commit_records: FastHashMap<GlobalTxnId, Arc<CommitRecord>>,
    /// Decisions this site has learned (answers termination-protocol
    /// queries from blocked peers).
    decided: FastHashMap<GlobalTxnId, bool>,
    /// Live index of subtransactions in the *Running* phase — maintained
    /// at every phase transition so polls need no scan-and-sort over the
    /// exec table.
    running: BTreeSet<GlobalTxnId>,
    /// Live index of *Prepared* (in-doubt under 2PC) subtransactions.
    prepared: BTreeSet<GlobalTxnId>,
    local_seq: u64,
    /// Compensation operations skipped because the state they would restore
    /// no longer admits them (e.g. re-deleting an already-deleted item).
    pub skipped_comp_ops: u64,
    /// Executions rolled back by the last [`Site::recover`] (in-flight at
    /// the crash). The engine drains this to record the rollbacks in the
    /// history — the crash undid their writes, so leaving them unterminated
    /// would make the SG audit count accesses nobody could ever observe.
    recovery_rollbacks: Vec<ExecId>,
}

impl Site {
    /// New empty site with an in-memory WAL.
    pub fn new(id: SiteId, config: SiteConfig) -> Self {
        Self::with_wal(id, config, WalBackend::default())
    }

    /// New empty site logging to the given WAL backend.
    pub fn with_wal(id: SiteId, config: SiteConfig, wal: WalBackend) -> Self {
        Site {
            id,
            config,
            store: Store::new(),
            wal,
            locks: LockManager::new(),
            marks: SiteMarks::new(),
            last_writer: FastHashMap::default(),
            execs: FastHashMap::default(),
            commit_records: FastHashMap::default(),
            decided: FastHashMap::default(),
            running: BTreeSet::new(),
            prepared: BTreeSet::new(),
            local_seq: 0,
            skipped_comp_ops: 0,
            recovery_rollbacks: Vec::new(),
        }
    }

    /// Drain the executions rolled back by the last [`Site::recover`] (for
    /// history bookkeeping by the engine).
    pub fn take_recovery_rollbacks(&mut self) -> Vec<ExecId> {
        std::mem::take(&mut self.recovery_rollbacks)
    }

    /// Site id.
    pub fn id(&self) -> SiteId {
        self.id
    }

    /// Pre-load a data item (setup; not logged as a transaction).
    pub fn load(&mut self, key: Key, value: Value) {
        self.store.load(key, value);
    }

    /// Take a WAL checkpoint (call after loading).
    pub fn checkpoint(&mut self) {
        self.wal.checkpoint(&self.store);
    }

    /// Current value of an item.
    pub fn get(&self, key: Key) -> Option<Value> {
        self.store.get(key)
    }

    /// Sum of all item values (invariant checks).
    pub fn total(&self) -> i64 {
        self.store.total()
    }

    /// Allocate an id for a new independent local transaction.
    pub fn next_local_id(&mut self) -> LocalTxnId {
        let id = LocalTxnId {
            site: self.id,
            seq: self.local_seq,
        };
        self.local_seq += 1;
        id
    }

    /// High-water mark of the local-transaction id counter: every seq below
    /// it may already have been issued.
    pub fn local_seq_watermark(&self) -> u64 {
        self.local_seq
    }

    /// Raise the local id counter to at least `floor`. A durable WAL can
    /// lose its unflushed tail in a crash, including the `Begin` of a local
    /// transaction the rest of the system already observed — recovery from
    /// the truncated log alone would then reissue that id and merge two
    /// distinct transactions into one history node. Real systems reserve id
    /// ranges durably ahead of use; the engine models that reservation by
    /// restoring the pre-crash watermark here.
    pub fn reserve_local_seq(&mut self, floor: u64) {
        self.local_seq = self.local_seq.max(floor);
    }

    /// The site's marking state (R1 checks read it).
    pub fn marks(&self) -> &SiteMarks {
        &self.marks
    }

    /// Marking of this site with respect to `txn`.
    pub fn mark_of(&self, txn: GlobalTxnId) -> MarkState {
        self.marks.mark_of(txn)
    }

    /// Rule R3: forget the undone marking for `txn` (UDUM1 fired).
    pub fn unmark(&mut self, txn: GlobalTxnId) {
        self.marks.unmark(txn);
    }

    /// The lock manager's statistics.
    pub fn lock_stats(&self) -> &o2pc_locking::LockStats {
        self.locks.stats()
    }

    /// Is the execution currently parked on a lock queue?
    pub fn is_blocked(&self, exec: ExecId) -> bool {
        self.locks.waiting_on(exec).is_some()
    }

    /// The execution's state, if active.
    pub fn exec_state(&self, exec: ExecId) -> Option<&ExecState> {
        self.execs.get(&exec)
    }

    /// Global transactions with a subtransaction still *running* here
    /// (blocked or mid-program — not yet acked). The engine re-checks these
    /// against the marking sets whenever a mark is added: with the marking
    /// sets under strict 2PL, a subtransaction admitted under the old marks
    /// could never observe data past the new mark, so its in-flight
    /// incarnation must be aborted before it can (see §6.2's deadlock
    /// discussion — aborting here is the deadlock-victim path of the
    /// sitemarks lock cycle).
    pub fn running_subs(&self) -> Vec<GlobalTxnId> {
        #[cfg(debug_assertions)]
        debug_assert_eq!(self.running, self.scan_phase(ExecPhase::Running));
        self.running.iter().copied().collect()
    }

    /// Global transactions prepared at this site (in-doubt under 2PC).
    pub fn prepared_subs(&self) -> Vec<GlobalTxnId> {
        #[cfg(debug_assertions)]
        debug_assert_eq!(self.prepared, self.scan_phase(ExecPhase::Prepared));
        self.prepared.iter().copied().collect()
    }

    /// Recompute an index set from the exec table (debug cross-check that
    /// the live `running`/`prepared` indexes track every phase transition).
    #[cfg(debug_assertions)]
    fn scan_phase(&self, phase: ExecPhase) -> BTreeSet<GlobalTxnId> {
        self.execs
            .iter()
            .filter_map(|(e, st)| match e {
                ExecId::Sub(g) if st.phase == phase => Some(*g),
                _ => None,
            })
            .collect()
    }

    /// Drop `exec` from the live phase indexes (it left the exec table or
    /// moved to a terminal phase).
    fn unindex(&mut self, exec: ExecId) {
        if let ExecId::Sub(g) = exec {
            self.running.remove(&g);
            self.prepared.remove(&g);
        }
    }

    /// Global transactions locally committed here whose decision is still
    /// unknown (in-doubt under O2PC — the data is exposed, only the
    /// compensate-or-finalize question is open).
    pub fn pending_local_commits(&self) -> Vec<GlobalTxnId> {
        let mut v: Vec<GlobalTxnId> = self.commit_records.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Is `g` locally committed here with its decision still unknown?
    /// (Allocation-free membership twin of [`Site::pending_local_commits`].)
    pub fn has_pending_local_commit(&self, g: GlobalTxnId) -> bool {
        self.commit_records.contains_key(&g)
    }

    /// Find a local deadlock cycle, if any.
    pub fn find_deadlock(&mut self) -> Option<Vec<ExecId>> {
        self.locks.find_deadlock()
    }

    /// The site's current waits-for edges (`(waiter, blocker)`), used by the
    /// engine's distributed deadlock detector.
    pub fn waits_for_edges(&self) -> Vec<(ExecId, ExecId)> {
        self.locks.waits_for_edges()
    }

    /// Begin an execution with the given operation program.
    pub fn begin(&mut self, exec: ExecId, ops: Vec<Op>, now: SimTime, hist: &mut dyn HistorySink) {
        debug_assert!(!self.execs.contains_key(&exec), "{exec} already active");
        self.wal.append(LogRecord::Begin(exec));
        hist.record(HistEvent {
            site: self.id,
            txn: exec.txn_id(),
            kind: HistEventKind::Begin,
            time: now,
        });
        self.execs.insert(exec, ExecState::new(exec, ops));
        if let ExecId::Sub(g) = exec {
            self.running.insert(g);
        }
    }

    /// Execute the execution's next operation. On `Blocked` the caller must
    /// wait for the exec to appear in a `woken` list and then call again
    /// (the lock is granted re-entrantly at that point).
    pub fn execute_next_op(
        &mut self,
        exec: ExecId,
        now: SimTime,
        hist: &mut dyn HistorySink,
    ) -> OpResult {
        let state = self
            .execs
            .get(&exec)
            .unwrap_or_else(|| panic!("{exec} not active"));
        debug_assert_eq!(state.phase, ExecPhase::Running, "{exec} not running");
        let Some(op) = state.current_op() else {
            return OpResult::Done {
                value: None,
                finished: true,
            };
        };

        if self.locks.request(exec, op.key(), op.access_mode(), now) == RequestOutcome::Waiting {
            return OpResult::Blocked;
        }

        match self.store.apply(exec, op) {
            Ok(value) => {
                let txn = exec.txn_id();
                let read_from = if op.kind() == OpKind::Read {
                    self.last_writer
                        .get(&op.key())
                        .copied()
                        .filter(|w| *w != txn)
                } else {
                    None
                };
                if op.kind() == OpKind::Write {
                    let rec = *self.store.last_undo(exec).expect("mutation logged");
                    self.wal.append_update(exec, &rec);
                }
                hist.record_access(self.id, txn, op.kind(), op.key(), read_from, now);
                if op.kind() == OpKind::Write {
                    self.last_writer.insert(op.key(), txn);
                }
                let state = self.execs.get_mut(&exec).unwrap();
                state.pc += 1;
                let finished = state.pc == state.ops.len();
                if finished {
                    state.phase = ExecPhase::Completed;
                    self.unindex(exec);
                }
                OpResult::Done { value, finished }
            }
            Err(e) => {
                if exec.is_comp() {
                    // Persistence of compensation: a CT never fails as a
                    // whole. A compensating operation that no longer applies
                    // (the item was since deleted, etc.) is skipped — the
                    // semantic state it would re-establish is already gone.
                    self.skipped_comp_ops += 1;
                    let state = self.execs.get_mut(&exec).unwrap();
                    state.pc += 1;
                    let finished = state.pc == state.ops.len();
                    if finished {
                        state.phase = ExecPhase::Completed;
                    }
                    OpResult::Done {
                        value: None,
                        finished,
                    }
                } else {
                    let state = self.execs.get_mut(&exec).unwrap();
                    state.phase = ExecPhase::Failed;
                    state.error = Some(e.clone());
                    self.unindex(exec);
                    OpResult::Failed(e)
                }
            }
        }
    }

    /// Commit an independent local transaction (strict 2PL: all locks
    /// released now). Returns woken executions.
    pub fn commit_local(
        &mut self,
        exec: ExecId,
        now: SimTime,
        hist: &mut dyn HistorySink,
    ) -> Vec<ExecId> {
        debug_assert!(matches!(exec, ExecId::Local(_)));
        let state = self.execs.remove(&exec).expect("local exec active");
        debug_assert_eq!(state.phase, ExecPhase::Completed);
        self.store.commit(exec);
        self.wal.append(LogRecord::Commit(exec));
        hist.record(HistEvent {
            site: self.id,
            txn: exec.txn_id(),
            kind: HistEventKind::Committed,
            time: now,
        });
        self.locks.release_all(exec, now)
    }

    /// Roll an execution back from the log and release its locks.
    ///
    /// For subtransactions of global transactions the undo writes are
    /// recorded in the history as write accesses of `CT_i` (§3.2: standard
    /// roll-back *is* the compensating subtransaction at a site that voted
    /// abort). For local transactions and in-flight compensating
    /// subtransactions the undo is purely physical — strict 2PL guarantees
    /// nobody observed the undone values.
    pub fn abort_exec(
        &mut self,
        exec: ExecId,
        now: SimTime,
        hist: &mut dyn HistorySink,
    ) -> Vec<ExecId> {
        let undo = self.store.rollback(exec);
        for rec in undo.iter().rev() {
            self.wal.append(LogRecord::Update {
                exec,
                key: rec.key,
                before: rec.after,
                after: rec.before,
            });
        }
        self.wal.append(LogRecord::Abort(exec));
        if let ExecId::Sub(g) = exec {
            let ct = TxnId::Compensation(g);
            for rec in undo.iter().rev() {
                hist.record_access(self.id, ct, OpKind::Write, rec.key, None, now);
                self.last_writer.insert(rec.key, ct);
            }
            hist.record(HistEvent {
                site: self.id,
                txn: TxnId::Global(g),
                kind: HistEventKind::RolledBack,
                time: now,
            });
        } else {
            hist.record(HistEvent {
                site: self.id,
                txn: exec.txn_id(),
                kind: HistEventKind::RolledBack,
                time: now,
            });
        }
        self.execs.remove(&exec);
        self.unindex(exec);
        self.locks.release_all(exec, now)
    }

    /// Unilaterally abort the subtransaction of `g` before the vote (local
    /// autonomy: deadlock victimhood, R1 revalidation failure, operator
    /// action). The roll-back is recorded as `CT_i` activity and the site
    /// becomes undone with respect to `g`; the eventual VOTE-REQ will be
    /// answered *no* (the execution is gone).
    pub fn unilateral_abort(
        &mut self,
        g: GlobalTxnId,
        now: SimTime,
        hist: &mut dyn HistorySink,
    ) -> Vec<ExecId> {
        let exec = ExecId::Sub(g);
        debug_assert!(
            self.execs.contains_key(&exec),
            "no subtransaction of {g} to abort"
        );
        let woken = self.abort_exec(exec, now, hist);
        let _ = self.marks.apply(g, MarkEvent::VoteAbort);
        woken
    }

    /// Respond to VOTE-REQ for global transaction `g`. `force_abort` models
    /// the site exercising its autonomy (or any local validation failure).
    pub fn vote(
        &mut self,
        g: GlobalTxnId,
        policy: LockPolicy,
        force_abort: bool,
        now: SimTime,
        hist: &mut dyn HistorySink,
    ) -> VoteOutcome {
        let exec = ExecId::Sub(g);
        // Duplicate / retransmitted VOTE-REQ: re-answer consistently
        // without re-running vote side effects. A site that already voted
        // yes (locally committed, or prepared under hold-writes) must never
        // flip to no on a repeat, and the decision outcome dominates both.
        if let Some(&commit) = self.decided.get(&g) {
            return VoteOutcome {
                vote: if commit { Vote::Yes } else { Vote::No },
                woken: Vec::new(),
            };
        }
        if self.commit_records.contains_key(&g) {
            return VoteOutcome {
                vote: Vote::Yes,
                woken: Vec::new(),
            };
        }
        let Some(state) = self.execs.get(&exec) else {
            // Already rolled back unilaterally: the marking is in place.
            return VoteOutcome {
                vote: Vote::No,
                woken: Vec::new(),
            };
        };
        if state.phase == ExecPhase::Prepared {
            return VoteOutcome {
                vote: Vote::Yes,
                woken: Vec::new(),
            };
        }
        if force_abort || state.phase == ExecPhase::Failed || state.phase == ExecPhase::Running {
            let woken = self.abort_exec(exec, now, hist);
            // Roll-back is this site's compensation: undone immediately.
            let _ = self.marks.apply(g, MarkEvent::VoteAbort);
            return VoteOutcome {
                vote: Vote::No,
                woken,
            };
        }
        debug_assert_eq!(state.phase, ExecPhase::Completed);
        match policy {
            LockPolicy::ReleaseAll => {
                let rec = Arc::new(self.store.commit(exec));
                self.wal.append(LogRecord::LocalCommit {
                    exec,
                    record: Arc::clone(&rec),
                });
                self.commit_records.insert(g, rec);
                hist.record(HistEvent {
                    site: self.id,
                    txn: TxnId::Global(g),
                    kind: HistEventKind::LocallyCommitted,
                    time: now,
                });
                let _ = self.marks.apply(g, MarkEvent::VoteCommit);
                self.execs.remove(&exec);
                let woken = self.locks.release_all(exec, now);
                VoteOutcome {
                    vote: Vote::Yes,
                    woken,
                }
            }
            LockPolicy::HoldWrites => {
                self.wal.append(LogRecord::Prepared(exec));
                let _ = self.marks.apply(g, MarkEvent::VoteCommit);
                self.execs.get_mut(&exec).unwrap().phase = ExecPhase::Prepared;
                self.prepared.insert(g);
                let woken = self.locks.release_read_locks(exec, now);
                VoteOutcome {
                    vote: Vote::Yes,
                    woken,
                }
            }
        }
    }

    /// Apply the coordinator's decision for `g`.
    pub fn decide(
        &mut self,
        g: GlobalTxnId,
        commit: bool,
        now: SimTime,
        hist: &mut dyn HistorySink,
    ) -> DecideOutcome {
        let repeat = self.decided.insert(g, commit) == Some(commit);
        if !repeat {
            self.wal.append(LogRecord::Outcome { txn: g, commit });
        }
        let exec = ExecId::Sub(g);
        // Case 1: the subtransaction is still active here — prepared under
        // hold-writes, or never even asked to vote (an abort decision can
        // overtake the VOTE-REQ when the coordinator times out on another
        // participant).
        if let Some(state) = self.execs.get(&exec) {
            if commit {
                debug_assert_eq!(
                    state.phase,
                    ExecPhase::Prepared,
                    "commit for unprepared exec"
                );
                self.store.commit(exec);
                self.wal.append(LogRecord::Commit(exec));
                hist.record(HistEvent {
                    site: self.id,
                    txn: TxnId::Global(g),
                    kind: HistEventKind::Committed,
                    time: now,
                });
                let _ = self.marks.apply(g, MarkEvent::DecisionCommit);
                self.execs.remove(&exec);
                self.unindex(exec);
                return DecideOutcome {
                    woken: self.locks.release_all(exec, now),
                    compensation: None,
                };
            }
            let woken = self.abort_exec(exec, now, hist);
            // LocallyCommitted → Undone; a site that never voted jumps
            // straight to undone (the roll-back completed synchronously).
            if self.marks.apply(g, MarkEvent::DecisionAbort).is_err() {
                self.marks.mark_undone(g);
            }
            return DecideOutcome {
                woken,
                compensation: None,
            };
        }
        // Case 2: locally committed under O2PC.
        if let Some(rec) = self.commit_records.remove(&g) {
            if commit {
                hist.record(HistEvent {
                    site: self.id,
                    txn: TxnId::Global(g),
                    kind: HistEventKind::Committed,
                    time: now,
                });
                let _ = self.marks.apply(g, MarkEvent::DecisionCommit);
                return DecideOutcome::default();
            }
            let plan = plan_compensation(self.config.compensation_model, &rec);
            // The marking transition to Undone happens when CT_ij completes
            // (rule R2); until then the site remains locally-committed.
            return DecideOutcome {
                woken: Vec::new(),
                compensation: Some(plan),
            };
        }
        // Case 3: a repeated decision (e.g. the coordinator resends after
        // the termination protocol already resolved us) is a no-op; a fresh
        // decision here means the site voted no (already undone) and only
        // an abort can arrive.
        if repeat {
            return DecideOutcome::default();
        }
        if commit {
            // A commit with no live exec and no retained commit record can
            // only be a stale duplicate arriving after this site already
            // applied and forgot the transaction (engine GC): the durable
            // effects are in place, so treat it as the repeat it is.
            return DecideOutcome::default();
        }
        let _ = self.marks.apply(g, MarkEvent::DecisionAbort);
        DecideOutcome::default()
    }

    /// Drop the retained decision record for `g` (engine garbage collection
    /// once every participant has acked the decision and unmarked). Callers
    /// must filter later duplicate DECISIONs themselves; this only bounds
    /// the `decided` map.
    pub fn forget(&mut self, g: GlobalTxnId) {
        self.decided.remove(&g);
    }

    /// Keep only the retained decisions for which `keep` returns true
    /// (recovery pruning: decisions resurrected from the WAL for
    /// transactions the system has already retired are dead weight — GC
    /// only retires a transaction once no participant can still be in
    /// doubt, so no termination round will ever ask about them again).
    pub fn retain_decisions(&mut self, keep: impl FnMut(GlobalTxnId) -> bool) {
        let mut keep = keep;
        self.decided.retain(|&g, _| keep(g));
    }

    /// Number of retained decision records (bounded-memory assertions).
    pub fn decided_count(&self) -> usize {
        self.decided.len()
    }

    /// Replay the WAL and compare the reconstructed item state against the
    /// live store — the durability check used by the chaos oracle. `true`
    /// means a crash right now would recover to exactly the current data.
    ///
    /// **Oracle-time only.** This replays the full log and materializes the
    /// whole store (see [`Site::wal_store_diff`]); it must never run on the
    /// per-decision hot path. The engine exposes it solely through its
    /// end-of-run probes (`wal_divergent_sites` / `wal_store_diffs`), which
    /// the chaos oracle calls once per run at quiescence.
    pub fn wal_matches_store(&self) -> bool {
        self.wal_store_diff().is_empty()
    }

    /// The raw WAL records, for diagnostics (e.g. dumping why a replay
    /// diverged, or tracing a chaos-harness counterexample).
    pub fn wal_records(&self) -> &[LogRecord] {
        self.wal.records()
    }

    /// Keys where WAL replay and the live store disagree, as
    /// `(key, recovered, live)` — diagnostic companion to
    /// [`Site::wal_matches_store`].
    ///
    /// Rebuilds two full ordered maps per call — O(log size + store size)
    /// work and allocation. That is fine exactly once per run in the
    /// oracle, and ruinous anywhere inside the engine loop, which is why
    /// no protocol code path calls it (and none may start to).
    pub fn wal_store_diff(&self) -> Vec<(Key, Option<Value>, Option<Value>)> {
        use std::collections::BTreeMap;
        let recovered: BTreeMap<Key, Value> = self.wal.recover().items.into_iter().collect();
        let live: BTreeMap<Key, Value> = self.store.iter().collect();
        let keys: std::collections::BTreeSet<Key> =
            recovered.keys().chain(live.keys()).copied().collect();
        keys.into_iter()
            .filter_map(|k| {
                let r = recovered.get(&k).copied();
                let l = live.get(&k).copied();
                (r != l).then_some((k, r, l))
            })
            .collect()
    }

    /// Answer a cooperative-termination query from a blocked peer (§ the
    /// classic BHG protocol; see `o2pc-protocol::termination`). Following
    /// its safety rule, a participant that has **not yet voted** aborts its
    /// subtransaction unilaterally before answering "not prepared" — that
    /// answer licenses the asker to abort, so this site must never vote yes
    /// afterwards. Returns the answer and any executions woken by the
    /// abort's lock release.
    pub fn answer_termination_query(
        &mut self,
        g: GlobalTxnId,
        now: SimTime,
        hist: &mut dyn HistorySink,
    ) -> (PeerState, Vec<ExecId>) {
        if let Some(&commit) = self.decided.get(&g) {
            let state = if commit {
                PeerState::KnowsCommit
            } else {
                PeerState::KnowsAbort
            };
            return (state, Vec::new());
        }
        let exec = ExecId::Sub(g);
        if let Some(state) = self.execs.get(&exec) {
            return match state.phase {
                ExecPhase::Prepared => (PeerState::PreparedUncertain, Vec::new()),
                // Not voted yet: abort unilaterally, then answer.
                _ => {
                    let woken = self.unilateral_abort(g, now, hist);
                    (PeerState::NotPrepared, woken)
                }
            };
        }
        if self.commit_records.contains_key(&g) {
            // Voted yes under O2PC, awaiting the decision: uncertain.
            return (PeerState::PreparedUncertain, Vec::new());
        }
        if self.marks.mark_of(g) == MarkState::Undone {
            // Rolled back here: the transaction cannot commit.
            return (PeerState::NotPrepared, Vec::new());
        }
        // Never participated / already forgotten: safely "not prepared".
        (PeerState::NotPrepared, Vec::new())
    }

    /// Begin executing the compensation plan for `g` as `CT_ij`. The caller
    /// drives it with [`Site::execute_next_op`] on `ExecId::CompSub(g)`.
    pub fn begin_compensation(
        &mut self,
        g: GlobalTxnId,
        plan: &CompensationPlan,
        now: SimTime,
        hist: &mut dyn HistorySink,
    ) {
        self.begin(ExecId::CompSub(g), plan.ops.clone(), now, hist);
    }

    /// Complete `CT_ij`: commit its writes, set the undone marking (rule R2
    /// — "the last operation of `CT_ik`"), release its locks.
    pub fn finish_compensation(
        &mut self,
        g: GlobalTxnId,
        now: SimTime,
        hist: &mut dyn HistorySink,
    ) -> Vec<ExecId> {
        let exec = ExecId::CompSub(g);
        let state = self.execs.remove(&exec).expect("compensation active");
        debug_assert_eq!(state.phase, ExecPhase::Completed);
        self.store.commit(exec);
        self.wal.append(LogRecord::Commit(exec));
        hist.record(HistEvent {
            site: self.id,
            txn: TxnId::Compensation(g),
            kind: HistEventKind::Compensated,
            time: now,
        });
        // Figure 2: locally-committed --decision:abort--> undone, realized at
        // compensation completion.
        if self.marks.mark_of(g) == MarkState::LocallyCommitted {
            let _ = self.marks.apply(g, MarkEvent::DecisionAbort);
        } else {
            self.marks.mark_undone(g);
        }
        self.locks.release_all(exec, now)
    }

    /// Roll back an in-flight compensating subtransaction that lost a local
    /// deadlock. Persistence of compensation: the caller must re-submit the
    /// plan later. The partial writes are physically undone (unobserved —
    /// the CT still held its locks).
    pub fn rollback_compensation(&mut self, g: GlobalTxnId, now: SimTime) -> Vec<ExecId> {
        let exec = ExecId::CompSub(g);
        let undo = self.store.rollback(exec);
        for rec in undo.iter().rev() {
            self.wal.append(LogRecord::Update {
                exec,
                key: rec.key,
                before: rec.after,
                after: rec.before,
            });
        }
        self.wal.append(LogRecord::Abort(exec));
        self.execs.remove(&exec);
        self.locks.release_all(exec, now)
    }

    /// Simulated crash: the volatile state is lost; the WAL survives —
    /// entirely on the in-memory backend, and up to its durable watermark on
    /// the durable backend (the unsynced tail is gone, as on a real disk).
    pub fn crash(self) -> WalBackend {
        self.wal.crash().expect("wal crash transform")
    }

    // ----- durability surface (delegated; trivial on the in-memory WAL;
    // #[inline] because the engine queries these per gated send and the
    // workspace builds without LTO) -----

    /// True when this site logs to the durable (file-backed) backend.
    #[inline]
    pub fn wal_is_durable(&self) -> bool {
        self.wal.is_durable()
    }

    /// True when the site's WAL has appended records not yet durable.
    #[inline]
    pub fn wal_is_dirty(&self) -> bool {
        self.wal.is_dirty()
    }

    /// Ticket covering everything this site has logged so far.
    #[inline]
    pub fn wal_append_ticket(&self) -> u64 {
        self.wal.append_ticket()
    }

    /// The site's durable watermark.
    #[inline]
    pub fn wal_durable_ticket(&self) -> u64 {
        self.wal.durable_ticket()
    }

    /// The site's sealed watermark (bytes already in the flush pipeline).
    #[inline]
    pub fn wal_sealed_ticket(&self) -> u64 {
        self.wal.sealed_ticket()
    }

    /// Bytes appended but not yet sealed or synced.
    #[inline]
    pub fn wal_pending_bytes(&self) -> u64 {
        self.wal.pending_bytes()
    }

    /// True when this site's WAL must flush inline (fault-armed or dead
    /// durable WAL; trivially true in-memory).
    #[inline]
    pub fn wal_wants_inline_flush(&self) -> bool {
        self.wal.wants_inline_flush()
    }

    /// Group commit: flush the site's WAL inline (sim substrate).
    pub fn wal_sync(&mut self) -> std::io::Result<()> {
        self.wal.sync()
    }

    /// Seal buffered WAL frames for a background flusher (threaded
    /// substrate). `None` when nothing is pending.
    pub fn wal_seal_batch(&mut self) -> Option<FlushBatch> {
        self.wal.seal_batch()
    }

    /// The durable WAL's I/O counters (`None` on the in-memory backend).
    pub fn wal_stats(&self) -> Option<std::sync::Arc<o2pc_storage::WalStats>> {
        self.wal.stats()
    }

    /// Restart from a surviving WAL: committed and locally-committed state
    /// is restored; in-flight executions are rolled back; *prepared*
    /// subtransactions keep their updates and re-acquire their write locks;
    /// locally-committed subtransactions with an unknown decision keep
    /// their commit records so they can still compensate.
    pub fn recover(id: SiteId, config: SiteConfig, wal: WalBackend) -> Site {
        let recovered = wal.recover();
        let mut wal = wal;
        // Log the restart rollback (ARIES-style compensation records):
        // without these a later replay of the longer log would re-apply the
        // rolled-back executions' stale before-images over newer commits.
        for rec in recovered.rollback_records.clone() {
            wal.append(rec);
        }
        let mut site = Site::new(id, config);
        for (k, v) in recovered.items {
            site.store.load(k, v);
        }
        // Prepared subtransactions survive: re-register their undo
        // obligations, re-acquire their write locks, and restore the
        // in-doubt execution (its program is exhausted — it was prepared).
        for (exec, undo) in recovered.prepared {
            for rec in &undo {
                site.locks
                    .request(exec, rec.key, o2pc_common::AccessMode::Write, SimTime::ZERO);
            }
            site.store.restore_pending(exec, undo);
            let mut st = ExecState::new(exec, Vec::new());
            st.phase = ExecPhase::Prepared;
            site.execs.insert(exec, st);
            if let ExecId::Sub(g) = exec {
                site.prepared.insert(g);
                let _ = site.marks.apply(g, MarkEvent::VoteCommit);
            }
        }
        // Locally-committed subtransactions with unknown global fate keep
        // their commit records so a late abort decision can still compensate.
        for (g, rec) in recovered.unresolved_local_commits {
            site.commit_records.insert(g, rec);
            let _ = site.marks.apply(g, MarkEvent::VoteCommit);
        }
        // Logged decisions survive the crash. Forgetting them would make
        // `answer_termination_query` fall through to "never participated ⇒
        // not prepared" for transactions this site in fact knows the fate
        // of — and a peer's cooperative-termination round would presume
        // abort against a committed transaction (then compensate it,
        // silently destroying committed effects).
        for (g, commit) in recovered.outcomes {
            site.decided.insert(g, commit);
        }
        site.recovery_rollbacks = recovered.rolled_back;
        site.local_seq = recovered.next_local_seq;
        site.wal = wal;
        site
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2pc_common::History;

    fn setup() -> (Site, History) {
        let mut s = Site::new(SiteId(0), SiteConfig::default());
        s.load(Key(1), Value(100));
        s.load(Key(2), Value(50));
        s.checkpoint();
        (s, History::new())
    }

    fn g(i: u64) -> GlobalTxnId {
        GlobalTxnId(i)
    }

    fn run_all(s: &mut Site, exec: ExecId, now: SimTime, hist: &mut dyn HistorySink) {
        loop {
            match s.execute_next_op(exec, now, hist) {
                OpResult::Done { finished: true, .. } => break,
                OpResult::Done { .. } => {}
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn local_txn_lifecycle() {
        let (mut s, mut h) = setup();
        let l = ExecId::Local(s.next_local_id());
        s.begin(
            l,
            vec![Op::Read(Key(1)), Op::Add(Key(1), 10)],
            SimTime(1),
            &mut h,
        );
        run_all(&mut s, l, SimTime(2), &mut h);
        s.commit_local(l, SimTime(3), &mut h);
        assert_eq!(s.get(Key(1)), Some(Value(110)));
        let kinds: Vec<_> = h.events().iter().map(|e| e.kind).collect();
        assert!(matches!(kinds.last(), Some(HistEventKind::Committed)));
    }

    #[test]
    fn o2pc_vote_yes_releases_all_locks() {
        let (mut s, mut h) = setup();
        let sub = ExecId::Sub(g(1));
        s.begin(
            sub,
            vec![Op::Add(Key(1), -30), Op::Read(Key(2))],
            SimTime(1),
            &mut h,
        );
        run_all(&mut s, sub, SimTime(2), &mut h);
        let out = s.vote(g(1), LockPolicy::ReleaseAll, false, SimTime(3), &mut h);
        assert_eq!(out.vote, Vote::Yes);
        assert_eq!(s.mark_of(g(1)), MarkState::LocallyCommitted);
        // Another execution can immediately lock the same keys.
        let l = ExecId::Local(s.next_local_id());
        s.begin(l, vec![Op::Add(Key(1), 1)], SimTime(4), &mut h);
        assert!(matches!(
            s.execute_next_op(l, SimTime(4), &mut h),
            OpResult::Done { .. }
        ));
    }

    #[test]
    fn d2pl_vote_yes_holds_write_locks() {
        let (mut s, mut h) = setup();
        let sub = ExecId::Sub(g(1));
        s.begin(
            sub,
            vec![Op::Add(Key(1), -30), Op::Read(Key(2))],
            SimTime(1),
            &mut h,
        );
        run_all(&mut s, sub, SimTime(2), &mut h);
        let out = s.vote(g(1), LockPolicy::HoldWrites, false, SimTime(3), &mut h);
        assert_eq!(out.vote, Vote::Yes);
        // Write lock on k1 retained: a new writer blocks.
        let l = ExecId::Local(s.next_local_id());
        s.begin(l, vec![Op::Add(Key(1), 1)], SimTime(4), &mut h);
        assert_eq!(s.execute_next_op(l, SimTime(4), &mut h), OpResult::Blocked);
        // Read lock on k2 released: a writer of k2 proceeds.
        let l2 = ExecId::Local(s.next_local_id());
        s.begin(l2, vec![Op::Add(Key(2), 1)], SimTime(5), &mut h);
        assert!(matches!(
            s.execute_next_op(l2, SimTime(5), &mut h),
            OpResult::Done { .. }
        ));
        // Decision commit unblocks the writer.
        let out = s.decide(g(1), true, SimTime(6), &mut h);
        assert_eq!(out.woken, vec![l]);
        assert_eq!(s.mark_of(g(1)), MarkState::Unmarked);
    }

    #[test]
    fn vote_no_rolls_back_and_records_ct_writes() {
        let (mut s, mut h) = setup();
        let sub = ExecId::Sub(g(1));
        s.begin(sub, vec![Op::Add(Key(1), -30)], SimTime(1), &mut h);
        run_all(&mut s, sub, SimTime(2), &mut h);
        let out = s.vote(g(1), LockPolicy::ReleaseAll, true, SimTime(3), &mut h);
        assert_eq!(out.vote, Vote::No);
        assert_eq!(s.get(Key(1)), Some(Value(100)), "rolled back");
        assert_eq!(s.mark_of(g(1)), MarkState::Undone);
        // The undo write appears as a CT_1 access.
        let ct_writes: Vec<_> = h
            .events()
            .iter()
            .filter(|e| {
                e.txn == TxnId::Compensation(g(1)) && matches!(e.kind, HistEventKind::Access { .. })
            })
            .collect();
        assert_eq!(ct_writes.len(), 1);
    }

    #[test]
    fn semantic_failure_leads_to_no_vote() {
        let (mut s, mut h) = setup();
        let sub = ExecId::Sub(g(1));
        s.begin(sub, vec![Op::Reserve(Key(2), 500)], SimTime(1), &mut h);
        let r = s.execute_next_op(sub, SimTime(1), &mut h);
        assert!(matches!(r, OpResult::Failed(_)));
        let out = s.vote(g(1), LockPolicy::ReleaseAll, false, SimTime(2), &mut h);
        assert_eq!(out.vote, Vote::No);
        assert_eq!(s.get(Key(2)), Some(Value(50)));
    }

    #[test]
    fn o2pc_decision_commit_finalizes() {
        let (mut s, mut h) = setup();
        let sub = ExecId::Sub(g(1));
        s.begin(sub, vec![Op::Add(Key(1), 5)], SimTime(1), &mut h);
        run_all(&mut s, sub, SimTime(2), &mut h);
        s.vote(g(1), LockPolicy::ReleaseAll, false, SimTime(3), &mut h);
        let out = s.decide(g(1), true, SimTime(4), &mut h);
        assert!(out.compensation.is_none());
        assert_eq!(s.mark_of(g(1)), MarkState::Unmarked);
        assert_eq!(s.get(Key(1)), Some(Value(105)));
    }

    #[test]
    fn o2pc_decision_abort_compensates() {
        let (mut s, mut h) = setup();
        let sub = ExecId::Sub(g(1));
        s.begin(sub, vec![Op::Add(Key(1), 5)], SimTime(1), &mut h);
        run_all(&mut s, sub, SimTime(2), &mut h);
        s.vote(g(1), LockPolicy::ReleaseAll, false, SimTime(3), &mut h);
        // Interleaved local transaction sees the locally-committed value —
        // no cascading abort follows.
        let l = ExecId::Local(s.next_local_id());
        s.begin(l, vec![Op::Add(Key(1), 7)], SimTime(4), &mut h);
        run_all(&mut s, l, SimTime(4), &mut h);
        s.commit_local(l, SimTime(5), &mut h);

        let out = s.decide(g(1), false, SimTime(6), &mut h);
        let plan = out.compensation.expect("compensation plan");
        assert_eq!(plan.ops, vec![Op::Add(Key(1), -5)]);
        s.begin_compensation(g(1), &plan, SimTime(7), &mut h);
        run_all(&mut s, ExecId::CompSub(g(1)), SimTime(8), &mut h);
        s.finish_compensation(g(1), SimTime(9), &mut h);
        assert_eq!(
            s.get(Key(1)),
            Some(Value(107)),
            "local +7 preserved, +5 undone"
        );
        assert_eq!(s.mark_of(g(1)), MarkState::Undone);
    }

    #[test]
    fn decision_abort_under_hold_writes_rolls_back() {
        let (mut s, mut h) = setup();
        let sub = ExecId::Sub(g(1));
        s.begin(sub, vec![Op::Add(Key(1), 5)], SimTime(1), &mut h);
        run_all(&mut s, sub, SimTime(2), &mut h);
        s.vote(g(1), LockPolicy::HoldWrites, false, SimTime(3), &mut h);
        let out = s.decide(g(1), false, SimTime(4), &mut h);
        assert!(out.compensation.is_none());
        assert_eq!(s.get(Key(1)), Some(Value(100)));
        assert_eq!(s.mark_of(g(1)), MarkState::Undone);
    }

    #[test]
    fn compensation_skips_inapplicable_ops() {
        let (mut s, mut h) = setup();
        let sub = ExecId::Sub(g(1));
        s.begin(sub, vec![Op::Insert(Key(9), Value(1))], SimTime(1), &mut h);
        run_all(&mut s, sub, SimTime(2), &mut h);
        s.vote(g(1), LockPolicy::ReleaseAll, false, SimTime(3), &mut h);
        // A local transaction deletes the key before compensation runs.
        let l = ExecId::Local(s.next_local_id());
        s.begin(l, vec![Op::Delete(Key(9))], SimTime(4), &mut h);
        run_all(&mut s, l, SimTime(4), &mut h);
        s.commit_local(l, SimTime(5), &mut h);

        let plan = s
            .decide(g(1), false, SimTime(6), &mut h)
            .compensation
            .unwrap();
        assert_eq!(plan.ops, vec![Op::Delete(Key(9))]);
        s.begin_compensation(g(1), &plan, SimTime(7), &mut h);
        run_all(&mut s, ExecId::CompSub(g(1)), SimTime(8), &mut h);
        s.finish_compensation(g(1), SimTime(9), &mut h);
        assert_eq!(s.skipped_comp_ops, 1, "delete of a gone key skipped");
        assert_eq!(s.get(Key(9)), None);
    }

    #[test]
    fn crash_and_recovery_preserves_local_commits() {
        let (mut s, mut h) = setup();
        // Locally commit one subtransaction, leave another in flight.
        let sub1 = ExecId::Sub(g(1));
        s.begin(sub1, vec![Op::Add(Key(1), 11)], SimTime(1), &mut h);
        run_all(&mut s, sub1, SimTime(2), &mut h);
        s.vote(g(1), LockPolicy::ReleaseAll, false, SimTime(3), &mut h);
        let sub2 = ExecId::Sub(g(2));
        s.begin(sub2, vec![Op::Add(Key(2), 13)], SimTime(4), &mut h);
        run_all(&mut s, sub2, SimTime(5), &mut h);
        // Crash.
        let wal = s.crash();
        let s2 = Site::recover(SiteId(0), SiteConfig::default(), wal);
        assert_eq!(
            s2.get(Key(1)),
            Some(Value(111)),
            "locally-committed update durable"
        );
        assert_eq!(
            s2.get(Key(2)),
            Some(Value(50)),
            "in-flight update rolled back"
        );
    }

    /// Regression (found by the chaos harness, seed 58): a site that
    /// learned a COMMIT decision, crashed, and recovered must still answer
    /// a peer's termination query with `KnowsCommit`. When recovery dropped
    /// the decided map, the answer fell through to `NotPrepared` and the
    /// asking peer presumed abort — compensating (destroying) a committed
    /// transaction's effects.
    #[test]
    fn recovery_preserves_learned_decisions() {
        let (mut s, mut h) = setup();
        let sub1 = ExecId::Sub(g(1));
        s.begin(sub1, vec![Op::Add(Key(1), 11)], SimTime(1), &mut h);
        run_all(&mut s, sub1, SimTime(2), &mut h);
        s.vote(g(1), LockPolicy::ReleaseAll, false, SimTime(3), &mut h);
        s.decide(g(1), true, SimTime(4), &mut h);
        let sub2 = ExecId::Sub(g(2));
        s.begin(sub2, vec![Op::Add(Key(2), 7)], SimTime(5), &mut h);
        run_all(&mut s, sub2, SimTime(6), &mut h);
        s.vote(g(2), LockPolicy::ReleaseAll, false, SimTime(7), &mut h);
        s.decide(g(2), false, SimTime(8), &mut h);

        let wal = s.crash();
        let mut s2 = Site::recover(SiteId(0), SiteConfig::default(), wal);
        let (state, _) = s2.answer_termination_query(g(1), SimTime(9), &mut h);
        assert_eq!(state, PeerState::KnowsCommit);
        let (state, _) = s2.answer_termination_query(g(2), SimTime(9), &mut h);
        assert_eq!(state, PeerState::KnowsAbort);
    }

    #[test]
    fn reads_from_tracking() {
        let (mut s, mut h) = setup();
        let sub = ExecId::Sub(g(1));
        s.begin(sub, vec![Op::Add(Key(1), 5)], SimTime(1), &mut h);
        run_all(&mut s, sub, SimTime(2), &mut h);
        s.vote(g(1), LockPolicy::ReleaseAll, false, SimTime(3), &mut h);
        let l = ExecId::Local(s.next_local_id());
        s.begin(l, vec![Op::Read(Key(1))], SimTime(4), &mut h);
        run_all(&mut s, l, SimTime(4), &mut h);
        let read = h
            .events()
            .iter()
            .find_map(|e| match e.kind {
                HistEventKind::Access {
                    kind: OpKind::Read,
                    read_from,
                    ..
                } if e.txn == l.txn_id() => Some(read_from),
                _ => None,
            })
            .unwrap();
        assert_eq!(
            read,
            Some(TxnId::Global(g(1))),
            "read the locally-committed write"
        );
    }

    #[test]
    fn own_reads_do_not_count_as_reads_from() {
        let (mut s, mut h) = setup();
        let l = ExecId::Local(s.next_local_id());
        s.begin(
            l,
            vec![Op::Add(Key(1), 1), Op::Read(Key(1))],
            SimTime(1),
            &mut h,
        );
        run_all(&mut s, l, SimTime(1), &mut h);
        let read = h
            .events()
            .iter()
            .find_map(|e| match e.kind {
                HistEventKind::Access {
                    kind: OpKind::Read,
                    read_from,
                    ..
                } => Some(read_from),
                _ => None,
            })
            .unwrap();
        assert_eq!(
            read, None,
            "reading your own write is not a reads-from edge"
        );
    }

    #[test]
    fn missing_exec_votes_no() {
        let (mut s, mut h) = setup();
        let out = s.vote(g(9), LockPolicy::ReleaseAll, false, SimTime(1), &mut h);
        assert_eq!(out.vote, Vote::No);
    }
}
