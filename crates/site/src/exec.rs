//! Per-execution state at a site.

use o2pc_common::{CommonError, ExecId, Op, Value};

/// Lifecycle phase of one execution at a site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecPhase {
    /// Executing its operation program.
    Running,
    /// Program exhausted; a subtransaction in this phase has been acked to
    /// its coordinator and awaits VOTE-REQ (a local transaction commits
    /// immediately instead).
    Completed,
    /// A semantic failure stopped the program (e.g. `Reserve` on an
    /// exhausted item); the execution holds its locks until rolled back.
    Failed,
    /// Voted yes under the hold-writes policy: write locks retained until
    /// the coordinator's decision.
    Prepared,
}

/// Outcome of executing (or attempting) the next operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpResult {
    /// The operation executed. `value` carries the result of a read;
    /// `finished` is true when the program is now exhausted.
    Done {
        /// Value read (None for mutations).
        value: Option<Value>,
        /// Program exhausted after this operation.
        finished: bool,
    },
    /// The operation's lock request was queued; the execution is parked and
    /// will be resumed when the lock manager wakes it.
    Blocked,
    /// A semantic failure: the program stops; the caller decides whether to
    /// roll back now (local transaction) or at vote time (subtransaction).
    Failed(CommonError),
}

/// One execution's program and progress.
#[derive(Clone, Debug)]
pub struct ExecState {
    /// The execution's identity.
    pub exec: ExecId,
    /// Operation program.
    pub ops: Vec<Op>,
    /// Next operation index.
    pub pc: usize,
    /// Phase.
    pub phase: ExecPhase,
    /// The semantic error that moved the execution to `Failed`, if any.
    pub error: Option<CommonError>,
}

impl ExecState {
    /// Fresh execution over a program.
    pub fn new(exec: ExecId, ops: Vec<Op>) -> Self {
        let phase = if ops.is_empty() {
            ExecPhase::Completed
        } else {
            ExecPhase::Running
        };
        ExecState {
            exec,
            ops,
            pc: 0,
            phase,
            error: None,
        }
    }

    /// The operation the execution is currently at, if any.
    pub fn current_op(&self) -> Option<Op> {
        self.ops.get(self.pc).copied()
    }

    /// Remaining operations (including the current one).
    pub fn remaining(&self) -> usize {
        self.ops.len().saturating_sub(self.pc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2pc_common::{GlobalTxnId, Key};

    #[test]
    fn lifecycle_fields() {
        let e = ExecState::new(
            ExecId::Sub(GlobalTxnId(1)),
            vec![Op::Read(Key(1)), Op::Add(Key(1), 2)],
        );
        assert_eq!(e.phase, ExecPhase::Running);
        assert_eq!(e.current_op(), Some(Op::Read(Key(1))));
        assert_eq!(e.remaining(), 2);
    }

    #[test]
    fn empty_program_is_immediately_completed() {
        let e = ExecState::new(ExecId::Sub(GlobalTxnId(1)), vec![]);
        assert_eq!(e.phase, ExecPhase::Completed);
        assert_eq!(e.current_op(), None);
        assert_eq!(e.remaining(), 0);
    }
}
