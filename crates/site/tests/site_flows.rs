//! Site-level integration flows: lock hand-off between interleaved
//! executions, the marking lifecycle across a full O2PC round, and WAL
//! interplay across crash points.

use o2pc_common::{ExecId, GlobalTxnId, History, Key, Op, SimTime, SiteId, Value};
use o2pc_marking::MarkState;
use o2pc_site::{LockPolicy, OpResult, Site, SiteConfig, Vote};

fn setup() -> (Site, History) {
    let mut s = Site::new(SiteId(0), SiteConfig::default());
    s.load(Key(1), Value(100));
    s.load(Key(2), Value(200));
    s.checkpoint();
    (s, History::new())
}

fn g(i: u64) -> GlobalTxnId {
    GlobalTxnId(i)
}

fn drive(site: &mut Site, exec: ExecId, now: SimTime, hist: &mut History) -> OpResult {
    loop {
        match site.execute_next_op(exec, now, hist) {
            OpResult::Done {
                finished: false, ..
            } => continue,
            other => return other,
        }
    }
}

#[test]
fn blocked_local_resumes_after_sub_vote() {
    let (mut s, mut h) = setup();
    let sub = ExecId::Sub(g(1));
    s.begin(sub, vec![Op::Add(Key(1), -10)], SimTime(1), &mut h);
    assert!(matches!(
        drive(&mut s, sub, SimTime(1), &mut h),
        OpResult::Done { finished: true, .. }
    ));

    let l = ExecId::Local(s.next_local_id());
    s.begin(l, vec![Op::Add(Key(1), 5)], SimTime(2), &mut h);
    assert_eq!(s.execute_next_op(l, SimTime(2), &mut h), OpResult::Blocked);
    assert!(s.is_blocked(l));

    let out = s.vote(g(1), LockPolicy::ReleaseAll, false, SimTime(3), &mut h);
    assert_eq!(out.vote, Vote::Yes);
    assert_eq!(out.woken, vec![l], "blocked local woken by early release");
    assert!(!s.is_blocked(l));
    assert!(matches!(
        s.execute_next_op(l, SimTime(4), &mut h),
        OpResult::Done { finished: true, .. }
    ));
    s.commit_local(l, SimTime(5), &mut h);
    assert_eq!(s.get(Key(1)), Some(Value(95)));
}

#[test]
fn compensation_contends_like_a_local_transaction() {
    let (mut s, mut h) = setup();
    // Sub locally commits a write on k1, then a local holds k1 while the
    // abort decision arrives: the CT must queue behind the local.
    let sub = ExecId::Sub(g(1));
    s.begin(sub, vec![Op::Add(Key(1), 50)], SimTime(1), &mut h);
    drive(&mut s, sub, SimTime(1), &mut h);
    s.vote(g(1), LockPolicy::ReleaseAll, false, SimTime(2), &mut h);

    let l = ExecId::Local(s.next_local_id());
    s.begin(
        l,
        vec![Op::Add(Key(1), 7), Op::Read(Key(2))],
        SimTime(3),
        &mut h,
    );
    assert!(matches!(
        s.execute_next_op(l, SimTime(3), &mut h),
        OpResult::Done {
            finished: false,
            ..
        }
    ));

    let plan = s
        .decide(g(1), false, SimTime(4), &mut h)
        .compensation
        .unwrap();
    s.begin_compensation(g(1), &plan, SimTime(4), &mut h);
    let ct = ExecId::CompSub(g(1));
    assert_eq!(
        s.execute_next_op(ct, SimTime(4), &mut h),
        OpResult::Blocked,
        "CT waits for the local"
    );

    // Local finishes and commits: CT is woken.
    assert!(matches!(
        s.execute_next_op(l, SimTime(5), &mut h),
        OpResult::Done { finished: true, .. }
    ));
    let woken = s.commit_local(l, SimTime(6), &mut h);
    assert_eq!(woken, vec![ct]);
    assert!(matches!(
        s.execute_next_op(ct, SimTime(7), &mut h),
        OpResult::Done { finished: true, .. }
    ));
    s.finish_compensation(g(1), SimTime(8), &mut h);
    assert_eq!(
        s.get(Key(1)),
        Some(Value(107)),
        "100 + 7 preserved, +50 compensated"
    );
    assert_eq!(s.mark_of(g(1)), MarkState::Undone);
}

#[test]
fn full_marking_lifecycle_with_udum_unmark() {
    let (mut s, mut h) = setup();
    let sub = ExecId::Sub(g(1));
    s.begin(sub, vec![Op::Add(Key(1), 1)], SimTime(1), &mut h);
    drive(&mut s, sub, SimTime(1), &mut h);
    assert_eq!(s.mark_of(g(1)), MarkState::Unmarked);
    s.vote(g(1), LockPolicy::ReleaseAll, false, SimTime(2), &mut h);
    assert_eq!(s.mark_of(g(1)), MarkState::LocallyCommitted);
    let plan = s
        .decide(g(1), false, SimTime(3), &mut h)
        .compensation
        .unwrap();
    s.begin_compensation(g(1), &plan, SimTime(3), &mut h);
    drive(&mut s, ExecId::CompSub(g(1)), SimTime(4), &mut h);
    s.finish_compensation(g(1), SimTime(5), &mut h);
    assert_eq!(s.mark_of(g(1)), MarkState::Undone);
    assert_eq!(s.marks().undone_set(), vec![g(1)]);
    // R3 (engine fires it once UDUM1 is detected).
    s.unmark(g(1));
    assert_eq!(s.mark_of(g(1)), MarkState::Unmarked);
    assert!(s.marks().is_empty());
}

#[test]
fn deadlock_between_sub_and_compensation_resolved_by_ct_retry() {
    let (mut s, mut h) = setup();
    // CT of T1 will need k1 then k2; a sub of T2 holds k2 and wants k1.
    let sub1 = ExecId::Sub(g(1));
    s.begin(
        sub1,
        vec![Op::Add(Key(1), 5), Op::Add(Key(2), 5)],
        SimTime(1),
        &mut h,
    );
    drive(&mut s, sub1, SimTime(1), &mut h);
    s.vote(g(1), LockPolicy::ReleaseAll, false, SimTime(2), &mut h);
    let plan = s
        .decide(g(1), false, SimTime(3), &mut h)
        .compensation
        .unwrap();
    assert_eq!(plan.ops.len(), 2);

    let sub2 = ExecId::Sub(g(2));
    s.begin(
        sub2,
        vec![Op::Add(Key(1), 1), Op::Add(Key(2), 1)],
        SimTime(4),
        &mut h,
    );
    // sub2 takes k1.
    assert!(matches!(
        s.execute_next_op(sub2, SimTime(4), &mut h),
        OpResult::Done {
            finished: false,
            ..
        }
    ));

    // CT starts: plan is [Add(k2,-5), Add(k1,-5)] (reverse order): takes k2.
    s.begin_compensation(g(1), &plan, SimTime(5), &mut h);
    let ct = ExecId::CompSub(g(1));
    assert!(matches!(
        s.execute_next_op(ct, SimTime(5), &mut h),
        OpResult::Done {
            finished: false,
            ..
        }
    ));
    // sub2 wants k2 (held by CT): blocked. CT wants k1 (held by sub2): deadlock.
    assert_eq!(
        s.execute_next_op(sub2, SimTime(6), &mut h),
        OpResult::Blocked
    );
    assert_eq!(s.execute_next_op(ct, SimTime(6), &mut h), OpResult::Blocked);
    let cycle = s.find_deadlock().expect("deadlock");
    assert!(cycle.contains(&ct) && cycle.contains(&sub2));

    // Persistence of compensation: victimize the CT, re-run it later.
    let woken = s.rollback_compensation(g(1), SimTime(7));
    assert_eq!(woken, vec![sub2]);
    drive(&mut s, sub2, SimTime(8), &mut h);
    s.vote(g(2), LockPolicy::ReleaseAll, false, SimTime(9), &mut h);
    s.decide(g(2), true, SimTime(10), &mut h);

    s.begin_compensation(g(1), &plan, SimTime(11), &mut h);
    drive(&mut s, ct, SimTime(12), &mut h);
    s.finish_compensation(g(1), SimTime(13), &mut h);
    assert_eq!(
        s.get(Key(1)),
        Some(Value(101)),
        "T2's +1 kept, T1's +5 gone"
    );
    assert_eq!(s.get(Key(2)), Some(Value(201)));
}

#[test]
fn crash_during_compensation_rolls_back_partial_ct() {
    let (mut s, mut h) = setup();
    let sub = ExecId::Sub(g(1));
    s.begin(
        sub,
        vec![Op::Add(Key(1), 5), Op::Add(Key(2), 5)],
        SimTime(1),
        &mut h,
    );
    drive(&mut s, sub, SimTime(1), &mut h);
    s.vote(g(1), LockPolicy::ReleaseAll, false, SimTime(2), &mut h);
    let plan = s
        .decide(g(1), false, SimTime(3), &mut h)
        .compensation
        .unwrap();
    s.begin_compensation(g(1), &plan, SimTime(4), &mut h);
    // Execute only the first compensation op, then crash.
    assert!(matches!(
        s.execute_next_op(ExecId::CompSub(g(1)), SimTime(5), &mut h),
        OpResult::Done {
            finished: false,
            ..
        }
    ));
    let wal = s.crash();
    let s2 = Site::recover(SiteId(0), SiteConfig::default(), wal);
    // The locally-committed forward updates are durable; the half-finished
    // CT was rolled back by recovery (it re-runs from its retained plan in
    // a full deployment).
    assert_eq!(s2.get(Key(1)), Some(Value(105)));
    assert_eq!(s2.get(Key(2)), Some(Value(205)));
}

#[test]
fn vote_on_still_running_sub_aborts_it() {
    let (mut s, mut h) = setup();
    let sub = ExecId::Sub(g(1));
    s.begin(
        sub,
        vec![Op::Add(Key(1), 5), Op::Add(Key(2), 5)],
        SimTime(1),
        &mut h,
    );
    // Only one op executed: still Running when the (early) VOTE-REQ lands.
    assert!(matches!(
        s.execute_next_op(sub, SimTime(1), &mut h),
        OpResult::Done {
            finished: false,
            ..
        }
    ));
    let out = s.vote(g(1), LockPolicy::ReleaseAll, false, SimTime(2), &mut h);
    assert_eq!(
        out.vote,
        Vote::No,
        "incomplete subtransaction cannot vote yes"
    );
    assert_eq!(s.get(Key(1)), Some(Value(100)));
    assert_eq!(s.mark_of(g(1)), MarkState::Undone);
}

#[test]
fn unilateral_abort_then_vote_no() {
    let (mut s, mut h) = setup();
    let sub = ExecId::Sub(g(1));
    s.begin(sub, vec![Op::Add(Key(1), 5)], SimTime(1), &mut h);
    drive(&mut s, sub, SimTime(1), &mut h);
    s.unilateral_abort(g(1), SimTime(2), &mut h);
    assert_eq!(s.get(Key(1)), Some(Value(100)));
    assert_eq!(s.mark_of(g(1)), MarkState::Undone);
    // The later VOTE-REQ finds no execution: vote no, no state change.
    let out = s.vote(g(1), LockPolicy::ReleaseAll, false, SimTime(3), &mut h);
    assert_eq!(out.vote, Vote::No);
    // And the abort decision is a no-op.
    let out = s.decide(g(1), false, SimTime(4), &mut h);
    assert!(out.compensation.is_none());
}
