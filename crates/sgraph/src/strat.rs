//! The stratification machinery of §5: the *active-with-respect-to*
//! relation, predicates A1–A4, stratification properties S1/S2 (Theorem 1)
//! and cycle conditions C1/C2 (Lemma 2).

use crate::graph::GlobalSg;
use o2pc_common::{GlobalTxnId, TxnId};

fn t(i: GlobalTxnId) -> TxnId {
    TxnId::Global(i)
}

fn ct(i: GlobalTxnId) -> TxnId {
    TxnId::Compensation(i)
}

/// `T_i` is *active with respect to* `T_j` iff there exists a local SG where
/// both appear, `T_j → T_i` is **not** in that SG, but there is a path (in
/// either direction) between `CT_i` and `T_j` in it.
pub fn active_wrt(gsg: &GlobalSg, i: GlobalTxnId, j: GlobalTxnId) -> bool {
    gsg.sites().any(|(_, sg)| {
        sg.contains(t(i))
            && sg.contains(t(j))
            && !sg.has_path(t(j), t(i))
            && sg.connected_either_way(ct(i), t(j))
    })
}

/// A1: at any local SG where `T_j` appears, the path `T_i → CT_i → T_j` is
/// present.
pub fn a1(gsg: &GlobalSg, i: GlobalTxnId, j: GlobalTxnId) -> bool {
    gsg.sites()
        .filter(|(_, sg)| sg.contains(t(j)))
        .all(|(_, sg)| sg.has_path(t(i), ct(i)) && sg.has_path(ct(i), t(j)))
}

/// A2: at any local SG where `T_j` appears, `T_j → CT_i` without `T_i` on
/// that path.
pub fn a2(gsg: &GlobalSg, i: GlobalTxnId, j: GlobalTxnId) -> bool {
    gsg.sites()
        .filter(|(_, sg)| sg.contains(t(j)))
        .all(|(_, sg)| sg.has_path_avoiding(t(j), ct(i), Some(t(i))))
}

/// A3: at any local SG where both `T_j` and `T_i` appear, if there is a path
/// between `T_j` and either `T_i` or `CT_i`, then the path
/// `T_i → CT_i → T_j` is present.
pub fn a3(gsg: &GlobalSg, i: GlobalTxnId, j: GlobalTxnId) -> bool {
    gsg.sites()
        .filter(|(_, sg)| sg.contains(t(j)) && sg.contains(t(i)))
        .all(|(_, sg)| {
            let touches =
                sg.connected_either_way(t(j), t(i)) || sg.connected_either_way(t(j), ct(i));
            !touches || (sg.has_path(t(i), ct(i)) && sg.has_path(ct(i), t(j)))
        })
}

/// A4: at any local SG where both `T_j` and `T_i` appear, if there is a path
/// between `T_j` and `CT_i`, it must be `T_j → CT_i` without `T_i` on it
/// (in particular no path `CT_i → T_j`).
pub fn a4(gsg: &GlobalSg, i: GlobalTxnId, j: GlobalTxnId) -> bool {
    gsg.sites()
        .filter(|(_, sg)| sg.contains(t(j)) && sg.contains(t(i)))
        .all(|(_, sg)| {
            if !sg.connected_either_way(t(j), ct(i)) {
                return true;
            }
            !sg.has_path(ct(i), t(j)) && sg.has_path_avoiding(t(j), ct(i), Some(t(i)))
        })
}

/// All distinct regular-global pairs `(i, j)` appearing in the graph.
fn global_pairs(gsg: &GlobalSg) -> Vec<(GlobalTxnId, GlobalTxnId)> {
    let globals: Vec<GlobalTxnId> = gsg
        .nodes()
        .into_iter()
        .filter_map(|n| match n {
            TxnId::Global(g) => Some(g),
            _ => None,
        })
        .collect();
    let mut pairs = Vec::new();
    for &i in &globals {
        for &j in &globals {
            if i != j {
                pairs.push((i, j));
            }
        }
    }
    pairs
}

/// S1: for all `T_i` active wrt `T_j`: A1 ∨ A4.
pub fn holds_s1(gsg: &GlobalSg) -> bool {
    global_pairs(gsg)
        .into_iter()
        .filter(|&(i, j)| active_wrt(gsg, i, j))
        .all(|(i, j)| a1(gsg, i, j) || a4(gsg, i, j))
}

/// S2: for all `T_i` active wrt `T_j`: A2 ∨ A3.
pub fn holds_s2(gsg: &GlobalSg) -> bool {
    global_pairs(gsg)
        .into_iter()
        .filter(|&(i, j)| active_wrt(gsg, i, j))
        .all(|(i, j)| a2(gsg, i, j) || a3(gsg, i, j))
}

/// C1 (first cycle condition, Lemma 2): there exist distinct `T_i`, `T_j`
/// with `CT_i → T_j` at some `SG_a`, and at some other `SG_b` where `T_j`
/// appears, either `T_j → CT_i`, or there is no local path between `T_i` and
/// `T_j` in `SG_b`.
pub fn holds_c1(gsg: &GlobalSg) -> bool {
    global_pairs(gsg).into_iter().any(|(i, j)| {
        gsg.sites().any(|(a, sg_a)| {
            sg_a.has_path(ct(i), t(j))
                && gsg.sites().any(|(b, sg_b)| {
                    b != a
                        && sg_b.contains(t(j))
                        && (sg_b.has_path(t(j), ct(i)) || !sg_b.connected_either_way(t(i), t(j)))
                })
        })
    })
}

/// C2 (second cycle condition, Lemma 2): there exist distinct `T_i`, `T_j`
/// with `T_j → CT_i` at some `SG_a` without `T_i` on that path, and at some
/// other `SG_b` where `T_j` appears, either `CT_i → T_j`, or there is no
/// local path between `T_i` and `T_j` in `SG_b`.
pub fn holds_c2(gsg: &GlobalSg) -> bool {
    global_pairs(gsg).into_iter().any(|(i, j)| {
        gsg.sites().any(|(a, sg_a)| {
            sg_a.has_path_avoiding(t(j), ct(i), Some(t(i)))
                && gsg.sites().any(|(b, sg_b)| {
                    b != a
                        && sg_b.contains(t(j))
                        && (sg_b.has_path(ct(i), t(j)) || !sg_b.connected_either_way(t(i), t(j)))
                })
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regular::find_regular_cycle;
    use o2pc_common::SiteId;

    fn g(i: u64) -> GlobalTxnId {
        GlobalTxnId(i)
    }

    /// Figure 1(a)-style regular cycle violates S1 (and C1 holds): T2 is
    /// after CT1 at site a, but precedes T1 at site b with no CT1 there.
    #[test]
    fn regular_cycle_graph_fails_s1_and_satisfies_c1() {
        let mut sg = GlobalSg::new();
        sg.site_mut(SiteId(0)).add_edge(t(g(1)), ct(g(1)));
        sg.site_mut(SiteId(0)).add_edge(ct(g(1)), t(g(2)));
        sg.site_mut(SiteId(1)).add_edge(t(g(2)), t(g(1)));

        assert!(active_wrt(&sg, g(1), g(2)), "T1 active wrt T2 via site 0");
        assert!(!holds_s1(&sg), "S1 must fail on a regular-cycle graph");
        assert!(find_regular_cycle(&sg, 100, 10).is_some());
    }

    /// C1 literally: CT1 → T2 at one site; at another site where T2 appears
    /// there is no local path between T1 and T2.
    #[test]
    fn c1_detector() {
        let mut sg = GlobalSg::new();
        sg.site_mut(SiteId(0)).add_edge(ct(g(1)), t(g(2)));
        sg.site_mut(SiteId(0)).add_node(t(g(1)));
        sg.site_mut(SiteId(1)).add_node(t(g(2)));
        sg.site_mut(SiteId(1)).add_node(t(g(1)));
        assert!(holds_c1(&sg));
        // Ordering T1 → T2 at site 1 does not remove the condition…
        sg.site_mut(SiteId(1)).add_edge(t(g(1)), t(g(2)));
        assert!(!holds_c1(&sg), "…but a path between them at SG_b does");
    }

    /// A graph where every site that sees T2 sees the full T1 → CT1 → T2
    /// path satisfies A1 (hence S1), and indeed has no regular cycle.
    #[test]
    fn a1_everywhere_implies_s1_and_no_regular_cycle() {
        let mut sg = GlobalSg::new();
        for s in 0..2u32 {
            sg.site_mut(SiteId(s)).add_edge(t(g(1)), ct(g(1)));
            sg.site_mut(SiteId(s)).add_edge(ct(g(1)), t(g(2)));
        }
        assert!(a1(&sg, g(1), g(2)));
        assert!(holds_s1(&sg));
        assert!(find_regular_cycle(&sg, 100, 10).is_none());
    }

    /// A4 scenario: T2 precedes CT1 wherever they meet, never through T1.
    #[test]
    fn a4_satisfied_when_tj_precedes_cti_everywhere() {
        let mut sg = GlobalSg::new();
        sg.site_mut(SiteId(0)).add_edge(t(g(2)), ct(g(1)));
        sg.site_mut(SiteId(0)).add_node(t(g(1)));
        sg.site_mut(SiteId(1)).add_edge(t(g(2)), ct(g(1)));
        sg.site_mut(SiteId(1)).add_node(t(g(1)));
        assert!(a4(&sg, g(1), g(2)));
        assert!(holds_s1(&sg));
        assert!(find_regular_cycle(&sg, 100, 10).is_none());
    }

    #[test]
    fn a2_requires_path_avoiding_ti() {
        let mut sg = GlobalSg::new();
        // Tj → Ti → CTi: the only path to CTi passes through Ti.
        sg.site_mut(SiteId(0)).add_edge(t(g(2)), t(g(1)));
        sg.site_mut(SiteId(0)).add_edge(t(g(1)), ct(g(1)));
        assert!(!a2(&sg, g(1), g(2)));
        // Add a bypass edge Tj → CTi: now A2 holds.
        sg.site_mut(SiteId(0)).add_edge(t(g(2)), ct(g(1)));
        assert!(a2(&sg, g(1), g(2)));
    }

    #[test]
    fn a3_vacuous_without_contact() {
        let mut sg = GlobalSg::new();
        sg.site_mut(SiteId(0)).add_node(t(g(1)));
        sg.site_mut(SiteId(0)).add_node(t(g(2)));
        assert!(
            a3(&sg, g(1), g(2)),
            "no path between them: A3 vacuously true"
        );
        assert!(a4(&sg, g(1), g(2)));
    }

    #[test]
    fn active_wrt_needs_missing_back_edge() {
        let mut sg = GlobalSg::new();
        // Tj → Ti at the only shared site: not active (the SG orders them).
        sg.site_mut(SiteId(0)).add_edge(t(g(2)), t(g(1)));
        sg.site_mut(SiteId(0)).add_edge(t(g(1)), ct(g(1)));
        sg.site_mut(SiteId(0)).add_edge(ct(g(1)), t(g(2)));
        // There is a cycle here but also Tj → Ti, so "active" is false.
        assert!(!active_wrt(&sg, g(1), g(2)));
    }

    #[test]
    fn c2_detector() {
        let mut sg = GlobalSg::new();
        // Site 0: T2 → CT1 directly (avoiding T1, which executed there too
        // but is unordered with respect to the path).
        sg.site_mut(SiteId(0)).add_edge(t(g(2)), ct(g(1)));
        sg.site_mut(SiteId(0)).add_node(t(g(1)));
        // Site 1: CT1 → T2.
        sg.site_mut(SiteId(1)).add_edge(ct(g(1)), t(g(2)));
        assert!(holds_c2(&sg));
    }

    #[test]
    fn empty_graph_satisfies_everything() {
        let sg = GlobalSg::new();
        assert!(holds_s1(&sg));
        assert!(holds_s2(&sg));
        assert!(!holds_c1(&sg));
        assert!(!holds_c2(&sg));
    }
}
