//! Strongly connected components and bounded simple-cycle enumeration over
//! the union (global) serialization graph.
//!
//! The enumerator is Johnson-flavoured: cycles are anchored at their
//! smallest node (so each simple cycle is reported exactly once), and the
//! DFS only walks nodes that can still *return* to the anchor (a reverse-BFS
//! "can-reach" set per anchor) — without that pruning, dense SGs from
//! contended workloads make the search explore astronomically many dead
//! paths. Enumeration is callback-based so callers (the regular-cycle
//! detector) can stop at the first hit.

use crate::graph::GlobalSg;
use o2pc_common::{FastHashMap, TxnId};
use std::ops::ControlFlow;

/// Union graph with dense integer indexing (built once per analysis).
pub(crate) struct Indexed {
    pub(crate) nodes: Vec<TxnId>,
    pub(crate) succ: Vec<Vec<u32>>,
    pub(crate) pred: Vec<Vec<u32>>,
}

impl Indexed {
    pub(crate) fn new(gsg: &GlobalSg) -> Self {
        // Sort + dedup flat vectors instead of `GlobalSg::nodes`/`edges`
        // (which build throwaway `BTreeSet`s): same sorted node order and
        // identical sorted, deduplicated adjacency — the enumeration
        // anchor order is part of the audit's determinism — at a fraction
        // of the allocation traffic. This runs once per oracle check, on
        // the chaos hot path.
        let mut nodes: Vec<TxnId> = Vec::new();
        for (_, sg) in gsg.sites() {
            nodes.extend(sg.nodes());
        }
        nodes.sort_unstable();
        nodes.dedup();
        let index_of: FastHashMap<TxnId, u32> = nodes
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i as u32))
            .collect();
        let mut succ = vec![Vec::new(); nodes.len()];
        let mut pred = vec![Vec::new(); nodes.len()];
        for (_, sg) in gsg.sites() {
            for (a, b) in sg.edges() {
                succ[index_of[&a] as usize].push(index_of[&b]);
            }
        }
        for s in &mut succ {
            s.sort_unstable();
            s.dedup();
        }
        for (ia, succs) in succ.iter().enumerate() {
            for &ib in succs {
                pred[ib as usize].push(ia as u32);
            }
        }
        Indexed { nodes, succ, pred }
    }

    fn len(&self) -> usize {
        self.nodes.len()
    }
}

/// Tarjan SCC over the indexed graph (iterative).
pub(crate) fn sccs(g: &Indexed) -> Vec<Vec<u32>> {
    let n = g.len();
    let mut index = vec![u32::MAX; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut out = Vec::new();

    struct Frame {
        v: u32,
        child: usize,
    }
    for root in 0..n as u32 {
        if index[root as usize] != u32::MAX {
            continue;
        }
        let mut call = vec![Frame { v: root, child: 0 }];
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;
        while let Some(frame) = call.last_mut() {
            let v = frame.v as usize;
            if frame.child < g.succ[v].len() {
                let w = g.succ[v][frame.child];
                frame.child += 1;
                let wi = w as usize;
                if index[wi] == u32::MAX {
                    index[wi] = next_index;
                    lowlink[wi] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[wi] = true;
                    call.push(Frame { v: w, child: 0 });
                } else if on_stack[wi] {
                    lowlink[v] = lowlink[v].min(index[wi]);
                }
            } else {
                let v_id = frame.v;
                call.pop();
                if let Some(parent) = call.last() {
                    let p = parent.v as usize;
                    lowlink[p] = lowlink[p].min(lowlink[v_id as usize]);
                }
                if lowlink[v_id as usize] == index[v_id as usize] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().unwrap();
                        on_stack[w as usize] = false;
                        comp.push(w);
                        if w == v_id {
                            break;
                        }
                    }
                    if comp.len() >= 2 {
                        comp.sort_unstable();
                        out.push(comp);
                    }
                }
            }
        }
    }
    out
}

/// Strongly connected components of the union graph that can contain a
/// cycle (size ≥ 2), as transaction lists.
pub fn cyclic_sccs(gsg: &GlobalSg) -> Vec<Vec<TxnId>> {
    let g = Indexed::new(gsg);
    sccs(&g)
        .into_iter()
        .map(|comp| {
            let mut txns: Vec<TxnId> = comp.into_iter().map(|i| g.nodes[i as usize]).collect();
            txns.sort_unstable();
            txns
        })
        .collect()
}

/// Visit the simple cycles lying inside one SCC (`comp` must be one
/// component returned by [`sccs`] over the same [`Indexed`] graph). Cycles
/// are reported as node sequences (`[n0, n1, ..., nk]` meaning
/// `n0 → n1 → ... → nk → n0`), each exactly once, length ≤ `max_len` only.
/// Propagates the callback's `ControlFlow::Break(())`.
pub(crate) fn cycles_in_comp<F>(
    g: &Indexed,
    comp: &[u32],
    max_len: usize,
    cb: &mut F,
) -> ControlFlow<()>
where
    F: FnMut(&[TxnId]) -> ControlFlow<()>,
{
    let n = g.len();
    // Scratch buffers reused across anchors. Non-component nodes stay
    // `false` in `allowed` throughout, which confines the walk to the SCC
    // (every simple cycle lies within one).
    let mut allowed = vec![false; n];
    let mut can_reach = vec![false; n];
    let mut on_path = vec![false; n];
    let mut bfs: Vec<u32> = Vec::new();
    let mut txn_path: Vec<TxnId> = Vec::new();

    for &anchor in comp {
        // Sub-universe for this anchor: same SCC, index ≥ anchor.
        for &v in comp {
            allowed[v as usize] = v >= anchor;
            can_reach[v as usize] = false;
        }
        // Reverse BFS from the anchor over allowed nodes: which nodes can
        // return to it?
        bfs.clear();
        bfs.push(anchor);
        can_reach[anchor as usize] = true;
        let mut head = 0;
        while head < bfs.len() {
            let v = bfs[head];
            head += 1;
            for &p in &g.pred[v as usize] {
                if allowed[p as usize] && !can_reach[p as usize] {
                    can_reach[p as usize] = true;
                    bfs.push(p);
                }
            }
        }

        // DFS from the anchor over nodes that can return to it. `on_path`
        // is restored to all-false by the unwinding pops (an early Break
        // abandons the scratch entirely).
        let mut stack: Vec<(u32, usize)> = vec![(anchor, 0)];
        txn_path.clear();
        txn_path.push(g.nodes[anchor as usize]);
        on_path[anchor as usize] = true;
        'dfs: while let Some(&mut (v, ref mut child)) = stack.last_mut() {
            let succs = &g.succ[v as usize];
            let mut advanced = false;
            while *child < succs.len() {
                let w = succs[*child];
                *child += 1;
                if w == anchor {
                    cb(&txn_path)?;
                    continue;
                }
                let wi = w as usize;
                if !allowed[wi] || !can_reach[wi] || on_path[wi] || txn_path.len() >= max_len {
                    continue;
                }
                on_path[wi] = true;
                txn_path.push(g.nodes[wi]);
                stack.push((w, 0));
                advanced = true;
                break;
            }
            if advanced {
                continue 'dfs;
            }
            // Exhausted this node.
            let (v, _) = stack.pop().unwrap();
            on_path[v as usize] = false;
            txn_path.pop();
        }
    }
    ControlFlow::Continue(())
}

/// Visit simple cycles of the union graph as node sequences
/// (`[n0, n1, ..., nk]` meaning `n0 → n1 → ... → nk → n0`), each reported
/// once, cycles of length ≤ `max_len` only. The callback returns
/// `ControlFlow::Break(())` to stop early.
pub fn for_each_cycle<F>(gsg: &GlobalSg, max_len: usize, mut cb: F)
where
    F: FnMut(&[TxnId]) -> ControlFlow<()>,
{
    let g = Indexed::new(gsg);
    for comp in sccs(&g) {
        if cycles_in_comp(&g, &comp, max_len, &mut cb).is_break() {
            return;
        }
    }
}

/// Enumerate simple cycles into a vector, up to `max_cycles` cycles of
/// length ≤ `max_len`.
pub fn enumerate_cycles(gsg: &GlobalSg, max_cycles: usize, max_len: usize) -> Vec<Vec<TxnId>> {
    let mut cycles = Vec::new();
    for_each_cycle(gsg, max_len, |c| {
        cycles.push(c.to_vec());
        if cycles.len() >= max_cycles {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2pc_common::{GlobalTxnId, SiteId};
    use std::collections::BTreeSet;

    fn t(i: u64) -> TxnId {
        TxnId::Global(GlobalTxnId(i))
    }

    fn graph(edges: &[(u64, u64, u32)]) -> GlobalSg {
        let mut g = GlobalSg::new();
        for &(a, b, s) in edges {
            g.site_mut(SiteId(s)).add_edge(t(a), t(b));
        }
        g
    }

    #[test]
    fn acyclic_graph_has_no_sccs_or_cycles() {
        let g = graph(&[(1, 2, 0), (2, 3, 1), (1, 3, 0)]);
        assert!(cyclic_sccs(&g).is_empty());
        assert!(enumerate_cycles(&g, 100, 10).is_empty());
    }

    #[test]
    fn two_cycle() {
        let g = graph(&[(1, 2, 0), (2, 1, 1)]);
        let sccs = cyclic_sccs(&g);
        assert_eq!(sccs, vec![vec![t(1), t(2)]]);
        let cycles = enumerate_cycles(&g, 100, 10);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0], vec![t(1), t(2)]);
    }

    #[test]
    fn two_separate_cycles() {
        let g = graph(&[(1, 2, 0), (2, 1, 0), (3, 4, 1), (4, 3, 1)]);
        assert_eq!(cyclic_sccs(&g).len(), 2);
        assert_eq!(enumerate_cycles(&g, 100, 10).len(), 2);
    }

    #[test]
    fn figure_eight_enumerates_all_simple_cycles() {
        // 1→2→1 and 2→3→2 share node 2; simple cycles: (1 2), (2 3).
        let g = graph(&[(1, 2, 0), (2, 1, 0), (2, 3, 0), (3, 2, 0)]);
        let mut cycles = enumerate_cycles(&g, 100, 10);
        for c in &mut cycles {
            c.sort_unstable();
        }
        cycles.sort();
        assert_eq!(cycles, vec![vec![t(1), t(2)], vec![t(2), t(3)]]);
    }

    #[test]
    fn triangle_with_chord() {
        // 1→2→3→1 plus chord 1→3: cycles (1 2 3) and (1 3).
        let g = graph(&[(1, 2, 0), (2, 3, 0), (3, 1, 0), (1, 3, 0)]);
        let cycles = enumerate_cycles(&g, 100, 10);
        assert_eq!(cycles.len(), 2);
        let lens: BTreeSet<usize> = cycles.iter().map(Vec::len).collect();
        assert_eq!(lens, BTreeSet::from([2, 3]));
    }

    #[test]
    fn max_cycles_cap_respected() {
        let mut edges = Vec::new();
        for a in 1..=5u64 {
            for b in 1..=5u64 {
                if a != b {
                    edges.push((a, b, 0u32));
                }
            }
        }
        let g = graph(&edges);
        let cycles = enumerate_cycles(&g, 7, 10);
        assert_eq!(cycles.len(), 7);
    }

    #[test]
    fn max_len_cap_respected() {
        let g = graph(&[(1, 2, 0), (2, 3, 0), (3, 4, 0), (4, 1, 0)]);
        assert!(enumerate_cycles(&g, 100, 3).is_empty());
        assert_eq!(enumerate_cycles(&g, 100, 4).len(), 1);
    }

    #[test]
    fn cross_site_cycle_found() {
        let g = graph(&[(1, 2, 0), (2, 1, 1)]);
        assert_eq!(enumerate_cycles(&g, 10, 10).len(), 1);
    }

    #[test]
    fn callback_early_break() {
        let mut edges = Vec::new();
        for a in 1..=6u64 {
            for b in 1..=6u64 {
                if a != b {
                    edges.push((a, b, 0u32));
                }
            }
        }
        let g = graph(&edges);
        let mut seen = 0;
        for_each_cycle(&g, 6, |_| {
            seen += 1;
            if seen == 3 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(seen, 3);
    }

    #[test]
    fn dense_graph_enumeration_is_fast() {
        // 60-node near-complete digraph: without reach-pruning and early
        // exits this would explode; with them, finding 1000 short cycles is
        // immediate.
        let mut edges = Vec::new();
        for a in 0..60u64 {
            for b in 0..60u64 {
                if a != b && (a + b) % 3 != 0 {
                    edges.push((a, b, (a % 3) as u32));
                }
            }
        }
        let g = graph(&edges);
        let start = std::time::Instant::now();
        let cycles = enumerate_cycles(&g, 1000, 8);
        assert_eq!(cycles.len(), 1000);
        assert!(
            start.elapsed().as_secs() < 5,
            "enumeration too slow: {:?}",
            start.elapsed()
        );
    }
}
