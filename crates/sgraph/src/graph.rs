//! Local and global serialization graphs.

use o2pc_common::{FastHashMap, SiteId, TxnId};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A serialization graph local to one site.
///
/// Nodes are [`TxnId`]s; an edge `A → B` means one of `A`'s operations
/// precedes and conflicts with one of `B`'s operations in this site's
/// history.
#[derive(Clone, Debug, Default)]
pub struct LocalSg {
    /// Adjacency: node → successors (deduplicated, insertion order kept).
    adj: BTreeMap<TxnId, Vec<TxnId>>,
    /// All nodes, including isolated ones.
    nodes: BTreeSet<TxnId>,
}

impl LocalSg {
    /// New empty local SG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a node (no-op if present).
    pub fn add_node(&mut self, n: TxnId) {
        self.nodes.insert(n);
    }

    /// Insert the edge `a → b` (and both nodes).
    pub fn add_edge(&mut self, a: TxnId, b: TxnId) {
        debug_assert_ne!(a, b, "self-conflicts do not create edges");
        self.nodes.insert(a);
        self.nodes.insert(b);
        let succs = self.adj.entry(a).or_default();
        if !succs.contains(&b) {
            succs.push(b);
        }
    }

    /// Remove a node and every edge incident to it. Used by crash voiding:
    /// a compensation whose log records were wiped with the un-durable WAL
    /// tail re-executes later under the same id, and its pre-crash accesses
    /// (cleanly undone, observed by nothing durable) must leave the graph.
    pub fn remove_node(&mut self, n: TxnId) {
        self.nodes.remove(&n);
        self.adj.remove(&n);
        for succs in self.adj.values_mut() {
            succs.retain(|&s| s != n);
        }
    }

    /// Does the node appear at this site?
    pub fn contains(&self, n: TxnId) -> bool {
        self.nodes.contains(&n)
    }

    /// All nodes, ordered.
    pub fn nodes(&self) -> impl Iterator<Item = TxnId> + '_ {
        self.nodes.iter().copied()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Successors of a node.
    pub fn successors(&self, n: TxnId) -> &[TxnId] {
        self.adj.get(&n).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All edges.
    pub fn edges(&self) -> impl Iterator<Item = (TxnId, TxnId)> + '_ {
        self.adj
            .iter()
            .flat_map(|(&a, succs)| succs.iter().map(move |&b| (a, b)))
    }

    /// Is there a (directed) path `from →+ to` of length ≥ 1?
    pub fn has_path(&self, from: TxnId, to: TxnId) -> bool {
        self.has_path_avoiding(from, to, None)
    }

    /// Is there a path `from →+ to` that does not pass through `avoid`
    /// as an intermediate node? (`from`/`to` themselves are permitted to
    /// equal `avoid` only as endpoints.)
    pub fn has_path_avoiding(&self, from: TxnId, to: TxnId, avoid: Option<TxnId>) -> bool {
        if !self.nodes.contains(&from) || !self.nodes.contains(&to) {
            return false;
        }
        let mut seen: BTreeSet<TxnId> = BTreeSet::new();
        let mut queue: VecDeque<TxnId> = VecDeque::new();
        queue.push_back(from);
        while let Some(n) = queue.pop_front() {
            for &s in self.successors(n) {
                if s == to {
                    return true;
                }
                if Some(s) == avoid {
                    continue;
                }
                if seen.insert(s) {
                    queue.push_back(s);
                }
            }
        }
        false
    }

    /// Is there a path in either direction between `a` and `b`?
    pub fn connected_either_way(&self, a: TxnId, b: TxnId) -> bool {
        self.has_path(a, b) || self.has_path(b, a)
    }

    /// Does the local SG contain a cycle? (Local histories are serializable
    /// under strict 2PL, so this should always be `false`; the audit checks.)
    pub fn has_cycle(&self) -> bool {
        // Kahn's algorithm: cycle iff not all nodes drain. (The verdict is
        // queue-order independent, so the map's iteration order is free.)
        let mut indeg: FastHashMap<TxnId, usize> = self.nodes.iter().map(|&n| (n, 0)).collect();
        for (_, b) in self.edges() {
            *indeg.get_mut(&b).unwrap() += 1;
        }
        let mut queue: VecDeque<TxnId> = indeg
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&n, _)| n)
            .collect();
        let mut drained = 0;
        while let Some(n) = queue.pop_front() {
            drained += 1;
            for &s in self.successors(n) {
                let d = indeg.get_mut(&s).unwrap();
                *d -= 1;
                if *d == 0 {
                    queue.push_back(s);
                }
            }
        }
        drained != self.nodes.len()
    }
}

/// The global serialization graph: the union of per-site local SGs
/// (`SG_global = (∪ V_a, ∪ E_a)`, §5).
#[derive(Clone, Debug, Default)]
pub struct GlobalSg {
    sites: BTreeMap<SiteId, LocalSg>,
}

impl GlobalSg {
    /// New empty global SG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Access (creating if needed) the local SG of `site`.
    pub fn site_mut(&mut self, site: SiteId) -> &mut LocalSg {
        self.sites.entry(site).or_default()
    }

    /// The local SG of `site`, if present.
    pub fn site(&self, site: SiteId) -> Option<&LocalSg> {
        self.sites.get(&site)
    }

    /// Iterate `(site, local SG)` pairs.
    pub fn sites(&self) -> impl Iterator<Item = (SiteId, &LocalSg)> {
        self.sites.iter().map(|(&s, g)| (s, g))
    }

    /// All nodes across all sites, ordered and deduplicated.
    pub fn nodes(&self) -> Vec<TxnId> {
        let mut set = BTreeSet::new();
        for g in self.sites.values() {
            set.extend(g.nodes());
        }
        set.into_iter().collect()
    }

    /// The sites where a node appears.
    pub fn sites_of(&self, n: TxnId) -> Vec<SiteId> {
        self.sites
            .iter()
            .filter(|(_, g)| g.contains(n))
            .map(|(&s, _)| s)
            .collect()
    }

    /// Union adjacency: successors of `n` across all sites, deduplicated.
    pub fn successors(&self, n: TxnId) -> Vec<TxnId> {
        let mut out = Vec::new();
        for g in self.sites.values() {
            for &s in g.successors(n) {
                if !out.contains(&s) {
                    out.push(s);
                }
            }
        }
        out
    }

    /// All union edges, deduplicated.
    pub fn edges(&self) -> Vec<(TxnId, TxnId)> {
        let mut set = BTreeSet::new();
        for g in self.sites.values() {
            for e in g.edges() {
                set.insert(e);
            }
        }
        set.into_iter().collect()
    }

    /// Is `b` reachable from `a` in the union graph (path length ≥ 1)?
    pub fn has_global_path(&self, a: TxnId, b: TxnId) -> bool {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::new();
        queue.push_back(a);
        while let Some(n) = queue.pop_front() {
            for s in self.successors(n) {
                if s == b {
                    return true;
                }
                if seen.insert(s) {
                    queue.push_back(s);
                }
            }
        }
        false
    }

    /// Does *some single site* have a local path `a →+ b`? This is the
    /// admissibility test for one segment of a path representation.
    pub fn segment_exists(&self, a: TxnId, b: TxnId) -> bool {
        self.sites.values().any(|g| g.has_path(a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2pc_common::GlobalTxnId;

    fn t(i: u64) -> TxnId {
        TxnId::Global(GlobalTxnId(i))
    }

    fn ct(i: u64) -> TxnId {
        TxnId::Compensation(GlobalTxnId(i))
    }

    #[test]
    fn local_paths() {
        let mut g = LocalSg::new();
        g.add_edge(t(1), t(2));
        g.add_edge(t(2), t(3));
        assert!(g.has_path(t(1), t(3)));
        assert!(!g.has_path(t(3), t(1)));
        assert!(g.connected_either_way(t(3), t(1)));
        assert!(!g.has_path(t(1), t(1)), "no trivial self-path");
        assert!(!g.has_cycle());
    }

    #[test]
    fn self_loop_via_cycle_detected() {
        let mut g = LocalSg::new();
        g.add_edge(t(1), t(2));
        g.add_edge(t(2), t(1));
        assert!(g.has_cycle());
        assert!(
            g.has_path(t(1), t(1)),
            "cycle gives a self-path of length 2"
        );
    }

    #[test]
    fn path_avoiding_node() {
        // 1 → 2 → 3 and 1 → 4 → 3: avoiding 2 still reaches 3.
        let mut g = LocalSg::new();
        g.add_edge(t(1), t(2));
        g.add_edge(t(2), t(3));
        g.add_edge(t(1), t(4));
        g.add_edge(t(4), t(3));
        assert!(g.has_path_avoiding(t(1), t(3), Some(t(2))));
        assert!(g.has_path_avoiding(t(1), t(3), Some(t(4))));
        // Remove the detour: avoidance now blocks.
        let mut g2 = LocalSg::new();
        g2.add_edge(t(1), t(2));
        g2.add_edge(t(2), t(3));
        assert!(!g2.has_path_avoiding(t(1), t(3), Some(t(2))));
        assert!(g2.has_path_avoiding(t(1), t(3), None));
    }

    #[test]
    fn duplicate_edges_collapse() {
        let mut g = LocalSg::new();
        g.add_edge(t(1), t(2));
        g.add_edge(t(1), t(2));
        assert_eq!(g.successors(t(1)), &[t(2)]);
        assert_eq!(g.edges().count(), 1);
    }

    #[test]
    fn global_union_and_reachability() {
        let mut gsg = GlobalSg::new();
        gsg.site_mut(SiteId(0)).add_edge(t(1), t(2));
        gsg.site_mut(SiteId(1)).add_edge(t(2), ct(3));
        assert!(gsg.has_global_path(t(1), ct(3)), "path crosses sites");
        assert!(!gsg.has_global_path(ct(3), t(1)));
        assert_eq!(gsg.nodes(), vec![t(1), t(2), ct(3)]);
        assert_eq!(gsg.sites_of(t(2)), vec![SiteId(0), SiteId(1)]);
        assert_eq!(gsg.edges().len(), 2);
    }

    #[test]
    fn segment_exists_requires_single_site() {
        let mut gsg = GlobalSg::new();
        gsg.site_mut(SiteId(0)).add_edge(t(1), t(2));
        gsg.site_mut(SiteId(1)).add_edge(t(2), t(3));
        assert!(gsg.segment_exists(t(1), t(2)));
        assert!(gsg.segment_exists(t(2), t(3)));
        assert!(
            !gsg.segment_exists(t(1), t(3)),
            "t1→t3 needs two sites, so it is not one segment"
        );
        // Give one site the whole path: now it is a segment.
        gsg.site_mut(SiteId(2)).add_edge(t(1), t(5));
        gsg.site_mut(SiteId(2)).add_edge(t(5), t(3));
        assert!(gsg.segment_exists(t(1), t(3)));
    }

    #[test]
    fn isolated_nodes_are_tracked() {
        let mut g = LocalSg::new();
        g.add_node(t(9));
        assert!(g.contains(t(9)));
        assert_eq!(g.node_count(), 1);
        assert!(!g.has_cycle());
    }
}
