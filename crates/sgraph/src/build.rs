//! Deriving serialization graphs from recorded histories.

use crate::graph::GlobalSg;
use o2pc_common::{HistEventKind, History, Key, OpKind, SiteId, TxnId};
use std::collections::HashMap;

/// Build the **paper-faithful** global SG from a history: complete-history
/// semantics (§5), where every global transaction's operations appear at
/// every site it executed at — including subtransactions that were later
/// rolled back. This is the graph the stratification machinery (S1/S2,
/// C1/C2, the lemmas) is defined over.
pub fn build_sgs(history: &History) -> GlobalSg {
    build_with(history, false)
}

/// Build the **exposure-semantics** global SG from a history.
///
/// Failed **global** transactions appear with *exposure semantics*: the
/// paper extends serializability theory to failed transactions because under
/// O2PC their updates may have been **seen** (local commit released the
/// locks). At a site that simply rolled the subtransaction back from the log
/// (voted abort, was a deadlock victim, or was undone by an R1
/// invalidation), strict 2PL guarantees nobody interleaved between its
/// operations and the undo — its forward operations are invisible there,
/// and including them would flag spurious "regular cycles" even for the
/// plain 2PL-2PC baseline, where nothing is ever exposed. So a failed
/// transaction's forward accesses at a site count iff the site locally
/// committed (or committed) it; its roll-back's undo writes count
/// everywhere, attributed to `CT_i` — which is exactly what Lemma 5 needs
/// (`CT_i → T_j` at sites that undid `T_i` before `T_j` arrived).
///
/// Edges: `A → B` iff some operation of `A` precedes and conflicts with some
/// operation of `B` in the site's history (same item, at least one write).
pub fn build_exposed_sgs(history: &History) -> GlobalSg {
    build_with(history, true)
}

fn build_with(history: &History, exposure_filter: bool) -> GlobalSg {
    // Which local transactions committed, and where global transactions
    // were exposed (locally committed / committed) or merely rolled back.
    // For compensations, the event index of the last roll-back per site:
    // a `RolledBack` for a compensation only ever comes from crash recovery
    // (CTs never vote), meaning its earlier accesses at the site were
    // cleanly undone — and were observed by nothing durable — before the
    // compensation re-executes under the same id. Keeping them would merge
    // two physical executions into one node and manufacture cycles.
    let mut local_committed: HashMap<TxnId, bool> = HashMap::new();
    let mut exposed: HashMap<(TxnId, SiteId), bool> = HashMap::new();
    let mut comp_void: HashMap<(TxnId, SiteId), usize> = HashMap::new();
    for (idx, e) in history.events().iter().enumerate() {
        match e.txn {
            TxnId::Local(_) => {
                let entry = local_committed.entry(e.txn).or_insert(false);
                if matches!(e.kind, HistEventKind::Committed) {
                    *entry = true;
                }
            }
            TxnId::Global(_) => match e.kind {
                HistEventKind::LocallyCommitted | HistEventKind::Committed => {
                    exposed.insert((e.txn, e.site), true);
                }
                HistEventKind::RolledBack => {
                    exposed.entry((e.txn, e.site)).or_insert(false);
                }
                _ => {}
            },
            TxnId::Compensation(_) => {
                if matches!(e.kind, HistEventKind::RolledBack) {
                    comp_void.insert((e.txn, e.site), idx);
                }
            }
        }
    }
    let include = |txn: TxnId, site: SiteId| -> bool {
        match txn {
            TxnId::Local(_) => local_committed.get(&txn).copied().unwrap_or(false),
            // Under exposure semantics a global's forward accesses count
            // only where it was exposed; a global with no terminal event at
            // the site (in flight at the end of the recording, or a
            // hand-built test history) defaults to included.
            TxnId::Global(_) => {
                !exposure_filter || exposed.get(&(txn, site)).copied().unwrap_or(true)
            }
            TxnId::Compensation(_) => true,
        }
    };

    let mut gsg = GlobalSg::new();
    // Per site, per key: accesses in order (txn, kind).
    let mut per_site_key: HashMap<(SiteId, Key), Vec<(TxnId, OpKind)>> = HashMap::new();
    for (idx, e) in history.events().iter().enumerate() {
        if let HistEventKind::Access { kind, key, .. } = e.kind {
            if !include(e.txn, e.site) {
                continue;
            }
            if matches!(e.txn, TxnId::Compensation(_))
                && comp_void.get(&(e.txn, e.site)).is_some_and(|&rb| idx < rb)
            {
                continue; // voided by a crash before the re-execution
            }
            gsg.site_mut(e.site).add_node(e.txn);
            per_site_key
                .entry((e.site, key))
                .or_default()
                .push((e.txn, kind));
        }
    }

    for ((site, _key), accesses) in per_site_key {
        let sg = gsg.site_mut(site);
        for (i, &(a_txn, a_kind)) in accesses.iter().enumerate() {
            for &(b_txn, b_kind) in &accesses[i + 1..] {
                if a_txn == b_txn {
                    continue;
                }
                if a_kind == OpKind::Write || b_kind == OpKind::Write {
                    sg.add_edge(a_txn, b_txn);
                }
            }
        }
    }
    gsg
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2pc_common::{GlobalTxnId, HistEvent, LocalTxnId, SimTime};

    fn t(i: u64) -> TxnId {
        TxnId::Global(GlobalTxnId(i))
    }

    fn l(site: u32, seq: u64) -> TxnId {
        TxnId::Local(LocalTxnId {
            site: SiteId(site),
            seq,
        })
    }

    #[test]
    fn write_read_conflict_creates_edge() {
        let mut h = History::new();
        h.access(SiteId(0), t(1), OpKind::Write, Key(1), None, SimTime(1));
        h.access(
            SiteId(0),
            t(2),
            OpKind::Read,
            Key(1),
            Some(t(1)),
            SimTime(2),
        );
        let gsg = build_sgs(&h);
        let sg = gsg.site(SiteId(0)).unwrap();
        assert_eq!(sg.successors(t(1)), &[t(2)]);
        assert!(sg.successors(t(2)).is_empty());
    }

    #[test]
    fn read_read_is_not_a_conflict() {
        let mut h = History::new();
        h.access(SiteId(0), t(1), OpKind::Read, Key(1), None, SimTime(1));
        h.access(SiteId(0), t(2), OpKind::Read, Key(1), None, SimTime(2));
        let gsg = build_sgs(&h);
        assert!(gsg.edges().is_empty());
        // Nodes still present.
        assert_eq!(gsg.nodes().len(), 2);
    }

    #[test]
    fn different_keys_do_not_conflict() {
        let mut h = History::new();
        h.access(SiteId(0), t(1), OpKind::Write, Key(1), None, SimTime(1));
        h.access(SiteId(0), t(2), OpKind::Write, Key(2), None, SimTime(2));
        assert!(build_sgs(&h).edges().is_empty());
    }

    #[test]
    fn cross_site_accesses_stay_in_their_local_sgs() {
        let mut h = History::new();
        h.access(SiteId(0), t(1), OpKind::Write, Key(1), None, SimTime(1));
        h.access(SiteId(1), t(2), OpKind::Write, Key(1), None, SimTime(2));
        let gsg = build_sgs(&h);
        assert!(
            gsg.edges().is_empty(),
            "same key id at different sites is a different item"
        );
    }

    #[test]
    fn aborted_local_txns_are_excluded() {
        let mut h = History::new();
        let lx = l(0, 1);
        h.access(SiteId(0), lx, OpKind::Write, Key(1), None, SimTime(1));
        h.push(HistEvent {
            site: SiteId(0),
            txn: lx,
            kind: HistEventKind::RolledBack,
            time: SimTime(2),
        });
        h.access(SiteId(0), t(1), OpKind::Write, Key(1), None, SimTime(3));
        let gsg = build_sgs(&h);
        assert_eq!(gsg.nodes(), vec![t(1)], "aborted local dropped");
        assert!(gsg.edges().is_empty());
    }

    #[test]
    fn committed_local_txns_are_included() {
        let mut h = History::new();
        let lx = l(0, 1);
        h.access(SiteId(0), lx, OpKind::Write, Key(1), None, SimTime(1));
        h.push(HistEvent {
            site: SiteId(0),
            txn: lx,
            kind: HistEventKind::Committed,
            time: SimTime(2),
        });
        h.access(SiteId(0), t(1), OpKind::Read, Key(1), Some(lx), SimTime(3));
        let gsg = build_sgs(&h);
        let sg = gsg.site(SiteId(0)).unwrap();
        assert_eq!(sg.successors(lx), &[t(1)]);
    }

    #[test]
    fn global_and_compensating_always_included() {
        let mut h = History::new();
        let ct1 = TxnId::Compensation(GlobalTxnId(1));
        h.access(SiteId(0), t(1), OpKind::Write, Key(1), None, SimTime(1));
        h.access(SiteId(0), ct1, OpKind::Write, Key(1), None, SimTime(2));
        let gsg = build_sgs(&h);
        let sg = gsg.site(SiteId(0)).unwrap();
        assert_eq!(
            sg.successors(t(1)),
            &[ct1],
            "T1 → CT1: compensation serialized after"
        );
    }

    #[test]
    fn ww_chain_orders_by_time() {
        let mut h = History::new();
        for (i, time) in [(1u64, 1u64), (2, 2), (3, 3)] {
            h.access(SiteId(0), t(i), OpKind::Write, Key(7), None, SimTime(time));
        }
        let gsg = build_sgs(&h);
        let sg = gsg.site(SiteId(0)).unwrap();
        assert!(sg.has_path(t(1), t(3)));
        assert!(!sg.has_path(t(3), t(1)));
        assert_eq!(sg.successors(t(1)).len(), 2, "edges to both later writers");
    }

    #[test]
    fn unexposed_rollback_drops_forward_accesses() {
        // T1 wrote at site 0 and was rolled back there without ever being
        // locally committed: its forward write is invisible and must not
        // create edges; the CT undo-write still does.
        let ct1 = TxnId::Compensation(GlobalTxnId(1));
        let mut h = History::new();
        h.access(SiteId(0), t(1), OpKind::Write, Key(1), None, SimTime(1));
        h.access(SiteId(0), ct1, OpKind::Write, Key(1), None, SimTime(2));
        h.push(HistEvent {
            site: SiteId(0),
            txn: t(1),
            kind: HistEventKind::RolledBack,
            time: SimTime(2),
        });
        h.access(SiteId(0), t(2), OpKind::Write, Key(1), None, SimTime(3));
        let gsg = build_exposed_sgs(&h);
        let sg = gsg.site(SiteId(0)).unwrap();
        assert!(!sg.contains(t(1)), "unexposed forward accesses dropped");
        assert_eq!(sg.successors(ct1), &[t(2)], "Lemma 5 edge CT1 → T2 kept");
    }

    #[test]
    fn locally_committed_rollback_keeps_forward_accesses() {
        // Same shape, but the site locally committed T1 first (O2PC
        // exposure): the forward write was visible and stays in the SG.
        let ct1 = TxnId::Compensation(GlobalTxnId(1));
        let mut h = History::new();
        h.access(SiteId(0), t(1), OpKind::Write, Key(1), None, SimTime(1));
        h.push(HistEvent {
            site: SiteId(0),
            txn: t(1),
            kind: HistEventKind::LocallyCommitted,
            time: SimTime(2),
        });
        h.access(
            SiteId(0),
            t(2),
            OpKind::Read,
            Key(1),
            Some(t(1)),
            SimTime(3),
        );
        h.access(SiteId(0), ct1, OpKind::Write, Key(1), None, SimTime(4));
        let gsg = build_exposed_sgs(&h);
        let sg = gsg.site(SiteId(0)).unwrap();
        assert!(sg.has_path(t(1), t(2)));
        assert!(
            sg.has_path(t(2), ct1),
            "the exposed-window reader precedes the compensation"
        );
    }

    #[test]
    fn exposure_is_per_site() {
        // T1 locally committed at site 0 but was rolled back unexposed at
        // site 1: included there only via CT.
        let mut h = History::new();
        h.access(SiteId(0), t(1), OpKind::Write, Key(1), None, SimTime(1));
        h.push(HistEvent {
            site: SiteId(0),
            txn: t(1),
            kind: HistEventKind::LocallyCommitted,
            time: SimTime(2),
        });
        h.access(SiteId(1), t(1), OpKind::Write, Key(1), None, SimTime(1));
        h.push(HistEvent {
            site: SiteId(1),
            txn: t(1),
            kind: HistEventKind::RolledBack,
            time: SimTime(3),
        });
        let gsg = build_exposed_sgs(&h);
        assert!(gsg.site(SiteId(0)).unwrap().contains(t(1)));
        assert!(
            gsg.site(SiteId(1)).is_none_or(|sg| !sg.contains(t(1))),
            "unexposed forward access must not materialize the node"
        );
    }
}
