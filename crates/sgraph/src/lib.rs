//! # o2pc-sgraph
//!
//! The serialization-graph machinery of the paper's §5, implemented exactly:
//!
//! * [`graph`] — local SGs (one per site) and the global SG (their union),
//!   over nodes `T_i` / `CT_i` / committed locals, with path queries
//!   (including *node-avoiding* paths, needed by predicates A2/A4).
//! * [`build`] — derive the SGs from a recorded [`o2pc_common::History`]
//!   (conflict edges: same item, at least one write, order of access).
//! * [`incremental`] — the same graphs maintained *online*: a
//!   [`o2pc_common::HistorySink`] that folds each event into the global SG
//!   as it is recorded, so an audit at quiescence starts from an
//!   already-built graph instead of replaying the whole history.
//! * [`cycles`] — Tarjan SCCs and bounded simple-cycle enumeration.
//! * [`regular`] — **regular-cycle detection**: a cycle is *regular* iff some
//!   *minimal representation* of it (fewest local segments, computed as a
//!   minimal cyclic interval cover where an interval `A→B` is admissible iff
//!   a single site's SG has a local path `A → B`) has a regular global
//!   transaction as a segment endpoint. This reproduces the paper's
//!   Example 1 (the cycle `CT1→T2→CT3→CT1` is *not* regular because its
//!   2-segment minimal representation `CT1→CT3 (SG2); CT3→CT1 (SG3)` skips
//!   `T2`) and Figure 1 (which shows cycles that *are* regular).
//! * [`strat`] — the predicates A1–A4, the *active-with-respect-to*
//!   relation, stratification properties **S1**/**S2** (Theorem 1's
//!   sufficient condition) and cycle conditions **C1**/**C2** (Lemma 2).
//! * [`correctness`] — the top-level audit: local cycles, regular cycles,
//!   and *atomicity of compensation* (Theorem 2: no `T_j` reads from both
//!   `T_i` and `CT_i`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod correctness;
pub mod cycles;
pub mod graph;
pub mod incremental;
pub mod regular;
pub mod repr;
pub mod strat;

pub use build::{build_exposed_sgs, build_sgs};
pub use correctness::{audit, audit_graph, AuditReport};
pub use graph::{GlobalSg, LocalSg};
pub use incremental::IncrementalSg;
pub use regular::{find_regular_cycle, RegularCycle};
pub use strat::{holds_s1, holds_s2};
