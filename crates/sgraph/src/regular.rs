//! Regular-cycle detection via minimal path representations (§5).
//!
//! A *representation* of a global path lists the local segments constituting
//! it; a *minimal representation* uses the fewest segments; a global path
//! *includes* a transaction iff the transaction appears (as a segment
//! endpoint) on one of its minimal representations. A **regular cycle** is a
//! global cyclic path that includes at least one regular (non-compensating)
//! global transaction.
//!
//! Algorithmically, for a simple cycle `A_0 → A_1 → ... → A_{k-1} → A_0` of
//! the union SG, a segment may cover any contiguous run `A_p .. A_q`
//! (cyclically) provided a *single site's* local SG has a path `A_p → A_q` —
//! that is exactly what lets the minimal representation of the cycle in the
//! paper's Example 1 skip `T_2`: `SG_2` reaches `CT_3` from `CT_1` locally,
//! so the run `CT_1, T_2, CT_3` collapses to the one segment
//! `CT_1 → CT_3 (SG_2)`. The minimal cyclic cover is computed by dynamic
//! programming anchored at each candidate endpoint; the cycle is regular iff
//! anchoring at some regular global transaction achieves the overall minimum
//! (then a minimal representation with that transaction as an endpoint
//! exists).

use crate::cycles::{enumerate_cycles, for_each_cycle};
use crate::graph::GlobalSg;
use o2pc_common::TxnId;
use std::collections::{BTreeSet, HashSet, VecDeque};

/// Precomputed single-site reachability: `exists(a, b)` answers "does some
/// single site's local SG contain a path `a →+ b`" in O(1). Building it once
/// per audit turns the minimal-representation DP from BFS-per-query into
/// hash lookups.
pub struct SegmentOracle {
    reach: HashSet<(TxnId, TxnId)>,
}

impl SegmentOracle {
    /// Build the oracle for a global SG.
    pub fn new(gsg: &GlobalSg) -> Self {
        let mut reach = HashSet::new();
        for (_, sg) in gsg.sites() {
            for start in sg.nodes() {
                let mut seen: BTreeSet<TxnId> = BTreeSet::new();
                let mut queue: VecDeque<TxnId> = VecDeque::new();
                queue.push_back(start);
                while let Some(n) = queue.pop_front() {
                    for &s in sg.successors(n) {
                        reach.insert((start, s));
                        if seen.insert(s) {
                            queue.push_back(s);
                        }
                    }
                }
            }
        }
        SegmentOracle { reach }
    }

    /// Build the oracle restricted to `allowed` nodes: only paths that
    /// start, end, *and stay* inside the set are recorded.
    ///
    /// This is exact (not an approximation) when `allowed` is one strongly
    /// connected component of the union SG and the queries concern cycles
    /// inside it: if a single site has a local path `a →+ b` with `a`, `b`
    /// in the SCC, every intermediate node `x` of that path also lies in
    /// the SCC (`a` reaches `x` and `x` reaches `b` along the path, and `b`
    /// reaches `a` through the component's return path, closing a cycle
    /// through `x`). So confining the BFS to the component loses no
    /// admissible segment — while shrinking the quadratic reachability
    /// closure from the whole graph to one component.
    pub fn restricted(gsg: &GlobalSg, allowed: &BTreeSet<TxnId>) -> Self {
        let mut reach = HashSet::new();
        for (_, sg) in gsg.sites() {
            for start in sg.nodes() {
                if !allowed.contains(&start) {
                    continue;
                }
                let mut seen: BTreeSet<TxnId> = BTreeSet::new();
                let mut queue: VecDeque<TxnId> = VecDeque::new();
                queue.push_back(start);
                while let Some(n) = queue.pop_front() {
                    for &s in sg.successors(n) {
                        if !allowed.contains(&s) {
                            continue;
                        }
                        reach.insert((start, s));
                        if seen.insert(s) {
                            queue.push_back(s);
                        }
                    }
                }
            }
        }
        SegmentOracle { reach }
    }

    /// Does a single-site local path `a →+ b` exist?
    #[inline]
    pub fn exists(&self, a: TxnId, b: TxnId) -> bool {
        self.reach.contains(&(a, b))
    }
}

/// A detected regular cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegularCycle {
    /// The cycle as a node sequence (`nodes[i] → nodes[i+1]`, wrapping).
    pub nodes: Vec<TxnId>,
    /// Number of segments in a minimal representation.
    pub min_segments: usize,
    /// Endpoints of one minimal representation that includes a regular
    /// global transaction (in traversal order, starting at that transaction).
    pub witness_endpoints: Vec<TxnId>,
}

/// Result of classifying one cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CycleClass {
    /// The cycle's minimal representations can all avoid regular global
    /// transactions: allowed by the correctness criterion.
    NonRegular {
        /// Minimal segment count.
        min_segments: usize,
    },
    /// A minimal representation includes a regular global transaction.
    Regular(RegularCycle),
}

/// Minimal number of segments to cover the cyclic node sequence when the
/// cover is anchored at position `f` (i.e. `nodes[f]` is forced to be a
/// segment endpoint). Also returns the endpoint positions of one optimal
/// cover. Returns `None` if no cover exists (cannot happen for a genuine
/// cycle, where every unit arc is admissible).
fn anchored_cover(
    oracle: &SegmentOracle,
    nodes: &[TxnId],
    f: usize,
) -> Option<(usize, Vec<usize>)> {
    let k = nodes.len();
    // d[j] = min segments to advance j steps forward from f (0 ≤ j ≤ k).
    let mut d = vec![usize::MAX; k + 1];
    let mut parent = vec![usize::MAX; k + 1];
    d[0] = 0;
    for j in 1..=k {
        for p in 0..j {
            if d[p] == usize::MAX {
                continue;
            }
            let from = nodes[(f + p) % k];
            let to = nodes[(f + j) % k];
            let admissible = oracle.exists(from, to);
            if admissible && d[p] + 1 < d[j] {
                d[j] = d[p] + 1;
                parent[j] = p;
            }
        }
    }
    if d[k] == usize::MAX {
        return None;
    }
    let mut endpoints = Vec::new();
    let mut j = k;
    while j != 0 {
        let p = parent[j];
        endpoints.push((f + p) % k);
        j = p;
    }
    endpoints.reverse();
    Some((d[k], endpoints))
}

/// Classify one simple cycle of the union SG (builds a fresh reachability
/// oracle; batch callers should use [`classify_cycle_with`]).
pub fn classify_cycle(gsg: &GlobalSg, nodes: &[TxnId]) -> CycleClass {
    classify_cycle_with(&SegmentOracle::new(gsg), nodes)
}

/// Classify one simple cycle using a prebuilt [`SegmentOracle`].
pub fn classify_cycle_with(oracle: &SegmentOracle, nodes: &[TxnId]) -> CycleClass {
    let k = nodes.len();
    debug_assert!(k >= 2);
    let mut overall = usize::MAX;
    let mut per_anchor: Vec<Option<(usize, Vec<usize>)>> = Vec::with_capacity(k);
    for f in 0..k {
        let r = anchored_cover(oracle, nodes, f);
        if let Some((m, _)) = &r {
            overall = overall.min(*m);
        }
        per_anchor.push(r);
    }
    debug_assert_ne!(overall, usize::MAX, "a cycle always has a cover");

    for (f, r) in per_anchor.iter().enumerate() {
        if !nodes[f].is_regular_global() {
            continue;
        }
        if let Some((m, endpoints)) = r {
            if *m == overall {
                let witness_endpoints = endpoints.iter().map(|&p| nodes[p]).collect();
                return CycleClass::Regular(RegularCycle {
                    nodes: nodes.to_vec(),
                    min_segments: overall,
                    witness_endpoints,
                });
            }
        }
    }
    CycleClass::NonRegular {
        min_segments: overall,
    }
}

/// Search the union SG for a regular cycle. `max_cycles` / `max_len` bound
/// the enumeration (a history audit passes generous caps; see
/// [`crate::correctness::audit`]).
pub fn find_regular_cycle(
    gsg: &GlobalSg,
    max_cycles: usize,
    max_len: usize,
) -> Option<RegularCycle> {
    let mut oracle: Option<SegmentOracle> = None;
    let mut found: Option<RegularCycle> = None;
    let mut examined = 0usize;
    for_each_cycle(gsg, max_len, |cycle| {
        examined += 1;
        // Cheap filter: a regular cycle needs a regular global node at all.
        if cycle.iter().any(|n| n.is_regular_global()) {
            let oracle = oracle.get_or_insert_with(|| SegmentOracle::new(gsg));
            if let CycleClass::Regular(rc) = classify_cycle_with(oracle, cycle) {
                found = Some(rc);
                return std::ops::ControlFlow::Break(());
            }
        }
        if examined >= max_cycles {
            std::ops::ControlFlow::Break(())
        } else {
            std::ops::ControlFlow::Continue(())
        }
    });
    found
}

/// Classify every enumerated cycle (used by the F1 figure binary).
pub fn classify_all_cycles(
    gsg: &GlobalSg,
    max_cycles: usize,
    max_len: usize,
) -> Vec<(Vec<TxnId>, CycleClass)> {
    let oracle = SegmentOracle::new(gsg);
    enumerate_cycles(gsg, max_cycles, max_len)
        .into_iter()
        .map(|c| {
            let class = classify_cycle_with(&oracle, &c);
            (c, class)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2pc_common::{GlobalTxnId, SiteId};

    fn t(i: u64) -> TxnId {
        TxnId::Global(GlobalTxnId(i))
    }

    fn ct(i: u64) -> TxnId {
        TxnId::Compensation(GlobalTxnId(i))
    }

    /// Example 1 of the paper, extended with the closing edge so that the
    /// cycle CT1 → T2 → CT3 → CT1 exists:
    ///   SG1: CT1 → T2
    ///   SG2: CT1 → T2 → CT3
    ///   SG3: CT3 → CT1
    /// The cycle is NOT regular: its minimal representation is
    /// CT1 → CT3 (SG2); CT3 → CT1 (SG3), which does not include T2.
    #[test]
    fn example1_cycle_is_not_regular() {
        let mut g = GlobalSg::new();
        g.site_mut(SiteId(1)).add_edge(ct(1), t(2));
        g.site_mut(SiteId(2)).add_edge(ct(1), t(2));
        g.site_mut(SiteId(2)).add_edge(t(2), ct(3));
        g.site_mut(SiteId(3)).add_edge(ct(3), ct(1));

        assert!(find_regular_cycle(&g, 100, 10).is_none());
        // There IS a cycle; it is just non-regular.
        let classes = classify_all_cycles(&g, 100, 10);
        assert!(!classes.is_empty());
        for (_, class) in &classes {
            match class {
                CycleClass::NonRegular { min_segments } => assert_eq!(*min_segments, 2),
                CycleClass::Regular(rc) => panic!("unexpected regular cycle {rc:?}"),
            }
        }
    }

    /// If SG2 does NOT short-circuit T2 (the path CT1 → CT3 requires going
    /// through distinct sites), the same cycle becomes regular.
    #[test]
    fn cycle_without_shortcut_is_regular() {
        let mut g = GlobalSg::new();
        g.site_mut(SiteId(1)).add_edge(ct(1), t(2));
        g.site_mut(SiteId(2)).add_edge(t(2), ct(3));
        g.site_mut(SiteId(3)).add_edge(ct(3), ct(1));

        let rc = find_regular_cycle(&g, 100, 10).expect("regular cycle expected");
        assert_eq!(rc.min_segments, 3);
        assert!(rc.witness_endpoints.contains(&t(2)));
        assert_eq!(
            rc.witness_endpoints[0],
            t(2),
            "witness anchored at the regular txn"
        );
    }

    /// Figure 1(a)-style scenario: T2 reads CT1's effects at one site but
    /// precedes T1 at another — the classic regular cycle O2PC can create
    /// without P1.
    #[test]
    fn figure1a_regular_cycle() {
        let mut g = GlobalSg::new();
        // SG_a: T1 → CT1 → T2   (T2 saw the compensation)
        g.site_mut(SiteId(0)).add_edge(t(1), ct(1));
        g.site_mut(SiteId(0)).add_edge(ct(1), t(2));
        // SG_b: T2 → T1         (T2 preceded T1's subtransaction elsewhere)
        g.site_mut(SiteId(1)).add_edge(t(2), t(1));

        let rc = find_regular_cycle(&g, 100, 10).expect("Figure 1(a) must be regular");
        assert!(rc.nodes.contains(&t(2)));
        assert!(rc.nodes.contains(&t(1)));
    }

    /// A cycle among compensating transactions only is permitted (the paper
    /// explicitly allows cycles whose only global transactions are CTs).
    #[test]
    fn ct_only_cycle_is_not_regular() {
        let mut g = GlobalSg::new();
        g.site_mut(SiteId(0)).add_edge(ct(1), ct(2));
        g.site_mut(SiteId(1)).add_edge(ct(2), ct(1));
        assert!(find_regular_cycle(&g, 100, 10).is_none());
        let classes = classify_all_cycles(&g, 100, 10);
        assert_eq!(classes.len(), 1);
    }

    /// A serializable (acyclic) graph has no cycles of any kind.
    #[test]
    fn acyclic_graph_clean() {
        let mut g = GlobalSg::new();
        g.site_mut(SiteId(0)).add_edge(t(1), t(2));
        g.site_mut(SiteId(1)).add_edge(t(2), t(3));
        assert!(find_regular_cycle(&g, 100, 10).is_none());
        assert!(classify_all_cycles(&g, 100, 10).is_empty());
    }

    /// Two regular globals in a cross-site cycle: regular (this is what
    /// global 2PL prevents when no transaction aborts — Lemma 1 says such a
    /// cycle requires a CT, and indeed without CTs the engine never creates
    /// one; here we build it by hand to test the detector).
    #[test]
    fn regular_regular_cycle_detected() {
        let mut g = GlobalSg::new();
        g.site_mut(SiteId(0)).add_edge(t(1), t(2));
        g.site_mut(SiteId(1)).add_edge(t(2), t(1));
        let rc = find_regular_cycle(&g, 100, 10).expect("regular");
        assert_eq!(rc.min_segments, 2);
    }

    /// Minimal-representation subtlety: a long cycle through a regular node
    /// where a single site can cover the whole regular stretch.
    #[test]
    fn regular_node_skippable_by_long_local_path() {
        let mut g = GlobalSg::new();
        // Site 0 holds a long local chain CT1 → T5 → CT2 (so CT1→CT2 is one segment).
        g.site_mut(SiteId(0)).add_edge(ct(1), t(5));
        g.site_mut(SiteId(0)).add_edge(t(5), ct(2));
        // Site 1 closes the loop CT2 → CT1.
        g.site_mut(SiteId(1)).add_edge(ct(2), ct(1));
        assert!(
            find_regular_cycle(&g, 100, 10).is_none(),
            "T5 must be skipped by the CT1→CT2 local segment"
        );
    }

    /// The SCC-restricted oracle agrees with the full oracle on queries
    /// inside the component, even when the graph has nodes outside it.
    #[test]
    fn restricted_oracle_matches_full_oracle_inside_scc() {
        let mut g = GlobalSg::new();
        // SCC {ct1, t2, ct3} via site-local chains, plus an outside tail.
        g.site_mut(SiteId(1)).add_edge(ct(1), t(2));
        g.site_mut(SiteId(2)).add_edge(ct(1), t(2));
        g.site_mut(SiteId(2)).add_edge(t(2), ct(3));
        g.site_mut(SiteId(3)).add_edge(ct(3), ct(1));
        g.site_mut(SiteId(2)).add_edge(ct(3), t(9)); // t9 outside the SCC
        let scc: std::collections::BTreeSet<TxnId> = [ct(1), t(2), ct(3)].into_iter().collect();
        let full = SegmentOracle::new(&g);
        let restricted = SegmentOracle::restricted(&g, &scc);
        for &a in &scc {
            for &b in &scc {
                assert_eq!(full.exists(a, b), restricted.exists(a, b), "{a:?} -> {b:?}");
            }
        }
        // Outside queries are (deliberately) absent from the restricted one.
        assert!(full.exists(ct(3), t(9)));
        assert!(!restricted.exists(ct(3), t(9)));
    }

    /// The anchored DP returns a cover that actually covers the cycle.
    #[test]
    fn anchored_cover_endpoints_are_consistent() {
        let mut g = GlobalSg::new();
        g.site_mut(SiteId(0)).add_edge(t(1), t(2));
        g.site_mut(SiteId(0)).add_edge(t(2), t(3));
        g.site_mut(SiteId(1)).add_edge(t(3), t(1));
        let nodes = vec![t(1), t(2), t(3)];
        let (m, endpoints) = anchored_cover(&SegmentOracle::new(&g), &nodes, 0).unwrap();
        // Site 0 covers t1→t3 in one segment, site 1 closes: 2 segments.
        assert_eq!(m, 2);
        assert_eq!(endpoints.len(), 2);
        assert_eq!(endpoints[0], 0, "anchor is an endpoint");
    }
}
