//! Path representations of global paths (§5, Example 1) and DOT export.
//!
//! A global path between two transactions is realized by *representations*:
//! sequences of local segments, each a path within a single site's SG. The
//! *minimal* representations use the fewest segments, and a path *includes*
//! a transaction iff it appears as a segment endpoint on some minimal
//! representation. This module exposes those notions directly — Example 1
//! of the paper is the doctest of [`includes`].

use crate::graph::GlobalSg;
use crate::regular::SegmentOracle;
use o2pc_common::TxnId;
use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;

/// Hop distance between transactions in the *segment graph* (one hop = one
/// local segment). `None` when no global path exists. Distances are ≥ 1:
/// the empty path does not count.
pub fn segment_distance(gsg: &GlobalSg, from: TxnId, to: TxnId) -> Option<usize> {
    segment_distance_with(&SegmentOracle::new(gsg), &gsg.nodes(), from, to)
}

fn segment_distance_with(
    oracle: &SegmentOracle,
    nodes: &[TxnId],
    from: TxnId,
    to: TxnId,
) -> Option<usize> {
    // BFS over the "one segment" relation.
    let mut dist: HashMap<TxnId, usize> = HashMap::new();
    let mut queue: VecDeque<TxnId> = VecDeque::new();
    // Seed with everything one segment away from `from`.
    for &n in nodes {
        if oracle.exists(from, n) {
            if n == to {
                return Some(1);
            }
            dist.insert(n, 1);
            queue.push_back(n);
        }
    }
    while let Some(cur) = queue.pop_front() {
        let d = dist[&cur];
        for &n in nodes {
            if oracle.exists(cur, n) && !dist.contains_key(&n) {
                if n == to {
                    return Some(d + 1);
                }
                dist.insert(n, d + 1);
                queue.push_back(n);
            }
        }
    }
    None
}

/// Does the global path `from → to` *include* `via` — i.e. does `via`
/// appear as a segment endpoint on some **minimal** representation?
///
/// The paper's Example 1: `SG_1: CT1→T2`, `SG_2: CT1→T2→CT3`,
/// `SG_3: CT3→CT1`. The global path `CT1 → CT3` has a 2-segment
/// representation through `T2` and a 1-segment representation directly in
/// `SG_2`; only the latter is minimal, so the path does **not** include
/// `T2`.
///
/// ```
/// use o2pc_common::{GlobalTxnId, SiteId, TxnId};
/// use o2pc_sgraph::graph::GlobalSg;
/// use o2pc_sgraph::repr::{includes, segment_distance};
///
/// let t = |i| TxnId::Global(GlobalTxnId(i));
/// let ct = |i| TxnId::Compensation(GlobalTxnId(i));
/// let mut g = GlobalSg::new();
/// g.site_mut(SiteId(1)).add_edge(ct(1), t(2));
/// g.site_mut(SiteId(2)).add_edge(ct(1), t(2));
/// g.site_mut(SiteId(2)).add_edge(t(2), ct(3));
/// g.site_mut(SiteId(3)).add_edge(ct(3), ct(1));
///
/// assert_eq!(segment_distance(&g, ct(1), ct(3)), Some(1), "direct in SG_2");
/// assert!(!includes(&g, ct(1), ct(3), t(2)), "Example 1: T2 is skipped");
/// ```
pub fn includes(gsg: &GlobalSg, from: TxnId, to: TxnId, via: TxnId) -> bool {
    if via == from || via == to {
        return segment_distance(gsg, from, to).is_some();
    }
    let oracle = SegmentOracle::new(gsg);
    let nodes = gsg.nodes();
    let Some(total) = segment_distance_with(&oracle, &nodes, from, to) else {
        return false;
    };
    let Some(a) = segment_distance_with(&oracle, &nodes, from, via) else {
        return false;
    };
    let Some(b) = segment_distance_with(&oracle, &nodes, via, to) else {
        return false;
    };
    a + b == total
}

/// One minimal representation of the global path `from → to`, as the list
/// of segment endpoints (`[from, ..., to]`). `None` if no path exists.
pub fn minimal_representation(gsg: &GlobalSg, from: TxnId, to: TxnId) -> Option<Vec<TxnId>> {
    let oracle = SegmentOracle::new(gsg);
    let nodes = gsg.nodes();
    let mut dist: HashMap<TxnId, (usize, TxnId)> = HashMap::new();
    let mut queue: VecDeque<TxnId> = VecDeque::new();
    for &n in &nodes {
        if oracle.exists(from, n) {
            dist.insert(n, (1, from));
            queue.push_back(n);
        }
    }
    if from != to && !dist.contains_key(&to) {
        while let Some(cur) = queue.pop_front() {
            if cur == to {
                break;
            }
            let d = dist[&cur].0;
            for &n in &nodes {
                if oracle.exists(cur, n) && !dist.contains_key(&n) {
                    dist.insert(n, (d + 1, cur));
                    queue.push_back(n);
                }
            }
        }
    }
    let (_, mut prev) = *dist.get(&to)?;
    let mut path = vec![to];
    while prev != from {
        path.push(prev);
        prev = dist[&prev].1;
    }
    path.push(from);
    path.reverse();
    Some(path)
}

/// Render the global SG in Graphviz DOT (one cluster per site; regular
/// globals are boxes, compensations are hexagons, locals are ellipses).
pub fn to_dot(gsg: &GlobalSg) -> String {
    let mut out = String::from("digraph sg {\n  rankdir=LR;\n");
    for (site, sg) in gsg.sites() {
        let _ = writeln!(
            out,
            "  subgraph cluster_{} {{\n    label=\"{site}\";",
            site.0
        );
        for n in sg.nodes() {
            let shape = match n {
                TxnId::Global(_) => "box",
                TxnId::Compensation(_) => "hexagon",
                TxnId::Local(_) => "ellipse",
            };
            let _ = writeln!(out, "    \"{site}/{n}\" [label=\"{n}\", shape={shape}];");
        }
        for (a, b) in sg.edges() {
            let _ = writeln!(out, "    \"{site}/{a}\" -> \"{site}/{b}\";");
        }
        out.push_str("  }\n");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2pc_common::{GlobalTxnId, SiteId};

    fn t(i: u64) -> TxnId {
        TxnId::Global(GlobalTxnId(i))
    }

    fn ct(i: u64) -> TxnId {
        TxnId::Compensation(GlobalTxnId(i))
    }

    fn example1() -> GlobalSg {
        let mut g = GlobalSg::new();
        g.site_mut(SiteId(1)).add_edge(ct(1), t(2));
        g.site_mut(SiteId(2)).add_edge(ct(1), t(2));
        g.site_mut(SiteId(2)).add_edge(t(2), ct(3));
        g.site_mut(SiteId(3)).add_edge(ct(3), ct(1));
        g
    }

    #[test]
    fn example1_distances() {
        let g = example1();
        assert_eq!(segment_distance(&g, ct(1), ct(3)), Some(1));
        assert_eq!(segment_distance(&g, ct(1), t(2)), Some(1));
        assert_eq!(segment_distance(&g, t(2), ct(1)), Some(2), "T2 → CT3 → CT1");
        assert_eq!(segment_distance(&g, ct(3), t(2)), Some(2));
        assert_eq!(
            segment_distance(&g, t(2), t(2)),
            Some(3),
            "around the cycle"
        );
    }

    #[test]
    fn example1_inclusion() {
        let g = example1();
        assert!(
            !includes(&g, ct(1), ct(3), t(2)),
            "minimal representation skips T2"
        );
        assert!(
            includes(&g, ct(1), ct(1), ct(3)),
            "CT3 lies on the minimal cyclic walk"
        );
        assert!(includes(&g, t(2), ct(1), ct(3)), "T2→CT3→CT1 needs CT3");
        // Endpoints are always included when the path exists.
        assert!(includes(&g, ct(1), ct(3), ct(1)));
        assert!(includes(&g, ct(1), ct(3), ct(3)));
        // Unreachable targets include nothing.
        assert!(!includes(&g, t(2), t(9), ct(1)));
    }

    #[test]
    fn minimal_representation_endpoints() {
        let g = example1();
        assert_eq!(
            minimal_representation(&g, ct(1), ct(3)),
            Some(vec![ct(1), ct(3)])
        );
        assert_eq!(
            minimal_representation(&g, t(2), ct(1)),
            Some(vec![t(2), ct(3), ct(1)])
        );
        assert_eq!(minimal_representation(&g, t(2), t(9)), None);
    }

    #[test]
    fn dot_export_contains_clusters_and_shapes() {
        let g = example1();
        let dot = to_dot(&g);
        assert!(dot.contains("digraph sg"));
        assert!(dot.contains("cluster_1"));
        assert!(dot.contains("shape=hexagon"));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("\"S2/CT1\" -> \"S2/T2\""));
    }
}
