//! The top-level correctness audit.
//!
//! The paper's criterion (§5): a history is correct iff its global SG
//! contains **no regular cycles and no local cycles**. When no global
//! transaction aborts there are no compensating transactions, every cycle
//! would be regular, and the criterion reduces to plain serializability.
//!
//! The audit additionally checks *atomicity of compensation* (Theorem 2):
//! because our compensating transactions write at least all items the
//! forward transaction wrote, a correct history must contain no transaction
//! that reads from both `T_i` and `CT_i`. The reads-from relation comes
//! straight from the recorded history.

use crate::build::build_exposed_sgs;
use crate::cycles::{cycles_in_comp, sccs, Indexed};
use crate::graph::GlobalSg;
use crate::regular::{classify_cycle_with, CycleClass, RegularCycle, SegmentOracle};
use o2pc_common::{FastHashMap, FastHashSet, GlobalTxnId, HistEventKind, History, SiteId, TxnId};
use std::collections::BTreeSet;
use std::ops::ControlFlow;

/// Outcome of auditing a history.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    /// Sites whose *local* SG contains a cycle (must be empty: local strict
    /// 2PL guarantees local serializability).
    pub local_cycles: Vec<SiteId>,
    /// The first regular cycle found, if any (criterion violation).
    pub regular_cycle: Option<RegularCycle>,
    /// Cyclic strongly connected components of the union SG (each may hold
    /// many simple cycles).
    pub cyclic_sccs: usize,
    /// Components decided *without enumerating a single cycle*: every
    /// simple cycle lies inside one SCC, and a regular cycle must contain a
    /// regular global transaction, so a component holding none (only CTs
    /// and committed locals) cannot host a regular cycle.
    pub sccs_dismissed: usize,
    /// Simple cycles actually enumerated inside mixed components (witness
    /// search; stops at the first regular cycle).
    pub cycles_enumerated: usize,
    /// True when enumeration hit the `max_cycles` budget before exhausting
    /// a component — the no-regular-cycle verdict is then only as strong as
    /// the bounded search (exactly as in the pre-condensation audit).
    pub truncated: bool,
    /// Pairs `(reader, i)` such that the reader read from both `T_i` and
    /// `CT_i` (atomicity-of-compensation violations; must be empty).
    pub compensation_atomicity_violations: Vec<(TxnId, GlobalTxnId)>,
    /// Whether the union SG is fully acyclic (plain serializability). Since
    /// the condensation rewrite this is exact — acyclicity is an SCC fact,
    /// not a bounded-enumeration one.
    pub serializable: bool,
}

impl AuditReport {
    /// Does the history satisfy the paper's correctness criterion?
    pub fn is_correct(&self) -> bool {
        self.local_cycles.is_empty() && self.regular_cycle.is_none()
    }
}

/// Audit a recorded history. `max_cycles` / `max_len` bound cycle
/// enumeration (pass generous values; the audit is offline).
///
/// Uses [`build_exposed_sgs`]: the verdict concerns effects that were
/// actually visible — a cleanly rolled-back subtransaction whose updates
/// nobody could have observed does not make a history incorrect (see the
/// builder's docs for why the baseline protocol would otherwise be flagged).
pub fn audit(history: &History, max_cycles: usize, max_len: usize) -> AuditReport {
    let gsg = build_exposed_sgs(history);
    audit_graph(&gsg, history, max_cycles, max_len)
}

/// Audit with a pre-built SG (lets callers reuse the graph — e.g. the
/// engine's incrementally-maintained one).
///
/// The regular-cycle decision works on the SCC condensation instead of
/// enumerating all simple cycles up front:
///
/// 1. every simple cycle lies inside one cyclic SCC, so an acyclic
///    condensation settles serializability (and hence correctness when no
///    transaction aborted) with zero enumeration;
/// 2. an SCC containing no regular global transaction (CT-and-local-only
///    traffic, the common case under heavy aborts) is dismissed in
///    O(component size): none of its cycles can be regular;
/// 3. only *mixed* components are searched, each against a
///    [`SegmentOracle`] restricted to that component (sound — see
///    [`SegmentOracle::restricted`]), stopping at the first regular cycle.
pub fn audit_graph(
    gsg: &GlobalSg,
    history: &History,
    max_cycles: usize,
    max_len: usize,
) -> AuditReport {
    let mut report = AuditReport::default();

    for (site, sg) in gsg.sites() {
        if sg.has_cycle() {
            report.local_cycles.push(site);
        }
    }

    let g = Indexed::new(gsg);
    let comps = sccs(&g);
    report.cyclic_sccs = comps.len();
    report.serializable = comps.is_empty() && report.local_cycles.is_empty();

    for comp in &comps {
        if !comp
            .iter()
            .any(|&v| g.nodes[v as usize].is_regular_global())
        {
            report.sccs_dismissed += 1;
            continue;
        }
        let allowed: BTreeSet<TxnId> = comp.iter().map(|&v| g.nodes[v as usize]).collect();
        let oracle = SegmentOracle::restricted(gsg, &allowed);
        let _ = cycles_in_comp(&g, comp, max_len, &mut |cycle: &[TxnId]| {
            report.cycles_enumerated += 1;
            // Cheap filter first: a regular cycle needs a regular global
            // node; only then pay for the minimal-representation DP.
            if cycle.iter().any(|n| n.is_regular_global()) {
                if let CycleClass::Regular(rc) = classify_cycle_with(&oracle, cycle) {
                    report.regular_cycle = Some(rc);
                    return ControlFlow::Break(());
                }
            }
            if report.cycles_enumerated >= max_cycles {
                report.truncated = true;
                return ControlFlow::Break(());
            }
            ControlFlow::Continue(())
        });
        if report.regular_cycle.is_some() || report.truncated {
            break;
        }
    }

    report.compensation_atomicity_violations = compensation_atomicity_violations(history);
    report
}

/// Find every `(reader, i)` where the reader read from both `T_i` and
/// `CT_i` — the situation Theorem 2 proves impossible in correct histories
/// when `CT_i` writes (at least) `T_i`'s write set.
pub fn compensation_atomicity_violations(history: &History) -> Vec<(TxnId, GlobalTxnId)> {
    // reader → set of sources read from. Hash maps beat ordered maps on
    // this once-per-oracle scan; the final sort restores the ordered-map
    // output order exactly.
    let mut reads_from: FastHashMap<TxnId, FastHashSet<TxnId>> = FastHashMap::default();
    for e in history.events() {
        if let HistEventKind::Access {
            read_from: Some(src),
            ..
        } = e.kind
        {
            if src != e.txn {
                reads_from.entry(e.txn).or_default().insert(src);
            }
        }
    }
    let mut violations = Vec::new();
    for (reader, sources) in &reads_from {
        for src in sources {
            if let TxnId::Global(i) = src {
                if sources.contains(&TxnId::Compensation(*i)) {
                    violations.push((*reader, *i));
                }
            }
        }
    }
    violations.sort_unstable();
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2pc_common::{Key, OpKind, SimTime};

    fn t(i: u64) -> TxnId {
        TxnId::Global(GlobalTxnId(i))
    }

    fn ct(i: u64) -> TxnId {
        TxnId::Compensation(GlobalTxnId(i))
    }

    #[test]
    fn serializable_history_is_correct() {
        let mut h = History::new();
        h.access(SiteId(0), t(1), OpKind::Write, Key(1), None, SimTime(1));
        h.access(
            SiteId(0),
            t(2),
            OpKind::Read,
            Key(1),
            Some(t(1)),
            SimTime(2),
        );
        h.access(SiteId(1), t(1), OpKind::Write, Key(2), None, SimTime(1));
        h.access(
            SiteId(1),
            t(2),
            OpKind::Read,
            Key(2),
            Some(t(1)),
            SimTime(3),
        );
        let report = audit(&h, 1000, 16);
        assert!(report.is_correct());
        assert!(report.serializable);
        assert_eq!(report.cyclic_sccs, 0);
        assert_eq!(report.cycles_enumerated, 0);
        assert!(report.compensation_atomicity_violations.is_empty());
    }

    #[test]
    fn regular_cycle_history_is_incorrect() {
        // Site 0: T1 writes k1, CT1 re-writes k1 (compensation), T2 reads k1.
        // Site 1: T2 writes k2, then T1 writes k2 — T2 → T1.
        let mut h = History::new();
        h.access(SiteId(0), t(1), OpKind::Write, Key(1), None, SimTime(1));
        h.access(SiteId(0), ct(1), OpKind::Write, Key(1), None, SimTime(2));
        h.access(
            SiteId(0),
            t(2),
            OpKind::Read,
            Key(1),
            Some(ct(1)),
            SimTime(3),
        );
        h.access(SiteId(1), t(2), OpKind::Write, Key(2), None, SimTime(1));
        h.access(SiteId(1), t(1), OpKind::Write, Key(2), None, SimTime(4));
        let report = audit(&h, 1000, 16);
        assert!(!report.is_correct());
        let rc = report.regular_cycle.expect("regular cycle");
        assert!(rc.nodes.contains(&t(2)));
        assert!(!report.serializable);
    }

    #[test]
    fn ct_only_cycle_is_correct_but_not_serializable() {
        // CT1 → CT2 at site 0, CT2 → CT1 at site 1 (uncoordinated
        // compensations may interleave freely — the paper allows this).
        let mut h = History::new();
        h.access(SiteId(0), ct(1), OpKind::Write, Key(1), None, SimTime(1));
        h.access(SiteId(0), ct(2), OpKind::Write, Key(1), None, SimTime(2));
        h.access(SiteId(1), ct(2), OpKind::Write, Key(2), None, SimTime(1));
        h.access(SiteId(1), ct(1), OpKind::Write, Key(2), None, SimTime(3));
        let report = audit(&h, 1000, 16);
        assert!(report.is_correct(), "CT-only cycles are allowed");
        assert!(!report.serializable);
        assert_eq!(report.cyclic_sccs, 1);
        assert_eq!(
            (report.sccs_dismissed, report.cycles_enumerated),
            (1, 0),
            "a CT-only component is dismissed without enumerating"
        );
    }

    #[test]
    fn mixed_component_without_regular_cycle_is_enumerated_not_dismissed() {
        // Paper Example 1: cycle CT1 → T2 → CT3 → CT1 where SG2 lets the
        // minimal representation skip T2 — the component holds a regular
        // global, so it cannot be dismissed, yet no cycle is regular.
        let mut g = GlobalSg::new();
        g.site_mut(SiteId(1)).add_edge(ct(1), t(2));
        g.site_mut(SiteId(2)).add_edge(ct(1), t(2));
        g.site_mut(SiteId(2)).add_edge(t(2), ct(3));
        g.site_mut(SiteId(3)).add_edge(ct(3), ct(1));
        let report = audit_graph(&g, &History::new(), 1000, 16);
        assert!(report.is_correct());
        assert!(!report.serializable);
        assert_eq!(report.cyclic_sccs, 1);
        assert_eq!(report.sccs_dismissed, 0);
        assert!(report.cycles_enumerated > 0);
        assert!(!report.truncated);
    }

    #[test]
    fn atomicity_of_compensation_violation_detected() {
        let mut h = History::new();
        // T3 reads k1 from T1, and k2 from CT1: forbidden mixed view.
        h.access(SiteId(0), t(1), OpKind::Write, Key(1), None, SimTime(1));
        h.access(
            SiteId(0),
            t(3),
            OpKind::Read,
            Key(1),
            Some(t(1)),
            SimTime(2),
        );
        h.access(SiteId(1), t(1), OpKind::Write, Key(2), None, SimTime(1));
        h.access(SiteId(1), ct(1), OpKind::Write, Key(2), None, SimTime(2));
        h.access(
            SiteId(1),
            t(3),
            OpKind::Read,
            Key(2),
            Some(ct(1)),
            SimTime(3),
        );
        let report = audit(&h, 1000, 16);
        assert_eq!(
            report.compensation_atomicity_violations,
            vec![(t(3), GlobalTxnId(1))]
        );
    }

    #[test]
    fn consistent_view_of_compensation_is_clean() {
        let mut h = History::new();
        // T3 reads only post-compensation state: fine.
        h.access(SiteId(0), t(1), OpKind::Write, Key(1), None, SimTime(1));
        h.access(SiteId(0), ct(1), OpKind::Write, Key(1), None, SimTime(2));
        h.access(
            SiteId(0),
            t(3),
            OpKind::Read,
            Key(1),
            Some(ct(1)),
            SimTime(3),
        );
        let report = audit(&h, 1000, 16);
        assert!(report.compensation_atomicity_violations.is_empty());
    }

    #[test]
    fn empty_history_is_trivially_correct() {
        let report = audit(&History::new(), 10, 10);
        assert!(report.is_correct());
        assert!(report.serializable);
    }
}
