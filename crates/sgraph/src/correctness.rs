//! The top-level correctness audit.
//!
//! The paper's criterion (§5): a history is correct iff its global SG
//! contains **no regular cycles and no local cycles**. When no global
//! transaction aborts there are no compensating transactions, every cycle
//! would be regular, and the criterion reduces to plain serializability.
//!
//! The audit additionally checks *atomicity of compensation* (Theorem 2):
//! because our compensating transactions write at least all items the
//! forward transaction wrote, a correct history must contain no transaction
//! that reads from both `T_i` and `CT_i`. The reads-from relation comes
//! straight from the recorded history.

use crate::build::build_exposed_sgs;
use crate::cycles::enumerate_cycles;
use crate::graph::GlobalSg;
use crate::regular::{classify_cycle_with, CycleClass, RegularCycle, SegmentOracle};
use o2pc_common::{GlobalTxnId, HistEventKind, History, SiteId, TxnId};
use std::collections::{BTreeMap, BTreeSet};

/// Outcome of auditing a history.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    /// Sites whose *local* SG contains a cycle (must be empty: local strict
    /// 2PL guarantees local serializability).
    pub local_cycles: Vec<SiteId>,
    /// The first regular cycle found, if any (criterion violation).
    pub regular_cycle: Option<RegularCycle>,
    /// Total cycles examined in the union SG.
    pub cycles_examined: usize,
    /// Cycles that were non-regular (allowed: they involve compensating
    /// transactions only, possibly with locals).
    pub nonregular_cycles: usize,
    /// Pairs `(reader, i)` such that the reader read from both `T_i` and
    /// `CT_i` (atomicity-of-compensation violations; must be empty).
    pub compensation_atomicity_violations: Vec<(TxnId, GlobalTxnId)>,
    /// Whether the union SG is fully acyclic (plain serializability).
    pub serializable: bool,
}

impl AuditReport {
    /// Does the history satisfy the paper's correctness criterion?
    pub fn is_correct(&self) -> bool {
        self.local_cycles.is_empty() && self.regular_cycle.is_none()
    }
}

/// Audit a recorded history. `max_cycles` / `max_len` bound cycle
/// enumeration (pass generous values; the audit is offline).
///
/// Uses [`build_exposed_sgs`]: the verdict concerns effects that were
/// actually visible — a cleanly rolled-back subtransaction whose updates
/// nobody could have observed does not make a history incorrect (see the
/// builder's docs for why the baseline protocol would otherwise be flagged).
pub fn audit(history: &History, max_cycles: usize, max_len: usize) -> AuditReport {
    let gsg = build_exposed_sgs(history);
    audit_graph(&gsg, history, max_cycles, max_len)
}

/// Audit with a pre-built SG (lets callers reuse the graph).
pub fn audit_graph(
    gsg: &GlobalSg,
    history: &History,
    max_cycles: usize,
    max_len: usize,
) -> AuditReport {
    let mut report = AuditReport::default();

    for (site, sg) in gsg.sites() {
        if sg.has_cycle() {
            report.local_cycles.push(site);
        }
    }

    let cycles = enumerate_cycles(gsg, max_cycles, max_len);
    report.cycles_examined = cycles.len();
    report.serializable = cycles.is_empty() && report.local_cycles.is_empty();
    let oracle = if cycles.is_empty() {
        None
    } else {
        Some(SegmentOracle::new(gsg))
    };
    for cycle in &cycles {
        match classify_cycle_with(oracle.as_ref().expect("cycles imply oracle"), cycle) {
            CycleClass::Regular(rc) => {
                if report.regular_cycle.is_none() {
                    report.regular_cycle = Some(rc);
                }
            }
            CycleClass::NonRegular { .. } => report.nonregular_cycles += 1,
        }
    }

    report.compensation_atomicity_violations = compensation_atomicity_violations(history);
    report
}

/// Find every `(reader, i)` where the reader read from both `T_i` and
/// `CT_i` — the situation Theorem 2 proves impossible in correct histories
/// when `CT_i` writes (at least) `T_i`'s write set.
pub fn compensation_atomicity_violations(history: &History) -> Vec<(TxnId, GlobalTxnId)> {
    // reader → set of sources read from.
    let mut reads_from: BTreeMap<TxnId, BTreeSet<TxnId>> = BTreeMap::new();
    for e in history.events() {
        if let HistEventKind::Access {
            read_from: Some(src),
            ..
        } = e.kind
        {
            if src != e.txn {
                reads_from.entry(e.txn).or_default().insert(src);
            }
        }
    }
    let mut violations = Vec::new();
    for (reader, sources) in &reads_from {
        for src in sources {
            if let TxnId::Global(i) = src {
                if sources.contains(&TxnId::Compensation(*i)) {
                    violations.push((*reader, *i));
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2pc_common::{Key, OpKind, SimTime};

    fn t(i: u64) -> TxnId {
        TxnId::Global(GlobalTxnId(i))
    }

    fn ct(i: u64) -> TxnId {
        TxnId::Compensation(GlobalTxnId(i))
    }

    #[test]
    fn serializable_history_is_correct() {
        let mut h = History::new();
        h.access(SiteId(0), t(1), OpKind::Write, Key(1), None, SimTime(1));
        h.access(
            SiteId(0),
            t(2),
            OpKind::Read,
            Key(1),
            Some(t(1)),
            SimTime(2),
        );
        h.access(SiteId(1), t(1), OpKind::Write, Key(2), None, SimTime(1));
        h.access(
            SiteId(1),
            t(2),
            OpKind::Read,
            Key(2),
            Some(t(1)),
            SimTime(3),
        );
        let report = audit(&h, 1000, 16);
        assert!(report.is_correct());
        assert!(report.serializable);
        assert_eq!(report.cycles_examined, 0);
        assert!(report.compensation_atomicity_violations.is_empty());
    }

    #[test]
    fn regular_cycle_history_is_incorrect() {
        // Site 0: T1 writes k1, CT1 re-writes k1 (compensation), T2 reads k1.
        // Site 1: T2 writes k2, then T1 writes k2 — T2 → T1.
        let mut h = History::new();
        h.access(SiteId(0), t(1), OpKind::Write, Key(1), None, SimTime(1));
        h.access(SiteId(0), ct(1), OpKind::Write, Key(1), None, SimTime(2));
        h.access(
            SiteId(0),
            t(2),
            OpKind::Read,
            Key(1),
            Some(ct(1)),
            SimTime(3),
        );
        h.access(SiteId(1), t(2), OpKind::Write, Key(2), None, SimTime(1));
        h.access(SiteId(1), t(1), OpKind::Write, Key(2), None, SimTime(4));
        let report = audit(&h, 1000, 16);
        assert!(!report.is_correct());
        let rc = report.regular_cycle.expect("regular cycle");
        assert!(rc.nodes.contains(&t(2)));
        assert!(!report.serializable);
    }

    #[test]
    fn ct_only_cycle_is_correct_but_not_serializable() {
        // CT1 → CT2 at site 0, CT2 → CT1 at site 1 (uncoordinated
        // compensations may interleave freely — the paper allows this).
        let mut h = History::new();
        h.access(SiteId(0), ct(1), OpKind::Write, Key(1), None, SimTime(1));
        h.access(SiteId(0), ct(2), OpKind::Write, Key(1), None, SimTime(2));
        h.access(SiteId(1), ct(2), OpKind::Write, Key(2), None, SimTime(1));
        h.access(SiteId(1), ct(1), OpKind::Write, Key(2), None, SimTime(3));
        let report = audit(&h, 1000, 16);
        assert!(report.is_correct(), "CT-only cycles are allowed");
        assert!(!report.serializable);
        assert_eq!(report.nonregular_cycles, 1);
    }

    #[test]
    fn atomicity_of_compensation_violation_detected() {
        let mut h = History::new();
        // T3 reads k1 from T1, and k2 from CT1: forbidden mixed view.
        h.access(SiteId(0), t(1), OpKind::Write, Key(1), None, SimTime(1));
        h.access(
            SiteId(0),
            t(3),
            OpKind::Read,
            Key(1),
            Some(t(1)),
            SimTime(2),
        );
        h.access(SiteId(1), t(1), OpKind::Write, Key(2), None, SimTime(1));
        h.access(SiteId(1), ct(1), OpKind::Write, Key(2), None, SimTime(2));
        h.access(
            SiteId(1),
            t(3),
            OpKind::Read,
            Key(2),
            Some(ct(1)),
            SimTime(3),
        );
        let report = audit(&h, 1000, 16);
        assert_eq!(
            report.compensation_atomicity_violations,
            vec![(t(3), GlobalTxnId(1))]
        );
    }

    #[test]
    fn consistent_view_of_compensation_is_clean() {
        let mut h = History::new();
        // T3 reads only post-compensation state: fine.
        h.access(SiteId(0), t(1), OpKind::Write, Key(1), None, SimTime(1));
        h.access(SiteId(0), ct(1), OpKind::Write, Key(1), None, SimTime(2));
        h.access(
            SiteId(0),
            t(3),
            OpKind::Read,
            Key(1),
            Some(ct(1)),
            SimTime(3),
        );
        let report = audit(&h, 1000, 16);
        assert!(report.compensation_atomicity_violations.is_empty());
    }

    #[test]
    fn empty_history_is_trivially_correct() {
        let report = audit(&History::new(), 10, 10);
        assert!(report.is_correct());
        assert!(report.serializable);
    }
}
