//! Incremental serialization-graph maintenance.
//!
//! [`crate::build`] derives the SGs by replaying a complete recorded
//! [`History`]: a first pass settles which accesses are *included*
//! (committed locals; globals where exposed; compensations always), a second
//! pass collects per-(site, key) access lists, and a third adds an edge for
//! every conflicting pair — quadratic in the per-key access count and only
//! possible once the history is complete.
//!
//! [`IncrementalSg`] maintains the same graph *as events are recorded*: it
//! is a [`HistorySink`], so the engine can feed it the live event stream and
//! an audit at quiescence starts from an already-built graph. Two ideas make
//! the incremental form cheaper than the batch replay:
//!
//! * **per-(site, key) last-accessor index** — instead of an ordered access
//!   list paired quadratically, each key lane keeps one compact entry per
//!   *distinct included transaction* with the min/max positions of its reads
//!   and writes. A new access conflicts with a prior transaction iff that
//!   transaction's conflicting-mode position range extends before (edge
//!   `them → me`) or after (edge `me → them`) the access's own position —
//!   which reproduces exactly the batch edge set, because an edge `A → B`
//!   exists iff *some* conflicting access of `A` precedes *some* access of
//!   `B`, and position ranges capture precisely that;
//! * **deferred inclusion** — an access whose transaction's fate is not yet
//!   settled (a local before its commit, a global before local commit /
//!   roll-back under exposure semantics) is buffered in its lane with its
//!   position and linked only when the inclusion decision arrives, so late
//!   decisions need no replay. [`IncrementalSg::finish`] applies the batch
//!   builder's defaults to whatever is still undecided.
//!
//! Equivalence with the batch builder (same nodes, same edges, per site) is
//! pinned by unit tests here and by an integration test over recorded chaos
//! histories (`crates/sgraph/tests/incremental_equivalence.rs`).

use crate::graph::GlobalSg;
use o2pc_common::FastHashMap;
use o2pc_common::{HistEvent, HistEventKind, History, HistorySink, Key, OpKind, SiteId, TxnId};

/// Inclusion state of one (transaction, site) pair.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Inclusion {
    /// No deciding event seen yet.
    Undecided,
    /// Forward accesses at the site count (committed / exposed).
    Included,
    /// Rolled back unexposed at the site; a later local-commit event may
    /// still upgrade to [`Inclusion::Included`] (matching the batch
    /// builder, where exposure overrides roll-back regardless of order).
    Excluded,
}

const NONE: u32 = u32::MAX;

/// Per-lane record of one distinct *included* transaction: min/max access
/// positions split by mode (`NONE` = no access of that mode yet).
#[derive(Clone, Copy, Debug)]
struct LaneTxn {
    txn: TxnId,
    read_min: u32,
    read_max: u32,
    write_min: u32,
    write_max: u32,
}

impl LaneTxn {
    fn new(txn: TxnId) -> Self {
        LaneTxn {
            txn,
            read_min: NONE,
            read_max: NONE,
            write_min: NONE,
            write_max: NONE,
        }
    }

    fn note(&mut self, kind: OpKind, pos: u32) {
        let (min, max) = match kind {
            OpKind::Read => (&mut self.read_min, &mut self.read_max),
            OpKind::Write => (&mut self.write_min, &mut self.write_max),
        };
        if *min == NONE || pos < *min {
            *min = pos;
        }
        if *max == NONE || pos > *max {
            *max = pos;
        }
    }

    /// Position range of the accesses that conflict with an access of
    /// `kind` (reads conflict with writes only; writes with everything).
    fn conflicting_range(&self, kind: OpKind) -> (u32, u32) {
        match kind {
            OpKind::Write => (
                self.read_min.min(self.write_min),
                match (self.read_max, self.write_max) {
                    (NONE, m) | (m, NONE) => m,
                    (a, b) => a.max(b),
                },
            ),
            OpKind::Read => (self.write_min, self.write_max),
        }
    }
}

/// One (site, key) access lane.
#[derive(Clone, Debug, Default)]
struct Lane {
    next_pos: u32,
    /// One entry per distinct included transaction.
    included: Vec<LaneTxn>,
    /// Buffered accesses whose inclusion is not yet decided, in position
    /// order.
    pending: Vec<(TxnId, OpKind, u32)>,
}

/// An incrementally-maintained global serialization graph. Feed it history
/// events (it is a [`HistorySink`]); read the graph of all *settled*
/// accesses at any time via [`IncrementalSg::graph`], or settle the
/// end-of-history defaults with [`IncrementalSg::finish`] /
/// [`IncrementalSg::snapshot`].
#[derive(Clone, Debug)]
pub struct IncrementalSg {
    exposure_filter: bool,
    gsg: GlobalSg,
    lanes: FastHashMap<(SiteId, Key), Lane>,
    status: FastHashMap<(TxnId, SiteId), Inclusion>,
    /// Keys (per (txn, site)) holding buffered accesses, for flushing.
    pending_keys: FastHashMap<(TxnId, SiteId), Vec<Key>>,
    /// Keys (per (compensation, site)) holding *linked* accesses, so a
    /// crash-voiding roll-back can remove them again (see
    /// [`IncrementalSg::observe`] on `RolledBack`).
    comp_keys: FastHashMap<(TxnId, SiteId), Vec<Key>>,
}

impl IncrementalSg {
    /// Exposure-semantics graph (the audit's graph; see
    /// [`crate::build::build_exposed_sgs`]).
    pub fn new_exposed() -> Self {
        Self::with_filter(true)
    }

    /// Paper-faithful complete-history graph (see
    /// [`crate::build::build_sgs`]).
    pub fn new_complete() -> Self {
        Self::with_filter(false)
    }

    fn with_filter(exposure_filter: bool) -> Self {
        IncrementalSg {
            exposure_filter,
            gsg: GlobalSg::new(),
            lanes: FastHashMap::default(),
            status: FastHashMap::default(),
            pending_keys: FastHashMap::default(),
            comp_keys: FastHashMap::default(),
        }
    }

    /// The graph over accesses whose inclusion is already settled.
    /// Undecided accesses (in-flight transactions) are not yet in it; use
    /// [`IncrementalSg::snapshot`] for end-of-history semantics.
    pub fn graph(&self) -> &GlobalSg {
        &self.gsg
    }

    /// Consume one history event.
    pub fn observe(&mut self, ev: HistEvent) {
        match ev.kind {
            HistEventKind::Access { kind, key, .. } => self.on_access(ev.site, ev.txn, kind, key),
            HistEventKind::LocallyCommitted => {
                if matches!(ev.txn, TxnId::Global(_)) {
                    self.set_included(ev.txn, ev.site);
                }
            }
            HistEventKind::Committed => match ev.txn {
                TxnId::Global(_) | TxnId::Local(_) => self.set_included(ev.txn, ev.site),
                TxnId::Compensation(_) => {}
            },
            HistEventKind::RolledBack => {
                match ev.txn {
                    // Roll-back excludes unless exposure was (or is later)
                    // observed — `Included` is absorbing.
                    TxnId::Global(_) | TxnId::Local(_) => {
                        let s = self
                            .status
                            .entry((ev.txn, ev.site))
                            .or_insert(Inclusion::Undecided);
                        if *s != Inclusion::Included {
                            *s = Inclusion::Excluded;
                        }
                    }
                    // A rolled-back compensation only happens on crash
                    // recovery: its earlier accesses at the site were wiped
                    // with the un-durable log tail and cleanly undone, and
                    // the compensation will re-execute under the same id.
                    // Void what was linked (matching the batch builder,
                    // which skips compensation accesses that precede the
                    // last roll-back).
                    TxnId::Compensation(_) => self.void_compensation(ev.txn, ev.site),
                }
            }
            HistEventKind::Begin | HistEventKind::Compensated => {}
        }
    }

    fn on_access(&mut self, site: SiteId, txn: TxnId, kind: OpKind, key: Key) {
        let lane = self.lanes.entry((site, key)).or_default();
        let pos = lane.next_pos;
        lane.next_pos += 1;
        let included = match txn {
            TxnId::Compensation(_) => true,
            TxnId::Global(_) if !self.exposure_filter => true,
            TxnId::Global(_) | TxnId::Local(_) => {
                matches!(self.status.get(&(txn, site)), Some(Inclusion::Included))
            }
        };
        if included {
            link(&mut self.gsg, lane, site, txn, kind, pos);
            if matches!(txn, TxnId::Compensation(_)) {
                self.comp_keys.entry((txn, site)).or_default().push(key);
            }
        } else {
            lane.pending.push((txn, kind, pos));
            self.pending_keys.entry((txn, site)).or_default().push(key);
        }
    }

    /// Remove every linked access of a compensation at one site: node and
    /// incident edges from the site graph, plus its lane entries, so a later
    /// re-execution links from a clean slate. Crash-voiding is rare, so the
    /// incident-edge scan in [`LocalSg::remove_node`] is off the hot path.
    ///
    /// [`LocalSg::remove_node`]: crate::graph::LocalSg::remove_node
    fn void_compensation(&mut self, txn: TxnId, site: SiteId) {
        let Some(keys) = self.comp_keys.remove(&(txn, site)) else {
            return;
        };
        for key in keys {
            if let Some(lane) = self.lanes.get_mut(&(site, key)) {
                lane.included.retain(|lt| lt.txn != txn);
            }
        }
        self.gsg.site_mut(site).remove_node(txn);
    }

    fn set_included(&mut self, txn: TxnId, site: SiteId) {
        let s = self
            .status
            .entry((txn, site))
            .or_insert(Inclusion::Undecided);
        if *s == Inclusion::Included {
            return;
        }
        *s = Inclusion::Included;
        let Some(keys) = self.pending_keys.remove(&(txn, site)) else {
            return;
        };
        for key in keys {
            let lane = self.lanes.get_mut(&(site, key)).expect("lane exists");
            // Extract every buffered access of this transaction (position
            // order is preserved); repeated keys find an empty set.
            let mut i = 0;
            while i < lane.pending.len() {
                if lane.pending[i].0 == txn {
                    let (_, kind, pos) = lane.pending.remove(i);
                    link(&mut self.gsg, lane, site, txn, kind, pos);
                } else {
                    i += 1;
                }
            }
        }
    }

    /// Settle end-of-history defaults and return the final graph: globals
    /// with no deciding event at a site count as included (they were in
    /// flight when recording stopped); undecided locals and unexposed
    /// roll-backs are dropped. Matches the batch builder exactly.
    pub fn finish(mut self) -> GlobalSg {
        // Collect lanes into a deterministic order only insofar as edge
        // *sets* are concerned: positions make pair directions independent
        // of flush order, so plain map iteration is fine.
        let lanes = std::mem::take(&mut self.lanes);
        let mut lanes: Vec<((SiteId, Key), Lane)> = lanes.into_iter().collect();
        for ((site, _), lane) in &mut lanes {
            let pending = std::mem::take(&mut lane.pending);
            for (txn, kind, pos) in pending {
                let include_by_default = self.exposure_filter
                    && matches!(txn, TxnId::Global(_))
                    && !matches!(self.status.get(&(txn, *site)), Some(Inclusion::Excluded));
                if include_by_default {
                    link(&mut self.gsg, lane, *site, txn, kind, pos);
                }
            }
        }
        self.gsg
    }

    /// Non-consuming [`IncrementalSg::finish`]: the graph as if the history
    /// ended now. At quiescence (everything decided) nothing is pending and
    /// this is just a clone of the live graph.
    pub fn snapshot(&self) -> GlobalSg {
        self.clone().finish()
    }
}

impl HistorySink for IncrementalSg {
    fn record(&mut self, ev: HistEvent) {
        self.observe(ev);
    }
}

/// Add one settled access to the graph: node, conflict edges against every
/// other distinct included transaction in the lane (direction per position
/// range), and the lane-index update.
fn link(gsg: &mut GlobalSg, lane: &mut Lane, site: SiteId, txn: TxnId, kind: OpKind, pos: u32) {
    let sg = gsg.site_mut(site);
    sg.add_node(txn);
    let mut self_entry: Option<usize> = None;
    for (i, lt) in lane.included.iter().enumerate() {
        if lt.txn == txn {
            self_entry = Some(i);
            continue;
        }
        let (c_min, c_max) = lt.conflicting_range(kind);
        if c_min != NONE && c_min < pos {
            sg.add_edge(lt.txn, txn);
        }
        if c_max != NONE && c_max > pos {
            sg.add_edge(txn, lt.txn);
        }
    }
    match self_entry {
        Some(i) => lane.included[i].note(kind, pos),
        None => {
            let mut lt = LaneTxn::new(txn);
            lt.note(kind, pos);
            lane.included.push(lt);
        }
    }
}

/// Replay a complete history through the incremental builder (convenience
/// for tests and equivalence checks).
pub fn replay(history: &History, exposure_filter: bool) -> GlobalSg {
    let mut inc = IncrementalSg::with_filter(exposure_filter);
    for &ev in history.events() {
        inc.observe(ev);
    }
    inc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_exposed_sgs, build_sgs};
    use o2pc_common::{GlobalTxnId, LocalTxnId, SimTime};

    fn t(i: u64) -> TxnId {
        TxnId::Global(GlobalTxnId(i))
    }

    fn ct(i: u64) -> TxnId {
        TxnId::Compensation(GlobalTxnId(i))
    }

    fn l(site: u32, seq: u64) -> TxnId {
        TxnId::Local(LocalTxnId {
            site: SiteId(site),
            seq,
        })
    }

    fn assert_equivalent(h: &History) {
        for filter in [false, true] {
            let batch = if filter {
                build_exposed_sgs(h)
            } else {
                build_sgs(h)
            };
            let inc = replay(h, filter);
            assert_eq!(inc.nodes(), batch.nodes(), "nodes (filter={filter})");
            assert_eq!(inc.edges(), batch.edges(), "edges (filter={filter})");
            let inc_sites: Vec<SiteId> = inc.sites().map(|(s, _)| s).collect();
            let batch_sites: Vec<SiteId> = batch.sites().map(|(s, _)| s).collect();
            assert_eq!(inc_sites, batch_sites, "sites (filter={filter})");
        }
    }

    #[test]
    fn empty_history() {
        assert_equivalent(&History::new());
    }

    #[test]
    fn conflict_edges_match_batch() {
        let mut h = History::new();
        h.access(SiteId(0), t(1), OpKind::Write, Key(1), None, SimTime(1));
        h.access(
            SiteId(0),
            t(2),
            OpKind::Read,
            Key(1),
            Some(t(1)),
            SimTime(2),
        );
        h.access(SiteId(0), t(3), OpKind::Write, Key(1), None, SimTime(3));
        h.access(SiteId(1), t(3), OpKind::Write, Key(1), None, SimTime(1));
        h.access(SiteId(1), t(1), OpKind::Write, Key(1), None, SimTime(2));
        assert_equivalent(&h);
    }

    #[test]
    fn read_read_is_no_conflict() {
        let mut h = History::new();
        h.access(SiteId(0), t(1), OpKind::Read, Key(1), None, SimTime(1));
        h.access(SiteId(0), t(2), OpKind::Read, Key(1), None, SimTime(2));
        assert_equivalent(&h);
        let g = replay(&h, true);
        assert!(g.edges().is_empty());
        assert_eq!(g.nodes().len(), 2);
    }

    #[test]
    fn local_txns_gated_on_commit() {
        let mut h = History::new();
        let lx = l(0, 1);
        let ly = l(0, 2);
        h.access(SiteId(0), lx, OpKind::Write, Key(1), None, SimTime(1));
        h.access(SiteId(0), ly, OpKind::Write, Key(1), None, SimTime(2));
        h.push(HistEvent {
            site: SiteId(0),
            txn: lx,
            kind: HistEventKind::Committed,
            time: SimTime(3),
        });
        h.push(HistEvent {
            site: SiteId(0),
            txn: ly,
            kind: HistEventKind::RolledBack,
            time: SimTime(4),
        });
        assert_equivalent(&h);
        let g = replay(&h, true);
        assert!(g.nodes().contains(&lx));
        assert!(!g.nodes().contains(&ly), "uncommitted local dropped");
    }

    #[test]
    fn unexposed_rollback_drops_forward_accesses() {
        let ct1 = ct(1);
        let mut h = History::new();
        h.access(SiteId(0), t(1), OpKind::Write, Key(1), None, SimTime(1));
        h.access(SiteId(0), ct1, OpKind::Write, Key(1), None, SimTime(2));
        h.push(HistEvent {
            site: SiteId(0),
            txn: t(1),
            kind: HistEventKind::RolledBack,
            time: SimTime(2),
        });
        h.access(SiteId(0), t(2), OpKind::Write, Key(1), None, SimTime(3));
        assert_equivalent(&h);
    }

    #[test]
    fn exposure_overrides_rollback_regardless_of_order() {
        // Roll-back recorded before the (late-arriving) local-commit event:
        // the batch builder still includes the forward access, because
        // exposure insertion is unconditional. The incremental builder must
        // upgrade Excluded → Included.
        let mut h = History::new();
        h.access(SiteId(0), t(1), OpKind::Write, Key(1), None, SimTime(1));
        h.push(HistEvent {
            site: SiteId(0),
            txn: t(1),
            kind: HistEventKind::RolledBack,
            time: SimTime(2),
        });
        h.push(HistEvent {
            site: SiteId(0),
            txn: t(1),
            kind: HistEventKind::LocallyCommitted,
            time: SimTime(3),
        });
        h.access(SiteId(0), t(2), OpKind::Write, Key(1), None, SimTime(4));
        assert_equivalent(&h);
        let g = replay(&h, true);
        assert!(g.nodes().contains(&t(1)));
    }

    #[test]
    fn undecided_global_included_by_default_at_finish() {
        let mut h = History::new();
        h.access(SiteId(0), t(1), OpKind::Write, Key(1), None, SimTime(1));
        h.access(SiteId(0), t(2), OpKind::Write, Key(1), None, SimTime(2));
        assert_equivalent(&h);
        let g = replay(&h, true);
        assert_eq!(g.edges().len(), 1, "in-flight globals default-included");
    }

    #[test]
    fn graph_grows_as_events_arrive() {
        let mut inc = IncrementalSg::new_exposed();
        inc.observe(HistEvent {
            site: SiteId(0),
            txn: ct(1),
            kind: HistEventKind::Access {
                kind: OpKind::Write,
                key: Key(1),
                read_from: None,
            },
            time: SimTime(1),
        });
        inc.observe(HistEvent {
            site: SiteId(0),
            txn: ct(2),
            kind: HistEventKind::Access {
                kind: OpKind::Write,
                key: Key(1),
                read_from: None,
            },
            time: SimTime(2),
        });
        // Compensations settle immediately: the edge is live already.
        assert_eq!(inc.graph().edges().len(), 1);
        assert_eq!(inc.snapshot().edges().len(), 1);
    }

    #[test]
    fn repeated_access_positions_produce_local_cycles_like_batch() {
        // a@1, b@2, a@3 on one key: batch yields both a→b and b→a.
        let mut h = History::new();
        h.access(SiteId(0), t(1), OpKind::Write, Key(1), None, SimTime(1));
        h.access(SiteId(0), t(2), OpKind::Write, Key(1), None, SimTime(2));
        h.access(SiteId(0), t(1), OpKind::Write, Key(1), None, SimTime(3));
        assert_equivalent(&h);
        let g = replay(&h, true);
        assert_eq!(g.edges().len(), 2);
    }

    #[test]
    fn late_commit_links_buffered_accesses_in_both_directions() {
        // Local L accesses between two global accesses; L commits last.
        let mut h = History::new();
        let lx = l(0, 1);
        h.access(SiteId(0), t(1), OpKind::Write, Key(1), None, SimTime(1));
        h.access(SiteId(0), lx, OpKind::Write, Key(1), None, SimTime(2));
        h.access(SiteId(0), t(2), OpKind::Write, Key(1), None, SimTime(3));
        h.push(HistEvent {
            site: SiteId(0),
            txn: lx,
            kind: HistEventKind::Committed,
            time: SimTime(4),
        });
        assert_equivalent(&h);
        let g = replay(&h, true);
        let sg = g.site(SiteId(0)).unwrap();
        assert!(sg.successors(t(1)).contains(&lx));
        assert!(sg.successors(lx).contains(&t(2)));
    }

    #[test]
    fn crash_voiding_removes_compensation_accesses_before_rollback() {
        // CT1 runs, its log records ride an un-fsynced tail, the site
        // crashes: the engine emits RolledBack for CT1 and the physical
        // execution is undone. CT1 later re-executes under the same id.
        // Only the post-voiding accesses may conflict.
        let ct1 = ct(1);
        let mut h = History::new();
        h.access(SiteId(0), t(1), OpKind::Write, Key(1), None, SimTime(1));
        h.access(SiteId(0), ct1, OpKind::Write, Key(1), None, SimTime(2));
        h.push(HistEvent {
            site: SiteId(0),
            txn: ct1,
            kind: HistEventKind::RolledBack,
            time: SimTime(3),
        });
        h.access(SiteId(0), t(2), OpKind::Write, Key(2), None, SimTime(4));
        assert_equivalent(&h);
        let g = replay(&h, true);
        let sg = g.site(SiteId(0)).unwrap();
        assert!(!sg.contains(ct1), "voided compensation leaves the graph");
        assert!(
            sg.successors(t(1)).is_empty(),
            "edge to the wiped execution must not survive"
        );
    }

    #[test]
    fn crash_voiding_keeps_reexecution_accesses() {
        // Same shape, but CT1 re-executes after the voiding event: the
        // second physical execution's conflicts are real and must stay.
        let ct1 = ct(1);
        let mut h = History::new();
        h.access(SiteId(0), t(1), OpKind::Write, Key(1), None, SimTime(1));
        h.access(SiteId(0), ct1, OpKind::Write, Key(1), None, SimTime(2));
        h.push(HistEvent {
            site: SiteId(0),
            txn: ct1,
            kind: HistEventKind::RolledBack,
            time: SimTime(3),
        });
        h.access(SiteId(0), ct1, OpKind::Write, Key(1), None, SimTime(4));
        assert_equivalent(&h);
        let g = replay(&h, true);
        let sg = g.site(SiteId(0)).unwrap();
        assert!(sg.contains(ct1));
        assert!(
            sg.successors(t(1)).contains(&ct1),
            "re-executed compensation conflicts normally"
        );
        assert!(
            !sg.successors(ct1).contains(&t(1)),
            "no phantom back-edge from the wiped first execution"
        );
    }

    #[test]
    fn global_and_local_rollback_semantics_unchanged_by_voiding() {
        // RolledBack on a Global/Local txn still means exposure-exclusion,
        // not positional voiding: an exposed (locally committed) global's
        // accesses survive its later rollback event.
        let mut h = History::new();
        h.access(SiteId(0), t(1), OpKind::Write, Key(1), None, SimTime(1));
        h.push(HistEvent {
            site: SiteId(0),
            txn: t(1),
            kind: HistEventKind::LocallyCommitted,
            time: SimTime(2),
        });
        h.push(HistEvent {
            site: SiteId(0),
            txn: t(1),
            kind: HistEventKind::RolledBack,
            time: SimTime(3),
        });
        h.access(SiteId(0), t(2), OpKind::Write, Key(1), None, SimTime(4));
        assert_equivalent(&h);
        let g = replay(&h, true);
        let sg = g.site(SiteId(0)).unwrap();
        assert!(
            sg.successors(t(1)).contains(&t(2)),
            "exposed global stays despite rollback (Included absorbs)"
        );
    }
}
