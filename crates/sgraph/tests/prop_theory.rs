//! Property tests for the §5 theory over randomly generated, history-like
//! global SGs:
//!
//! * The bounded cycle enumerator agrees with a brute-force enumerator.
//! * Criterion reduction: with no compensating transactions, every cycle
//!   through a regular global transaction classifies as regular ("correct"
//!   collapses to "serializable").
//!
//! Theorem 1 (S1 ∨ S2 ⇒ no regular cycles) is *not* tested on this
//! generator: synthetic graphs kept producing counterexamples that turned
//! out to be unrealizable — they violated cross-site lock-point constraints
//! the paper's standing assumptions (global 2PL, exposure only after a
//! commit vote) impose but a per-site DAG sampler cannot easily encode.
//! Theorem 1 is instead property-tested against *real* histories recorded
//! from engine runs (realizable by construction) in `tests/theory.rs` at the
//! workspace root.

use o2pc_common::{GlobalTxnId, LocalTxnId, SiteId, TxnId};
use o2pc_sgraph::cycles::enumerate_cycles;
use o2pc_sgraph::graph::GlobalSg;
use o2pc_sgraph::regular::{classify_cycle, CycleClass};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn t(i: u64) -> TxnId {
    TxnId::Global(GlobalTxnId(i))
}

fn ct(i: u64) -> TxnId {
    TxnId::Compensation(GlobalTxnId(i))
}

/// Parameters of a random history-like global SG.
#[derive(Clone, Debug)]
struct SgSpec {
    globals: u64,
    aborted: Vec<bool>,
    /// Per site: ordered node list (topological order) as (kind, id) pairs
    /// and an edge-density seed.
    sites: Vec<(Vec<u8>, u64)>,
}

fn sg_spec() -> impl Strategy<Value = SgSpec> {
    (
        2u64..5,
        prop::collection::vec(any::<bool>(), 5),
        prop::collection::vec((prop::collection::vec(0u8..15, 2..8), any::<u64>()), 1..4),
    )
        .prop_map(|(globals, aborted, sites)| SgSpec {
            globals,
            aborted,
            sites,
        })
}

/// Materialize a history-like SG. Constraints reflect what real O2PC
/// executions can produce:
///
/// * every local SG is a DAG (local strict 2PL ⇒ local serializability);
/// * **committed** globals respect one global lock-point order (their id
///   order) in every site's topological order — global 2PL holds for them
///   even with O2PC's early release, because release happens only after all
///   locks are acquired everywhere;
/// * **aborted** globals have no global lock point (a site may unilaterally
///   roll their subtransaction back while siblings still run), so their
///   forward nodes and their `CT_i` nodes are placed freely per site, except
///   that `CT_i` always comes after `T_i` locally (compensation is serialized
///   after the forward transaction) and appears only where `T_i` ran;
/// * locals are placed freely.
fn build(spec: &SgSpec) -> GlobalSg {
    let mut gsg = GlobalSg::new();
    for (s_idx, (node_picks, seed)) in spec.sites.iter().enumerate() {
        let site = SiteId(s_idx as u32);
        let mut x = *seed | 1;
        let mut next = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x
        };
        // Pick nodes. Sort keys: committed global i → i * 1000 (fixed global
        // order); everything else random.
        let mut order: Vec<(u64, TxnId)> = Vec::new();
        let span = spec.globals * 1000 + 1000;
        for &p in node_picks {
            let g = (p as u64 / 3) % spec.globals;
            let aborted = spec.aborted.get(g as usize).copied().unwrap_or(false);
            let node = match p % 3 {
                0 => t(g),
                1 if aborted => t(g), // CT added below if T_i is present
                _ => TxnId::Local(LocalTxnId {
                    site,
                    seq: p as u64,
                }),
            };
            if order.iter().any(|(_, n)| *n == node) {
                continue;
            }
            let key = match node {
                TxnId::Global(gi) if !spec.aborted.get(gi.0 as usize).copied().unwrap_or(false) => {
                    gi.0 * 1000
                }
                _ => next() % span,
            };
            order.push((key, node));
        }
        // Add CT_i after each present aborted T_i.
        let present: Vec<(u64, TxnId)> = order.clone();
        for (key, n) in present {
            if let TxnId::Global(gi) = n {
                if spec.aborted.get(gi.0 as usize).copied().unwrap_or(false)
                    && !order.iter().any(|(_, m)| *m == ct(gi.0))
                {
                    let ct_key = key + 1 + next() % span;
                    order.push((ct_key, ct(gi.0)));
                }
            }
        }
        order.sort_by_key(|&(k, n)| (k, n));
        let nodes: Vec<TxnId> = order.into_iter().map(|(_, n)| n).collect();

        let sg = gsg.site_mut(site);
        for n in &nodes {
            sg.add_node(*n);
        }
        // Random forward edges (DAG by construction).
        for i in 0..nodes.len() {
            for j in (i + 1)..nodes.len() {
                if next() >> 62 == 0 {
                    sg.add_edge(nodes[i], nodes[j]);
                }
            }
        }
        // Forced T_i → CT_i edges (compensation touches what T_i touched),
        // and *footprint coverage*: the paper's lemmas (e.g. Lemma 5)
        // implicitly assume a rolled-back/compensated subtransaction's
        // conflicts are mirrored by its CT — whoever conflicted with T_i at
        // this site also conflicts with CT_i, on the same side of CT_i as
        // the topological order dictates. Without this, an aborted
        // transaction with a read-only footprint escapes the CT entirely
        // and the stratification machinery loses track of it.
        let pos = |n: &TxnId| nodes.iter().position(|m| m == n).unwrap();
        let ct_nodes: Vec<TxnId> = nodes
            .iter()
            .copied()
            .filter(|n| matches!(n, TxnId::Compensation(_)))
            .collect();
        for ct_n in ct_nodes {
            let TxnId::Compensation(gid) = ct_n else {
                unreachable!()
            };
            let ti = t(gid.0);
            sg.add_edge(ti, ct_n);
            let ct_pos = pos(&ct_n);
            // Mirror T_i's conflict edges onto CT_i.
            let preds: Vec<TxnId> = nodes
                .iter()
                .copied()
                .filter(|x| *x != ct_n && *x != ti && sg.successors(*x).contains(&ti))
                .collect();
            let succs: Vec<TxnId> = sg.successors(ti).to_vec();
            for x in preds {
                // X → T_i implies X → CT_i (CT_i runs after T_i).
                sg.add_edge(x, ct_n);
            }
            for x in succs {
                if x == ct_n {
                    continue;
                }
                if pos(&x) > ct_pos {
                    // X after the compensation: it also follows CT_i.
                    sg.add_edge(ct_n, x);
                } else {
                    // X saw the exposed (pre-compensation) state: it
                    // precedes CT_i on the same items.
                    sg.add_edge(x, ct_n);
                }
            }
        }
    }
    gsg
}

/// Brute-force simple-cycle enumeration: DFS from every node, canonicalized
/// by rotating the minimum node to the front.
fn brute_force_cycles(gsg: &GlobalSg) -> BTreeSet<Vec<TxnId>> {
    let mut out = BTreeSet::new();
    let nodes = gsg.nodes();
    for &start in &nodes {
        let mut path = vec![start];
        dfs(gsg, start, start, &mut path, &mut out);
    }
    out
}

/// Length cap shared by both enumerators (so their outputs are comparable).
const LEN_CAP: usize = 8;

fn dfs(
    gsg: &GlobalSg,
    start: TxnId,
    at: TxnId,
    path: &mut Vec<TxnId>,
    out: &mut BTreeSet<Vec<TxnId>>,
) {
    if path.len() > LEN_CAP {
        return;
    }
    for next in gsg.successors(at) {
        if next == start {
            // Canonicalize: rotate min to front.
            let min_pos = path
                .iter()
                .enumerate()
                .min_by_key(|(_, n)| **n)
                .map(|(i, _)| i)
                .unwrap();
            let mut canon = path[min_pos..].to_vec();
            canon.extend_from_slice(&path[..min_pos]);
            out.insert(canon);
        } else if !path.contains(&next) {
            path.push(next);
            dfs(gsg, start, next, path, out);
            path.pop();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// The bounded enumerator finds exactly the brute-force cycle set when
    /// caps are generous.
    #[test]
    fn enumerator_matches_brute_force(spec in sg_spec()) {
        let gsg = build(&spec);
        // The enumerator anchors at the smallest node already, so the
        // returned sequences are canonical as-is.
        let fast: BTreeSet<Vec<TxnId>> =
            enumerate_cycles(&gsg, 100_000, LEN_CAP).into_iter().collect();
        let brute = brute_force_cycles(&gsg);
        prop_assert_eq!(fast, brute);
    }

    /// With no compensating transactions, every cycle classifies as regular
    /// (criterion reduces to serializability).
    #[test]
    fn without_cts_every_cycle_is_regular(spec in sg_spec()) {
        let mut spec = spec;
        spec.aborted = vec![false; spec.aborted.len()];
        let gsg = build(&spec);
        for cycle in enumerate_cycles(&gsg, 10_000, 12) {
            // Cycles among locals+globals: if it has a regular global it
            // must classify regular; locals-only cycles cannot exist in a
            // DAG-per-site union? They can across sites — but locals live at
            // one site each, so a cross-site cycle must involve a global.
            if cycle.iter().any(|n| n.is_regular_global()) {
                let class = classify_cycle(&gsg, &cycle);
                prop_assert!(
                    matches!(class, CycleClass::Regular(_)),
                    "cycle {cycle:?} through a regular global with no CTs must be regular"
                );
            }
        }
    }
}
