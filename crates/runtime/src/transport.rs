//! A threaded, wall-clock transport sharded by destination site.
//!
//! Every endpoint gets a mailbox carrying **batches** of envelopes, so a
//! burst of traffic to one site is a single channel handoff. Zero-latency
//! links deliver straight into the destination mailbox from the sender's
//! thread; links with latency route through a **per-site delivery worker**
//! that owns its own command channel and timer heap — there is no global
//! router thread, so delayed traffic to different sites never serializes
//! behind one heap. Workers are spawned lazily (a transport whose links are
//! all immediate spawns no threads at all) and joined deterministically on
//! `shutdown()` / `Drop`.

use o2pc_common::SiteId;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration as StdDuration, Instant};

/// One addressed message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sender endpoint.
    pub from: SiteId,
    /// Destination endpoint.
    pub to: SiteId,
    /// Payload.
    pub msg: M,
}

/// A batch of envelopes bound for one destination — the unit of mailbox
/// handoff. Senders coalesce bursts into one `Batch` so the receiving side
/// pays one channel operation (and at most one wake-up) per burst.
pub type Batch<M> = Vec<Envelope<M>>;

/// What happened to a message at send time.
///
/// The distinction matters for accounting: a *policy* drop is the link's
/// configured loss behaving as designed (the chaos fault model), while
/// `NoRoute` means the destination had no mailbox (never registered,
/// deregistered, or the transport is shut down) — an infrastructure
/// condition, not injected loss. Conflating the two makes loss-rate
/// oracles lie under crash schedules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendOutcome {
    /// Accepted; the message will (eventually) reach the mailbox.
    Sent,
    /// The link's loss policy dropped it (counted in `policy_dropped`).
    DroppedByPolicy,
    /// No mailbox for the destination, or the transport is shut down
    /// (counted in `unroutable`).
    NoRoute,
}

impl SendOutcome {
    /// Did the substrate accept the message?
    pub fn is_sent(self) -> bool {
        matches!(self, SendOutcome::Sent)
    }
}

/// An asynchronous message substrate between site endpoints.
///
/// Implementations decide delivery latency, loss, and threading; the
/// contract is only that a `Sent` message *may* eventually reach the
/// mailbox registered for `to`. Loss is allowed (and counted) — the commit
/// protocol must tolerate it.
pub trait Transport<M> {
    /// Send `msg` from `from` to `to`, reporting how the substrate treated
    /// it at send time.
    fn send(&self, from: SiteId, to: SiteId, msg: M) -> SendOutcome;

    /// Messages lost so far (policy drops + unroutable).
    fn dropped(&self) -> u64;
}

/// Latency/loss behaviour of one link (or the default for all links).
#[derive(Clone, Copy, Debug)]
pub struct LinkPolicy {
    /// Delivery delay applied on the destination's delivery worker.
    pub latency: StdDuration,
    /// Probability in `[0, 1]` that a message is silently dropped.
    pub drop_probability: f64,
    /// Probability in `[0, 1]` that a delivered message is delivered twice.
    pub duplicate_probability: f64,
}

impl Default for LinkPolicy {
    fn default() -> Self {
        LinkPolicy {
            latency: StdDuration::ZERO,
            drop_probability: 0.0,
            duplicate_probability: 0.0,
        }
    }
}

impl LinkPolicy {
    /// A reliable link with fixed latency.
    pub fn fixed(latency: StdDuration) -> Self {
        LinkPolicy {
            latency,
            ..LinkPolicy::default()
        }
    }
}

/// State shared between the handle, its clones, and the delivery workers.
struct Shared<M> {
    mailboxes: Mutex<HashMap<SiteId, Sender<Batch<M>>>>,
    shutdown: AtomicBool,
    policy_dropped: AtomicU64,
    /// Unroutable at send time (never accepted, never in `sent`).
    unroutable_presend: AtomicU64,
    /// Accepted, then lost to shutdown/deregistration (retires a `sent`).
    unroutable_postsend: AtomicU64,
    delivered: AtomicU64,
    sent: AtomicU64,
    duplicated: AtomicU64,
}

impl<M> Shared<M> {
    /// Deliver one batch to its destination mailbox (one channel handoff).
    /// Counts every envelope; a missing mailbox makes the whole batch
    /// unroutable, like a send to a crashed site.
    fn deliver_batch(&self, to: SiteId, batch: Batch<M>) {
        if batch.is_empty() {
            return;
        }
        let n = batch.len() as u64;
        let tx = self.mailboxes.lock().unwrap().get(&to).cloned();
        match tx {
            Some(tx) if tx.send(batch).is_ok() => {
                self.delivered.fetch_add(n, Ordering::Relaxed);
            }
            _ => {
                self.unroutable_postsend.fetch_add(n, Ordering::Relaxed);
            }
        }
    }
}

enum WorkerCmd<M> {
    /// Delayed deliveries, each with its absolute due instant.
    Deliver(Vec<(Instant, Envelope<M>)>),
    Shutdown,
}

/// Heap entry ordered by due time then arrival sequence (stable FIFO for
/// equal instants, mirroring the simulator's event queue).
struct Pending<M> {
    due: Instant,
    seq: u64,
    env: Envelope<M>,
}

impl<M> PartialEq for Pending<M> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<M> Eq for Pending<M> {}
impl<M> PartialOrd for Pending<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Pending<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest due first.
        (other.due, other.seq).cmp(&(self.due, self.seq))
    }
}

/// One per-site delivery worker: command channel + join handle.
struct Worker<M> {
    tx: Sender<WorkerCmd<M>>,
    handle: JoinHandle<()>,
}

/// A threaded in-process network sharded by destination: endpoints register
/// batch mailboxes; zero-latency sends deliver directly, delayed sends go
/// through the destination site's own delivery worker and timer heap.
///
/// Lifecycle: [`ThreadedTransport::shutdown`] stops and joins every worker
/// (undelivered in-flight messages are counted as unroutable); dropping the
/// transport does the same. Endpoints can leave at any time via
/// [`ThreadedTransport::deregister`] — their mailbox sender is removed so
/// later deliveries to them count as unroutable.
pub struct ThreadedTransport<M> {
    shared: Arc<Shared<M>>,
    workers: Mutex<HashMap<SiteId, Worker<M>>>,
    default_link: LinkPolicy,
    links: Mutex<HashMap<(SiteId, SiteId), LinkPolicy>>,
    /// SplitMix64 state for the loss/duplication hooks (interior mutability
    /// keeps `Transport::send` usable through a shared reference).
    loss_rng: Mutex<u64>,
}

impl<M: Send + 'static> Default for ThreadedTransport<M> {
    fn default() -> Self {
        Self::new(StdDuration::ZERO)
    }
}

/// Send-time verdict for one message: route + policy sampled together.
pub(crate) enum Judgement {
    /// Deliver (once, or twice when `duplicate`) after `latency`.
    Deliver {
        latency: StdDuration,
        duplicate: bool,
    },
    DropPolicy,
    NoRoute,
}

impl<M: Send + 'static> ThreadedTransport<M> {
    /// Create a transport applying `latency` to every delivery.
    pub fn new(latency: StdDuration) -> Self {
        Self::with_policy(LinkPolicy::fixed(latency))
    }

    /// Create a transport with an explicit default link policy.
    pub fn with_policy(default_link: LinkPolicy) -> Self {
        ThreadedTransport {
            shared: Arc::new(Shared {
                mailboxes: Mutex::new(HashMap::new()),
                shutdown: AtomicBool::new(false),
                policy_dropped: AtomicU64::new(0),
                unroutable_presend: AtomicU64::new(0),
                unroutable_postsend: AtomicU64::new(0),
                delivered: AtomicU64::new(0),
                sent: AtomicU64::new(0),
                duplicated: AtomicU64::new(0),
            }),
            workers: Mutex::new(HashMap::new()),
            default_link,
            links: Mutex::new(HashMap::new()),
            loss_rng: Mutex::new(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Override the policy of one directed link.
    pub fn set_link(&self, from: SiteId, to: SiteId, policy: LinkPolicy) {
        self.links.lock().unwrap().insert((from, to), policy);
    }

    /// Register an endpoint, returning its receiving side.
    pub fn register(&self, id: SiteId) -> Inbox<M> {
        let (tx, rx) = channel();
        self.attach(id, tx);
        Inbox {
            rx,
            staged: VecDeque::new(),
        }
    }

    /// Bind an endpoint to an existing batch sender (lets one consumer —
    /// e.g. an engine driving every site — funnel all mailboxes into one
    /// inbox).
    pub fn attach(&self, id: SiteId, tx: Sender<Batch<M>>) {
        let previous = self.shared.mailboxes.lock().unwrap().insert(id, tx);
        assert!(previous.is_none(), "endpoint {id} registered twice");
    }

    /// Remove an endpoint; subsequent (and in-flight) messages to it are
    /// counted as unroutable, like sends to a crashed site.
    pub fn deregister(&self, id: SiteId) {
        self.shared.mailboxes.lock().unwrap().remove(&id);
    }

    /// Messages handed to the transport so far (duplicates included).
    pub fn sent_count(&self) -> u64 {
        self.shared.sent.load(Ordering::Relaxed)
    }

    /// Deliveries created by link-policy duplication so far.
    pub fn duplicated_count(&self) -> u64 {
        self.shared.duplicated.load(Ordering::Relaxed)
    }

    /// Messages dropped by link loss policy (the configured fault model).
    pub fn policy_dropped_count(&self) -> u64 {
        self.shared.policy_dropped.load(Ordering::Relaxed)
    }

    /// Messages lost to infrastructure: unknown destination, deregistered
    /// endpoint, or shutdown with deliveries still queued.
    pub fn unroutable_count(&self) -> u64 {
        self.shared
            .unroutable_presend
            .load(Ordering::Relaxed)
            .saturating_add(self.shared.unroutable_postsend.load(Ordering::Relaxed))
    }

    /// Messages accepted but neither delivered to a mailbox nor dropped yet
    /// (buffered in a delivery worker's heap or command channel). A sender
    /// that observes `in_flight() == 0` *and* an empty mailbox knows the
    /// transport owes it nothing — the basis for quiescence detection.
    pub fn in_flight(&self) -> u64 {
        let sent = self.shared.sent.load(Ordering::Relaxed);
        // Policy and pre-send unroutable losses never enter `sent`, so only
        // post-send losses retire an accepted message.
        let done = self
            .shared
            .delivered
            .load(Ordering::Relaxed)
            .saturating_add(self.shared.unroutable_postsend.load(Ordering::Relaxed));
        sent.saturating_sub(done)
    }

    /// Stop every delivery worker and join them. Idempotent; called by
    /// `Drop`. Messages still queued for future delivery are counted as
    /// unroutable.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let workers: Vec<Worker<M>> = {
            let mut map = self.workers.lock().unwrap();
            map.drain().map(|(_, w)| w).collect()
        };
        for w in &workers {
            let _ = w.tx.send(WorkerCmd::Shutdown);
        }
        for w in workers {
            let _ = w.handle.join();
        }
    }

    fn policy(&self, from: SiteId, to: SiteId) -> LinkPolicy {
        self.links
            .lock()
            .unwrap()
            .get(&(from, to))
            .copied()
            .unwrap_or(self.default_link)
    }

    fn lose(&self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        let mut state = self.loss_rng.lock().unwrap();
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        ((z >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Sample route + loss policy for one message and update the send-side
    /// counters. An accepted message **must** subsequently be handed to
    /// [`ThreadedTransport::deliver_many`] (batching senders call this
    /// eagerly, deliver later) — `sent` is already counted, so dropping it
    /// on the floor would wedge `in_flight`.
    pub(crate) fn judge(&self, from: SiteId, to: SiteId) -> Judgement {
        if self.shared.shutdown.load(Ordering::Relaxed)
            || !self.shared.mailboxes.lock().unwrap().contains_key(&to)
        {
            self.shared
                .unroutable_presend
                .fetch_add(1, Ordering::Relaxed);
            return Judgement::NoRoute;
        }
        let policy = self.policy(from, to);
        if self.lose(policy.drop_probability) {
            self.shared.policy_dropped.fetch_add(1, Ordering::Relaxed);
            return Judgement::DropPolicy;
        }
        self.shared.sent.fetch_add(1, Ordering::Relaxed);
        let duplicate =
            policy.duplicate_probability > 0.0 && self.lose(policy.duplicate_probability);
        if duplicate {
            // Counted as an extra send so in-flight tracking
            // (sent − delivered − dropped) stays exact.
            self.shared.sent.fetch_add(1, Ordering::Relaxed);
            self.shared.duplicated.fetch_add(1, Ordering::Relaxed);
        }
        Judgement::Deliver {
            latency: policy.latency,
            duplicate,
        }
    }

    /// Deliver a burst of already-judged envelopes bound for one
    /// destination, preserving their order per link. Immediate envelopes
    /// are one mailbox handoff; delayed ones are one command handoff to the
    /// destination's delivery worker (spawned on first use).
    pub fn deliver_many(&self, to: SiteId, envs: Vec<(StdDuration, Envelope<M>)>) {
        let mut immediate: Batch<M> = Vec::new();
        let mut delayed: Vec<(Instant, Envelope<M>)> = Vec::new();
        let now = Instant::now();
        for (latency, env) in envs {
            if latency.is_zero() {
                immediate.push(env);
            } else {
                delayed.push((now + latency, env));
            }
        }
        self.shared.deliver_batch(to, immediate);
        if delayed.is_empty() {
            return;
        }
        let n = delayed.len() as u64;
        let mut workers = self.workers.lock().unwrap();
        if self.shared.shutdown.load(Ordering::Relaxed) {
            self.shared
                .unroutable_postsend
                .fetch_add(n, Ordering::Relaxed);
            return;
        }
        let worker = workers.entry(to).or_insert_with(|| {
            let (tx, rx) = channel();
            let shared = Arc::clone(&self.shared);
            let handle = std::thread::Builder::new()
                .name(format!("o2pc-deliver-{to}"))
                .spawn(move || deliver_loop(to, rx, shared))
                .expect("spawn delivery worker");
            Worker { tx, handle }
        });
        if worker.tx.send(WorkerCmd::Deliver(delayed)).is_err() {
            self.shared
                .unroutable_postsend
                .fetch_add(n, Ordering::Relaxed);
        }
    }
}

impl<M: Clone + Send + 'static> Transport<M> for ThreadedTransport<M> {
    fn send(&self, from: SiteId, to: SiteId, msg: M) -> SendOutcome {
        match self.judge(from, to) {
            Judgement::NoRoute => SendOutcome::NoRoute,
            Judgement::DropPolicy => SendOutcome::DroppedByPolicy,
            Judgement::Deliver { latency, duplicate } => {
                let mut envs = Vec::with_capacity(1 + duplicate as usize);
                if duplicate {
                    envs.push((
                        latency,
                        Envelope {
                            from,
                            to,
                            msg: msg.clone(),
                        },
                    ));
                }
                envs.push((latency, Envelope { from, to, msg }));
                self.deliver_many(to, envs);
                SendOutcome::Sent
            }
        }
    }

    fn dropped(&self) -> u64 {
        self.shared
            .policy_dropped
            .load(Ordering::Relaxed)
            .saturating_add(self.shared.unroutable_presend.load(Ordering::Relaxed))
            .saturating_add(self.shared.unroutable_postsend.load(Ordering::Relaxed))
    }
}

impl<M> Drop for ThreadedTransport<M> {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let workers: Vec<Worker<M>> = {
            let mut map = self.workers.lock().unwrap();
            map.drain().map(|(_, w)| w).collect()
        };
        for w in &workers {
            let _ = w.tx.send(WorkerCmd::Shutdown);
        }
        for w in workers {
            let _ = w.handle.join();
        }
    }
}

/// One site's delivery loop: sequence its delayed deliveries in due order,
/// handing everything that is due as a single mailbox batch.
fn deliver_loop<M>(to: SiteId, rx: Receiver<WorkerCmd<M>>, shared: Arc<Shared<M>>) {
    let mut heap: BinaryHeap<Pending<M>> = BinaryHeap::new();
    let mut seq = 0u64;
    loop {
        // Deliver everything already due as one batch (one handoff, at most
        // one receiver wake-up, regardless of how many messages matured).
        let now = Instant::now();
        let mut due: Batch<M> = Vec::new();
        while heap.peek().is_some_and(|p| p.due <= now) {
            due.push(heap.pop().expect("peeked").env);
        }
        shared.deliver_batch(to, due);
        let wait = match heap.peek() {
            Some(p) => p.due.saturating_duration_since(Instant::now()),
            None => StdDuration::from_secs(3600), // park until traffic
        };
        match rx.recv_timeout(wait) {
            Ok(WorkerCmd::Deliver(batch)) => {
                for (due, env) in batch {
                    heap.push(Pending { due, seq, env });
                    seq += 1;
                }
            }
            Ok(WorkerCmd::Shutdown) | Err(RecvTimeoutError::Disconnected) => break,
            Err(RecvTimeoutError::Timeout) => {}
        }
    }
    // Anything still queued at shutdown is lost (infrastructure, not policy).
    shared
        .unroutable_postsend
        .fetch_add(heap.len() as u64, Ordering::Relaxed);
}

/// The receiving side of one endpoint: a batch channel plus a staging queue
/// so consumers can still take envelopes one at a time.
pub struct Inbox<M> {
    rx: Receiver<Batch<M>>,
    staged: VecDeque<Envelope<M>>,
}

impl<M> Inbox<M> {
    /// Next envelope, waiting up to `timeout` for a batch to arrive. `None`
    /// on timeout or a disconnected transport.
    pub fn recv_timeout(&mut self, timeout: StdDuration) -> Option<Envelope<M>> {
        if let Some(env) = self.staged.pop_front() {
            return Some(env);
        }
        match self.rx.recv_timeout(timeout) {
            Ok(batch) => {
                self.staged.extend(batch);
                self.staged.pop_front()
            }
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Next envelope if one is already available (never blocks).
    pub fn try_recv(&mut self) -> Option<Envelope<M>> {
        if let Some(env) = self.staged.pop_front() {
            return Some(env);
        }
        while let Ok(batch) = self.rx.try_recv() {
            self.staged.extend(batch);
            if let Some(env) = self.staged.pop_front() {
                return Some(env);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_delivery() {
        let t: ThreadedTransport<&'static str> = ThreadedTransport::default();
        let mut rx0 = t.register(SiteId(0));
        let _rx1 = t.register(SiteId(1));
        assert!(t.send(SiteId(1), SiteId(0), "hello").is_sent());
        let env = rx0.recv_timeout(StdDuration::from_secs(1)).unwrap();
        assert_eq!(env.from, SiteId(1));
        assert_eq!(env.msg, "hello");
    }

    #[test]
    fn send_to_unregistered_is_unroutable() {
        let t: ThreadedTransport<u32> = ThreadedTransport::default();
        let _rx = t.register(SiteId(0));
        assert_eq!(t.send(SiteId(0), SiteId(9), 1), SendOutcome::NoRoute);
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.unroutable_count(), 1);
        assert_eq!(t.policy_dropped_count(), 0);
    }

    #[test]
    fn deregister_simulates_crash() {
        let t: ThreadedTransport<u32> = ThreadedTransport::default();
        let _rx0 = t.register(SiteId(0));
        let mut rx1 = t.register(SiteId(1));
        t.deregister(SiteId(1));
        assert!(!t.send(SiteId(0), SiteId(1), 7).is_sent());
        assert!(rx1.recv_timeout(StdDuration::from_millis(20)).is_none());
        // The slot is free again after deregistration.
        let mut rx1b = t.register(SiteId(1));
        assert!(t.send(SiteId(0), SiteId(1), 8).is_sent());
        assert_eq!(rx1b.recv_timeout(StdDuration::from_secs(1)).unwrap().msg, 8);
    }

    #[test]
    fn latency_delays_but_delivers() {
        let t: ThreadedTransport<u32> = ThreadedTransport::new(StdDuration::from_millis(20));
        let mut rx = t.register(SiteId(0));
        let _ = t.register(SiteId(1));
        let start = Instant::now();
        assert!(t.send(SiteId(1), SiteId(0), 42).is_sent());
        let env = rx.recv_timeout(StdDuration::from_secs(2)).unwrap();
        assert_eq!(env.msg, 42);
        assert!(start.elapsed() >= StdDuration::from_millis(15));
    }

    #[test]
    fn latency_preserves_send_order_on_a_link() {
        let t: ThreadedTransport<u32> = ThreadedTransport::new(StdDuration::from_millis(5));
        let mut rx = t.register(SiteId(0));
        let _ = t.register(SiteId(1));
        for i in 0..50 {
            assert!(t.send(SiteId(1), SiteId(0), i).is_sent());
        }
        for i in 0..50 {
            assert_eq!(rx.recv_timeout(StdDuration::from_secs(1)).unwrap().msg, i);
        }
    }

    /// Batched (`deliver_many`) and single (`send`) deliveries interleaved
    /// on one latency link must still arrive in send order: coalescing is
    /// an optimization of the handoff, never of the ordering.
    #[test]
    fn batched_delivery_preserves_per_link_fifo() {
        let t: ThreadedTransport<u32> = ThreadedTransport::new(StdDuration::from_millis(5));
        let mut rx = t.register(SiteId(0));
        let _ = t.register(SiteId(1));
        let lat = StdDuration::from_millis(5);
        let mut expect = Vec::new();
        let mut next = 0u32;
        for round in 0..10 {
            if round % 2 == 0 {
                // A coalesced burst: one handoff for several envelopes.
                let mut batch = Vec::new();
                for _ in 0..4 {
                    assert!(matches!(
                        t.judge(SiteId(1), SiteId(0)),
                        Judgement::Deliver { .. }
                    ));
                    batch.push((
                        lat,
                        Envelope {
                            from: SiteId(1),
                            to: SiteId(0),
                            msg: next,
                        },
                    ));
                    expect.push(next);
                    next += 1;
                }
                t.deliver_many(SiteId(0), batch);
            } else {
                assert!(t.send(SiteId(1), SiteId(0), next).is_sent());
                expect.push(next);
                next += 1;
            }
        }
        let got: Vec<u32> = (0..expect.len())
            .map(|_| rx.recv_timeout(StdDuration::from_secs(1)).unwrap().msg)
            .collect();
        assert_eq!(got, expect, "batching broke per-link FIFO");
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn per_link_policy_overrides_default() {
        let t: ThreadedTransport<u32> = ThreadedTransport::default();
        t.set_link(
            SiteId(0),
            SiteId(1),
            LinkPolicy::fixed(StdDuration::from_millis(25)),
        );
        let mut rx1 = t.register(SiteId(1));
        let mut rx2 = t.register(SiteId(2));
        let _ = t.register(SiteId(0));
        let start = Instant::now();
        assert!(t.send(SiteId(0), SiteId(1), 1).is_sent()); // slow link
        assert!(t.send(SiteId(0), SiteId(2), 2).is_sent()); // default: immediate
        assert_eq!(rx2.recv_timeout(StdDuration::from_secs(1)).unwrap().msg, 2);
        assert!(
            start.elapsed() < StdDuration::from_millis(20),
            "fast link must not wait"
        );
        assert_eq!(rx1.recv_timeout(StdDuration::from_secs(1)).unwrap().msg, 1);
        assert!(start.elapsed() >= StdDuration::from_millis(20));
    }

    #[test]
    fn loss_hook_drops_roughly_at_rate() {
        let t: ThreadedTransport<u32> = ThreadedTransport::with_policy(LinkPolicy {
            latency: StdDuration::ZERO,
            drop_probability: 0.5,
            ..LinkPolicy::default()
        });
        let mut rx = t.register(SiteId(0));
        let _ = t.register(SiteId(1));
        let mut accepted = 0;
        for i in 0..2000 {
            if t.send(SiteId(1), SiteId(0), i).is_sent() {
                accepted += 1;
            }
        }
        assert_eq!(accepted + t.dropped() as usize, 2000);
        assert_eq!(
            t.dropped(),
            t.policy_dropped_count(),
            "all drops are policy"
        );
        let rate = accepted as f64 / 2000.0;
        assert!((rate - 0.5).abs() < 0.08, "acceptance rate {rate}");
        // Accepted messages all arrive.
        for _ in 0..accepted {
            assert!(rx.recv_timeout(StdDuration::from_secs(1)).is_some());
        }
    }

    #[test]
    fn duplication_delivers_twice_and_counts() {
        let t: ThreadedTransport<u32> = ThreadedTransport::with_policy(LinkPolicy {
            latency: StdDuration::ZERO,
            drop_probability: 0.0,
            duplicate_probability: 1.0,
        });
        let mut rx = t.register(SiteId(0));
        let _ = t.register(SiteId(1));
        for i in 0..10 {
            assert!(t.send(SiteId(1), SiteId(0), i).is_sent());
        }
        assert_eq!(t.duplicated_count(), 10);
        // Each duplicate is accounted as an extra send so the in-flight
        // equation (sent − delivered − dropped) still balances.
        assert_eq!(t.sent_count(), 20);
        let mut got = 0;
        while rx.recv_timeout(StdDuration::from_millis(100)).is_some() {
            got += 1;
        }
        assert_eq!(got, 20);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn shutdown_joins_workers_and_counts_inflight_as_unroutable() {
        let t: ThreadedTransport<u32> = ThreadedTransport::new(StdDuration::from_secs(30));
        let mut rx = t.register(SiteId(0));
        let _ = t.register(SiteId(1));
        assert!(t.send(SiteId(1), SiteId(0), 9).is_sent()); // due far in the future
        t.shutdown();
        t.shutdown(); // idempotent
        assert_eq!(t.dropped(), 1, "in-flight message lost at shutdown");
        assert_eq!(t.unroutable_count(), 1);
        assert!(rx.recv_timeout(StdDuration::from_millis(10)).is_none());
        // Post-shutdown sends are refused and counted.
        assert_eq!(t.send(SiteId(1), SiteId(0), 10), SendOutcome::NoRoute);
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn drop_joins_workers_without_hanging() {
        let t: ThreadedTransport<u32> = ThreadedTransport::new(StdDuration::from_millis(1));
        let _rx = t.register(SiteId(0));
        let _ = t.register(SiteId(1));
        t.send(SiteId(1), SiteId(0), 1);
        drop(t); // must not deadlock or leak worker threads
    }

    #[test]
    fn delayed_traffic_to_distinct_sites_uses_distinct_workers() {
        let t: ThreadedTransport<u32> = ThreadedTransport::new(StdDuration::from_millis(2));
        let mut rx0 = t.register(SiteId(0));
        let mut rx1 = t.register(SiteId(1));
        let _ = t.register(SiteId(2));
        for i in 0..20 {
            assert!(t.send(SiteId(2), SiteId(0), i).is_sent());
            assert!(t.send(SiteId(2), SiteId(1), 100 + i).is_sent());
        }
        assert_eq!(t.workers.lock().unwrap().len(), 2, "one worker per site");
        for i in 0..20 {
            assert_eq!(rx0.recv_timeout(StdDuration::from_secs(1)).unwrap().msg, i);
            assert_eq!(
                rx1.recv_timeout(StdDuration::from_secs(1)).unwrap().msg,
                100 + i
            );
        }
    }

    #[test]
    fn zero_latency_spawns_no_workers() {
        let t: ThreadedTransport<u32> = ThreadedTransport::default();
        let mut rx = t.register(SiteId(0));
        let _ = t.register(SiteId(1));
        for i in 0..100 {
            assert!(t.send(SiteId(1), SiteId(0), i).is_sent());
        }
        assert_eq!(t.workers.lock().unwrap().len(), 0);
        for i in 0..100 {
            assert_eq!(rx.recv_timeout(StdDuration::from_secs(1)).unwrap().msg, i);
        }
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn double_registration_panics() {
        let t: ThreadedTransport<u32> = ThreadedTransport::default();
        let _a = t.register(SiteId(0));
        let _b = t.register(SiteId(0));
    }
}
