//! A threaded, wall-clock transport over std channels.
//!
//! Every endpoint gets a mailbox. Sends consult a per-link [`LinkPolicy`]
//! (latency + loss probability); delayed deliveries are sequenced by one
//! router thread that owns a time-ordered heap, so the transport spawns a
//! bounded number of threads regardless of traffic and can be shut down
//! deterministically (`shutdown()` joins the router; `Drop` does the same).

use o2pc_common::SiteId;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration as StdDuration, Instant};

/// One addressed message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sender endpoint.
    pub from: SiteId,
    /// Destination endpoint.
    pub to: SiteId,
    /// Payload.
    pub msg: M,
}

/// An asynchronous message substrate between site endpoints.
///
/// Implementations decide delivery latency, loss, and threading; the
/// contract is only that an accepted message *may* eventually reach the
/// mailbox registered for `to`. Loss is allowed (and counted) — the commit
/// protocol must tolerate it.
pub trait Transport<M> {
    /// Send `msg` from `from` to `to`. Returns `false` if the transport
    /// dropped the message immediately (unknown destination or loss hook).
    fn send(&self, from: SiteId, to: SiteId, msg: M) -> bool;

    /// Messages lost so far (unknown destination, loss hook, or shutdown).
    fn dropped(&self) -> u64;
}

/// Latency/loss behaviour of one link (or the default for all links).
#[derive(Clone, Copy, Debug)]
pub struct LinkPolicy {
    /// Delivery delay applied on the router thread.
    pub latency: StdDuration,
    /// Probability in `[0, 1]` that a message is silently dropped.
    pub drop_probability: f64,
    /// Probability in `[0, 1]` that a delivered message is delivered twice.
    pub duplicate_probability: f64,
}

impl Default for LinkPolicy {
    fn default() -> Self {
        LinkPolicy {
            latency: StdDuration::ZERO,
            drop_probability: 0.0,
            duplicate_probability: 0.0,
        }
    }
}

impl LinkPolicy {
    /// A reliable link with fixed latency.
    pub fn fixed(latency: StdDuration) -> Self {
        LinkPolicy {
            latency,
            ..LinkPolicy::default()
        }
    }
}

/// State shared between the handle, its clones, and the router thread.
struct Shared<M> {
    mailboxes: Mutex<HashMap<SiteId, Sender<Envelope<M>>>>,
    dropped: AtomicU64,
    delivered: AtomicU64,
    sent: AtomicU64,
    duplicated: AtomicU64,
}

impl<M> Shared<M> {
    /// Deliver to the destination mailbox, counting a drop on any failure.
    fn deliver(&self, env: Envelope<M>) {
        let tx = self.mailboxes.lock().unwrap().get(&env.to).cloned();
        match tx {
            Some(tx) if tx.send(env).is_ok() => {
                self.delivered.fetch_add(1, Ordering::Relaxed);
            }
            _ => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

enum RouterCmd<M> {
    Deliver { due: Instant, env: Envelope<M> },
    Shutdown,
}

/// Heap entry ordered by due time then arrival sequence (stable FIFO for
/// equal instants, mirroring the simulator's event queue).
struct Pending<M> {
    due: Instant,
    seq: u64,
    env: Envelope<M>,
}

impl<M> PartialEq for Pending<M> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<M> Eq for Pending<M> {}
impl<M> PartialOrd for Pending<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Pending<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest due first.
        (other.due, other.seq).cmp(&(self.due, self.seq))
    }
}

/// A threaded in-process network: endpoints register mailboxes; sends are
/// routed with per-link latency and loss on one dedicated router thread.
///
/// Lifecycle: [`ThreadedTransport::shutdown`] stops and joins the router
/// (undelivered in-flight messages are counted as dropped); dropping the
/// transport does the same. Endpoints can leave at any time via
/// [`ThreadedTransport::deregister`] — their mailbox sender is removed so
/// the channel closes as soon as the receiver side is gone too.
pub struct ThreadedTransport<M> {
    shared: Arc<Shared<M>>,
    router_tx: Sender<RouterCmd<M>>,
    router: Mutex<Option<JoinHandle<()>>>,
    default_link: LinkPolicy,
    links: Mutex<HashMap<(SiteId, SiteId), LinkPolicy>>,
    /// SplitMix64 state for the loss hook (interior mutability keeps
    /// `Transport::send` usable through a shared reference).
    loss_rng: Mutex<u64>,
}

impl<M: Send + 'static> Default for ThreadedTransport<M> {
    fn default() -> Self {
        Self::new(StdDuration::ZERO)
    }
}

impl<M: Send + 'static> ThreadedTransport<M> {
    /// Create a transport applying `latency` to every delivery.
    pub fn new(latency: StdDuration) -> Self {
        Self::with_policy(LinkPolicy::fixed(latency))
    }

    /// Create a transport with an explicit default link policy.
    pub fn with_policy(default_link: LinkPolicy) -> Self {
        let shared = Arc::new(Shared {
            mailboxes: Mutex::new(HashMap::new()),
            dropped: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            sent: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
        });
        let (router_tx, router_rx) = channel();
        let router_shared = Arc::clone(&shared);
        let router = std::thread::Builder::new()
            .name("o2pc-transport-router".into())
            .spawn(move || route(router_rx, router_shared))
            .expect("spawn router thread");
        ThreadedTransport {
            shared,
            router_tx,
            router: Mutex::new(Some(router)),
            default_link,
            links: Mutex::new(HashMap::new()),
            loss_rng: Mutex::new(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Override the policy of one directed link.
    pub fn set_link(&self, from: SiteId, to: SiteId, policy: LinkPolicy) {
        self.links.lock().unwrap().insert((from, to), policy);
    }

    /// Register an endpoint, returning its receiving side.
    pub fn register(&self, id: SiteId) -> Receiver<Envelope<M>> {
        let (tx, rx) = channel();
        self.attach(id, tx);
        rx
    }

    /// Bind an endpoint to an existing sender (lets one consumer — e.g. an
    /// engine driving every site — funnel all mailboxes into one inbox).
    pub fn attach(&self, id: SiteId, tx: Sender<Envelope<M>>) {
        let previous = self.mailboxes_insert(id, tx);
        assert!(previous.is_none(), "endpoint {id} registered twice");
    }

    fn mailboxes_insert(&self, id: SiteId, tx: Sender<Envelope<M>>) -> Option<Sender<Envelope<M>>> {
        self.shared.mailboxes.lock().unwrap().insert(id, tx)
    }

    /// Remove an endpoint; subsequent (and in-flight) messages to it are
    /// counted as dropped, like sends to a crashed site.
    pub fn deregister(&self, id: SiteId) {
        self.shared.mailboxes.lock().unwrap().remove(&id);
    }

    /// Messages handed to the transport so far (duplicates included).
    pub fn sent_count(&self) -> u64 {
        self.shared.sent.load(Ordering::Relaxed)
    }

    /// Deliveries created by link-policy duplication so far.
    pub fn duplicated_count(&self) -> u64 {
        self.shared.duplicated.load(Ordering::Relaxed)
    }

    /// Messages accepted but neither delivered to a mailbox nor dropped yet
    /// (sitting in the router's delay heap or its command channel). A sender
    /// that observes `in_flight() == 0` *and* an empty mailbox knows the
    /// transport owes it nothing — the basis for quiescence detection.
    pub fn in_flight(&self) -> u64 {
        let sent = self.shared.sent.load(Ordering::Relaxed);
        let done = self
            .shared
            .delivered
            .load(Ordering::Relaxed)
            .saturating_add(self.shared.dropped.load(Ordering::Relaxed));
        sent.saturating_sub(done)
    }

    /// Stop the router thread and join it. Idempotent; called by `Drop`.
    /// Messages still queued for future delivery are counted as dropped.
    pub fn shutdown(&self) {
        let handle = self.router.lock().unwrap().take();
        if let Some(handle) = handle {
            let _ = self.router_tx.send(RouterCmd::Shutdown);
            let _ = handle.join();
        }
    }

    fn policy(&self, from: SiteId, to: SiteId) -> LinkPolicy {
        self.links
            .lock()
            .unwrap()
            .get(&(from, to))
            .copied()
            .unwrap_or(self.default_link)
    }

    fn lose(&self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        let mut state = self.loss_rng.lock().unwrap();
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        ((z >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Hand one accepted envelope to the fast path or the router.
    fn dispatch(&self, policy: LinkPolicy, env: Envelope<M>) -> bool {
        if policy.latency.is_zero() {
            // Fast path: preserve per-link FIFO without a router hop.
            let before = self.shared.dropped.load(Ordering::Relaxed);
            self.shared.deliver(env);
            return self.shared.dropped.load(Ordering::Relaxed) == before;
        }
        let due = Instant::now() + policy.latency;
        if self
            .router_tx
            .send(RouterCmd::Deliver { due, env })
            .is_err()
        {
            // Router already shut down.
            self.shared.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        true
    }
}

impl<M: Clone + Send + 'static> Transport<M> for ThreadedTransport<M> {
    fn send(&self, from: SiteId, to: SiteId, msg: M) -> bool {
        self.shared.sent.fetch_add(1, Ordering::Relaxed);
        let policy = self.policy(from, to);
        if self.lose(policy.drop_probability) {
            self.shared.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        if policy.duplicate_probability > 0.0 && self.lose(policy.duplicate_probability) {
            // Counted as an extra send so in-flight tracking
            // (sent − delivered − dropped) stays exact.
            self.shared.sent.fetch_add(1, Ordering::Relaxed);
            self.shared.duplicated.fetch_add(1, Ordering::Relaxed);
            self.dispatch(
                policy,
                Envelope {
                    from,
                    to,
                    msg: msg.clone(),
                },
            );
        }
        self.dispatch(policy, Envelope { from, to, msg })
    }

    fn dropped(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }
}

impl<M> Drop for ThreadedTransport<M> {
    fn drop(&mut self) {
        let handle = self.router.lock().unwrap().take();
        if let Some(handle) = handle {
            let _ = self.router_tx.send(RouterCmd::Shutdown);
            let _ = handle.join();
        }
    }
}

/// The router loop: sequence delayed deliveries in due order.
fn route<M>(rx: Receiver<RouterCmd<M>>, shared: Arc<Shared<M>>) {
    let mut heap: BinaryHeap<Pending<M>> = BinaryHeap::new();
    let mut seq = 0u64;
    loop {
        // Deliver everything already due.
        let now = Instant::now();
        while heap.peek().is_some_and(|p| p.due <= now) {
            let p = heap.pop().expect("peeked");
            shared.deliver(p.env);
        }
        let wait = match heap.peek() {
            Some(p) => p.due.saturating_duration_since(Instant::now()),
            None => StdDuration::from_secs(3600), // park until traffic
        };
        match rx.recv_timeout(wait) {
            Ok(RouterCmd::Deliver { due, env }) => {
                heap.push(Pending { due, seq, env });
                seq += 1;
            }
            Ok(RouterCmd::Shutdown) | Err(RecvTimeoutError::Disconnected) => break,
            Err(RecvTimeoutError::Timeout) => {}
        }
    }
    // Anything still queued at shutdown is lost.
    shared
        .dropped
        .fetch_add(heap.len() as u64, Ordering::Relaxed);
}

/// Receive with a timeout, mapping the channel error space onto an Option.
pub fn recv_timeout<M>(rx: &Receiver<Envelope<M>>, timeout: StdDuration) -> Option<Envelope<M>> {
    match rx.recv_timeout(timeout) {
        Ok(env) => Some(env),
        Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_delivery() {
        let t: ThreadedTransport<&'static str> = ThreadedTransport::default();
        let rx0 = t.register(SiteId(0));
        let _rx1 = t.register(SiteId(1));
        assert!(t.send(SiteId(1), SiteId(0), "hello"));
        let env = recv_timeout(&rx0, StdDuration::from_secs(1)).unwrap();
        assert_eq!(env.from, SiteId(1));
        assert_eq!(env.msg, "hello");
    }

    #[test]
    fn send_to_unregistered_is_dropped() {
        let t: ThreadedTransport<u32> = ThreadedTransport::default();
        let _rx = t.register(SiteId(0));
        assert!(!t.send(SiteId(0), SiteId(9), 1));
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn deregister_simulates_crash() {
        let t: ThreadedTransport<u32> = ThreadedTransport::default();
        let _rx0 = t.register(SiteId(0));
        let rx1 = t.register(SiteId(1));
        t.deregister(SiteId(1));
        assert!(!t.send(SiteId(0), SiteId(1), 7));
        assert!(recv_timeout(&rx1, StdDuration::from_millis(20)).is_none());
        // The slot is free again after deregistration.
        let rx1b = t.register(SiteId(1));
        assert!(t.send(SiteId(0), SiteId(1), 8));
        assert_eq!(
            recv_timeout(&rx1b, StdDuration::from_secs(1)).unwrap().msg,
            8
        );
    }

    #[test]
    fn latency_delays_but_delivers() {
        let t: ThreadedTransport<u32> = ThreadedTransport::new(StdDuration::from_millis(20));
        let rx = t.register(SiteId(0));
        let _ = t.register(SiteId(1));
        let start = Instant::now();
        assert!(t.send(SiteId(1), SiteId(0), 42));
        let env = recv_timeout(&rx, StdDuration::from_secs(2)).unwrap();
        assert_eq!(env.msg, 42);
        assert!(start.elapsed() >= StdDuration::from_millis(15));
    }

    #[test]
    fn latency_preserves_send_order_on_a_link() {
        let t: ThreadedTransport<u32> = ThreadedTransport::new(StdDuration::from_millis(5));
        let rx = t.register(SiteId(0));
        let _ = t.register(SiteId(1));
        for i in 0..50 {
            assert!(t.send(SiteId(1), SiteId(0), i));
        }
        for i in 0..50 {
            assert_eq!(recv_timeout(&rx, StdDuration::from_secs(1)).unwrap().msg, i);
        }
    }

    #[test]
    fn per_link_policy_overrides_default() {
        let t: ThreadedTransport<u32> = ThreadedTransport::default();
        t.set_link(
            SiteId(0),
            SiteId(1),
            LinkPolicy::fixed(StdDuration::from_millis(25)),
        );
        let rx1 = t.register(SiteId(1));
        let rx2 = t.register(SiteId(2));
        let _ = t.register(SiteId(0));
        let start = Instant::now();
        assert!(t.send(SiteId(0), SiteId(1), 1)); // slow link
        assert!(t.send(SiteId(0), SiteId(2), 2)); // default: immediate
        assert_eq!(
            recv_timeout(&rx2, StdDuration::from_secs(1)).unwrap().msg,
            2
        );
        assert!(
            start.elapsed() < StdDuration::from_millis(20),
            "fast link must not wait"
        );
        assert_eq!(
            recv_timeout(&rx1, StdDuration::from_secs(1)).unwrap().msg,
            1
        );
        assert!(start.elapsed() >= StdDuration::from_millis(20));
    }

    #[test]
    fn loss_hook_drops_roughly_at_rate() {
        let t: ThreadedTransport<u32> = ThreadedTransport::with_policy(LinkPolicy {
            latency: StdDuration::ZERO,
            drop_probability: 0.5,
            ..LinkPolicy::default()
        });
        let rx = t.register(SiteId(0));
        let _ = t.register(SiteId(1));
        let mut accepted = 0;
        for i in 0..2000 {
            if t.send(SiteId(1), SiteId(0), i) {
                accepted += 1;
            }
        }
        assert_eq!(accepted + t.dropped() as usize, 2000);
        let rate = accepted as f64 / 2000.0;
        assert!((rate - 0.5).abs() < 0.08, "acceptance rate {rate}");
        // Accepted messages all arrive.
        for _ in 0..accepted {
            assert!(recv_timeout(&rx, StdDuration::from_secs(1)).is_some());
        }
    }

    #[test]
    fn duplication_delivers_twice_and_counts() {
        let t: ThreadedTransport<u32> = ThreadedTransport::with_policy(LinkPolicy {
            latency: StdDuration::ZERO,
            drop_probability: 0.0,
            duplicate_probability: 1.0,
        });
        let rx = t.register(SiteId(0));
        let _ = t.register(SiteId(1));
        for i in 0..10 {
            assert!(t.send(SiteId(1), SiteId(0), i));
        }
        assert_eq!(t.duplicated_count(), 10);
        // Each duplicate is accounted as an extra send so the in-flight
        // equation (sent − delivered − dropped) still balances.
        assert_eq!(t.sent_count(), 20);
        let mut got = 0;
        while recv_timeout(&rx, StdDuration::from_millis(100)).is_some() {
            got += 1;
        }
        assert_eq!(got, 20);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn shutdown_joins_router_and_counts_inflight_as_dropped() {
        let t: ThreadedTransport<u32> = ThreadedTransport::new(StdDuration::from_secs(30));
        let rx = t.register(SiteId(0));
        let _ = t.register(SiteId(1));
        assert!(t.send(SiteId(1), SiteId(0), 9)); // due far in the future
        t.shutdown();
        t.shutdown(); // idempotent
        assert_eq!(t.dropped(), 1, "in-flight message lost at shutdown");
        assert!(recv_timeout(&rx, StdDuration::from_millis(10)).is_none());
        // Post-shutdown latency sends are refused and counted.
        assert!(!t.send(SiteId(1), SiteId(0), 10));
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn drop_joins_router_without_hanging() {
        let t: ThreadedTransport<u32> = ThreadedTransport::new(StdDuration::from_millis(1));
        let _rx = t.register(SiteId(0));
        let _ = t.register(SiteId(1));
        t.send(SiteId(1), SiteId(0), 1);
        drop(t); // must not deadlock or leak the router thread
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn double_registration_panics() {
        let t: ThreadedTransport<u32> = ThreadedTransport::default();
        let _a = t.register(SiteId(0));
        let _b = t.register(SiteId(0));
    }
}
