//! Background WAL flush pipeline: a small sharded pool of flusher threads
//! with fsync coalescing.
//!
//! The engine seals a site's buffered WAL frames into a
//! [`FlushBatch`](o2pc_storage::FlushBatch) and submits it under the site's
//! shard key. Each shard thread *drains its whole queue* before touching the
//! disk and executes the burst through
//! [`FlushBatch::execute_all`](o2pc_storage::FlushBatch::execute_all): every
//! write lands first, then each distinct segment file is fsynced exactly
//! once — a burst of N batches costs 1 fsync, not N. Batches from one site
//! always map to the same shard, so per-WAL batches execute strictly in
//! submission order, which is the property prefix durability rests on;
//! different sites' logs flush in parallel across shards.
//!
//! On the deterministic simulator the engine still submits here: sealing
//! happens at virtual flush instants (deterministic), while the physical
//! write + fsync run behind the simulation and are synchronised only at
//! barriers (crash, checkpoint compaction, end of run) — fsync latency is
//! never observed by simulated time.

use o2pc_storage::FlushBatch;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

struct Shard {
    tx: Option<Sender<FlushBatch>>,
    worker: Option<JoinHandle<()>>,
}

/// Handle to the flusher pool. Dropping it drains every queue and joins the
/// threads, so every sealed batch is durable (or its watermark poisoned)
/// before shutdown completes.
#[derive(Debug)]
pub struct FlushScheduler {
    shards: Vec<Shard>,
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard").finish_non_exhaustive()
    }
}

fn drain_loop(rx: Receiver<FlushBatch>) {
    while let Ok(first) = rx.recv() {
        let mut burst = vec![first];
        while let Ok(b) = rx.try_recv() {
            burst.push(b);
        }
        // An I/O error here means the log device failed; execute_all has
        // already poisoned the affected watermarks, so anything waiting on
        // them fails loudly instead of hanging — the site is as good as
        // crashed, which is the honest outcome.
        let _ = FlushBatch::execute_all(burst);
    }
}

impl FlushScheduler {
    /// Spawn a pool of `shards` flusher threads (at least one).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        let shards = (0..shards)
            .map(|i| {
                let (tx, rx) = channel::<FlushBatch>();
                let worker = std::thread::Builder::new()
                    .name(format!("wal-flush-{i}"))
                    .spawn(move || drain_loop(rx))
                    .expect("spawn wal-flush thread");
                Shard {
                    tx: Some(tx),
                    worker: Some(worker),
                }
            })
            .collect();
        FlushScheduler { shards }
    }

    /// Queue a sealed batch for write + fsync. `key` pins the submitter to a
    /// shard: batches with the same key stay FIFO relative to each other
    /// (use the site id, so one WAL's batches never reorder).
    pub fn submit(&self, key: u32, batch: FlushBatch) {
        let shard = &self.shards[key as usize % self.shards.len()];
        if let Some(tx) = &shard.tx {
            let _ = tx.send(batch);
        }
    }
}

impl Default for FlushScheduler {
    fn default() -> Self {
        Self::new(1)
    }
}

impl Drop for FlushScheduler {
    fn drop(&mut self) {
        for s in &mut self.shards {
            drop(s.tx.take());
        }
        for s in &mut self.shards {
            if let Some(w) = s.worker.take() {
                let _ = w.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2pc_common::{ExecId, GlobalTxnId};
    use o2pc_storage::{DurableWal, LogRecord};

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("o2pc-flush-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn background_flush_advances_watermark_in_order() {
        let dir = tmpdir("order");
        let mut wal = DurableWal::open(dir.join("s.wal")).unwrap();
        let sched = FlushScheduler::new(2);
        let mut last = 0;
        for i in 0..10 {
            wal.append(LogRecord::Begin(ExecId::Sub(GlobalTxnId(i))));
            last = wal.append_ticket();
            sched.submit(0, wal.seal_batch().unwrap());
        }
        wal.progress().wait_for(last).unwrap();
        assert!(!wal.is_dirty());
        drop(sched);
        let reopened = DurableWal::open(wal.path()).unwrap();
        assert_eq!(reopened.len(), 10, "all batches landed, in order");
    }

    #[test]
    fn shards_flush_independent_wals_and_coalesce_fsyncs() {
        let dir = tmpdir("shards");
        let sched = FlushScheduler::new(4);
        let mut wals: Vec<DurableWal> = (0..4)
            .map(|i| DurableWal::open(dir.join(format!("s{i}.wal"))).unwrap())
            .collect();
        let mut tickets = Vec::new();
        for round in 0..16u64 {
            for (i, wal) in wals.iter_mut().enumerate() {
                wal.append(LogRecord::Begin(ExecId::Sub(GlobalTxnId(round))));
                sched.submit(i as u32, wal.seal_batch().unwrap());
            }
        }
        for wal in &wals {
            tickets.push((wal.progress(), wal.append_ticket()));
        }
        for (p, t) in &tickets {
            p.wait_for(*t).unwrap();
        }
        for wal in &wals {
            assert!(!wal.is_dirty());
            // Coalescing: 16 sealed batches per WAL must cost well under 16
            // fsyncs whenever any burst of them drained together. The exact
            // count is timing-dependent; the hard upper bound is 16 and the
            // deterministic single-drain case is covered by the storage
            // crate's `burst_of_batches_costs_one_fsync`.
            assert!(wal.stats().fsyncs() <= 16);
        }
        drop(sched);
        for wal in &wals {
            assert_eq!(DurableWal::open(wal.path()).unwrap().len(), 16);
        }
    }
}
