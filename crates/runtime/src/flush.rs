//! Background WAL flusher for the threaded substrate.
//!
//! The engine seals a site's buffered WAL frames into a
//! [`FlushBatch`](o2pc_storage::FlushBatch) and hands it here; the flusher
//! thread writes + fsyncs batches strictly in submission order and advances
//! each WAL's shared durable watermark, waking anything parked on a flush
//! ticket. One flusher serves every site: batches from different sites
//! interleave freely (their tickets are independent), while batches from one
//! site stay FIFO — the property prefix durability rests on.
//!
//! On the simulator the engine never constructs one of these: flushes run
//! inline at the (virtual) flush timer so durable runs stay deterministic.

use o2pc_storage::FlushBatch;
use std::sync::mpsc::{channel, Sender};
use std::thread::JoinHandle;

/// Handle to the background flusher thread. Dropping it drains the queue
/// and joins the thread, so every sealed batch is durable before shutdown
/// completes.
#[derive(Debug)]
pub struct FlushScheduler {
    tx: Option<Sender<FlushBatch>>,
    worker: Option<JoinHandle<()>>,
}

impl FlushScheduler {
    /// Spawn the flusher thread.
    pub fn new() -> Self {
        let (tx, rx) = channel::<FlushBatch>();
        let worker = std::thread::Builder::new()
            .name("wal-flush".into())
            .spawn(move || {
                for batch in rx {
                    // An I/O error here means the log device failed; the
                    // watermark simply stops advancing and the engine's
                    // parked messages for that site never release — the
                    // site is as good as crashed, which is the honest
                    // outcome.
                    let _ = batch.execute();
                }
            })
            .expect("spawn wal-flush thread");
        FlushScheduler {
            tx: Some(tx),
            worker: Some(worker),
        }
    }

    /// Queue a sealed batch for write + fsync.
    pub fn submit(&self, batch: FlushBatch) {
        if let Some(tx) = &self.tx {
            let _ = tx.send(batch);
        }
    }
}

impl Default for FlushScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for FlushScheduler {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2pc_common::{ExecId, GlobalTxnId};
    use o2pc_storage::{DurableWal, LogRecord};

    #[test]
    fn background_flush_advances_watermark_in_order() {
        let dir = std::env::temp_dir().join(format!("o2pc-flush-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut wal = DurableWal::open(dir.join("s.wal")).unwrap();
        let sched = FlushScheduler::new();
        let mut last = 0;
        for i in 0..10 {
            wal.append(LogRecord::Begin(ExecId::Sub(GlobalTxnId(i))));
            last = wal.append_ticket();
            sched.submit(wal.seal_batch().unwrap());
        }
        wal.progress().wait_for(last);
        assert!(!wal.is_dirty());
        drop(sched);
        let reopened = DurableWal::open(wal.path()).unwrap();
        assert_eq!(reopened.len(), 10, "all batches landed, in order");
    }
}
