//! # o2pc-runtime
//!
//! The runtime abstraction layer: one engine, two substrates.
//!
//! The commit-protocol state machines in `o2pc-protocol` and the site
//! kernels in `o2pc-site` are pure (inputs in, actions out). What varies
//! between a deterministic experiment and a live deployment is only *where
//! time comes from* and *how messages travel*. This crate names that seam:
//!
//! * [`Clock`] — a source of monotonic [`o2pc_common::SimTime`]; implemented
//!   by the virtual clock of the discrete-event simulator and by
//!   [`clock::WallClock`] (microseconds of real elapsed time).
//! * [`Transport`] — an asynchronous message substrate carrying
//!   [`transport::Envelope`]s between site endpoints, with per-link latency
//!   and loss hooks; implemented by [`transport::ThreadedTransport`]
//!   (per-destination delivery workers over batch channels).
//! * [`Runtime`] — the engine-facing fusion of the two: schedule timers,
//!   send messages, and pull the next [`Step`] in time order.
//!
//! Two implementations ship here:
//!
//! * [`SimRuntime`] — the deterministic event-queue simulator. Timers and
//!   deliveries share **one** totally-ordered queue (FIFO among simultaneous
//!   entries), so a seed reproduces a run bit-for-bit. This is the substrate
//!   every experiment in `o2pc-bench` is measured on.
//! * [`ThreadedRuntime`] — wall-clock execution over a [`Transport`].
//!   Messages travel through router threads with real latency; timers fire
//!   on real elapsed time. Outcomes are schedule-dependent (and therefore
//!   only invariant-checkable, not replayable), which is exactly the point:
//!   the same engine code must uphold the protocol's guarantees without a
//!   global event order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod flush;
pub mod runtime;
pub mod transport;

pub use clock::{Clock, WallClock};
pub use flush::FlushScheduler;
pub use runtime::{Runtime, SimRuntime, Step, ThreadedRuntime, ThreadedRuntimeConfig};
pub use transport::{
    Batch, Envelope, Inbox, LinkPolicy, SendOutcome, ThreadedTransport, Transport,
};
