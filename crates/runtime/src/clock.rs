//! Clock abstraction: where `SimTime` comes from.

use o2pc_common::SimTime;
use std::time::{Duration as StdDuration, Instant};

/// A monotonic source of [`SimTime`].
///
/// The deterministic simulator's clock advances only when events are
/// consumed; the wall clock advances on its own. Everything the engine
/// timestamps (latencies, lock-hold windows, report end time) is expressed
/// in `SimTime` microseconds regardless of which clock produced them — that
/// is what lets one metrics pipeline serve both substrates.
pub trait Clock {
    /// The current time.
    fn now(&self) -> SimTime;
}

/// Real elapsed time, mapped onto `SimTime` as microseconds since an epoch
/// fixed at construction.
#[derive(Clone, Copy, Debug)]
pub struct WallClock {
    epoch: Instant,
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl WallClock {
    /// Start a wall clock; `now()` is zero at this instant.
    pub fn new() -> Self {
        WallClock {
            epoch: Instant::now(),
        }
    }

    /// The `Instant` corresponding to a virtual timestamp.
    pub fn instant_of(&self, t: SimTime) -> Instant {
        self.epoch + StdDuration::from_micros(t.micros())
    }

    /// Wall-clock wait from now until virtual time `t` (zero if past).
    pub fn until(&self, t: SimTime) -> StdDuration {
        self.instant_of(t).saturating_duration_since(Instant::now())
    }
}

impl Clock for WallClock {
    fn now(&self) -> SimTime {
        SimTime(self.epoch.elapsed().as_micros() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_advances_monotonically() {
        let c = WallClock::new();
        let a = c.now();
        std::thread::sleep(StdDuration::from_millis(2));
        let b = c.now();
        assert!(b > a, "{a:?} !< {b:?}");
        assert!(b.micros() >= 2_000, "slept 2ms but clock read {b:?}");
    }

    #[test]
    fn instant_mapping_round_trips() {
        let c = WallClock::new();
        let t = SimTime(5_000);
        // `until` a future timestamp is positive, and collapses to zero once
        // that timestamp is in the past.
        assert!(c.until(t) <= StdDuration::from_micros(5_000));
        assert_eq!(c.until(SimTime::ZERO), StdDuration::ZERO);
    }
}
