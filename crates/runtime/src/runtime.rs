//! The engine-facing runtime: timers + messages in one time-ordered stream.

use crate::clock::{Clock, WallClock};
use crate::transport::{Batch, Envelope, Judgement, SendOutcome, ThreadedTransport, Transport};
use o2pc_common::{SimTime, SiteId};
use o2pc_sim::{EventQueue, Network};
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::time::Duration as StdDuration;

/// One unit of work handed to the engine: a timer it scheduled earlier, or a
/// message the substrate delivered.
#[derive(Clone, Debug)]
pub enum Step<T, M> {
    /// A timer scheduled via [`Runtime::schedule`] has fired.
    Timer(T),
    /// A message has arrived at site `to`.
    Deliver {
        /// Destination site.
        to: SiteId,
        /// The message.
        msg: M,
    },
}

/// What the engine needs from a substrate: a clock, timers, a message
/// transport, and a single stream of [`Step`]s in time order.
///
/// `T` is the engine's timer payload, `M` its message type. The engine never
/// sees queues, channels, or threads — it schedules, sends, and pulls the
/// next step until `next` returns `None` (past `deadline`, or quiescent).
pub trait Runtime<T, M>: Clock {
    /// Called once per site while the engine is constructed; transports that
    /// need explicit endpoints register a mailbox here.
    fn register_endpoint(&mut self, _id: SiteId) {}

    /// Arrange for `timer` to fire at absolute time `at`.
    fn schedule(&mut self, at: SimTime, timer: T);

    /// Send `msg` from `from` to `to`; `now` is the sender's current time.
    /// The [`SendOutcome`] says how the substrate treated the message at
    /// send time: accepted, dropped by the link's loss policy, or refused
    /// because the destination is unreachable.
    fn send(&mut self, now: SimTime, from: SiteId, to: SiteId, msg: M) -> SendOutcome;

    /// Pull the next step at or before `deadline`. `None` means the run is
    /// over: the next step (if any) lies beyond the deadline, or the
    /// substrate has quiesced with nothing in flight.
    fn next(&mut self, deadline: SimTime) -> Option<(SimTime, Step<T, M>)>;

    /// Messages lost in transit so far.
    fn messages_dropped(&self) -> u64;
}

// ---------------------------------------------------------------------------
// Deterministic simulator backend
// ---------------------------------------------------------------------------

/// The deterministic discrete-event backend.
///
/// Timers and deliveries share **one** [`EventQueue`] — one sequence counter
/// totally orders simultaneous entries, so a seeded run replays bit-for-bit.
/// Splitting them into separate queues (one per trait) would look cleaner
/// and silently break that guarantee, which is why the sim implements
/// [`Runtime`] as a fused whole rather than composing a sim-`Clock` with a
/// sim-`Transport`.
#[derive(Debug)]
pub struct SimRuntime<T, M> {
    queue: EventQueue<Step<T, M>>,
    network: Network,
    /// Deliveries popped so far (network + same-site + duplicates).
    delivered: u64,
    /// Deliveries scheduled but not yet popped.
    in_flight_msgs: u64,
    /// Same-site sends (bypass the network, so its counters miss them).
    local_sends: u64,
}

impl<T, M> SimRuntime<T, M> {
    /// Build on a configured [`Network`] (latency models, loss, failures).
    pub fn new(network: Network) -> Self {
        SimRuntime {
            queue: EventQueue::new(),
            network,
            delivered: 0,
            in_flight_msgs: 0,
            local_sends: 0,
        }
    }

    /// The simulated network (link state, send/drop counts).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Pending steps (timers + in-flight messages).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Deliveries handed to the engine so far.
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// Messages scheduled for delivery but not yet delivered. Together with
    /// the network counters this closes the conservation equation:
    /// `sent + local_sends + duplicated = delivered + dropped + in_flight`.
    pub fn in_flight_messages(&self) -> u64 {
        self.in_flight_msgs
    }

    /// Same-site sends (never counted by the network).
    pub fn local_send_count(&self) -> u64 {
        self.local_sends
    }
}

impl<T, M> Clock for SimRuntime<T, M> {
    fn now(&self) -> SimTime {
        self.queue.now()
    }
}

impl<T, M: Clone> Runtime<T, M> for SimRuntime<T, M> {
    fn schedule(&mut self, at: SimTime, timer: T) {
        self.queue.schedule(at, Step::Timer(timer));
    }

    fn send(&mut self, now: SimTime, from: SiteId, to: SiteId, msg: M) -> SendOutcome {
        if from == to {
            // Same-site messages skip the network (no latency, no loss).
            self.local_sends += 1;
            self.in_flight_msgs += 1;
            self.queue.schedule(now, Step::Deliver { to, msg });
            return SendOutcome::Sent;
        }
        match self.network.transmit(from, to, now) {
            Some(delay) => {
                // Chaos duplication: the same message may arrive twice, with
                // independently sampled latencies (so it can also reorder).
                if let Some(dup_delay) = self.network.maybe_duplicate(from, to, now) {
                    self.in_flight_msgs += 1;
                    self.queue.schedule(
                        now + dup_delay,
                        Step::Deliver {
                            to,
                            msg: msg.clone(),
                        },
                    );
                }
                self.in_flight_msgs += 1;
                self.queue.schedule(now + delay, Step::Deliver { to, msg });
                SendOutcome::Sent
            }
            // Link down or random drop — the simulated network has no
            // notion of an unknown destination, so every loss is policy
            // (and the network's own dropped counter records it).
            None => SendOutcome::DroppedByPolicy,
        }
    }

    fn next(&mut self, deadline: SimTime) -> Option<(SimTime, Step<T, M>)> {
        let t = self.queue.peek_time()?;
        if t > deadline {
            return None; // left in the queue: a later run() call may resume
        }
        let popped = self.queue.pop();
        if let Some((_, Step::Deliver { .. })) = &popped {
            self.in_flight_msgs -= 1;
            self.delivered += 1;
        }
        popped
    }

    fn messages_dropped(&self) -> u64 {
        self.network.dropped_count()
    }
}

// ---------------------------------------------------------------------------
// Threaded wall-clock backend
// ---------------------------------------------------------------------------

/// Tuning knobs for [`ThreadedRuntime`].
#[derive(Clone, Copy, Debug)]
pub struct ThreadedRuntimeConfig {
    /// How long `next` waits with no due timer and nothing in flight before
    /// declaring the run quiescent. Pure slack for OS scheduling jitter —
    /// in-flight messages are tracked exactly, so this does not need to
    /// cover transport latency.
    pub idle_grace: StdDuration,
}

impl Default for ThreadedRuntimeConfig {
    fn default() -> Self {
        ThreadedRuntimeConfig {
            idle_grace: StdDuration::from_millis(50),
        }
    }
}

/// Timer heap entry: due time + insertion sequence (FIFO among equal times,
/// mirroring the simulator's queue discipline).
struct TimerEntry<T> {
    at: SimTime,
    seq: u64,
    timer: T,
}

impl<T> PartialEq for TimerEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for TimerEntry<T> {}
impl<T> PartialOrd for TimerEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for TimerEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed for a min-heap on (at, seq).
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Wall-clock execution over a [`ThreadedTransport`].
///
/// Timers fire on real elapsed time (via [`WallClock`]); messages travel
/// through the transport's per-site delivery workers with real latency. All
/// registered endpoints funnel into one batch inbox, so a single engine
/// loop drives every site while delivery timing stays genuinely concurrent.
/// Outcomes are schedule-dependent — the wall-clock twin of a simulated run
/// checks invariants, not byte equality.
///
/// Sends are **coalesced**: `send` judges the message immediately (route
/// lookup, loss/duplication sampling — so the caller gets an honest
/// [`SendOutcome`]) but buffers accepted envelopes in a per-destination
/// outbox; the next call into `next` flushes each destination's burst as a
/// single transport handoff. A coordinator answering a VOTE-REQ fan-in
/// therefore pays one channel operation per peer site, not one per message.
///
/// Quiescence: `next` returns `None` once the deadline passes, or when no
/// timer is pending, the transport reports nothing in flight, and no message
/// arrives within `idle_grace`.
pub struct ThreadedRuntime<T, M> {
    clock: WallClock,
    transport: ThreadedTransport<M>,
    inbox_tx: Sender<Batch<M>>,
    inbox: Receiver<Batch<M>>,
    /// Delivered batches not yet handed to the engine, in arrival order.
    staged: VecDeque<Envelope<M>>,
    /// Judged-but-unflushed sends, grouped by destination. The insertion
    /// order within one destination is send order (per-link FIFO); flush
    /// order across destinations is round-ordered by first use.
    outbox: HashMap<SiteId, Vec<(StdDuration, Envelope<M>)>>,
    /// Destinations in first-send order so flushing is deterministic per
    /// round and every occupied outbox slot is visited.
    outbox_order: Vec<SiteId>,
    timers: BinaryHeap<TimerEntry<T>>,
    seq: u64,
    cfg: ThreadedRuntimeConfig,
}

impl<T, M: Clone + Send + 'static> Default for ThreadedRuntime<T, M> {
    fn default() -> Self {
        Self::new(
            ThreadedTransport::default(),
            ThreadedRuntimeConfig::default(),
        )
    }
}

impl<T, M: Clone + Send + 'static> ThreadedRuntime<T, M> {
    /// Build on a transport; the clock's epoch (time zero) is *now*.
    pub fn new(transport: ThreadedTransport<M>, cfg: ThreadedRuntimeConfig) -> Self {
        let (inbox_tx, inbox) = channel();
        ThreadedRuntime {
            clock: WallClock::new(),
            transport,
            inbox_tx,
            inbox,
            staged: VecDeque::new(),
            outbox: HashMap::new(),
            outbox_order: Vec::new(),
            timers: BinaryHeap::new(),
            seq: 0,
            cfg,
        }
    }

    /// The underlying transport (link policies, traffic counters).
    pub fn transport(&self) -> &ThreadedTransport<M> {
        &self.transport
    }

    /// Due time of the earliest pending timer.
    fn next_timer_due(&self) -> Option<SimTime> {
        self.timers.peek().map(|e| e.at)
    }

    /// Hand every buffered burst to the transport — one `deliver_many` per
    /// destination with traffic.
    fn flush_outbox(&mut self) {
        if self.outbox_order.is_empty() {
            return;
        }
        for to in self.outbox_order.drain(..) {
            if let Some(envs) = self.outbox.remove(&to) {
                self.transport.deliver_many(to, envs);
            }
        }
    }

    /// Pop the next staged envelope, pulling any already-delivered batches
    /// off the channel first (without blocking).
    fn pop_staged(&mut self) -> Option<Envelope<M>> {
        if let Some(env) = self.staged.pop_front() {
            return Some(env);
        }
        while let Ok(batch) = self.inbox.try_recv() {
            self.staged.extend(batch);
            if let Some(env) = self.staged.pop_front() {
                return Some(env);
            }
        }
        None
    }
}

impl<T, M: Clone + Send + 'static> Clock for ThreadedRuntime<T, M> {
    fn now(&self) -> SimTime {
        self.clock.now()
    }
}

impl<T, M: Clone + Send + 'static> Runtime<T, M> for ThreadedRuntime<T, M> {
    fn register_endpoint(&mut self, id: SiteId) {
        self.transport.attach(id, self.inbox_tx.clone());
    }

    fn schedule(&mut self, at: SimTime, timer: T) {
        let seq = self.seq;
        self.seq += 1;
        self.timers.push(TimerEntry { at, seq, timer });
    }

    fn send(&mut self, _now: SimTime, from: SiteId, to: SiteId, msg: M) -> SendOutcome {
        // Unlike the simulator, same-site messages take the transport path
        // too: a zero-latency link gives the same effect. The message is
        // judged now (honest outcome, counters updated) but the accepted
        // envelope rides the outbox until the next `next()` call, so a
        // burst to one destination is one transport handoff.
        match self.transport.judge(from, to) {
            Judgement::NoRoute => SendOutcome::NoRoute,
            Judgement::DropPolicy => SendOutcome::DroppedByPolicy,
            Judgement::Deliver { latency, duplicate } => {
                let bucket = self.outbox.entry(to).or_insert_with(|| {
                    self.outbox_order.push(to);
                    Vec::new()
                });
                if duplicate {
                    bucket.push((
                        latency,
                        Envelope {
                            from,
                            to,
                            msg: msg.clone(),
                        },
                    ));
                }
                bucket.push((latency, Envelope { from, to, msg }));
                SendOutcome::Sent
            }
        }
    }

    fn next(&mut self, deadline: SimTime) -> Option<(SimTime, Step<T, M>)> {
        // Everything the engine sent while handling the previous step goes
        // out now, one batched handoff per destination.
        self.flush_outbox();
        loop {
            let now = self.clock.now();
            if now > deadline {
                return None;
            }
            // Fire a due timer before waiting on the inbox.
            if self.next_timer_due().is_some_and(|due| due <= now) {
                let e = self.timers.pop().expect("peeked");
                return Some((now, Step::Timer(e.timer)));
            }
            // Drain already-arrived traffic before parking: under load the
            // staging queue is usually non-empty, so the engine loop spins
            // without a single syscall.
            if let Some(env) = self.pop_staged() {
                return Some((
                    now,
                    Step::Deliver {
                        to: env.to,
                        msg: env.msg,
                    },
                ));
            }
            let until_deadline = self.clock.until(deadline);
            let wait = match self.next_timer_due() {
                Some(due) => self.clock.until(due).min(until_deadline),
                None => self.cfg.idle_grace.min(until_deadline),
            };
            match self.inbox.recv_timeout(wait) {
                Ok(batch) => {
                    self.staged.extend(batch);
                    if let Some(env) = self.staged.pop_front() {
                        return Some((
                            self.clock.now(),
                            Step::Deliver {
                                to: env.to,
                                msg: env.msg,
                            },
                        ));
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return None,
                Err(RecvTimeoutError::Timeout) => {
                    if self.timers.is_empty() {
                        // Quiescence check. The engine (our only sender) is
                        // blocked right here and the outbox was flushed on
                        // entry, so if the transport has nothing in flight
                        // and nothing is staged, no step can ever arrive
                        // again.
                        if self.transport.in_flight() > 0 {
                            continue; // a delivery worker still owes us
                        }
                        match self.pop_staged() {
                            Some(env) => {
                                return Some((
                                    self.clock.now(),
                                    Step::Deliver {
                                        to: env.to,
                                        msg: env.msg,
                                    },
                                ))
                            }
                            None => return None,
                        }
                    }
                    // A timer is (about to be) due: loop and fire it.
                }
            }
        }
    }

    fn messages_dropped(&self) -> u64 {
        self.transport.dropped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2pc_common::{DetRng, Duration};
    use o2pc_sim::NetworkConfig;

    fn sim() -> SimRuntime<&'static str, u32> {
        SimRuntime::new(Network::new(
            NetworkConfig::fixed(Duration::millis(1)),
            DetRng::new(1),
        ))
    }

    #[test]
    fn sim_orders_timers_and_deliveries_together() {
        let mut rt = sim();
        rt.schedule(SimTime(5_000), "late");
        assert!(rt.send(SimTime::ZERO, SiteId(0), SiteId(1), 7).is_sent()); // arrives at 1ms
        rt.schedule(SimTime(500), "early");
        let (t1, s1) = rt.next(SimTime(10_000)).unwrap();
        assert_eq!(t1, SimTime(500));
        assert!(matches!(s1, Step::Timer("early")));
        let (t2, s2) = rt.next(SimTime(10_000)).unwrap();
        assert_eq!(t2, SimTime(1_000));
        assert!(matches!(
            s2,
            Step::Deliver {
                to: SiteId(1),
                msg: 7
            }
        ));
        assert_eq!(rt.now(), SimTime(1_000));
        // Deadline fences the late timer without consuming it.
        assert!(rt.next(SimTime(2_000)).is_none());
        assert!(rt.next(SimTime(10_000)).is_some());
    }

    #[test]
    fn sim_same_site_send_bypasses_network() {
        let mut rt = sim();
        assert!(rt.send(SimTime(100), SiteId(2), SiteId(2), 9).is_sent());
        let (t, s) = rt.next(SimTime(10_000)).unwrap();
        assert_eq!(t, SimTime(100), "no latency on self-sends");
        assert!(matches!(
            s,
            Step::Deliver {
                to: SiteId(2),
                msg: 9
            }
        ));
        assert_eq!(
            rt.network().sent_count(),
            0,
            "self-send never hit the network"
        );
    }

    fn threaded(grace_ms: u64) -> ThreadedRuntime<&'static str, u32> {
        let mut rt = ThreadedRuntime::new(
            ThreadedTransport::default(),
            ThreadedRuntimeConfig {
                idle_grace: StdDuration::from_millis(grace_ms),
            },
        );
        for id in 0..3 {
            rt.register_endpoint(SiteId(id));
        }
        rt
    }

    #[test]
    fn threaded_delivers_messages_and_fires_timers() {
        let mut rt = threaded(20);
        let far = SimTime(60_000_000);
        rt.schedule(SimTime(2_000), "timer");
        assert!(rt.send(SimTime::ZERO, SiteId(0), SiteId(1), 42).is_sent());
        // The message is immediate, the timer is 2ms out: message first.
        let (_, s1) = rt.next(far).unwrap();
        assert!(matches!(
            s1,
            Step::Deliver {
                to: SiteId(1),
                msg: 42
            }
        ));
        let (t2, s2) = rt.next(far).unwrap();
        assert!(matches!(s2, Step::Timer("timer")));
        assert!(t2 >= SimTime(2_000), "timer fired early: {t2:?}");
        // Nothing left: quiesce within the grace period.
        assert!(rt.next(far).is_none());
    }

    #[test]
    fn threaded_respects_deadline() {
        let mut rt = threaded(20);
        rt.schedule(SimTime(50_000_000), "beyond"); // 50s out
        let start = std::time::Instant::now();
        assert!(
            rt.next(SimTime(10_000)).is_none(),
            "deadline precedes the timer"
        );
        assert!(start.elapsed() < StdDuration::from_secs(1));
    }

    /// A burst of sends between two `next` calls is coalesced into one
    /// transport handoff per destination — and still arrives in send order.
    #[test]
    fn threaded_send_coalesces_bursts_and_keeps_order() {
        let mut rt = threaded(20);
        let far = SimTime(60_000_000);
        for i in 0..32 {
            assert!(rt.send(SimTime::ZERO, SiteId(0), SiteId(1), i).is_sent());
            assert!(rt
                .send(SimTime::ZERO, SiteId(0), SiteId(2), 100 + i)
                .is_sent());
        }
        // Nothing has touched the transport yet: sends ride the outbox.
        assert_eq!(rt.transport().in_flight(), 64);
        let mut to1 = Vec::new();
        let mut to2 = Vec::new();
        while let Some((_, step)) = rt.next(far) {
            if let Step::Deliver { to, msg } = step {
                if to == SiteId(1) {
                    to1.push(msg);
                } else {
                    to2.push(msg);
                }
            }
        }
        assert_eq!(to1, (0..32).collect::<Vec<_>>());
        assert_eq!(to2, (100..132).collect::<Vec<_>>());
    }

    #[test]
    fn threaded_does_not_quiesce_with_message_in_flight() {
        let transport = ThreadedTransport::new(StdDuration::from_millis(40));
        let mut rt: ThreadedRuntime<&'static str, u32> = ThreadedRuntime::new(
            transport,
            ThreadedRuntimeConfig {
                idle_grace: StdDuration::from_millis(5),
            },
        );
        rt.register_endpoint(SiteId(0));
        rt.register_endpoint(SiteId(1));
        // Latency (40ms) far exceeds idle_grace (5ms); in-flight tracking
        // must keep the runtime alive until the delivery lands.
        assert!(rt.send(SimTime::ZERO, SiteId(0), SiteId(1), 1).is_sent());
        let got = rt.next(SimTime(60_000_000));
        assert!(matches!(
            got,
            Some((
                _,
                Step::Deliver {
                    to: SiteId(1),
                    msg: 1
                }
            ))
        ));
    }
}
