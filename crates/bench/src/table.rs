//! Minimal markdown table printer for experiment output.

/// A markdown table under construction.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render as GitHub-flavoured markdown.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let mut s = String::from("|");
            for (c, w) in cells.iter().zip(&widths) {
                s.push_str(&format!(" {c:<w$} |"));
            }
            s
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{:-<1$}|", "", w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Print with a title.
    pub fn print(&self, title: &str) {
        println!("\n## {title}\n");
        println!("{}", self.render());
    }

    /// Render as CSV (RFC-4180-ish: quotes around cells containing commas).
    pub fn to_csv(&self) -> String {
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Print the markdown table and also write `results/<slug>.csv` so the
    /// data is machine-readable (plot scripts, regression diffs).
    pub fn emit(&self, title: &str, slug: &str) {
        self.print(title);
        if std::fs::create_dir_all("results").is_ok() {
            let _ = std::fs::write(format!("results/{slug}.csv"), self.to_csv());
        }
    }
}

/// Format a float compactly.
pub fn f(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["1".into(), "2".into()]);
        let r = t.render();
        assert!(r.contains("| a | long-header |"));
        assert!(r.contains("| 1 | 2           |"));
        assert!(r.lines().nth(1).unwrap().starts_with("|--"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(0.5), "0.500");
        assert_eq!(f(42.25), "42.2");
        assert_eq!(f(12345.6), "12346");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(&["a"]);
        t.row(&["1".into(), "2".into()]);
    }
}
#[cfg(test)]
mod csv_tests {
    use super::*;

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["plain".into(), "with,comma".into()]);
        t.row(&["with\"quote".into(), "x".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"with\"\"quote\""));
        assert!(csv.starts_with("a,b\n"));
    }
}
