//! # o2pc-bench
//!
//! The experiment harness. Every figure of the paper and every qualitative
//! performance claim has a regenerating function here (one binary each; see
//! DESIGN.md §4 for the experiment ↔ claim index and EXPERIMENTS.md for the
//! recorded outcomes):
//!
//! | id | binary | claim |
//! |----|--------|-------|
//! | F1 | `fig1_regular_cycles` | Figure 1 / Example 1 regular-cycle semantics |
//! | F2 | `fig2_marking_transitions` | Figure 2 marking state machine |
//! | E1 | `e1_lock_hold_time` | early release shortens exclusive-lock holds |
//! | E2 | `e2_contention_throughput` | early release helps under contention |
//! | E3 | `e3_abort_crossover` | pessimism wins once aborts dominate |
//! | E4 | `e4_blocking_window` | 2PC blocks across coordinator failure, O2PC doesn't |
//! | E5 | `e5_p1_overhead` | P1 costs conflicts only when transactions abort |
//! | E5b | `e5b_udum_ablation` | UDUM1 safe forgetting buys back concurrency |
//! | E6 | `e6_message_counts` | O2PC/P1 add no messages beyond standard 2PC |
//! | E7 | `e7_correctness_audit` | criterion ⊇ serializability; P1 kills regular cycles |
//! | E8 | `e8_real_actions` | only non-compensatable sites keep blocking |
//! | E9 | `e9_autonomy` | global traffic must not inflate local latency (multidatabase autonomy) |
//!
//! `all_experiments` runs the lot (it is what `bench_output.txt` records);
//! each table is also written to `results/<slug>.csv`. The `simulate` binary
//! is a free-form driver: pick a protocol, workload, abort probability,
//! latency and seed on the command line and read the full report.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod open_loop;
pub mod table;

pub use open_loop::{run_open_loop, OpenLoopClients, OpenLoopOutcome};
pub use table::Table;
