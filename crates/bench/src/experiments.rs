//! Experiment implementations (one per figure / claim; see crate docs).

use crate::table::{f, Table};
use o2pc_common::pool;
use o2pc_common::{Duration, GlobalTxnId, Key, Op, SimTime, SiteId, TxnId, Value};
use o2pc_core::{Engine, Msg, RunReport, SystemConfig, TimerEvent, TxnRequest};
use o2pc_marking::state::transition_table;
use o2pc_protocol::ProtocolKind;
use o2pc_runtime::{
    LinkPolicy, Runtime, ThreadedRuntime, ThreadedRuntimeConfig, ThreadedTransport,
};
use o2pc_sgraph::graph::GlobalSg;
use o2pc_sgraph::regular::{classify_all_cycles, CycleClass};
use o2pc_sgraph::{audit, holds_s1, holds_s2};
use o2pc_sim::{FailurePlan, NetworkConfig};
use o2pc_workload::{BankingWorkload, GenericWorkload, MultidbWorkload, Schedule, TravelWorkload};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Which substrate an experiment runs on.
///
/// Every experiment is defined on [`Backend::Sim`] (deterministic, seeded,
/// the substrate all published numbers come from). [`Backend::Threaded`] is
/// available for the experiments that have been ported to wall-clock
/// execution (currently E1); the rest reject it with a clear error.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Backend {
    /// The deterministic discrete-event simulator.
    Sim,
    /// Real threads + wall-clock latency (`o2pc_runtime::ThreadedRuntime`).
    Threaded,
}

impl std::str::FromStr for Backend {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sim" => Ok(Backend::Sim),
            "threaded" => Ok(Backend::Threaded),
            other => Err(format!(
                "unknown backend `{other}` (expected `sim` or `threaded`)"
            )),
        }
    }
}

/// Worker threads used by the simulator sweeps (default 1 — sequential).
/// Every sweep point is an isolated deterministic engine, and
/// [`sweep_rows`] appends rows in point order, so the emitted tables are
/// byte-identical at any setting.
static SWEEP_CORES: AtomicUsize = AtomicUsize::new(1);

/// Set the sweep worker count (called once by `all_experiments --cores`).
/// `0` means "all available cores".
pub fn set_cores(n: usize) {
    SWEEP_CORES.store(pool::resolve_cores(n), Ordering::SeqCst);
}

/// Current sweep worker count.
pub fn cores() -> usize {
    SWEEP_CORES.load(Ordering::SeqCst).max(1)
}

/// Evaluate one table row per sweep point on the worker pool and append
/// the rows in point order.
fn sweep_rows<P: Sync>(table: &mut Table, points: &[P], row: impl Fn(&P) -> Vec<String> + Sync) {
    for r in pool::map_ordered(points.len(), cores(), |i| row(&points[i])) {
        table.row(&r);
    }
}

fn run_schedule_with<R: Runtime<TimerEvent, Msg>>(
    mut engine: Engine<R>,
    schedule: &Schedule,
    horizon: Duration,
) -> RunReport {
    schedule.install(&mut engine);
    engine.run(horizon)
}

fn run_schedule(cfg: SystemConfig, schedule: &Schedule, horizon: Duration) -> RunReport {
    run_schedule_with(Engine::new(cfg), schedule, horizon)
}

/// Run a schedule on the threaded wall-clock runtime with a fixed link
/// latency. Virtual durations in `cfg` (service times, timeouts) become
/// microseconds of real time; the horizon bounds *wall* time.
fn run_schedule_threaded(
    cfg: SystemConfig,
    latency: std::time::Duration,
    schedule: &Schedule,
    horizon: Duration,
) -> RunReport {
    let transport: ThreadedTransport<Msg> =
        ThreadedTransport::with_policy(LinkPolicy::fixed(latency));
    let rt: ThreadedRuntime<TimerEvent, Msg> =
        ThreadedRuntime::new(transport, ThreadedRuntimeConfig::default());
    run_schedule_with(Engine::with_runtime(cfg, rt), schedule, horizon)
}

// ---------------------------------------------------------------------------
// F1 — Figure 1 / Example 1: regular-cycle classification.
// ---------------------------------------------------------------------------

/// Reproduce Figure 1 (regular cycles) and Example 1 (a cycle whose minimal
/// representation skips the regular transaction) as detector runs.
pub fn fig1() {
    fn t(i: u64) -> TxnId {
        TxnId::Global(GlobalTxnId(i))
    }
    fn ct(i: u64) -> TxnId {
        TxnId::Compensation(GlobalTxnId(i))
    }

    let mut table = Table::new(&[
        "scenario",
        "cycle",
        "min segments",
        "witness endpoints",
        "regular?",
    ]);

    let mut scenarios: Vec<(&str, GlobalSg)> = Vec::new();

    // Example 1 (§5), closed into a cycle: CT1→T2 (SG1, SG2); T2→CT3 (SG2);
    // CT3→CT1 (SG3). The SG2 path CT1→T2→CT3 lets the minimal representation
    // skip T2, so the cycle is NOT regular.
    let mut ex1 = GlobalSg::new();
    ex1.site_mut(SiteId(1)).add_edge(ct(1), t(2));
    ex1.site_mut(SiteId(2)).add_edge(ct(1), t(2));
    ex1.site_mut(SiteId(2)).add_edge(t(2), ct(3));
    ex1.site_mut(SiteId(3)).add_edge(ct(3), ct(1));
    scenarios.push(("Example 1 (shortcut via SG2)", ex1));

    // Figure 1(a): T1 → CT1 → T2 at site a; T2 → T1 at site b. T2 observed
    // the compensation of T1 at one site but preceded T1 at another: regular.
    let mut f1a = GlobalSg::new();
    f1a.site_mut(SiteId(0)).add_edge(t(1), ct(1));
    f1a.site_mut(SiteId(0)).add_edge(ct(1), t(2));
    f1a.site_mut(SiteId(1)).add_edge(t(2), t(1));
    scenarios.push(("Figure 1(a): CT1→T2 | T2→T1", f1a));

    // Figure 1(b): the dual — T2 → CT1 at site a (T2 before the
    // compensation, no local path through T1), CT1 → T2 via T1 at site b.
    let mut f1b = GlobalSg::new();
    f1b.site_mut(SiteId(0)).add_edge(t(2), ct(1));
    f1b.site_mut(SiteId(0)).add_node(t(1));
    f1b.site_mut(SiteId(1)).add_edge(t(1), ct(1));
    f1b.site_mut(SiteId(1)).add_edge(ct(1), t(2));
    scenarios.push(("Figure 1(b): T2→CT1 | CT1→T2", f1b));

    // Figure 1(c): a longer chain through two compensations and two regular
    // transactions across three sites.
    let mut f1c = GlobalSg::new();
    f1c.site_mut(SiteId(0)).add_edge(ct(1), t(2));
    f1c.site_mut(SiteId(0)).add_node(t(1));
    f1c.site_mut(SiteId(1)).add_edge(t(2), ct(3));
    f1c.site_mut(SiteId(1)).add_node(t(3));
    f1c.site_mut(SiteId(2)).add_edge(ct(3), ct(1));
    f1c.site_mut(SiteId(2)).add_node(t(3));
    scenarios.push(("Figure 1(c): CT1→T2→CT3→CT1", f1c));

    // CT-only cycle: explicitly allowed by the criterion.
    let mut ctc = GlobalSg::new();
    ctc.site_mut(SiteId(0)).add_edge(ct(1), ct(2));
    ctc.site_mut(SiteId(1)).add_edge(ct(2), ct(1));
    scenarios.push(("CT-only cycle (allowed)", ctc));

    for (name, sg) in &scenarios {
        let classes = classify_all_cycles(sg, 1000, 12);
        if classes.is_empty() {
            table.row(&[
                name.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "no cycle".into(),
            ]);
        }
        for (cycle, class) in classes {
            let cycle_s = cycle
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join("→");
            match class {
                CycleClass::Regular(rc) => table.row(&[
                    name.to_string(),
                    cycle_s,
                    rc.min_segments.to_string(),
                    rc.witness_endpoints
                        .iter()
                        .map(|n| n.to_string())
                        .collect::<Vec<_>>()
                        .join(","),
                    "REGULAR".into(),
                ]),
                CycleClass::NonRegular { min_segments } => table.row(&[
                    name.to_string(),
                    cycle_s,
                    min_segments.to_string(),
                    "-".into(),
                    "non-regular".into(),
                ]),
            }
        }
        let s1 = holds_s1(sg);
        let s2 = holds_s2(sg);
        println!("  [{name}] S1={s1} S2={s2}");
    }
    table.emit(
        "F1 — Figure 1 / Example 1: regular-cycle classification",
        "f1_regular_cycles",
    );
}

// ---------------------------------------------------------------------------
// F2 — Figure 2: marking transitions.
// ---------------------------------------------------------------------------

/// Print the full marking transition table (legal transitions = Figure 2).
pub fn fig2() {
    let mut table = Table::new(&["state", "event", "next state"]);
    for (s, e, r) in transition_table() {
        let next = match r {
            Ok(n) => n.to_string(),
            Err(_) => "(illegal)".into(),
        };
        table.row(&[s.to_string(), format!("{e:?}"), next]);
    }
    table.emit(
        "F2 — Figure 2: marking state machine (6 legal transitions)",
        "f2_marking_transitions",
    );
}

// ---------------------------------------------------------------------------
// E1 — exclusive-lock hold time vs network latency.
// ---------------------------------------------------------------------------

/// Sweep the network latency and compare exclusive-lock hold times under
/// 2PL-2PC vs O2PC. The paper's core promise: holds stop scaling with the
/// decision round-trip once locks are released at the vote.
pub fn e1() {
    let mut table = Table::new(&[
        "latency(ms)",
        "protocol",
        "mean X-hold(ms)",
        "p99 X-hold(ms)",
        "mean txn latency(ms)",
        "committed",
    ]);
    let points: Vec<(u64, ProtocolKind)> = [0u64, 1, 2, 5, 10, 20, 50]
        .into_iter()
        .flat_map(|lat| [ProtocolKind::D2pl2pc, ProtocolKind::O2pc].map(|p| (lat, p)))
        .collect();
    sweep_rows(&mut table, &points, |&(lat_ms, proto)| {
        let wl = BankingWorkload {
            sites: 4,
            accounts_per_site: 32,
            transfers: 300,
            mean_interarrival: Duration::millis(4),
            seed: 0xE1,
            ..Default::default()
        };
        let mut cfg = SystemConfig::new(wl.sites, proto);
        cfg.network = NetworkConfig::fixed(Duration::millis(lat_ms));
        cfg.seed = 0xE1;
        cfg.record_history = false;
        let r = run_schedule(cfg, &wl.generate(), Duration::secs(600));
        vec![
            lat_ms.to_string(),
            proto.to_string(),
            f(r.locks.exclusive_hold.mean() / 1000.0),
            f(r.locks.exclusive_hold.p99() as f64 / 1000.0),
            f(r.global_latency.mean() / 1000.0),
            r.global_committed.to_string(),
        ]
    });
    table.emit(
        "E1 — exclusive-lock hold time vs network latency",
        "e1_lock_hold_time",
    );
}

/// E1 on the threaded wall-clock runtime: the same engine, the same
/// `RunReport` metrics pipeline, but real link latency through the router
/// thread instead of simulated latency. The workload is scaled down because
/// every simulated microsecond is now a real one; the qualitative claim —
/// O2PC's exclusive-lock holds stop scaling with the decision round-trip —
/// must still be visible in the measured hold times.
pub fn e1_threaded() {
    let mut table = Table::new(&[
        "latency(ms)",
        "protocol",
        "mean X-hold(ms)",
        "p99 X-hold(ms)",
        "mean txn latency(ms)",
        "committed",
    ]);
    for lat_ms in [0u64, 1, 2, 5] {
        for proto in [ProtocolKind::D2pl2pc, ProtocolKind::O2pc] {
            let wl = BankingWorkload {
                sites: 4,
                accounts_per_site: 32,
                transfers: 60,
                mean_interarrival: Duration::millis(2),
                seed: 0xE1,
                ..Default::default()
            };
            let mut cfg = SystemConfig::new(wl.sites, proto);
            cfg.seed = 0xE1;
            cfg.record_history = false;
            let r = run_schedule_threaded(
                cfg,
                std::time::Duration::from_millis(lat_ms),
                &wl.generate(),
                Duration::secs(30),
            );
            table.row(&[
                lat_ms.to_string(),
                proto.to_string(),
                f(r.locks.exclusive_hold.mean() / 1000.0),
                f(r.locks.exclusive_hold.p99() as f64 / 1000.0),
                f(r.global_latency.mean() / 1000.0),
                r.global_committed.to_string(),
            ]);
        }
    }
    table.emit(
        "E1(threaded) — lock hold time vs real link latency (wall clock)",
        "e1_lock_hold_time_threaded",
    );
}

// ---------------------------------------------------------------------------
// E10 — open-loop offered load on the threaded backend.
// ---------------------------------------------------------------------------

/// Open-loop offered-load sweep on the threaded wall-clock backend: 2 000
/// Poisson client sessions offer a fixed aggregate rate regardless of
/// completions, the pipelined coordinator admits a bounded window per site,
/// and the table reports the achieved rate against the latency tail
/// (p50/p99/p999 measured from each request's *scheduled* submit time, so
/// admission queueing is visible). Two load points: one comfortably below
/// the single-core saturation rate, one above it — the sub-saturation row
/// should achieve ≈ its offered rate with a flat tail, the saturated row
/// should cap at the server's capacity with the queue absorbed as latency.
pub fn e10_open_loop_threaded() {
    let mut table = Table::new(&[
        "offered(txn/s)",
        "achieved(txn/s)",
        "p50(µs)",
        "p99(µs)",
        "p999(µs)",
        "committed",
        "aborted",
    ]);
    for offered in [20_000.0f64, 90_000.0] {
        let clients = crate::open_loop::OpenLoopClients {
            sessions: 2_000,
            offered_txn_per_sec: offered,
            total_txns: 12_000,
            mix: BankingWorkload {
                sites: 3,
                accounts_per_site: 2_048,
                local_fraction: 0.2,
                seed: 0xE10,
                ..Default::default()
            },
        };
        let mut cfg = SystemConfig::new(3, ProtocolKind::O2pcP2);
        cfg.seed = 0xE10;
        cfg.record_history = false;
        cfg.op_service_time = Duration::ZERO;
        cfg.admission_window = Some(8);
        let out = crate::open_loop::run_open_loop(
            cfg,
            std::time::Duration::ZERO,
            &clients,
            Duration::secs(120),
        );
        let lat = out.latency();
        let r = &out.report;
        table.row(&[
            f(offered),
            f(out.achieved_txn_per_sec),
            lat.p50().to_string(),
            lat.p99().to_string(),
            lat.p999().to_string(),
            (r.global_committed + r.local_committed).to_string(),
            (r.global_aborted + r.local_aborted).to_string(),
        ]);
    }
    table.emit(
        "E10(threaded) — open-loop offered load vs achieved rate and latency tail",
        "e10_open_loop_threaded",
    );
}

// ---------------------------------------------------------------------------
// E2 — throughput & waiting under contention.
// ---------------------------------------------------------------------------

/// Sweep offered load and key skew; compare throughput, transaction latency
/// and lock waiting between 2PL-2PC and O2PC.
pub fn e2() {
    let mut table = Table::new(&[
        "interarrival(µs)",
        "zipf θ",
        "protocol",
        "throughput(txn/s)",
        "mean latency(ms)",
        "mean wait(ms)",
        "waits",
    ]);
    let points: Vec<(u64, f64, ProtocolKind)> = [
        (2000u64, 0.0),
        (1000, 0.0),
        (500, 0.0),
        (500, 0.8),
        (250, 0.8),
        (250, 0.99),
    ]
    .into_iter()
    .flat_map(|(i, t)| [ProtocolKind::D2pl2pc, ProtocolKind::O2pc].map(|p| (i, t, p)))
    .collect();
    sweep_rows(&mut table, &points, |&(inter_us, theta, proto)| {
        let wl = GenericWorkload {
            sites: 4,
            keys_per_site: 24,
            txns: 400,
            ops_per_sub: 4,
            sites_per_txn: 2,
            write_fraction: 0.5,
            zipf_theta: theta,
            mean_interarrival: Duration::micros(inter_us),
            seed: 0xE2,
            ..Default::default()
        };
        let mut cfg = SystemConfig::new(wl.sites, proto);
        cfg.network = NetworkConfig::fixed(Duration::millis(5));
        cfg.seed = 0xE2;
        cfg.record_history = false;
        let r = run_schedule(cfg, &wl.generate(), Duration::secs(600));
        vec![
            inter_us.to_string(),
            format!("{theta:.2}"),
            proto.to_string(),
            f(r.throughput()),
            f(r.global_latency.mean() / 1000.0),
            f(r.locks.wait_time.mean() / 1000.0),
            r.locks.wait_time.count().to_string(),
        ]
    });
    table.emit(
        "E2 — throughput and waiting under contention",
        "e2_contention_throughput",
    );
}

// ---------------------------------------------------------------------------
// E3 — abort-rate crossover.
// ---------------------------------------------------------------------------

/// Sweep the per-site autonomy-abort probability: O2PC pays compensation on
/// every abort; the paper predicts its advantage inverts once aborts
/// dominate ("if the assumption is unfounded, the overhead incurred by the
/// protocol is likely to outweigh its benefits").
pub fn e3() {
    let mut table = Table::new(&[
        "p(site votes no)",
        "protocol",
        "abort rate",
        "throughput(txn/s)",
        "mean latency(ms)",
        "compensations",
        "mean wait(ms)",
    ]);
    let points: Vec<(f64, ProtocolKind)> = [0.0, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9]
        .into_iter()
        .flat_map(|p| [ProtocolKind::D2pl2pc, ProtocolKind::O2pc].map(|proto| (p, proto)))
        .collect();
    sweep_rows(&mut table, &points, |&(p, proto)| {
        // Moderate contention: enough conflicts for early release to
        // matter, few enough that deadlock aborts do not drown the
        // autonomy-abort signal being swept.
        let wl = BankingWorkload {
            sites: 4,
            accounts_per_site: 24,
            transfers: 400,
            mean_interarrival: Duration::micros(1500),
            seed: 0xE3,
            ..Default::default()
        };
        let mut cfg = SystemConfig::new(wl.sites, proto);
        cfg.network = NetworkConfig::fixed(Duration::millis(5));
        cfg.vote_abort_probability = p;
        cfg.seed = 0xE3;
        cfg.record_history = false;
        let r = run_schedule(cfg, &wl.generate(), Duration::secs(600));
        vec![
            format!("{p:.2}"),
            proto.to_string(),
            f(r.abort_rate()),
            f(r.throughput()),
            f(r.global_latency.mean() / 1000.0),
            r.compensations_completed.to_string(),
            f(r.locks.wait_time.mean() / 1000.0),
        ]
    });
    table.emit(
        "E3 — abort-probability sweep (optimism crossover)",
        "e3_abort_crossover",
    );
}

// ---------------------------------------------------------------------------
// E4 — blocking window under coordinator failure.
// ---------------------------------------------------------------------------

/// Crash the coordinator between VOTE-REQ and DECISION; sweep its downtime.
/// Under 2PC the participants' write locks stay held for the entire outage;
/// under O2PC they were released at the vote.
pub fn e4() {
    let mut table = Table::new(&[
        "coordinator downtime(ms)",
        "protocol",
        "max X-hold(ms)",
        "mean X-hold(ms)",
        "outcome",
    ]);
    let points: Vec<(u64, ProtocolKind, bool)> = [10u64, 50, 200, 1000, 5000]
        .into_iter()
        .flat_map(|down| {
            [
                (down, ProtocolKind::D2pl2pc, false),
                (down, ProtocolKind::D2pl2pc, true),
                (down, ProtocolKind::O2pc, false),
            ]
        })
        .collect();
    sweep_rows(&mut table, &points, |&(down_ms, proto, termination)| {
        let mut cfg = SystemConfig::new(3, proto);
        cfg.network = NetworkConfig::fixed(Duration::millis(1));
        if termination {
            // Cooperative termination: both participants are prepared
            // and uncertain, so the peer queries cannot unblock them —
            // the impossibility result, measured.
            cfg.termination_timeout = Some(Duration::millis(25));
        }
        cfg.seed = 0xE4;
        let mut failures = FailurePlan::new();
        // VOTE-REQs go out ~2 ms in; crash at 3 ms, after they are on
        // the wire but before any vote returns.
        failures.site_crash(
            SiteId(0),
            SimTime::ZERO + Duration::millis(3),
            SimTime::ZERO + Duration::millis(3 + down_ms),
        );
        cfg.failures = failures;
        let mut e = Engine::new(cfg);
        e.load(SiteId(1), Key(0), Value(100));
        e.load(SiteId(2), Key(0), Value(100));
        e.submit_at(
            SimTime::ZERO,
            TxnRequest::global_with_coordinator(
                SiteId(0),
                vec![
                    (SiteId(1), vec![Op::Add(Key(0), -5)]),
                    (SiteId(2), vec![Op::Add(Key(0), 5)]),
                ],
            ),
        );
        let r = e.run(Duration::secs(60));
        let outcome = if r.global_committed > 0 {
            "commit"
        } else {
            "abort"
        };
        let name = if termination {
            format!(
                "{proto}+coop-term ({} rounds)",
                r.counters.get("term.rounds")
            )
        } else {
            proto.to_string()
        };
        vec![
            down_ms.to_string(),
            name,
            f(r.locks.exclusive_hold.max() as f64 / 1000.0),
            f(r.locks.exclusive_hold.mean() / 1000.0),
            outcome.into(),
        ]
    });
    table.emit(
        "E4 — blocking window while the coordinator is down",
        "e4_blocking_window",
    );
}

// ---------------------------------------------------------------------------
// E5 — P1 overhead.
// ---------------------------------------------------------------------------

/// Compare bare O2PC against O2PC+P1 (and the simple variant) while sweeping
/// the abort probability. The paper: the marking sets "induce extra
/// conflicts ... only if one of the transactions aborts".
pub fn e5() {
    let mut table = Table::new(&[
        "p(abort)",
        "protocol",
        "throughput(txn/s)",
        "R1 checks",
        "R1 rejections",
        "R1 retries",
        "R1 forced aborts",
        "UDUM fired",
    ]);
    let points: Vec<(f64, ProtocolKind)> = [0.0, 0.1, 0.3, 0.5]
        .into_iter()
        .flat_map(|p| {
            [
                ProtocolKind::O2pc,
                ProtocolKind::O2pcP1,
                ProtocolKind::O2pcSimple,
            ]
            .map(|proto| (p, proto))
        })
        .collect();
    sweep_rows(&mut table, &points, |&(p, proto)| {
        // A multidatabase-style mix: local traffic both contends with
        // the globals and supplies the UDUM1 fences that let undone
        // markings be forgotten.
        let wl = BankingWorkload {
            sites: 4,
            accounts_per_site: 24,
            transfers: 400,
            local_fraction: 0.4,
            mean_interarrival: Duration::millis(1),
            seed: 0xE5,
            ..Default::default()
        };
        let mut cfg = SystemConfig::new(wl.sites, proto);
        cfg.network = NetworkConfig::fixed(Duration::millis(2));
        cfg.vote_abort_probability = p;
        // "It can be retried later" (§6.2): patience matters — quick
        // retry budgets convert rejections into forced aborts, whose
        // markings cause further rejections (a positive feedback loop).
        cfg.r1_max_retries = 25;
        cfg.r1_retry_delay = Duration::millis(4);
        cfg.seed = 0xE5;
        cfg.record_history = false;
        let r = run_schedule(cfg, &wl.generate(), Duration::secs(600));
        vec![
            format!("{p:.2}"),
            proto.to_string(),
            f(r.throughput()),
            r.counters.get("r1.checks").to_string(),
            r.counters.get("r1.rejections").to_string(),
            r.counters.get("r1.retries").to_string(),
            r.counters.get("r1.forced_aborts").to_string(),
            r.counters.get("udum.fired").to_string(),
        ]
    });
    table.emit(
        "E5 — admission (P1) overhead vs abort probability",
        "e5_p1_overhead",
    );
}

/// E5b (ablation): the UDUM1 "safe forgetting" transition on vs off. With
/// R3 disabled, undone markings accumulate forever and P1's admission check
/// rejects ever more transactions — quantifying the concurrency bought by
/// the paper's most intricate mechanism (Lemma 4).
pub fn e5b() {
    let mut table = Table::new(&[
        "UDUM (R3)",
        "p(abort)",
        "throughput(txn/s)",
        "R1 rejections",
        "R1 forced aborts",
        "abort rate",
    ]);
    let points: Vec<(bool, f64)> = [true, false]
        .into_iter()
        .flat_map(|u| [0.1, 0.3].map(|p| (u, p)))
        .collect();
    sweep_rows(&mut table, &points, |&(enable_udum, p)| {
        let wl = BankingWorkload {
            sites: 4,
            accounts_per_site: 24,
            transfers: 400,
            local_fraction: 0.4,
            mean_interarrival: Duration::millis(1),
            seed: 0xE5B,
            ..Default::default()
        };
        let mut cfg = SystemConfig::new(wl.sites, ProtocolKind::O2pcP1);
        cfg.network = NetworkConfig::fixed(Duration::millis(2));
        cfg.vote_abort_probability = p;
        cfg.enable_udum = enable_udum;
        cfg.r1_max_retries = 25;
        cfg.r1_retry_delay = Duration::millis(4);
        cfg.seed = 0xE5B;
        cfg.record_history = false;
        let r = run_schedule(cfg, &wl.generate(), Duration::secs(600));
        vec![
            if enable_udum {
                "on".into()
            } else {
                "off".to_string()
            },
            format!("{p:.2}"),
            f(r.throughput()),
            r.counters.get("r1.rejections").to_string(),
            r.counters.get("r1.forced_aborts").to_string(),
            f(r.abort_rate()),
        ]
    });
    table.emit(
        "E5b — ablation: UDUM1 safe forgetting on/off (O2PC+P1)",
        "e5b_udum_ablation",
    );
}

// ---------------------------------------------------------------------------
// E6 — message accounting.
// ---------------------------------------------------------------------------

/// Count messages per terminated transaction for every protocol variant:
/// the 2PC pattern must be identical (the paper's "no extra messages").
pub fn e6() {
    let mut table = Table::new(&[
        "protocol",
        "txns",
        "spawn",
        "subtxn_ack",
        "vote_req",
        "vote",
        "decision",
        "decision_ack",
        "2PC msgs/txn",
    ]);
    let points: Vec<ProtocolKind> = ProtocolKind::all().to_vec();
    sweep_rows(&mut table, &points, |&proto| {
        let wl = BankingWorkload {
            sites: 4,
            accounts_per_site: 32,
            transfers: 300,
            mean_interarrival: Duration::millis(3),
            seed: 0xE6,
            ..Default::default()
        };
        let mut cfg = SystemConfig::new(wl.sites, proto);
        cfg.vote_abort_probability = 0.1;
        cfg.seed = 0xE6;
        cfg.record_history = false;
        let r = run_schedule(cfg, &wl.generate(), Duration::secs(600));
        let txns = r.global_committed + r.global_aborted;
        vec![
            proto.to_string(),
            txns.to_string(),
            r.counters.get("msg.spawn").to_string(),
            r.counters.get("msg.subtxn_ack").to_string(),
            r.counters.get("msg.vote_req").to_string(),
            r.counters.get("msg.vote").to_string(),
            r.counters.get("msg.decision").to_string(),
            r.counters.get("msg.decision_ack").to_string(),
            f(r.msgs_2pc_per_txn()),
        ]
    });
    table.emit(
        "E6 — message counts (O2PC/P1 add no message types or rounds)",
        "e6_message_counts",
    );
}

// ---------------------------------------------------------------------------
// E7 — correctness audit.
// ---------------------------------------------------------------------------

/// Run adversarial workloads, rebuild the serialization graphs from the
/// recorded histories, and audit: (i) no aborts ⇒ fully serializable;
/// (ii) bare O2PC with aborts ⇒ regular cycles appear; (iii) O2PC+P1 ⇒ no
/// regular cycles; (iv) no transaction ever reads from both `T_i` and
/// `CT_i` in correct runs (Theorem 2).
pub fn e7() {
    let mut table = Table::new(&[
        "workload",
        "protocol",
        "aborted",
        "cyclic SCCs",
        "regular cycles",
        "SCCs dismissed",
        "AoC violations",
        "criterion",
    ]);
    // Tight key space + aborts: adversarial for cycle formation.
    let scenarios: Vec<(&str, f64, ProtocolKind, u64)> = vec![
        ("banking p=0", 0.0, ProtocolKind::O2pc, 0xE7),
        ("banking p=0.4", 0.4, ProtocolKind::O2pc, 0xE7),
        ("banking p=0.4", 0.4, ProtocolKind::O2pcP1, 0xE7),
        ("banking p=0.4", 0.4, ProtocolKind::O2pcSimple, 0xE7),
        ("banking p=0.4", 0.4, ProtocolKind::D2pl2pc, 0xE7),
    ];
    for (name, p, proto, seed) in scenarios {
        // Aggregate over several seeds to give cycles a chance to form.
        // Each salt is an independent run; fan them out and fold the
        // returned partials in salt order.
        let partials = pool::map_ordered(8, cores(), |salt| {
            let salt = salt as u64;
            let wl = BankingWorkload {
                sites: 4,
                accounts_per_site: 2,
                transfers: 120,
                mean_interarrival: Duration::micros(400),
                seed: seed ^ (salt * 0x9E37),
                ..Default::default()
            };
            let mut cfg = SystemConfig::new(wl.sites, proto);
            cfg.network = NetworkConfig::fixed(Duration::millis(3));
            cfg.vote_abort_probability = p;
            cfg.seed = seed ^ salt;
            // Tiny key space + 40% aborts is deliberately pathological;
            // bound each run so a P1 rejection storm cannot stall the sweep.
            cfg.max_events = 2_000_000;
            let r = run_schedule(cfg, &wl.generate(), Duration::secs(600));
            let report = audit(&r.history, 10_000, 8);
            (
                r.global_aborted,
                report.cyclic_sccs,
                report.sccs_dismissed,
                report.regular_cycle.is_some(),
                report.compensation_atomicity_violations.len(),
                report.is_correct(),
            )
        });
        let mut total_sccs = 0usize;
        let mut regular = 0usize;
        let mut dismissed = 0usize;
        let mut aoc = 0usize;
        let mut aborted = 0u64;
        let mut all_correct = true;
        for (ab, sccs, dis, reg, a, correct) in partials {
            aborted += ab;
            total_sccs += sccs;
            dismissed += dis;
            regular += reg as usize;
            aoc += a;
            all_correct &= correct;
        }
        table.row(&[
            name.into(),
            proto.to_string(),
            aborted.to_string(),
            total_sccs.to_string(),
            format!("{regular}/8 runs"),
            dismissed.to_string(),
            aoc.to_string(),
            if all_correct {
                "SATISFIED".into()
            } else {
                "VIOLATED".to_string()
            },
        ]);
    }
    table.emit(
        "E7 — serialization-graph audit of recorded histories",
        "e7_correctness_audit",
    );
}

// ---------------------------------------------------------------------------
// E8 — real (non-compensatable) actions.
// ---------------------------------------------------------------------------

/// Travel bookings where some sites dispense non-compensatable real actions
/// (ticket printing): those sites hold to the decision, the rest release at
/// the vote. The hold-time split shows blocking confined to real-action
/// sites.
pub fn e8() {
    let mut table = Table::new(&[
        "real-action sites",
        "mean X-hold all(ms)",
        "max X-hold(ms)",
        "p50 X-hold(ms)",
        "committed",
        "aborted",
    ]);
    let points: Vec<u32> = (0..=3u32).collect();
    sweep_rows(&mut table, &points, |&real_sites| {
        let wl = TravelWorkload {
            sites: 3,
            items_per_site: 16,
            capacity: 40,
            bookings: 200,
            legs: 3,
            mean_interarrival: Duration::millis(3),
            seed: 0xE8,
        };
        let mut cfg = SystemConfig::new(wl.sites, ProtocolKind::O2pc);
        cfg.network = NetworkConfig::fixed(Duration::millis(10));
        cfg.seed = 0xE8;
        cfg.record_history = false;
        for s in 0..real_sites {
            cfg.real_action_sites.insert(SiteId(s));
        }
        let r = run_schedule(cfg, &wl.generate(), Duration::secs(600));
        vec![
            real_sites.to_string(),
            f(r.locks.exclusive_hold.mean() / 1000.0),
            f(r.locks.exclusive_hold.max() as f64 / 1000.0),
            f(r.locks.exclusive_hold.p50() as f64 / 1000.0),
            r.global_committed.to_string(),
            r.global_aborted.to_string(),
        ]
    });
    table.emit(
        "E8 — real actions: blocking confined to non-compensatable sites",
        "e8_real_actions",
    );
}

// ---------------------------------------------------------------------------
// E9 — multidatabase autonomy: local latency under foreign global traffic.
// ---------------------------------------------------------------------------

/// The paper's multidatabase motivation (§1): a protocol where a competing
/// organization's coordinator can block local resources is unacceptable.
/// Measure the latency of purely local transactions while global traffic
/// (with aborts) runs under each protocol, and with a coordinator outage.
pub fn e9() {
    let mut table = Table::new(&[
        "scenario",
        "protocol",
        "local p50(ms)",
        "local p99(ms)",
        "local mean(ms)",
        "locals done",
    ]);
    let points: Vec<(&str, bool, ProtocolKind)> =
        [("healthy", false), ("coordinator crash 2s", true)]
            .into_iter()
            .flat_map(|(s, c)| {
                [
                    ProtocolKind::D2pl2pc,
                    ProtocolKind::O2pc,
                    ProtocolKind::O2pcP1,
                ]
                .map(|p| (s, c, p))
            })
            .collect();
    sweep_rows(&mut table, &points, |&(scenario, crash, proto)| {
        let wl = MultidbWorkload {
            seed: 0xE9,
            ..Default::default()
        };
        let mut cfg = SystemConfig::new(wl.sites, proto);
        cfg.network = NetworkConfig::fixed(Duration::millis(5));
        cfg.vote_abort_probability = 0.15;
        cfg.seed = 0xE9;
        cfg.record_history = false;
        if crash {
            // Globals are coordinated from their first participant;
            // crash site 0 mid-run: its hosted coordinators go silent.
            let mut fp = FailurePlan::new();
            fp.site_crash(
                SiteId(0),
                SimTime::ZERO + Duration::millis(40),
                SimTime::ZERO + Duration::millis(2_040),
            );
            cfg.failures = fp;
        }
        let r = run_schedule(cfg, &wl.generate(), Duration::secs(600));
        vec![
            scenario.into(),
            proto.to_string(),
            f(r.local_latency.p50() as f64 / 1000.0),
            f(r.local_latency.p99() as f64 / 1000.0),
            f(r.local_latency.mean() / 1000.0),
            r.local_committed.to_string(),
        ]
    });
    table.emit(
        "E9 — multidatabase autonomy: local latency under global traffic",
        "e9_autonomy",
    );
}
