//! Process-level crash test: run a durable banking workload in a child
//! process, SIGKILL it mid-run, then recover from the on-disk WALs alone and
//! check the money-conservation and outcome-consistency invariants.
//!
//! The simulator's `Crash` timer and the injected write faults exercise the
//! durable path *in process* — buffered state is dropped by code we wrote.
//! This binary removes that last layer of trust: the kernel destroys the
//! process at an arbitrary instruction, so whatever `recover_killed_run`
//! finds on disk is exactly what a real power-cut leaves behind (including a
//! torn frame if the kill lands mid-`write`).
//!
//! Modes:
//!
//! - parent (default): spawn itself with `--child`, poll the WAL directory
//!   until the logs have grown past a threshold, `SIGKILL` the child, then
//!   resolve the remains. Exit 0 iff every invariant holds.
//! - `--child --dir D --seed S --sites N`: run the workload with
//!   `durable_wal_dir = D` until done (the parent kills it first).

use o2pc_chaos::recover_killed_run;
use o2pc_common::Duration;
use o2pc_compensation::CompensationModel;
use o2pc_core::{Engine, SystemConfig};
use o2pc_protocol::ProtocolKind;
use o2pc_workload::BankingWorkload;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

const ACCOUNTS_PER_SITE: u64 = 8;
const INITIAL_BALANCE: i64 = 1_000;
const TRANSFERS: usize = 20_000;

fn workload(seed: u64, sites: u32) -> BankingWorkload {
    BankingWorkload {
        sites,
        accounts_per_site: ACCOUNTS_PER_SITE,
        initial_balance: INITIAL_BALANCE,
        transfers: TRANSFERS,
        mean_interarrival: Duration::millis(1),
        local_fraction: 0.1,
        seed: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        ..Default::default()
    }
}

fn run_child(dir: &Path, seed: u64, sites: u32, segment_bytes: Option<u64>) {
    let wl = workload(seed, sites);
    let schedule = wl.generate();
    let mut cfg = SystemConfig::new(sites, ProtocolKind::O2pcP2);
    cfg.seed = seed;
    cfg.vote_timeout = Some(Duration::millis(40));
    cfg.termination_timeout = Some(Duration::millis(50));
    cfg.retransmit_base = Some(Duration::millis(10));
    cfg.durable_wal_dir = Some(dir.to_path_buf());
    // Physical-fsync gating: a promise must not be released until its bytes
    // are actually on disk, because the parent's SIGKILL can land between a
    // sealed batch and its fsync. This is the honest mode for a real kill;
    // the deterministic sealed-gate mode is for simulated crashes only.
    cfg.wal_background_flush = true;
    if let Some(sb) = segment_bytes {
        cfg.wal_segment_bytes = sb;
    }
    let mut engine = Engine::new(cfg);
    schedule.install(&mut engine);
    engine.run(Duration::secs(600));
}

/// Total *allocated* bytes across the site WAL files (0 if the dir does not
/// exist yet). Uses `st_blocks`, not file length: segments are preallocated
/// sparse with `set_len`, so their length jumps to full capacity at creation
/// while blocks only accrue as flushed data reaches the disk — exactly the
/// progress signal the kill trigger needs.
fn wal_bytes(dir: &Path) -> u64 {
    use std::os::unix::fs::MetadataExt;
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    entries
        .flatten()
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.blocks() * 512)
        .sum()
}

fn parse_args() -> (bool, Option<PathBuf>, u64, u32, Option<u64>) {
    let mut child = false;
    let mut dir = None;
    let mut seed = 0xD15C_u64;
    let mut sites = 4u32;
    let mut segment_bytes = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--child" => child = true,
            "--dir" => dir = Some(PathBuf::from(args.next().expect("--dir needs a path"))),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).expect("--seed N"),
            "--sites" => sites = args.next().and_then(|v| v.parse().ok()).expect("--sites N"),
            "--segment-bytes" => {
                segment_bytes = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--segment-bytes N"),
                )
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: kill_recover [--dir D] [--seed S] [--sites N] [--segment-bytes N]"
                );
                std::process::exit(2);
            }
        }
    }
    (child, dir, seed, sites, segment_bytes)
}

fn main() {
    let (child, dir, seed, sites, segment_bytes) = parse_args();
    if child {
        run_child(
            &dir.expect("--child requires --dir"),
            seed,
            sites,
            segment_bytes,
        );
        return;
    }

    let dir = dir.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("o2pc-kill-recover-{}", std::process::id()))
    });
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create WAL dir");

    let exe = std::env::current_exe().expect("current_exe");
    let mut cmd = Command::new(exe);
    cmd.args([
        "--child",
        "--seed",
        &seed.to_string(),
        "--sites",
        &sites.to_string(),
    ]);
    if let Some(sb) = segment_bytes {
        cmd.args(["--segment-bytes", &sb.to_string()]);
    }
    let mut victim = cmd
        .arg("--dir")
        .arg(&dir)
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn child");

    // Let the run get past the initial checkpoint and well into traffic,
    // then kill without warning. The threshold scales with site count so the
    // kill always lands while transactions are in flight, not at the tail.
    let threshold = 16 * 1024 * sites as u64;
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    let mut killed = true;
    loop {
        if let Some(status) = victim.try_wait().expect("try_wait") {
            // Finished before we pulled the trigger: recovery of a complete
            // log is still a valid (if easier) check.
            eprintln!("child exited before kill ({status}); resolving complete logs");
            killed = false;
            break;
        }
        if wal_bytes(&dir) >= threshold {
            victim.kill().expect("SIGKILL child"); // Child::kill is SIGKILL on unix
            victim.wait().expect("reap child");
            break;
        }
        if std::time::Instant::now() >= deadline {
            victim.kill().ok();
            victim.wait().ok();
            eprintln!("FAIL: WAL never reached {threshold} bytes within the deadline");
            std::process::exit(1);
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }

    let expected = workload(seed, sites).expected_total();
    let report = recover_killed_run(&dir, sites, CompensationModel::Restricted, expected);
    println!(
        "kill-recover seed {seed}: killed={killed} sites={} records={} decided={} \
         compensated={} prepared_rolled_back={} total={}",
        report.sites,
        report.records,
        report.decided,
        report.compensated,
        report.prepared_rolled_back,
        report.recovered_total,
    );
    let _ = std::fs::remove_dir_all(&dir);
    if report.survived() {
        println!("all invariants hold");
    } else {
        for v in &report.violations {
            eprintln!("VIOLATION: {v}");
        }
        std::process::exit(1);
    }
}
