//! Experiment binary: see `o2pc_bench::experiments::e2`.
fn main() {
    o2pc_bench::experiments::e2();
}
