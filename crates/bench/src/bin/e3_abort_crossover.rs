//! Experiment binary: see `o2pc_bench::experiments::e3`.
fn main() {
    o2pc_bench::experiments::e3();
}
