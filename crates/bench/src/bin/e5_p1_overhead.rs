//! Experiment binary: see `o2pc_bench::experiments::e5`.
fn main() {
    o2pc_bench::experiments::e5();
}
