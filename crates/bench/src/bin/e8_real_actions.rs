//! Experiment binary: see `o2pc_bench::experiments::e8`.
fn main() {
    o2pc_bench::experiments::e8();
}
