//! Experiment binary: see `o2pc_bench::experiments::e6`.
fn main() {
    o2pc_bench::experiments::e6();
}
