//! `perf` — the wall-clock perf-regression harness.
//!
//! Measures the engine's hot-path rates (all higher-is-better):
//!
//! * `chaos_schedules_per_sec` — full chaos runs (plan generation, engine
//!   execution under faults, oracle check including the SG audit) per
//!   second of wall time, pinned to one core so the baseline gate stays
//!   comparable across machines;
//! * `chaos_sched_per_sec_parallel` — the same lifecycle fanned out over
//!   the worker pool on `--cores N` threads (default: all). Reported,
//!   never gated: the absolute rate belongs to the core count; the ratio
//!   to the sequential rate is the pool's speedup;
//! * `sim_txn_per_sec` — committed transactions per second on the
//!   deterministic simulator under a contended banking workload;
//! * `durable_txn_per_sec` — the same workload with every site logging
//!   through the file-backed WAL under group commit (real appends + fsync
//!   at flush points, durability-gated promises). Reported, never gated:
//!   the absolute rate belongs to the filesystem; the ratio to
//!   `sim_txn_per_sec` is what group commit is costing;
//! * `threaded_txn_per_sec` — decided transactions per second on the
//!   threaded wall-clock runtime, measured **open-loop**: thousands of
//!   client sessions offer Poisson arrivals regardless of completions and
//!   the pipelined coordinator admits a bounded window;
//! * `threaded_p50_us` / `threaded_p99_us` / `threaded_p999_us` — the
//!   open-loop latency distribution of the same run, measured from each
//!   request's *scheduled* submit time so admission queueing counts
//!   (reported, never gated — latency is lower-is-better and the gate
//!   compares only `*_per_sec` rates);
//! * `audit_per_sec` — full correctness audits per second of the canned
//!   adversarial history (E7's `banking p=0.4` scenario: tiny key space,
//!   40% autonomous aborts — the cycle-richest history the harness knows).
//!
//! Usage:
//!
//! ```text
//! perf [--quick] [--label NAME] [--out FILE] [--cores N]
//!      [--baseline FILE] [--tolerance PCT] [--floor NAME=VALUE]...
//!      [--compare OLD_BIN]
//! ```
//!
//! Every metric is measured as **best-of-N rounds** (N = 5 full, 3 quick):
//! on shared machines noise only ever slows a round down, so the fastest
//! round is the least-contaminated estimate of the code's true rate.
//!
//! `--quick` shrinks repetition counts (CI smoke); the metric definitions
//! are unchanged, so quick rates are comparable to full rates up to noise.
//! With `--baseline`, every `*_per_sec` metric present in the baseline's
//! `after` (or top-level `metrics`) object is compared and the process
//! exits non-zero if any rate fell more than `--tolerance` percent
//! (default 25) below it. `--floor NAME=VALUE` (repeatable) additionally
//! enforces an absolute minimum on a rate — CI uses it to pin the threaded
//! backend's throughput floor independent of baseline drift.
//!
//! `--compare OLD_BIN` runs an **interleaved A/B**: five alternating
//! OLD-then-NEW subprocess rounds (each a full suite run of that binary),
//! folding per-side bests — so slow machine drift hits both sides equally
//! instead of biasing whichever ran last. The JSON artifact carries
//! `before` (OLD) and `after` (NEW) objects; `after` is what a later
//! `--baseline` gate reads. `--quick`/`--cores` are forwarded to both
//! sides; OLD only needs to understand those original flags.

use o2pc_bench::{run_open_loop, OpenLoopClients};
use o2pc_chaos::{run_plan, ChaosConfig, ChaosPlan, Hardening};
use o2pc_common::pool;
use o2pc_common::{Duration, History};
use o2pc_core::{Engine, SystemConfig};
use o2pc_protocol::ProtocolKind;
use o2pc_sgraph::audit;
use o2pc_sim::NetworkConfig;
use o2pc_workload::BankingWorkload;
use std::time::Instant;

struct Args {
    quick: bool,
    label: String,
    out: Option<String>,
    baseline: Option<String>,
    tolerance: f64,
    floors: Vec<(String, f64)>,
    cores: usize,
    compare: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        label: String::from("current"),
        out: None,
        baseline: None,
        tolerance: 25.0,
        floors: Vec::new(),
        cores: 0, // all available (for the parallel metric only)
        compare: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--cores" => {
                args.cores = it
                    .next()
                    .expect("--cores needs a value")
                    .parse()
                    .expect("--cores must be a number")
            }
            "--label" => args.label = it.next().expect("--label needs a value"),
            "--out" => args.out = Some(it.next().expect("--out needs a value")),
            "--compare" => args.compare = Some(it.next().expect("--compare needs a value")),
            "--baseline" => args.baseline = Some(it.next().expect("--baseline needs a value")),
            "--tolerance" => {
                args.tolerance = it
                    .next()
                    .expect("--tolerance needs a value")
                    .parse()
                    .expect("--tolerance must be a number")
            }
            "--floor" => {
                let spec = it.next().expect("--floor needs NAME=VALUE");
                let (name, value) = spec
                    .split_once('=')
                    .expect("--floor argument must look like NAME=VALUE");
                args.floors.push((
                    name.to_string(),
                    value.parse().expect("--floor value must be a number"),
                ));
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Best rate over `rounds` repetitions of a timed section. Shared-machine
/// CPU noise only ever *slows* a round down (scheduling, frequency
/// scaling, neighbours), so the maximum is the least-contaminated sample —
/// the standard throughput-bench estimator on machines we don't own.
fn best_of(rounds: usize, mut timed: impl FnMut() -> f64) -> f64 {
    (0..rounds).map(|_| timed()).fold(0.0, f64::max)
}

/// Measurement rounds per metric: enough repeats that at least one round
/// dodges the noise, few enough that the harness stays a smoke test.
fn rounds(quick: bool) -> usize {
    if quick {
        3
    } else {
        5
    }
}

/// Chaos throughput: complete schedule lifecycles per second, run strictly
/// sequentially. This is the *gated* chaos metric — pinned to one core so
/// the baseline comparison measures the engine, not the machine's core
/// count.
fn bench_chaos(quick: bool) -> f64 {
    let seeds: u64 = if quick { 6 } else { 24 };
    let cfg = ChaosConfig::default();
    // Warm-up run outside the timed window (first run pays page-in costs).
    let _ = run_plan(&ChaosPlan::generate(1000, &cfg), Hardening::default());
    best_of(rounds(quick), || {
        let start = Instant::now();
        let mut survived = 0usize;
        for seed in 0..seeds {
            let plan = ChaosPlan::generate(seed, &cfg);
            let outcome = run_plan(&plan, Hardening::default());
            if outcome.survived() {
                survived += 1;
            }
        }
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(
            survived, seeds as usize,
            "chaos runs must stay violation-free during perf measurement"
        );
        seeds as f64 / secs
    })
}

/// Chaos throughput with schedules fanned out over the worker pool on every
/// available core (or `--cores N`). Reported, never gated: the absolute
/// rate belongs to the machine's core count; the *ratio* to the sequential
/// `chaos_schedules_per_sec` is the pool's speedup.
fn bench_chaos_parallel(quick: bool, cores: usize) -> f64 {
    let seeds = if quick { 24 } else { 96 };
    let cfg = ChaosConfig::default();
    best_of(rounds(quick), || {
        let start = Instant::now();
        let mut survived = 0usize;
        pool::for_each_ordered(
            seeds,
            cores,
            |i| {
                let plan = ChaosPlan::generate(i as u64, &cfg);
                run_plan(&plan, Hardening::default()).survived()
            },
            |_, ok| {
                survived += ok as usize;
                true
            },
        );
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(
            survived, seeds,
            "chaos runs must stay violation-free during perf measurement"
        );
        seeds as f64 / secs
    })
}

/// Simulator throughput: committed transactions per wall second under a
/// contended banking workload.
fn bench_sim(quick: bool) -> f64 {
    let reps = if quick { 1 } else { 3 };
    best_of(rounds(quick), || {
        let mut committed = 0u64;
        let mut secs = 0.0;
        for rep in 0..reps {
            let wl = BankingWorkload {
                sites: 4,
                accounts_per_site: 16,
                transfers: 3_000,
                mean_interarrival: Duration::micros(200),
                local_fraction: 0.2,
                seed: 0x5EED ^ rep,
                ..Default::default()
            };
            let mut cfg = SystemConfig::new(wl.sites, ProtocolKind::O2pcP2);
            cfg.seed = 0x5EED ^ rep;
            cfg.vote_abort_probability = 0.05;
            let mut engine = Engine::new(cfg);
            let schedule = wl.generate();
            schedule.install(&mut engine);
            let start = Instant::now();
            let report = engine.run(Duration::secs(600));
            secs += start.elapsed().as_secs_f64();
            committed += report.global_committed + report.local_committed;
        }
        committed as f64 / secs
    })
}

/// Durable group-commit throughput: the same contended banking workload as
/// `bench_sim`, but every site logs through the file-backed WAL (real
/// append + fsync at each group-commit flush point, yes-votes and acks
/// gated on durability). Reported, not gated: the rate is
/// filesystem-dependent, and the point of recording it is the *ratio* to
/// `sim_txn_per_sec` — how much of the in-memory rate group commit keeps.
fn bench_durable(quick: bool) -> f64 {
    let reps = if quick { 1 } else { 3 };
    let dir = std::env::temp_dir().join(format!("o2pc-perf-durable-{}", std::process::id()));
    let rate = best_of(rounds(quick), || {
        let mut committed = 0u64;
        let mut secs = 0.0;
        for rep in 0..reps {
            let wl = BankingWorkload {
                sites: 4,
                accounts_per_site: 16,
                transfers: 3_000,
                mean_interarrival: Duration::micros(200),
                local_fraction: 0.2,
                seed: 0x5EED ^ rep,
                ..Default::default()
            };
            let mut cfg = SystemConfig::new(wl.sites, ProtocolKind::O2pcP2);
            cfg.seed = 0x5EED ^ rep;
            cfg.vote_abort_probability = 0.05;
            let run_dir = dir.join(format!("rep-{rep}"));
            let _ = std::fs::remove_dir_all(&run_dir);
            cfg.durable_wal_dir = Some(run_dir);
            let mut engine = Engine::new(cfg);
            let schedule = wl.generate();
            schedule.install(&mut engine);
            let start = Instant::now();
            let report = engine.run(Duration::secs(600));
            secs += start.elapsed().as_secs_f64();
            committed += report.global_committed + report.local_committed;
        }
        committed as f64 / secs
    });
    let _ = std::fs::remove_dir_all(&dir);
    rate
}

/// One open-loop threaded measurement: achieved rate plus the latency tail.
struct ThreadedMeasure {
    txn_per_sec: f64,
    p50_us: u64,
    p99_us: u64,
    p999_us: u64,
}

/// Threaded-runtime throughput, measured open-loop: 2 000 client sessions
/// offer Poisson arrivals far above capacity, the pipelined coordinator
/// admits a bounded window per site, and the run ends when every offered
/// transaction is decided. Latency percentiles come from the best round
/// (the one whose rate we report) and are measured from each request's
/// scheduled submit time, so queueing at the admission gate is visible.
fn bench_threaded(quick: bool) -> ThreadedMeasure {
    let total = if quick { 6_000 } else { 20_000 };
    let clients = OpenLoopClients {
        sessions: 2_000,
        offered_txn_per_sec: 150_000.0,
        total_txns: total,
        mix: BankingWorkload {
            sites: 3,
            accounts_per_site: 2_048,
            local_fraction: 0.2,
            seed: 0x7EED,
            ..Default::default()
        },
    };
    let mut best = ThreadedMeasure {
        txn_per_sec: 0.0,
        p50_us: 0,
        p99_us: 0,
        p999_us: 0,
    };
    for _ in 0..rounds(quick) {
        let mut cfg = SystemConfig::new(3, ProtocolKind::O2pcP2);
        cfg.seed = 0x7EED;
        // The post-hoc history is not consulted here; recording it would
        // only measure allocator traffic.
        cfg.record_history = false;
        // The simulator charges a virtual 50 µs per operation; on the
        // wall-clock runtime that becomes a *real* park per op and the
        // harness would measure OS timer slack, not the engine. A server
        // bench models op service as CPU work, which the engine already is.
        cfg.op_service_time = Duration::ZERO;
        // Per coordinator site: 3 sites × 8 = 24 globals pipelining at once,
        // enough to hide the commit round-trips without driving the R1
        // validation rule into livelock on the shared account space.
        cfg.admission_window = Some(8);
        let out = run_open_loop(
            cfg,
            std::time::Duration::ZERO,
            &clients,
            Duration::secs(600),
        );
        if out.achieved_txn_per_sec > best.txn_per_sec {
            let lat = out.latency();
            best = ThreadedMeasure {
                txn_per_sec: out.achieved_txn_per_sec,
                p50_us: lat.p50(),
                p99_us: lat.p99(),
                p999_us: lat.p999(),
            };
        }
    }
    best
}

/// The canned adversarial history: E7's `banking p=0.4` scenario (salt 0) —
/// four sites, two accounts each, 40% autonomous aborts, bare O2PC. The
/// cycle-richest history in the experiment suite.
fn adversarial_history() -> History {
    let wl = BankingWorkload {
        sites: 4,
        accounts_per_site: 2,
        transfers: 120,
        mean_interarrival: Duration::micros(400),
        seed: 0xE7,
        ..Default::default()
    };
    let mut cfg = SystemConfig::new(wl.sites, ProtocolKind::O2pc);
    cfg.network = NetworkConfig::fixed(Duration::millis(3));
    cfg.vote_abort_probability = 0.4;
    cfg.seed = 0xE7;
    cfg.max_events = 2_000_000;
    let mut engine = Engine::new(cfg);
    wl.generate().install(&mut engine);
    engine.run(Duration::secs(600)).history
}

/// Audit throughput on the canned history, with the E7 enumeration bounds.
fn bench_audit(quick: bool) -> f64 {
    let history = adversarial_history();
    let report = audit(&history, 10_000, 8); // warm-up + sanity
    assert!(
        report.regular_cycle.is_some() || !report.serializable,
        "the adversarial history should not be conflict-free"
    );
    let iters = if quick { 3 } else { 10 };
    best_of(rounds(quick), || {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(audit(std::hint::black_box(&history), 10_000, 8));
        }
        iters as f64 / start.elapsed().as_secs_f64()
    })
}

fn render_json(label: &str, quick: bool, metrics: &[(&str, f64)]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"label\": \"{label}\",\n"));
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str("  \"metrics\": {\n");
    for (i, (name, value)) in metrics.iter().enumerate() {
        let sep = if i + 1 == metrics.len() { "" } else { "," };
        out.push_str(&format!("    \"{name}\": {value:.3}{sep}\n"));
    }
    out.push_str("  }\n}\n");
    out
}

/// Extract the body of the first `"name": { ... }` object in `content`
/// (brace-matched), if present.
fn extract_object<'a>(content: &'a str, name: &str) -> Option<&'a str> {
    let key = format!("\"{name}\"");
    let at = content.find(&key)?;
    let open = content[at..].find('{')? + at;
    let mut depth = 0usize;
    for (i, c) in content[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&content[open + 1..open + i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Parse flat `"key": number` pairs from an object body.
fn parse_pairs(body: &str) -> Vec<(String, f64)> {
    let mut pairs = Vec::new();
    let mut rest = body;
    while let Some(q0) = rest.find('"') {
        let after = &rest[q0 + 1..];
        let Some(q1) = after.find('"') else { break };
        let key = &after[..q1];
        let tail = &after[q1 + 1..];
        let Some(colon) = tail.find(':') else { break };
        let val_str: String = tail[colon + 1..]
            .chars()
            .skip_while(|c| c.is_whitespace())
            .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
            .collect();
        if let Ok(v) = val_str.parse::<f64>() {
            pairs.push((key.to_string(), v));
        }
        rest = &tail[colon + 1..];
    }
    pairs
}

/// Compare against a committed baseline; returns false on regression.
/// Only `*_per_sec` rates are gated — latency metrics (`*_us`) are
/// lower-is-better and recorded for the report, not for the gate.
fn gate(baseline_path: &str, metrics: &[(&str, f64)], tolerance: f64) -> bool {
    let content = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
    // A combined before/after artifact gates on `after`; a plain perf
    // artifact gates on its `metrics` object.
    let body = extract_object(&content, "after")
        .or_else(|| extract_object(&content, "metrics"))
        .expect("baseline has neither an `after` nor a `metrics` object");
    let baseline = parse_pairs(body);
    let mut ok = true;
    println!("\ngate vs {baseline_path} (tolerance {tolerance}%):");
    for (name, base) in &baseline {
        if !name.ends_with("_per_sec") {
            continue;
        }
        // The durable rate is dominated by the filesystem's fsync cost, not
        // the engine, and the parallel chaos rate by the machine's core
        // count — both recorded for the report, never gated. (The parallel
        // metric's name also fails the `_per_sec` suffix check above; this
        // arm keeps the exclusion explicit rather than accidental.)
        if name == "durable_txn_per_sec" || name == "chaos_sched_per_sec_parallel" {
            continue;
        }
        let Some((_, cur)) = metrics.iter().find(|(n, _)| n == name) else {
            continue;
        };
        let floor = base * (1.0 - tolerance / 100.0);
        let verdict = if *cur >= floor { "ok" } else { "REGRESSION" };
        println!("  {name:<28} baseline {base:>12.3}  current {cur:>12.3}  {verdict}");
        ok &= *cur >= floor;
    }
    ok
}

/// Enforce absolute `--floor NAME=VALUE` minimums; returns false if any
/// named metric falls below its floor (or is missing entirely).
fn enforce_floors(floors: &[(String, f64)], metrics: &[(&str, f64)]) -> bool {
    let mut ok = true;
    for (name, floor) in floors {
        match metrics.iter().find(|(n, _)| n == name) {
            Some((_, cur)) => {
                let verdict = if cur >= floor { "ok" } else { "BELOW FLOOR" };
                println!("  floor {name:<22} min {floor:>12.3}  current {cur:>12.3}  {verdict}");
                ok &= cur >= floor;
            }
            None => {
                println!("  floor {name:<22} min {floor:>12.3}  current      MISSING  BELOW FLOOR");
                ok = false;
            }
        }
    }
    ok
}

/// One subprocess measurement round: run `bin`'s full suite with `--out`
/// into a scratch file and parse its `metrics` object back.
fn compare_round(bin: &str, args: &Args, label: &str, out: &std::path::Path) -> Vec<(String, f64)> {
    let mut cmd = std::process::Command::new(bin);
    cmd.args(["--label", label, "--out"]).arg(out);
    if args.quick {
        cmd.arg("--quick");
    }
    if args.cores != 0 {
        cmd.args(["--cores", &args.cores.to_string()]);
    }
    // The child's per-metric chatter would drown the A/B summary; its
    // numbers all land in the JSON we parse back anyway.
    cmd.stdout(std::process::Stdio::null());
    let status = cmd
        .status()
        .unwrap_or_else(|e| panic!("cannot launch {bin}: {e}"));
    assert!(status.success(), "{bin} exited with {status}");
    let content =
        std::fs::read_to_string(out).unwrap_or_else(|e| panic!("cannot read round output: {e}"));
    let body = extract_object(&content, "metrics").expect("round output has no metrics object");
    parse_pairs(body)
}

/// Fold one round into the per-side best: max for rates, min for `*_us`
/// latencies (both are the least-noise-contaminated direction).
fn fold_best(best: &mut Vec<(String, f64)>, round: Vec<(String, f64)>) {
    for (name, value) in round {
        match best.iter_mut().find(|(n, _)| *n == name) {
            Some((n, cur)) => {
                *cur = if n.ends_with("_us") {
                    cur.min(value)
                } else {
                    cur.max(value)
                };
            }
            None => best.push((name, value)),
        }
    }
}

fn render_pairs(out: &mut String, name: &str, pairs: &[(String, f64)], trailing_comma: bool) {
    out.push_str(&format!("  \"{name}\": {{\n"));
    for (i, (key, value)) in pairs.iter().enumerate() {
        let sep = if i + 1 == pairs.len() { "" } else { "," };
        out.push_str(&format!("    \"{key}\": {value:.3}{sep}\n"));
    }
    out.push_str(if trailing_comma { "  },\n" } else { "  }\n" });
}

/// Interleaved A/B against an older perf binary: five alternating
/// OLD-then-NEW full-suite subprocess rounds, per-side bests, and a
/// combined `before`/`after` artifact (whose `after` object the normal
/// `--baseline` gate knows how to read).
fn run_compare(old_bin: &str, args: &Args) {
    let new_bin = std::env::current_exe().expect("cannot locate current binary");
    let rounds = 5;
    let scratch = std::env::temp_dir().join(format!("o2pc-perf-compare-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("cannot create compare scratch dir");

    println!(
        "interleaved A/B ({} mode, {rounds} rounds): OLD={old_bin}  NEW={}",
        if args.quick { "quick" } else { "full" },
        new_bin.display()
    );
    let mut before: Vec<(String, f64)> = Vec::new();
    let mut after: Vec<(String, f64)> = Vec::new();
    for round in 0..rounds {
        println!("  round {}/{rounds}: old ...", round + 1);
        let out = scratch.join(format!("old-{round}.json"));
        fold_best(
            &mut before,
            compare_round(old_bin, args, &format!("old-{round}"), &out),
        );
        println!("  round {}/{rounds}: new ...", round + 1);
        let out = scratch.join(format!("new-{round}.json"));
        fold_best(
            &mut after,
            compare_round(
                new_bin.to_str().expect("non-utf8 exe path"),
                args,
                &format!("new-{round}"),
                &out,
            ),
        );
    }
    let _ = std::fs::remove_dir_all(&scratch);

    println!("\nper-metric best of {rounds} rounds per side:");
    for (name, new_v) in &after {
        let old_v = before.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
        match old_v {
            Some(old_v) if old_v > 0.0 => println!(
                "  {name:<28} old {old_v:>12.3}  new {new_v:>12.3}  ratio {:>6.2}x",
                new_v / old_v
            ),
            _ => println!("  {name:<28} old      MISSING  new {new_v:>12.3}"),
        }
    }

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"label\": \"{}\",\n", args.label));
    json.push_str(&format!("  \"quick\": {},\n", args.quick));
    json.push_str(&format!("  \"rounds\": {rounds},\n"));
    render_pairs(&mut json, "before", &before, true);
    render_pairs(&mut json, "after", &after, false);
    json.push_str("}\n");
    if let Some(path) = &args.out {
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("\nwrote {path}");
    } else {
        print!("\n{json}");
    }

    let metrics: Vec<(&str, f64)> = after.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    let mut ok = true;
    if !args.floors.is_empty() {
        println!("\nabsolute floors (on the NEW side):");
        ok &= enforce_floors(&args.floors, &metrics);
    }
    if !ok {
        eprintln!("perf regression beyond tolerance — failing");
        std::process::exit(1);
    }
}

fn main() {
    let args = parse_args();

    if let Some(old_bin) = args.compare.clone() {
        run_compare(&old_bin, &args);
        return;
    }

    println!(
        "perf harness ({} mode, label `{}`)",
        if args.quick { "quick" } else { "full" },
        args.label
    );

    let chaos = bench_chaos(args.quick);
    println!("  chaos_schedules_per_sec   {chaos:>12.3}");
    let cores = pool::resolve_cores(args.cores);
    let chaos_parallel = bench_chaos_parallel(args.quick, cores);
    println!("  chaos_sched_per_sec_parallel {chaos_parallel:>9.3}  ({cores} cores)");
    let sim = bench_sim(args.quick);
    println!("  sim_txn_per_sec           {sim:>12.3}");
    let durable = bench_durable(args.quick);
    println!("  durable_txn_per_sec       {durable:>12.3}");
    let threaded = bench_threaded(args.quick);
    println!("  threaded_txn_per_sec      {:>12.3}", threaded.txn_per_sec);
    println!(
        "  threaded_p50_us           {:>12.3}",
        threaded.p50_us as f64
    );
    println!(
        "  threaded_p99_us           {:>12.3}",
        threaded.p99_us as f64
    );
    println!(
        "  threaded_p999_us          {:>12.3}",
        threaded.p999_us as f64
    );
    let audit_rate = bench_audit(args.quick);
    println!("  audit_per_sec             {audit_rate:>12.3}");

    let metrics: Vec<(&str, f64)> = vec![
        ("chaos_schedules_per_sec", chaos),
        ("chaos_sched_per_sec_parallel", chaos_parallel),
        ("sim_txn_per_sec", sim),
        ("durable_txn_per_sec", durable),
        ("threaded_txn_per_sec", threaded.txn_per_sec),
        ("threaded_p50_us", threaded.p50_us as f64),
        ("threaded_p99_us", threaded.p99_us as f64),
        ("threaded_p999_us", threaded.p999_us as f64),
        ("audit_per_sec", audit_rate),
    ];

    let json = render_json(&args.label, args.quick, &metrics);
    if let Some(path) = &args.out {
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("\nwrote {path}");
    } else {
        print!("\n{json}");
    }

    let mut ok = true;
    if let Some(baseline) = &args.baseline {
        ok &= gate(baseline, &metrics, args.tolerance);
    }
    if !args.floors.is_empty() {
        println!("\nabsolute floors:");
        ok &= enforce_floors(&args.floors, &metrics);
    }
    if !ok {
        eprintln!("perf regression beyond tolerance — failing");
        std::process::exit(1);
    }
    if args.baseline.is_some() || !args.floors.is_empty() {
        println!("no regression beyond tolerance");
    }
}
