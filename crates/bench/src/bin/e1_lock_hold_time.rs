//! Experiment binary: see `o2pc_bench::experiments::e1`.
fn main() {
    o2pc_bench::experiments::e1();
}
