//! Experiment binary: see `o2pc_bench::experiments::e4`.
fn main() {
    o2pc_bench::experiments::e4();
}
