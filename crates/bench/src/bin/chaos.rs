//! `chaos` — run a block of seeded randomized fault schedules against the
//! fully hardened engine and check every invariant after each one.
//!
//! ```sh
//! cargo run --release --bin chaos -- --schedules 1000 --seed 42
//! cargo run --release --bin chaos -- --replay 65          # one seed, verbose
//! ```
//!
//! Each schedule derives (from one seed) a composed plan of site crashes,
//! link partitions, message drop/duplication probabilities, and extra
//! delay, runs a banking workload through it, and feeds the end state to
//! the chaos oracle. On the first violated seed the harness greedily
//! shrinks the plan to a minimal still-failing fault set, prints it, and
//! emits the exact `--replay` command line before exiting nonzero.

use o2pc_chaos::{run_plan_with, shrink, ChaosConfig, ChaosPlan, Hardening};
use std::path::PathBuf;

#[derive(Debug)]
struct Args {
    schedules: u64,
    seed: u64,
    replay: Option<u64>,
    sites: u32,
    durable: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        schedules: 1000,
        seed: 42,
        replay: None,
        sites: 4,
        durable: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value for {}", argv[*i - 1]))
        };
        match argv[i].as_str() {
            "--schedules" => {
                args.schedules = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--schedules: {e}"))?
            }
            "--seed" => args.seed = take(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--replay" => {
                args.replay = Some(
                    take(&mut i)?
                        .parse()
                        .map_err(|e| format!("--replay: {e}"))?,
                )
            }
            "--sites" => args.sites = take(&mut i)?.parse().map_err(|e| format!("--sites: {e}"))?,
            "--durable" => args.durable = true,
            "--help" | "-h" => {
                println!(
                    "usage: chaos [--schedules N] [--seed S] [--sites N] [--replay SEED] \
                     [--durable]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    Ok(args)
}

fn config_for(sites: u32) -> ChaosConfig {
    ChaosConfig {
        num_sites: sites,
        ..Default::default()
    }
}

/// Scratch directory for durable-mode WAL files (per process, wiped on use).
fn durable_scratch(enabled: bool) -> Option<PathBuf> {
    enabled.then(|| {
        let dir = std::env::temp_dir().join(format!("o2pc-chaos-wal-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        dir
    })
}

/// Replay one seed with the full plan and outcome printed.
fn replay(seed: u64, sites: u32, durable: bool) -> ! {
    let plan = ChaosPlan::generate(seed, &config_for(sites));
    println!("{}", plan.describe());
    let dir = durable_scratch(durable);
    let outcome = run_plan_with(&plan, Hardening::default(), dir.as_deref());
    println!(
        "protocol {} | drop p={:.3} dup p={:.3} | {} committed / {} aborted / {} local | \
         {} gc'd, {} live at end",
        outcome.protocol,
        outcome.drop_probability,
        outcome.duplicate_probability,
        outcome.report.global_committed,
        outcome.report.global_aborted,
        outcome.report.local_committed,
        outcome.gc_retired,
        outcome.live_at_end,
    );
    if outcome.survived() {
        println!("all invariants hold");
        std::process::exit(0);
    }
    println!("VIOLATIONS:");
    for v in &outcome.violations {
        println!("  - {v}");
    }
    let minimal = shrink(&plan, Hardening::default(), dir.as_deref());
    println!(
        "\nminimal failing fault set ({} faults):",
        minimal.faults.len()
    );
    println!("{}", minimal.describe());
    std::process::exit(1);
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e} (try --help)");
            std::process::exit(2);
        }
    };
    if let Some(seed) = args.replay {
        replay(seed, args.sites, args.durable);
    }

    let cfg = config_for(args.sites);
    let durable_dir = durable_scratch(args.durable);
    let mut coordinator_crashes = 0u64;
    let mut min_drop = f64::INFINITY;
    let mut min_dup = f64::INFINITY;
    let mut committed = 0u64;
    let mut aborted = 0u64;
    let mut retired = 0u64;
    let mut live = 0usize;
    let started = std::time::Instant::now();

    for n in 0..args.schedules {
        let seed = args.seed.wrapping_add(n);
        let plan = ChaosPlan::generate(seed, &cfg);
        let outcome = run_plan_with(&plan, Hardening::default(), durable_dir.as_deref());
        min_drop = min_drop.min(outcome.drop_probability);
        min_dup = min_dup.min(outcome.duplicate_probability);
        coordinator_crashes += outcome.crashed_a_coordinator as u64;
        committed += outcome.report.global_committed;
        aborted += outcome.report.global_aborted;
        retired += outcome.gc_retired;
        live += outcome.live_at_end;

        if !outcome.survived() {
            println!("seed {seed} VIOLATED invariants under:");
            println!("{}", plan.describe());
            for v in &outcome.violations {
                println!("  - {v}");
            }
            println!("shrinking to a minimal fault set...");
            let minimal = shrink(&plan, Hardening::default(), durable_dir.as_deref());
            println!(
                "minimal failing fault set ({} of {} faults):",
                minimal.faults.len(),
                plan.faults.len()
            );
            println!("{}", minimal.describe());
            println!("replay with:");
            println!(
                "  cargo run --release --bin chaos -- --replay {seed} --sites {}{}",
                args.sites,
                if args.durable { " --durable" } else { "" }
            );
            std::process::exit(1);
        }
        if (n + 1) % 100 == 0 {
            println!(
                "  {:>5}/{} schedules clean ({:.1}s)",
                n + 1,
                args.schedules,
                started.elapsed().as_secs_f64()
            );
        }
    }

    if let Some(d) = &durable_dir {
        let _ = std::fs::remove_dir_all(d);
    }
    println!(
        "{} schedules, 0 violations{} ({:.1}s)",
        args.schedules,
        if args.durable { " [durable WAL]" } else { "" },
        started.elapsed().as_secs_f64()
    );
    println!(
        "coverage: min drop p={min_drop:.3}, min dup p={min_dup:.3}, \
         {coordinator_crashes} schedules crashed a coordinator-hosting site"
    );
    println!(
        "totals: {committed} committed, {aborted} aborted, {retired} gc'd, {live} live at end"
    );
    assert!(
        min_drop >= 0.05,
        "coverage: drop probability fell below the 0.05 floor"
    );
    assert!(min_dup > 0.0, "coverage: duplication was never enabled");
    assert!(
        coordinator_crashes > 0,
        "coverage: no schedule ever crashed a coordinator-hosting site"
    );
}
