//! `chaos` — run a block of seeded randomized fault schedules against the
//! fully hardened engine and check every invariant after each one.
//!
//! ```sh
//! cargo run --release --bin chaos -- --schedules 1000 --seed 42
//! cargo run --release --bin chaos -- --schedules 2000 --cores 8
//! cargo run --release --bin chaos -- --replay 65          # one seed, verbose
//! cargo run --release --bin chaos -- --swarm --minutes 10 # mine a corpus
//! cargo run --release --bin chaos -- --replay-corpus corpus
//! ```
//!
//! Each schedule derives (from one seed) a composed plan of site crashes,
//! link partitions, message drop/duplication probabilities, and extra
//! delay, runs a banking workload through it, and feeds the end state to
//! the chaos oracle. On the first violated seed the harness greedily
//! shrinks the plan to a minimal still-failing fault set, prints it, and
//! emits the exact `--replay` command line before exiting nonzero.
//!
//! Schedules fan out over `--cores N` worker threads (default: all). Each
//! run is an isolated deterministic engine, and results are merged back in
//! seed order, so everything on **stdout** is byte-identical at any core
//! count — including which seed a run stops on. Progress and wall-clock
//! timing (which can never be byte-identical) go to **stderr**.
//!
//! Swarm mode (`--swarm --minutes M`) mines seeds continuously instead of
//! stopping at a fixed count, and persists *interesting* schedules —
//! violations, near-misses where the hardening machinery had to fire, and
//! high-event-count outliers — as flat JSON entries under `--corpus DIR`
//! (default `corpus/`). `--replay-corpus DIR` re-judges every saved entry
//! as a regression gate: the current engine must survive them all.

use o2pc_chaos::{
    classify, corpus, run_plan_with, shrink_with_cores, ChaosConfig, ChaosPlan, CorpusEntry,
    DurableMode, Hardening, InterestKind,
};
use o2pc_common::pool;
use std::path::{Path, PathBuf};

#[derive(Debug)]
struct Args {
    schedules: u64,
    seed: u64,
    replay: Option<u64>,
    sites: u32,
    durable: bool,
    segment_bytes: Option<u64>,
    cores: usize,
    swarm: bool,
    minutes: f64,
    corpus: Option<PathBuf>,
    replay_corpus: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        schedules: 1000,
        seed: 42,
        replay: None,
        sites: 4,
        durable: false,
        segment_bytes: None,
        cores: 0, // all available
        swarm: false,
        minutes: 1.0,
        corpus: None,
        replay_corpus: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value for {}", argv[*i - 1]))
        };
        match argv[i].as_str() {
            "--schedules" => {
                args.schedules = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--schedules: {e}"))?
            }
            "--seed" => args.seed = take(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--replay" => {
                args.replay = Some(
                    take(&mut i)?
                        .parse()
                        .map_err(|e| format!("--replay: {e}"))?,
                )
            }
            "--sites" => args.sites = take(&mut i)?.parse().map_err(|e| format!("--sites: {e}"))?,
            "--durable" => args.durable = true,
            "--segment-bytes" => {
                args.segment_bytes = Some(
                    take(&mut i)?
                        .parse()
                        .map_err(|e| format!("--segment-bytes: {e}"))?,
                )
            }
            "--cores" => args.cores = take(&mut i)?.parse().map_err(|e| format!("--cores: {e}"))?,
            "--swarm" => args.swarm = true,
            "--minutes" => {
                args.minutes = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--minutes: {e}"))?
            }
            "--corpus" => args.corpus = Some(PathBuf::from(take(&mut i)?)),
            "--replay-corpus" => args.replay_corpus = Some(PathBuf::from(take(&mut i)?)),
            "--help" | "-h" => {
                println!(
                    "usage: chaos [--schedules N] [--seed S] [--sites N] [--cores N] \
                     [--replay SEED] [--durable] [--segment-bytes N]\n       \
                     chaos --swarm [--minutes M] \
                     [--corpus DIR]\n       chaos --replay-corpus DIR"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    Ok(args)
}

fn config_for(sites: u32) -> ChaosConfig {
    ChaosConfig {
        num_sites: sites,
        ..Default::default()
    }
}

/// Scratch directory for durable-mode WAL files (per process, wiped on use).
fn durable_scratch(enabled: bool) -> Option<PathBuf> {
    enabled.then(|| {
        let dir = std::env::temp_dir().join(format!("o2pc-chaos-wal-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        dir
    })
}

/// Borrow a scratch dir (if durable mode is on) as the runner's
/// [`DurableMode`], carrying the optional segment-size override along.
fn durable_mode(dir: &Option<PathBuf>, segment_bytes: Option<u64>) -> Option<DurableMode<'_>> {
    dir.as_deref().map(|d| DurableMode {
        dir: d,
        segment_bytes,
    })
}

/// The flag suffix a repro command line needs to reproduce this run's
/// durable configuration.
fn repro_suffix(durable: bool, segment_bytes: Option<u64>) -> String {
    match (durable, segment_bytes) {
        (false, _) => String::new(),
        (true, None) => " --durable".to_string(),
        (true, Some(sb)) => format!(" --durable --segment-bytes {sb}"),
    }
}

/// Everything the merged report needs from one schedule, compact enough to
/// ship across the worker-pool channel (the full `ChaosOutcome` drags the
/// run's history archive along).
struct SeedSummary {
    seed: u64,
    violations: Vec<String>,
    drop_p: f64,
    dup_p: f64,
    coord_crash: bool,
    committed: u64,
    aborted: u64,
    retired: u64,
    live: usize,
    protocol: String,
    interest: Option<(InterestKind, String, u64)>,
}

impl SeedSummary {
    fn survived(&self) -> bool {
        self.violations.is_empty()
    }

    fn corpus_entry(&self, sites: u32, durable: bool) -> Option<CorpusEntry> {
        let (kind, detail, score) = self.interest.clone()?;
        Some(CorpusEntry {
            seed: self.seed,
            sites,
            durable,
            kind,
            protocol: self.protocol.clone(),
            detail,
            score,
        })
    }
}

fn run_seed(seed: u64, cfg: &ChaosConfig, durable: Option<DurableMode<'_>>) -> SeedSummary {
    let plan = ChaosPlan::generate(seed, cfg);
    let outcome = run_plan_with(&plan, Hardening::default(), durable);
    SeedSummary {
        seed,
        violations: outcome.violations.iter().map(|v| v.to_string()).collect(),
        drop_p: outcome.drop_probability,
        dup_p: outcome.duplicate_probability,
        coord_crash: outcome.crashed_a_coordinator,
        committed: outcome.report.global_committed,
        aborted: outcome.report.global_aborted,
        retired: outcome.gc_retired,
        live: outcome.live_at_end,
        protocol: outcome.protocol.to_string(),
        interest: classify(&outcome),
    }
}

/// Replay one seed with the full plan and outcome printed.
fn replay(seed: u64, sites: u32, durable: bool, segment_bytes: Option<u64>, cores: usize) -> ! {
    let plan = ChaosPlan::generate(seed, &config_for(sites));
    println!("{}", plan.describe());
    let dir = durable_scratch(durable);
    let outcome = run_plan_with(
        &plan,
        Hardening::default(),
        durable_mode(&dir, segment_bytes),
    );
    println!(
        "protocol {} | drop p={:.3} dup p={:.3} | {} committed / {} aborted / {} local | \
         {} gc'd, {} live at end",
        outcome.protocol,
        outcome.drop_probability,
        outcome.duplicate_probability,
        outcome.report.global_committed,
        outcome.report.global_aborted,
        outcome.report.local_committed,
        outcome.gc_retired,
        outcome.live_at_end,
    );
    if outcome.survived() {
        println!("all invariants hold");
        std::process::exit(0);
    }
    println!("VIOLATIONS:");
    for v in &outcome.violations {
        println!("  - {v}");
    }
    let minimal = shrink_with_cores(
        &plan,
        Hardening::default(),
        durable_mode(&dir, segment_bytes),
        cores,
    );
    println!(
        "\nminimal failing fault set ({} faults):",
        minimal.faults.len()
    );
    println!("{}", minimal.describe());
    std::process::exit(1);
}

/// Re-judge every corpus entry against the current engine. The corpus is a
/// set of historically hard schedules; the regression gate is that the
/// current engine survives all of them.
fn replay_corpus(dir: &Path, segment_bytes: Option<u64>, cores: usize) -> ! {
    let entries = match corpus::load_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: cannot load corpus {}: {e}", dir.display());
            std::process::exit(2);
        }
    };
    if entries.is_empty() {
        println!("corpus {} is empty — nothing to replay", dir.display());
        std::process::exit(0);
    }
    let durable_dir = durable_scratch(entries.iter().any(|e| e.durable));
    let summaries = pool::map_ordered(entries.len(), cores, |i| {
        let e = &entries[i];
        run_seed(
            e.seed,
            &config_for(e.sites),
            if e.durable {
                durable_mode(&durable_dir, segment_bytes)
            } else {
                None
            },
        )
    });
    let mut violations = 0usize;
    for (e, s) in entries.iter().zip(&summaries) {
        let was = match e.kind {
            InterestKind::Violation => "was: violation",
            InterestKind::NearMiss => "was: near-miss",
            InterestKind::Coverage => "was: coverage",
        };
        if s.survived() {
            println!(
                "seed {} [{}] ({}, {}) — survives",
                e.seed, was, e.protocol, e.detail
            );
        } else {
            violations += 1;
            println!(
                "seed {} [{}] ({}, {}) — VIOLATES:",
                e.seed, was, e.protocol, e.detail
            );
            for v in &s.violations {
                println!("  - {v}");
            }
            println!(
                "  replay with: cargo run --release --bin chaos -- --replay {} --sites {}{}",
                e.seed,
                e.sites,
                repro_suffix(e.durable, segment_bytes)
            );
        }
    }
    println!(
        "{} corpus entries replayed, {} violations",
        entries.len(),
        violations
    );
    std::process::exit(if violations > 0 { 1 } else { 0 });
}

/// Merged-in-seed-order accounting for a block of schedules.
#[derive(Default)]
struct Aggregate {
    coordinator_crashes: u64,
    min_drop: f64,
    min_dup: f64,
    committed: u64,
    aborted: u64,
    retired: u64,
    live: usize,
}

impl Aggregate {
    fn new() -> Self {
        Aggregate {
            min_drop: f64::INFINITY,
            min_dup: f64::INFINITY,
            ..Default::default()
        }
    }

    fn fold(&mut self, s: &SeedSummary) {
        self.min_drop = self.min_drop.min(s.drop_p);
        self.min_dup = self.min_dup.min(s.dup_p);
        self.coordinator_crashes += s.coord_crash as u64;
        self.committed += s.committed;
        self.aborted += s.aborted;
        self.retired += s.retired;
        self.live += s.live;
    }
}

/// Mine seeds continuously until the wall-clock deadline, persisting every
/// interesting schedule to the corpus directory.
fn swarm(args: &Args, cores: usize) -> ! {
    let cfg = config_for(args.sites);
    let durable_dir = durable_scratch(args.durable);
    let corpus_dir = args
        .corpus
        .clone()
        .unwrap_or_else(|| PathBuf::from("corpus"));
    let deadline =
        std::time::Instant::now() + std::time::Duration::from_secs_f64(args.minutes * 60.0);
    let started = std::time::Instant::now();
    let mut next_seed = args.seed;
    let mut mined = 0u64;
    let mut near_misses = 0u64;
    let mut coverage = 0u64;
    let mut violating_seeds: Vec<u64> = Vec::new();
    let batch = (cores * 16).max(64);
    while std::time::Instant::now() < deadline {
        pool::for_each_ordered(
            batch,
            cores,
            |i| {
                run_seed(
                    next_seed + i as u64,
                    &cfg,
                    durable_mode(&durable_dir, args.segment_bytes),
                )
            },
            |_, s: SeedSummary| {
                mined += 1;
                if let Some(entry) = s.corpus_entry(args.sites, args.durable) {
                    match entry.kind {
                        InterestKind::Violation => violating_seeds.push(s.seed),
                        InterestKind::NearMiss => near_misses += 1,
                        InterestKind::Coverage => coverage += 1,
                    }
                    if let Err(e) = entry.save(&corpus_dir) {
                        eprintln!("error: cannot write corpus entry: {e}");
                        std::process::exit(2);
                    }
                }
                true
            },
        );
        next_seed += batch as u64;
        eprintln!(
            "  swarm: {mined} seeds mined, {} interesting ({:.0}s elapsed, {:.0} seeds/s)",
            near_misses + coverage + violating_seeds.len() as u64,
            started.elapsed().as_secs_f64(),
            mined as f64 / started.elapsed().as_secs_f64().max(1e-9),
        );
    }
    println!(
        "swarm: {mined} seeds mined from {} — {} violations, {near_misses} near-misses, \
         {coverage} coverage outliers → {}",
        args.seed,
        violating_seeds.len(),
        corpus_dir.display(),
    );
    for seed in &violating_seeds {
        println!(
            "  VIOLATION at seed {seed} — replay with: cargo run --release --bin chaos -- \
             --replay {seed} --sites {}{}",
            args.sites,
            repro_suffix(args.durable, args.segment_bytes)
        );
    }
    if let Some(d) = &durable_dir {
        let _ = std::fs::remove_dir_all(d);
    }
    std::process::exit(if violating_seeds.is_empty() { 0 } else { 1 });
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e} (try --help)");
            std::process::exit(2);
        }
    };
    let cores = pool::resolve_cores(args.cores);
    if let Some(dir) = &args.replay_corpus {
        replay_corpus(dir, args.segment_bytes, cores);
    }
    if let Some(seed) = args.replay {
        replay(seed, args.sites, args.durable, args.segment_bytes, cores);
    }
    if args.swarm {
        swarm(&args, cores);
    }

    let cfg = config_for(args.sites);
    let durable_dir = durable_scratch(args.durable);
    let started = std::time::Instant::now();
    let mut agg = Aggregate::new();
    let mut failing: Option<SeedSummary> = None;
    let schedules = args.schedules as usize;
    pool::for_each_ordered(
        schedules,
        cores,
        |i| {
            run_seed(
                args.seed.wrapping_add(i as u64),
                &cfg,
                durable_mode(&durable_dir, args.segment_bytes),
            )
        },
        |i, s: SeedSummary| {
            agg.fold(&s);
            if let Some(dir) = &args.corpus {
                if let Some(entry) = s.corpus_entry(args.sites, args.durable) {
                    if let Err(e) = entry.save(dir) {
                        eprintln!("error: cannot write corpus entry: {e}");
                        std::process::exit(2);
                    }
                }
            }
            if !s.survived() {
                failing = Some(s);
                return false; // cancel the remaining schedules
            }
            if (i + 1) % 100 == 0 {
                eprintln!(
                    "  {:>5}/{} schedules clean ({:.1}s)",
                    i + 1,
                    args.schedules,
                    started.elapsed().as_secs_f64()
                );
            }
            true
        },
    );

    if let Some(s) = failing {
        let plan = ChaosPlan::generate(s.seed, &cfg);
        println!("seed {} VIOLATED invariants under:", s.seed);
        println!("{}", plan.describe());
        for v in &s.violations {
            println!("  - {v}");
        }
        println!("shrinking to a minimal fault set...");
        let minimal = shrink_with_cores(
            &plan,
            Hardening::default(),
            durable_mode(&durable_dir, args.segment_bytes),
            cores,
        );
        println!(
            "minimal failing fault set ({} of {} faults):",
            minimal.faults.len(),
            plan.faults.len()
        );
        println!("{}", minimal.describe());
        println!("replay with:");
        println!(
            "  cargo run --release --bin chaos -- --replay {} --sites {}{}",
            s.seed,
            args.sites,
            repro_suffix(args.durable, args.segment_bytes)
        );
        std::process::exit(1);
    }

    if let Some(d) = &durable_dir {
        let _ = std::fs::remove_dir_all(d);
    }
    let elapsed = started.elapsed().as_secs_f64();
    eprintln!(
        "  done in {elapsed:.1}s on {cores} core(s) ({:.1} schedules/s)",
        args.schedules as f64 / elapsed.max(1e-9)
    );
    println!(
        "{} schedules, 0 violations{}",
        args.schedules,
        if args.durable { " [durable WAL]" } else { "" },
    );
    println!(
        "coverage: min drop p={:.3}, min dup p={:.3}, \
         {} schedules crashed a coordinator-hosting site",
        agg.min_drop, agg.min_dup, agg.coordinator_crashes
    );
    println!(
        "totals: {} committed, {} aborted, {} gc'd, {} live at end",
        agg.committed, agg.aborted, agg.retired, agg.live
    );
    assert!(
        agg.min_drop >= 0.05,
        "coverage: drop probability fell below the 0.05 floor"
    );
    assert!(agg.min_dup > 0.0, "coverage: duplication was never enabled");
    assert!(
        agg.coordinator_crashes > 0,
        "coverage: no schedule ever crashed a coordinator-hosting site"
    );
}
