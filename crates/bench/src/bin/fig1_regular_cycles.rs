//! Experiment binary: see `o2pc_bench::experiments::fig1`.
fn main() {
    o2pc_bench::experiments::fig1();
}
