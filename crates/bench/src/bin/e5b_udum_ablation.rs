//! Experiment binary: see `o2pc_bench::experiments::e5b`.
fn main() {
    o2pc_bench::experiments::e5b();
}
