//! `simulate` — run one configurable simulation from the command line and
//! print the full report. The "driver" binary a downstream user pokes at
//! before wiring the library into their own harness.
//!
//! ```sh
//! cargo run --release -p o2pc-bench --bin simulate -- \
//!     --protocol o2pc-p1 --workload banking --sites 4 --txns 500 \
//!     --abort-prob 0.2 --latency-ms 5 --seed 42 --audit
//! ```

use o2pc_common::Duration;
use o2pc_core::{Engine, SystemConfig};
use o2pc_protocol::ProtocolKind;
use o2pc_sgraph::audit;
use o2pc_sim::NetworkConfig;
use o2pc_workload::{BankingWorkload, GenericWorkload, MultidbWorkload, TravelWorkload};

#[derive(Debug)]
struct Args {
    protocol: ProtocolKind,
    workload: String,
    sites: u32,
    txns: usize,
    abort_prob: f64,
    latency_ms: u64,
    seed: u64,
    audit: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        protocol: ProtocolKind::O2pc,
        workload: "banking".into(),
        sites: 4,
        txns: 300,
        abort_prob: 0.0,
        latency_ms: 2,
        seed: 42,
        audit: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value for {}", argv[*i - 1]))
        };
        match argv[i].as_str() {
            "--protocol" => {
                args.protocol = match take(&mut i)?.as_str() {
                    "2pc" | "d2pl" | "2pl-2pc" => ProtocolKind::D2pl2pc,
                    "o2pc" => ProtocolKind::O2pc,
                    "o2pc-p1" | "p1" => ProtocolKind::O2pcP1,
                    "o2pc-p2" | "p2" => ProtocolKind::O2pcP2,
                    "simple" => ProtocolKind::O2pcSimple,
                    other => return Err(format!("unknown protocol '{other}'")),
                }
            }
            "--workload" => args.workload = take(&mut i)?,
            "--sites" => args.sites = take(&mut i)?.parse().map_err(|e| format!("--sites: {e}"))?,
            "--txns" => args.txns = take(&mut i)?.parse().map_err(|e| format!("--txns: {e}"))?,
            "--abort-prob" => {
                args.abort_prob = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--abort-prob: {e}"))?
            }
            "--latency-ms" => {
                args.latency_ms = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--latency-ms: {e}"))?
            }
            "--seed" => args.seed = take(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--audit" => args.audit = true,
            "--help" | "-h" => {
                println!(
                    "usage: simulate [--protocol 2pc|o2pc|o2pc-p1|o2pc-p2|simple] \
                     [--workload banking|travel|generic|multidb] [--sites N] [--txns N] \
                     [--abort-prob P] [--latency-ms MS] [--seed S] [--audit]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e} (try --help)");
            std::process::exit(2);
        }
    };

    let mut cfg = SystemConfig::new(args.sites, args.protocol);
    cfg.network = NetworkConfig::fixed(Duration::millis(args.latency_ms));
    cfg.vote_abort_probability = args.abort_prob;
    cfg.seed = args.seed;
    cfg.record_history = args.audit;
    let mut engine = Engine::new(cfg);

    let expected_total = match args.workload.as_str() {
        "banking" => {
            let wl = BankingWorkload {
                sites: args.sites,
                transfers: args.txns,
                seed: args.seed,
                ..Default::default()
            };
            wl.generate().install(&mut engine);
            Some(wl.expected_total())
        }
        "travel" => {
            let wl = TravelWorkload {
                sites: args.sites.max(3),
                bookings: args.txns,
                seed: args.seed,
                ..Default::default()
            };
            wl.generate().install(&mut engine);
            None
        }
        "generic" => {
            let wl = GenericWorkload {
                sites: args.sites,
                txns: args.txns,
                seed: args.seed,
                ..Default::default()
            };
            wl.generate().install(&mut engine);
            None
        }
        "multidb" => {
            let wl = MultidbWorkload {
                sites: args.sites,
                globals: args.txns,
                seed: args.seed,
                ..Default::default()
            };
            wl.generate().install(&mut engine);
            None
        }
        other => {
            eprintln!("error: unknown workload '{other}'");
            std::process::exit(2);
        }
    };

    let r = engine.run(Duration::secs(3_600));

    println!("== simulate: {} / {} ==", args.protocol, args.workload);
    println!(
        "sites={} txns={} abort_prob={} latency={}ms seed={}",
        args.sites, args.txns, args.abort_prob, args.latency_ms, args.seed
    );
    println!("mode: closed-loop trace replay on the deterministic simulator");
    println!("      (open-loop client sessions live on the threaded backend:");
    println!("       `all_experiments --backend threaded`, experiment E10)");
    println!();
    println!("virtual time:          {}", r.end_time);
    println!(
        "globals:               {} committed / {} aborted ({:.1}% abort rate)",
        r.global_committed,
        r.global_aborted,
        r.abort_rate() * 100.0
    );
    println!(
        "locals:                {} committed / {} aborted",
        r.local_committed, r.local_aborted
    );
    println!("throughput:            {:.1} txn/s", r.throughput());
    println!(
        "global latency:        mean {:.2} ms, p50 {:.2} ms, p99 {:.2} ms",
        r.global_latency.mean() / 1000.0,
        r.global_latency.p50() as f64 / 1000.0,
        r.global_latency.p99() as f64 / 1000.0
    );
    println!(
        "exclusive-lock hold:   mean {:.2} ms, p99 {:.2} ms, max {:.2} ms",
        r.locks.exclusive_hold.mean() / 1000.0,
        r.locks.exclusive_hold.p99() as f64 / 1000.0,
        r.locks.exclusive_hold.max() as f64 / 1000.0
    );
    println!(
        "lock waits:            {} (mean {:.2} ms)",
        r.locks.wait_time.count(),
        r.locks.wait_time.mean() / 1000.0
    );
    println!(
        "compensations:         {} completed, {} pending",
        r.compensations_completed, r.compensations_pending
    );
    println!("2PC msgs per txn:      {:.1}", r.msgs_2pc_per_txn());
    println!();
    println!("counters:");
    for (k, v) in r.counters.iter() {
        println!("  {k:<28} {v}");
    }
    if let Some(expected) = expected_total {
        let ok = r.total_value == expected;
        println!();
        println!(
            "conservation check:    {} ({} expected, {} measured)",
            if ok { "OK" } else { "VIOLATED" },
            expected,
            r.total_value
        );
    }
    if args.audit {
        let report = audit(&r.history, 20_000, 8);
        println!();
        println!("serialization-graph audit:");
        println!("  cyclic SCCs:         {}", report.cyclic_sccs);
        println!("  SCCs dismissed:      {}", report.sccs_dismissed);
        println!("  cycles enumerated:   {}", report.cycles_enumerated);
        println!(
            "  regular cycle:       {:?}",
            report.regular_cycle.as_ref().map(|rc| &rc.nodes)
        );
        println!(
            "  AoC violations:      {}",
            report.compensation_atomicity_violations.len()
        );
        println!(
            "  criterion:           {}",
            if report.is_correct() {
                "SATISFIED"
            } else {
                "VIOLATED"
            }
        );
        println!("  plain serializable:  {}", report.serializable);
    }
}
