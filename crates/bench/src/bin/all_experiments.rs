//! Run the full experiment suite (F1, F2, E1–E9) in order.
//!
//! ```sh
//! all_experiments [--backend {sim,threaded}] [--cores N]
//! ```
//!
//! `--backend sim` (the default) runs every experiment on the deterministic
//! simulator. `--backend threaded` runs the experiments ported to the
//! wall-clock runtime (currently E1); the others only exist on the
//! simulator and are skipped with a note.
//!
//! `--cores N` fans each simulator sweep's points out over N worker
//! threads (default: all available; `--cores 1` is fully sequential). Rows
//! are merged back in sweep order, so the emitted tables and CSVs are
//! byte-identical at any core count. The threaded backend ignores the flag:
//! its experiments measure wall-clock latency and must own the machine.
use o2pc_bench::experiments as ex;
use o2pc_bench::experiments::Backend;
use std::process::exit;

struct Args {
    backend: Backend,
    cores: usize,
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let mut parsed = Args {
        backend: Backend::Sim,
        cores: 0, // all available
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--backend" => {
                let Some(value) = args.next() else {
                    eprintln!("error: --backend requires a value (`sim` or `threaded`)");
                    exit(2);
                };
                parsed.backend = match value.parse() {
                    Ok(b) => b,
                    Err(e) => {
                        eprintln!("error: {e}");
                        exit(2);
                    }
                };
            }
            "--cores" => {
                let Some(value) = args.next() else {
                    eprintln!("error: --cores requires a value");
                    exit(2);
                };
                parsed.cores = match value.parse() {
                    Ok(n) => n,
                    Err(e) => {
                        eprintln!("error: --cores: {e}");
                        exit(2);
                    }
                };
            }
            "--help" | "-h" => {
                println!("usage: all_experiments [--backend {{sim,threaded}}] [--cores N]");
                exit(0);
            }
            other => {
                eprintln!("error: unexpected argument `{other}`");
                eprintln!("usage: all_experiments [--backend {{sim,threaded}}] [--cores N]");
                exit(2);
            }
        }
    }
    parsed
}

fn main() {
    let args = parse_args();
    match args.backend {
        Backend::Sim => {
            ex::set_cores(args.cores);
            println!("# O2PC reproduction — full experiment suite (deterministic sim)");
            println!("# mode: closed-loop trace replay (pre-generated arrival schedule)\n");
            ex::fig1();
            ex::fig2();
            ex::e1();
            ex::e2();
            ex::e3();
            ex::e4();
            ex::e5();
            ex::e5b();
            ex::e6();
            ex::e7();
            ex::e8();
            ex::e9();
            println!("\nAll experiments completed.");
        }
        Backend::Threaded => {
            println!("# O2PC reproduction — threaded wall-clock backend");
            println!("# E1 mode: closed-loop trace replay (pre-generated arrival schedule)");
            println!("# E10 mode: open-loop (2 000 Poisson client sessions, bounded admission)\n");
            println!("(F1–F2, E2–E9 are defined on the deterministic simulator only;");
            println!(" run them with `--backend sim`.)\n");
            ex::e1_threaded();
            ex::e10_open_loop_threaded();
            println!("\nThreaded experiments completed.");
        }
    }
}
