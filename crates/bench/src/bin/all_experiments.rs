//! Run the full experiment suite (F1, F2, E1–E9) in order.
//!
//! ```sh
//! all_experiments [--backend {sim,threaded}]
//! ```
//!
//! `--backend sim` (the default) runs every experiment on the deterministic
//! simulator. `--backend threaded` runs the experiments ported to the
//! wall-clock runtime (currently E1); the others only exist on the
//! simulator and are skipped with a note.
use o2pc_bench::experiments as ex;
use o2pc_bench::experiments::Backend;
use std::process::exit;

fn parse_backend() -> Backend {
    let mut args = std::env::args().skip(1);
    let mut backend = Backend::Sim;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--backend" => {
                let Some(value) = args.next() else {
                    eprintln!("error: --backend requires a value (`sim` or `threaded`)");
                    exit(2);
                };
                backend = match value.parse() {
                    Ok(b) => b,
                    Err(e) => {
                        eprintln!("error: {e}");
                        exit(2);
                    }
                };
            }
            "--help" | "-h" => {
                println!("usage: all_experiments [--backend {{sim,threaded}}]");
                exit(0);
            }
            other => {
                eprintln!("error: unexpected argument `{other}`");
                eprintln!("usage: all_experiments [--backend {{sim,threaded}}]");
                exit(2);
            }
        }
    }
    backend
}

fn main() {
    match parse_backend() {
        Backend::Sim => {
            println!("# O2PC reproduction — full experiment suite (deterministic sim)");
            println!("# mode: closed-loop trace replay (pre-generated arrival schedule)\n");
            ex::fig1();
            ex::fig2();
            ex::e1();
            ex::e2();
            ex::e3();
            ex::e4();
            ex::e5();
            ex::e5b();
            ex::e6();
            ex::e7();
            ex::e8();
            ex::e9();
            println!("\nAll experiments completed.");
        }
        Backend::Threaded => {
            println!("# O2PC reproduction — threaded wall-clock backend");
            println!("# E1 mode: closed-loop trace replay (pre-generated arrival schedule)");
            println!("# E10 mode: open-loop (2 000 Poisson client sessions, bounded admission)\n");
            println!("(F1–F2, E2–E9 are defined on the deterministic simulator only;");
            println!(" run them with `--backend sim`.)\n");
            ex::e1_threaded();
            ex::e10_open_loop_threaded();
            println!("\nThreaded experiments completed.");
        }
    }
}
