//! Run the full experiment suite (F1, F2, E1–E8) in order.
use o2pc_bench::experiments as ex;

fn main() {
    println!("# O2PC reproduction — full experiment suite\n");
    ex::fig1();
    ex::fig2();
    ex::e1();
    ex::e2();
    ex::e3();
    ex::e4();
    ex::e5();
    ex::e5b();
    ex::e6();
    ex::e7();
    ex::e8();
    ex::e9();
    println!("\nAll experiments completed.");
}
