//! Experiment binary: see `o2pc_bench::experiments::e7`.
fn main() {
    o2pc_bench::experiments::e7();
}
