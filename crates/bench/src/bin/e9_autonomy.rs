//! Experiment binary: see `o2pc_bench::experiments::e9`.
fn main() {
    o2pc_bench::experiments::e9();
}
