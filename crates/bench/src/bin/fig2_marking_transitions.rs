//! Experiment binary: see `o2pc_bench::experiments::fig2`.
fn main() {
    o2pc_bench::experiments::fig2();
}
