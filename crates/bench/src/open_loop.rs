//! Open-loop client layer for the threaded backend.
//!
//! A closed-loop driver (each client waits for its previous transaction
//! before issuing the next) can never expose queueing collapse: the system
//! throttles its own offered load. Real servers are measured **open-loop**:
//! many independent client sessions issue requests on their own Poisson
//! clocks regardless of completions, and the interesting numbers are the
//! achieved throughput *and* the latency tail (p50/p99/p999 measured from
//! the scheduled submit time, so admission queueing counts).
//!
//! [`OpenLoopClients`] models that layer: `sessions` independent clients
//! whose merged arrival stream offers `offered_txn_per_sec` transactions
//! per second over the banking request mix. The superposed stream feeds the
//! engine's admission gate (`SystemConfig::admission_window`), which bounds
//! concurrent in-flight transactions per coordinator site — the pipelined
//! server absorbs bursts in its queue instead of thrashing.

use o2pc_common::{DetRng, Duration, Histogram, SimTime};
use o2pc_core::{Engine, Msg, RunReport, SystemConfig, TimerEvent};
use o2pc_runtime::{LinkPolicy, ThreadedRuntime, ThreadedRuntimeConfig, ThreadedTransport};
use o2pc_workload::{BankingWorkload, Schedule};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

/// A population of independent open-loop client sessions.
///
/// The request *mix* (sites, accounts, transfer shape, local fraction)
/// comes from the embedded [`BankingWorkload`]; its `transfers` and
/// `mean_interarrival` fields are ignored — arrival timing is owned by the
/// session model here, and the total request count by `total_txns`.
#[derive(Clone, Debug)]
pub struct OpenLoopClients {
    /// Number of concurrent client sessions, each with an independent
    /// Poisson arrival clock of rate `offered_txn_per_sec / sessions`.
    pub sessions: usize,
    /// Aggregate offered load across all sessions.
    pub offered_txn_per_sec: f64,
    /// Total transactions to issue (the run ends when all are decided).
    pub total_txns: usize,
    /// Request-mix parameters (timing fields ignored).
    pub mix: BankingWorkload,
}

impl OpenLoopClients {
    /// Generate the merged arrival schedule: each session draws exponential
    /// inter-arrival gaps from its own deterministic stream, and the
    /// sessions' clocks are merged in time order (ties broken by session
    /// id, so the schedule is a pure function of the seed).
    pub fn schedule(&self) -> Schedule {
        assert!(self.sessions > 0, "need at least one session");
        assert!(
            self.offered_txn_per_sec > 0.0,
            "offered load must be positive"
        );
        // Reuse the banking generator for the request mix only.
        let base = BankingWorkload {
            transfers: self.total_txns,
            ..self.mix.clone()
        }
        .generate();
        let per_session_mean_us = self.sessions as f64 * 1e6 / self.offered_txn_per_sec;
        let mut root = DetRng::new(self.mix.seed ^ 0x0EE2_C10C);
        let mut rngs: Vec<DetRng> = (0..self.sessions).map(|s| root.fork(s as u64)).collect();
        // Min-heap of (next arrival instant, session id).
        let mut clocks: BinaryHeap<Reverse<(u64, usize)>> = (0..self.sessions)
            .map(|s| Reverse((rngs[s].gen_exp(per_session_mean_us) as u64, s)))
            .collect();
        let mut arrivals = Vec::with_capacity(base.arrivals.len());
        for (_, req) in base.arrivals {
            let Reverse((t, s)) = clocks.pop().expect("one clock per session");
            arrivals.push((SimTime(t), req));
            let gap = rngs[s].gen_exp(per_session_mean_us) as u64;
            clocks.push(Reverse((t + gap.max(1), s)));
        }
        Schedule {
            loads: base.loads,
            arrivals,
        }
    }
}

/// What one open-loop run measured.
pub struct OpenLoopOutcome {
    /// The load the sessions offered.
    pub offered_txn_per_sec: f64,
    /// Decided transactions (global + local) per wall-clock second.
    pub achieved_txn_per_sec: f64,
    /// Wall time of the run.
    pub wall_secs: f64,
    /// The engine's full report (latency histograms, counters, invariants).
    pub report: RunReport,
}

impl OpenLoopOutcome {
    /// End-to-end transaction latency over global *and* local commits,
    /// measured from each request's scheduled submit time.
    pub fn latency(&self) -> Histogram {
        let mut h = self.report.global_latency.clone();
        h.merge(&self.report.local_latency);
        h
    }
}

/// Drive one open-loop run on the threaded runtime: build the transport
/// with `link_latency` on every link, install the merged session schedule,
/// run to quiescence (bounded by `horizon` of wall time), and fold the
/// result into an [`OpenLoopOutcome`].
pub fn run_open_loop(
    cfg: SystemConfig,
    link_latency: std::time::Duration,
    clients: &OpenLoopClients,
    horizon: Duration,
) -> OpenLoopOutcome {
    let schedule = clients.schedule();
    let transport: ThreadedTransport<Msg> =
        ThreadedTransport::with_policy(LinkPolicy::fixed(link_latency));
    let rt: ThreadedRuntime<TimerEvent, Msg> =
        ThreadedRuntime::new(transport, ThreadedRuntimeConfig::default());
    let mut engine = Engine::with_runtime(cfg, rt);
    schedule.install(&mut engine);
    let start = Instant::now();
    let report = engine.run(horizon);
    let wall_secs = start.elapsed().as_secs_f64();
    let decided = report.global_committed
        + report.global_aborted
        + report.local_committed
        + report.local_aborted;
    OpenLoopOutcome {
        offered_txn_per_sec: clients.offered_txn_per_sec,
        achieved_txn_per_sec: decided as f64 / wall_secs.max(1e-9),
        wall_secs,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clients(sessions: usize, offered: f64, total: usize) -> OpenLoopClients {
        OpenLoopClients {
            sessions,
            offered_txn_per_sec: offered,
            total_txns: total,
            mix: BankingWorkload {
                sites: 3,
                accounts_per_site: 16,
                local_fraction: 0.2,
                seed: 0x0BE7,
                ..Default::default()
            },
        }
    }

    #[test]
    fn schedule_is_deterministic_and_time_ordered() {
        let c = clients(100, 10_000.0, 500);
        let a = c.schedule();
        let b = c.schedule();
        assert_eq!(a.arrivals.len(), 500);
        for (x, y) in a.arrivals.iter().zip(b.arrivals.iter()) {
            assert_eq!(x.0, y.0, "same seed must give same arrival times");
        }
        for w in a.arrivals.windows(2) {
            assert!(w[0].0 <= w[1].0, "merged stream must be time-ordered");
        }
    }

    #[test]
    #[ignore = "manual profiling probe"]
    fn probe_open_loop_run() {
        use o2pc_protocol::ProtocolKind;
        let accounts: u64 = std::env::var("PROBE_ACCOUNTS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2_048);
        let window: usize = std::env::var("PROBE_WINDOW")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(8);
        let c = OpenLoopClients {
            sessions: 2_000,
            offered_txn_per_sec: 150_000.0,
            total_txns: 6_000,
            mix: BankingWorkload {
                sites: 3,
                accounts_per_site: accounts,
                local_fraction: 0.2,
                seed: 0x7EED,
                ..Default::default()
            },
        };
        let mut cfg = SystemConfig::new(3, ProtocolKind::O2pcP2);
        cfg.seed = 0x7EED;
        cfg.record_history = false;
        cfg.op_service_time = o2pc_common::Duration::ZERO;
        cfg.admission_window = Some(window);
        let out = run_open_loop(cfg, std::time::Duration::ZERO, &c, Duration::secs(600));
        eprintln!(
            "achieved {:.0}/s wall {:.3}s gc {} ga {} lc {} la {}",
            out.achieved_txn_per_sec,
            out.wall_secs,
            out.report.global_committed,
            out.report.global_aborted,
            out.report.local_committed,
            out.report.local_aborted
        );
        let mut counters: Vec<_> = out.report.counters.iter().collect();
        counters.sort();
        for (k, v) in counters {
            eprintln!("  {k} = {v}");
        }
    }

    #[test]
    fn merged_rate_approximates_offered_load() {
        let c = clients(1_000, 50_000.0, 5_000);
        let s = c.schedule();
        let span_us = s.arrivals.last().unwrap().0 .0 - s.arrivals.first().unwrap().0 .0;
        let rate = 5_000.0 / (span_us as f64 / 1e6);
        let ratio = rate / 50_000.0;
        assert!(
            (0.8..=1.25).contains(&ratio),
            "merged Poisson rate {rate:.0}/s should approximate 50k/s"
        );
    }
}
