//! Criterion micro-benchmarks for the suite's substrates:
//! lock-table operations, store apply/rollback, WAL recovery,
//! SG construction + regular-cycle detection, marking-set compatibility
//! checks, event-queue throughput, and a small end-to-end engine run.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use o2pc_common::{
    AccessMode, DetRng, Duration, ExecId, GlobalTxnId, History, Key, Op, OpKind, SimTime, SiteId,
    TxnId, Value,
};
use o2pc_core::{Engine, SystemConfig, TxnRequest};
use o2pc_locking::LockManager;
use o2pc_marking::{MarkEvent, MarkingProtocol, SiteMarks, TransMarks};
use o2pc_protocol::ProtocolKind;
use o2pc_sgraph::{build_sgs, find_regular_cycle};
use o2pc_sim::EventQueue;
use o2pc_storage::Store;
use std::hint::black_box;

fn bench_lock_manager(c: &mut Criterion) {
    c.bench_function("locking/request_release_1k", |b| {
        b.iter_batched(
            LockManager::new,
            |mut lm| {
                for i in 0..1000u64 {
                    let e = ExecId::Sub(GlobalTxnId(i));
                    lm.request(e, Key(i % 64), AccessMode::Write, SimTime(i));
                    lm.request(e, Key((i + 7) % 64), AccessMode::Read, SimTime(i));
                    lm.release_all(e, SimTime(i + 1));
                }
                black_box(lm.grant_count())
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("locking/deadlock_detection_contended", |b| {
        let mut lm = LockManager::new();
        for i in 0..64u64 {
            let e = ExecId::Sub(GlobalTxnId(i));
            lm.request(e, Key(i), AccessMode::Write, SimTime(0));
            lm.request(e, Key((i + 1) % 64), AccessMode::Write, SimTime(1));
        }
        b.iter(|| black_box(lm.find_deadlock()))
    });
}

fn bench_store(c: &mut Criterion) {
    c.bench_function("storage/apply_commit_1k", |b| {
        b.iter_batched(
            || {
                let mut s = Store::new();
                for k in 0..256u64 {
                    s.load(Key(k), Value(0));
                }
                s
            },
            |mut s| {
                for i in 0..1000u64 {
                    let e = ExecId::Sub(GlobalTxnId(i));
                    s.apply(e, Op::Add(Key(i % 256), 1)).unwrap();
                    s.apply(e, Op::Read(Key((i + 1) % 256))).unwrap();
                    black_box(s.commit(e));
                }
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("storage/apply_rollback_1k", |b| {
        b.iter_batched(
            || {
                let mut s = Store::new();
                for k in 0..256u64 {
                    s.load(Key(k), Value(0));
                }
                s
            },
            |mut s| {
                for i in 0..1000u64 {
                    let e = ExecId::Sub(GlobalTxnId(i));
                    s.apply(e, Op::Add(Key(i % 256), 1)).unwrap();
                    s.apply(e, Op::Add(Key((i + 3) % 256), -1)).unwrap();
                    black_box(s.rollback(e));
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn synthetic_history(txns: u64, sites: u32, keys: u64) -> History {
    let mut h = History::new();
    let mut rng = DetRng::new(42);
    let mut t = 0u64;
    for i in 0..txns {
        for s in 0..sites {
            for _ in 0..3 {
                t += 1;
                let kind = if rng.gen_bool(0.5) {
                    OpKind::Read
                } else {
                    OpKind::Write
                };
                h.access(
                    SiteId(s),
                    TxnId::Global(GlobalTxnId(i)),
                    kind,
                    Key(rng.gen_range(keys)),
                    None,
                    SimTime(t),
                );
            }
        }
    }
    h
}

fn bench_sgraph(c: &mut Criterion) {
    let h = synthetic_history(100, 4, 16);
    c.bench_function("sgraph/build_100txn", |b| {
        b.iter(|| black_box(build_sgs(&h)))
    });
    let g = build_sgs(&h);
    c.bench_function("sgraph/regular_cycle_search", |b| {
        b.iter(|| black_box(find_regular_cycle(&g, 1000, 8)))
    });
}

fn bench_marking(c: &mut Criterion) {
    c.bench_function("marking/r1_check_32_marks", |b| {
        let mut site = SiteMarks::new();
        for i in 0..32u64 {
            site.apply(GlobalTxnId(i), MarkEvent::VoteAbort).unwrap();
        }
        let mut tm = TransMarks::new();
        tm.check_and_absorb(MarkingProtocol::P1, &site).unwrap();
        b.iter(|| black_box(tm.check(MarkingProtocol::P1, &site)))
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("sim/event_queue_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(SimTime(i * 7 % 1000 + i), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        })
    });
}

fn bench_engine(c: &mut Criterion) {
    c.bench_function("engine/100_transfers_o2pc", |b| {
        b.iter(|| {
            let mut cfg = SystemConfig::new(4, ProtocolKind::O2pc);
            cfg.record_history = false;
            cfg.seed = 7;
            let mut e = Engine::new(cfg);
            for s in 0..4u32 {
                for k in 0..8u64 {
                    e.load(SiteId(s), Key(k), Value(1000));
                }
            }
            for i in 0..100u64 {
                e.submit_at(
                    SimTime(i * 500),
                    TxnRequest::global(vec![
                        (SiteId((i % 4) as u32), vec![Op::Add(Key(i % 8), -1)]),
                        (SiteId(((i + 1) % 4) as u32), vec![Op::Add(Key(i % 8), 1)]),
                    ]),
                );
            }
            black_box(e.run(Duration::secs(60)).global_committed)
        })
    });
}

criterion_group!(
    benches,
    bench_lock_manager,
    bench_store,
    bench_sgraph,
    bench_marking,
    bench_event_queue,
    bench_engine
);
criterion_main!(benches);
