//! The storage seam: one enum over the in-memory and on-disk WAL backends.
//!
//! A [`Site`](../../o2pc_site) holds a [`WalBackend`] and calls the shared
//! logical surface without caring which backend is live. Durability
//! operations — flush tickets, sync, batch sealing — are meaningful only for
//! the durable backend; on the in-memory backend they report "already
//! durable", which is exactly the fault model the simulator has always
//! assumed (the `Wal` survives a simulated crash by construction).

use crate::durable::{DurableWal, FlushBatch};
use crate::store::{Store, UndoRecord};
use crate::wal::{LogRecord, RecoveredState, Wal};
use o2pc_common::ExecId;
use std::io;

/// A write-ahead log: in-memory (simulated durability) or file-backed.
#[derive(Debug)]
pub enum WalBackend {
    /// In-memory log; durability is simulated (the log object survives the
    /// simulated crash).
    Mem(Wal),
    /// On-disk log with checksummed frames and group commit.
    Durable(Box<DurableWal>),
}

impl Default for WalBackend {
    fn default() -> Self {
        WalBackend::Mem(Wal::new())
    }
}

impl From<Wal> for WalBackend {
    fn from(w: Wal) -> Self {
        WalBackend::Mem(w)
    }
}

impl From<DurableWal> for WalBackend {
    fn from(w: DurableWal) -> Self {
        WalBackend::Durable(Box::new(w))
    }
}

// The short accessors and the append path are called from `o2pc-site` on
// every operation; the workspace builds without LTO, so cross-crate
// inlining needs the explicit hints.
impl WalBackend {
    /// True for the durable (file-backed) backend.
    #[inline]
    pub fn is_durable(&self) -> bool {
        matches!(self, WalBackend::Durable(_))
    }

    /// Append a record.
    #[inline]
    pub fn append(&mut self, rec: LogRecord) {
        match self {
            WalBackend::Mem(w) => w.append(rec),
            WalBackend::Durable(w) => w.append(rec),
        }
    }

    /// Convenience: append an `Update` from an [`UndoRecord`].
    #[inline]
    pub fn append_update(&mut self, exec: ExecId, rec: &UndoRecord) {
        match self {
            WalBackend::Mem(w) => w.append_update(exec, rec),
            WalBackend::Durable(w) => w.append_update(exec, rec),
        }
    }

    /// Number of records.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            WalBackend::Mem(w) => w.len(),
            WalBackend::Durable(w) => w.len(),
        }
    }

    /// True when the log is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All records (tests / audits).
    #[inline]
    pub fn records(&self) -> &[LogRecord] {
        match self {
            WalBackend::Mem(w) => w.records(),
            WalBackend::Durable(w) => w.records(),
        }
    }

    /// Take a checkpoint of the given store.
    pub fn checkpoint(&mut self, store: &Store) {
        match self {
            WalBackend::Mem(w) => w.checkpoint(store),
            WalBackend::Durable(w) => w.checkpoint(store),
        }
    }

    /// Truncate the log to the last checkpoint. On the durable backend this
    /// compacts the file via temp-write + atomic rename.
    pub fn truncate_to_checkpoint(&mut self) -> io::Result<()> {
        match self {
            WalBackend::Mem(w) => {
                w.truncate_to_checkpoint();
                Ok(())
            }
            WalBackend::Durable(w) => w.truncate_to_checkpoint(),
        }
    }

    /// Crash recovery: rebuild site state from the log.
    pub fn recover(&self) -> RecoveredState {
        match self {
            WalBackend::Mem(w) => w.recover(),
            WalBackend::Durable(w) => w.recover(),
        }
    }

    /// Simulated crash transform: what survives on the log device. The
    /// in-memory backend keeps everything (its historical fault model); the
    /// durable backend loses its unsynced tail and reloads from disk.
    pub fn crash(self) -> io::Result<WalBackend> {
        match self {
            WalBackend::Mem(w) => Ok(WalBackend::Mem(w)),
            WalBackend::Durable(w) => Ok(WalBackend::Durable(Box::new(w.crash()?))),
        }
    }

    // ----- durability surface (no-ops / "already durable" on Mem) -----

    /// Ticket covering everything appended so far (0 on the in-memory
    /// backend — everything is trivially durable).
    #[inline]
    pub fn append_ticket(&self) -> u64 {
        match self {
            WalBackend::Mem(_) => 0,
            WalBackend::Durable(w) => w.append_ticket(),
        }
    }

    /// Current durable watermark.
    #[inline]
    pub fn durable_ticket(&self) -> u64 {
        match self {
            WalBackend::Mem(_) => 0,
            WalBackend::Durable(w) => w.durable_ticket(),
        }
    }

    /// True when a flush is owed.
    #[inline]
    pub fn is_dirty(&self) -> bool {
        match self {
            WalBackend::Mem(_) => false,
            WalBackend::Durable(w) => w.is_dirty(),
        }
    }

    /// Sealed watermark: bytes already handed to the flush pipeline (0 on
    /// the in-memory backend — everything is trivially durable).
    #[inline]
    pub fn sealed_ticket(&self) -> u64 {
        match self {
            WalBackend::Mem(_) => 0,
            WalBackend::Durable(w) => w.sealed_ticket(),
        }
    }

    /// Bytes appended but not yet sealed or synced.
    #[inline]
    pub fn pending_bytes(&self) -> u64 {
        match self {
            WalBackend::Mem(_) => 0,
            WalBackend::Durable(w) => w.pending_bytes(),
        }
    }

    /// True when flushes must run inline (fault-armed or dead durable WAL;
    /// trivially true for the in-memory backend, whose sync is a no-op).
    #[inline]
    pub fn wants_inline_flush(&self) -> bool {
        match self {
            WalBackend::Mem(_) => true,
            WalBackend::Durable(w) => w.inline_only(),
        }
    }

    /// Observable I/O counters (`None` on the in-memory backend).
    pub fn stats(&self) -> Option<std::sync::Arc<crate::durable::WalStats>> {
        match self {
            WalBackend::Mem(_) => None,
            WalBackend::Durable(w) => Some(w.stats()),
        }
    }

    /// Group commit: write buffered frames and fsync.
    pub fn sync(&mut self) -> io::Result<()> {
        match self {
            WalBackend::Mem(_) => Ok(()),
            WalBackend::Durable(w) => w.sync(),
        }
    }

    /// Seal buffered frames for a background flusher ([`None`] on the
    /// in-memory backend or when there is nothing to flush).
    pub fn seal_batch(&mut self) -> Option<FlushBatch> {
        match self {
            WalBackend::Mem(_) => None,
            WalBackend::Durable(w) => w.seal_batch(),
        }
    }
}
