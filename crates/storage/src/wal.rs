//! Write-ahead log with checkpointing and crash recovery.
//!
//! The log is the durability substrate a site needs to honour the paper's
//! recovery assumptions: after a crash a site must (a) restore all committed
//! and *locally-committed* state — under O2PC a vote to commit makes the
//! updates durable at that site even though the global fate is unknown — and
//! (b) roll back every execution that was still in flight.
//!
//! Recovery is redo/undo from the last checkpoint: replay all `Update`
//! records in order, then undo (reverse order) the updates of executions
//! with neither a `Commit` nor an `Abort` record. Roll-backs performed before
//! the crash wrote their own reversing `Update` records followed by `Abort`
//! (compensation-log-record style), so replay is idempotent.

use crate::store::{CommitRecord, Store, UndoRecord};
use o2pc_common::{ExecId, GlobalTxnId, Key, Value};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// One log record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LogRecord {
    /// Execution started.
    Begin(ExecId),
    /// One in-place mutation (physical logging: before- and after-image).
    Update {
        /// Execution performing the mutation.
        exec: ExecId,
        /// Item mutated.
        key: Key,
        /// Before-image (`None` = key absent).
        before: Option<Value>,
        /// After-image (`None` = key deleted).
        after: Option<Value>,
    },
    /// Execution committed (for subtransactions under O2PC this is written at
    /// *local commit*, i.e. when the site votes yes and releases locks).
    Commit(ExecId),
    /// A subtransaction entered the *prepared* state (voted yes under the
    /// hold-writes policy): its updates are durable and must survive a
    /// crash, with its write locks re-acquired on recovery.
    Prepared(ExecId),
    /// O2PC local commit of a subtransaction, carrying everything a later
    /// compensation needs (the semantic op log and before-images). Durable:
    /// a site that crashes between its yes-vote and the decision can still
    /// compensate after recovery.
    LocalCommit {
        /// The subtransaction.
        exec: ExecId,
        /// Its retained commit record, shared with the site's live
        /// `commit_records` table (an `Arc` so appending the log record
        /// does not deep-copy the op log and before-images).
        record: Arc<CommitRecord>,
    },
    /// The coordinator's decision for a global transaction reached this
    /// site (resolves a pending `LocalCommit`).
    Outcome {
        /// The global transaction.
        txn: GlobalTxnId,
        /// `true` = commit.
        commit: bool,
    },
    /// Execution rolled back; its reversing updates precede this record.
    Abort(ExecId),
    /// Checkpoint: a full fuzzy-free snapshot of the store (the store is
    /// small in this reproduction; a production system would checkpoint
    /// incrementally, which changes nothing observable here).
    Checkpoint {
        /// Snapshot of all items.
        items: Vec<(Key, Value)>,
    },
}

/// The state reconstructed by [`Wal::recover`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveredState {
    /// Recovered store contents.
    pub items: Vec<(Key, Value)>,
    /// Executions that were rolled back during recovery (in-flight at crash).
    pub rolled_back: Vec<ExecId>,
    /// Executions whose commit records were found after the checkpoint.
    pub committed: Vec<ExecId>,
    /// Prepared subtransactions (updates kept, write locks to re-acquire),
    /// with their undo records for a later abort decision.
    pub prepared: Vec<(ExecId, Vec<UndoRecord>)>,
    /// Locally-committed subtransactions whose global fate was still
    /// unknown at the crash: their commit records, so compensation remains
    /// possible.
    pub unresolved_local_commits: Vec<(GlobalTxnId, Arc<CommitRecord>)>,
    /// Compensation records for the recovery rollback (an `Update` per undo
    /// write plus an `Abort` terminator per rolled-back execution). The
    /// recovering site must append these to its log: without them a later
    /// replay of the longer log would re-apply the stale before-images on
    /// top of post-recovery commits (the reason ARIES logs CLRs during
    /// restart).
    pub rollback_records: Vec<LogRecord>,
    /// One past the highest local-transaction sequence number seen in the
    /// log. The recovering site must resume its local id counter here —
    /// restarting at zero would reuse `TxnId`s of pre-crash local
    /// transactions and corrupt the recorded history (two distinct
    /// transactions merged into one serialization-graph node).
    pub next_local_seq: u64,
    /// Every logged global decision (`Outcome` record), latest wins. The
    /// recovering site must reinstall these as retained decisions: a peer
    /// running cooperative termination treats "no record of the
    /// transaction" as license to presume abort, so a site that forgets a
    /// COMMIT across a crash can make an in-doubt peer compensate a
    /// committed transaction.
    pub outcomes: Vec<(GlobalTxnId, bool)>,
}

impl RecoveredState {
    /// Build a [`Store`] from the recovered items.
    pub fn into_store(self) -> Store {
        let mut s = Store::new();
        for (k, v) in self.items {
            s.load(k, v);
        }
        s
    }
}

/// An in-memory write-ahead log.
///
/// Durability is simulated: the log survives a simulated site crash (the
/// `Site` is dropped, the `Wal` is kept), which is exactly the fault model
/// the experiments need.
#[derive(Clone, Debug, Default)]
pub struct Wal {
    records: Vec<LogRecord>,
    last_checkpoint: Option<usize>,
}

impl Wal {
    /// New empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuild a log from an already-decoded record sequence (used by the
    /// durable backend to mirror the on-disk log in memory).
    pub fn from_records(records: Vec<LogRecord>) -> Self {
        let last_checkpoint = records
            .iter()
            .rposition(|r| matches!(r, LogRecord::Checkpoint { .. }));
        Wal {
            records,
            last_checkpoint,
        }
    }

    /// Append a record.
    #[inline]
    pub fn append(&mut self, rec: LogRecord) {
        if matches!(rec, LogRecord::Checkpoint { .. }) {
            self.last_checkpoint = Some(self.records.len());
        }
        self.records.push(rec);
    }

    /// Convenience: append an `Update` from an [`UndoRecord`].
    #[inline]
    pub fn append_update(&mut self, exec: ExecId, rec: &UndoRecord) {
        self.append(LogRecord::Update {
            exec,
            key: rec.key,
            before: rec.before,
            after: rec.after,
        });
    }

    /// Number of records.
    #[inline]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the log is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records (tests / audits).
    #[inline]
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// Take a checkpoint of the given store.
    pub fn checkpoint(&mut self, store: &Store) {
        let mut items: Vec<(Key, Value)> = store.iter().collect();
        items.sort_unstable_by_key(|&(k, _)| k);
        self.append(LogRecord::Checkpoint { items });
    }

    /// Truncate the log to the last checkpoint (log reclamation). Records
    /// before the checkpoint can never be needed again.
    pub fn truncate_to_checkpoint(&mut self) {
        if let Some(cp) = self.last_checkpoint {
            self.records.drain(..cp);
            self.last_checkpoint = Some(0);
        }
    }

    /// Crash recovery: rebuild store state from the last checkpoint.
    pub fn recover(&self) -> RecoveredState {
        let start = self.last_checkpoint.unwrap_or(0);
        let mut items: HashMap<Key, Option<Value>> = HashMap::new();
        if let Some(LogRecord::Checkpoint { items: snap }) = self.records.get(start) {
            for &(k, v) in snap {
                items.insert(k, Some(v));
            }
        }

        // Local-id watermark: scan the whole log (not just past the
        // checkpoint) so a recovered site never reuses a local `TxnId`.
        let mut next_local_seq = 0u64;
        for rec in &self.records {
            let exec = match rec {
                LogRecord::Begin(e)
                | LogRecord::Commit(e)
                | LogRecord::Abort(e)
                | LogRecord::Prepared(e) => Some(e),
                LogRecord::Update { exec, .. } => Some(exec),
                LogRecord::LocalCommit { exec, .. } => Some(exec),
                _ => None,
            };
            if let Some(ExecId::Local(l)) = exec {
                next_local_seq = next_local_seq.max(l.seq + 1);
            }
        }

        // Redo pass.
        let mut terminated: HashSet<ExecId> = HashSet::new();
        let mut committed: Vec<ExecId> = Vec::new();
        let mut prepared_set: HashSet<ExecId> = HashSet::new();
        let mut local_commits: HashMap<GlobalTxnId, Arc<CommitRecord>> = HashMap::new();
        let mut outcomes: HashMap<GlobalTxnId, bool> = HashMap::new();
        let mut comp_done: HashSet<GlobalTxnId> = HashSet::new();
        let mut pending: HashMap<ExecId, Vec<(Key, Option<Value>)>> = HashMap::new();
        let mut order: Vec<ExecId> = Vec::new();
        for rec in &self.records[start..] {
            match rec {
                LogRecord::Begin(e) => {
                    if !pending.contains_key(e) && !terminated.contains(e) {
                        pending.insert(*e, Vec::new());
                        order.push(*e);
                    }
                }
                LogRecord::Update {
                    exec,
                    key,
                    before,
                    after,
                } => {
                    items.insert(*key, *after);
                    pending.entry(*exec).or_insert_with(|| {
                        order.push(*exec);
                        Vec::new()
                    });
                    if let Some(undo) = pending.get_mut(exec) {
                        undo.push((*key, *before));
                    }
                }
                LogRecord::Commit(e) => {
                    terminated.insert(*e);
                    committed.push(*e);
                    prepared_set.remove(e);
                    pending.remove(e);
                    if let ExecId::CompSub(g) = e {
                        comp_done.insert(*g);
                    }
                }
                LogRecord::Prepared(e) => {
                    prepared_set.insert(*e);
                }
                LogRecord::LocalCommit { exec, record } => {
                    terminated.insert(*exec);
                    committed.push(*exec);
                    prepared_set.remove(exec);
                    pending.remove(exec);
                    if let ExecId::Sub(g) = exec {
                        local_commits.insert(*g, record.clone());
                    }
                }
                LogRecord::Outcome { txn, commit } => {
                    outcomes.insert(*txn, *commit);
                }
                LogRecord::Abort(e) => {
                    terminated.insert(*e);
                    prepared_set.remove(e);
                    pending.remove(e);
                }
                LogRecord::Checkpoint { .. } => {}
            }
        }

        // Undo pass: reverse the updates of every in-flight execution,
        // newest execution first, each execution's updates newest first —
        // except *prepared* executions, whose updates must survive.
        let mut rolled_back = Vec::new();
        let mut rollback_records = Vec::new();
        let mut prepared = Vec::new();
        let mut undone_seen: HashSet<ExecId> = HashSet::new();
        for e in order.iter().rev() {
            if prepared_set.contains(e) || !undone_seen.insert(*e) {
                continue;
            }
            if let Some(undo) = pending.get(e) {
                for &(key, before) in undo.iter().rev() {
                    let prev = items.get(&key).copied().flatten();
                    items.insert(key, before);
                    rollback_records.push(LogRecord::Update {
                        exec: *e,
                        key,
                        before: prev,
                        after: before,
                    });
                }
                rollback_records.push(LogRecord::Abort(*e));
                rolled_back.push(*e);
            }
        }
        for e in &order {
            if prepared_set.contains(e) {
                let undo = pending
                    .get(e)
                    .map(|u| {
                        u.iter()
                            .map(|&(key, before)| UndoRecord {
                                key,
                                before,
                                after: items.get(&key).copied().flatten(),
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                prepared.push((*e, undo));
            }
        }

        // A locally-committed subtransaction is unresolved unless a commit
        // outcome arrived, or its compensation already completed.
        let mut unresolved: Vec<(GlobalTxnId, Arc<CommitRecord>)> = local_commits
            .into_iter()
            .filter(|(g, _)| outcomes.get(g) != Some(&true) && !comp_done.contains(g))
            .collect();
        unresolved.sort_unstable_by_key(|&(g, _)| g);

        let mut out: Vec<(Key, Value)> = items
            .into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect();
        out.sort_unstable_by_key(|&(k, _)| k);
        let mut decided: Vec<(GlobalTxnId, bool)> = outcomes.into_iter().collect();
        decided.sort_unstable_by_key(|&(g, _)| g);

        RecoveredState {
            items: out,
            rolled_back,
            committed,
            prepared,
            unresolved_local_commits: unresolved,
            rollback_records,
            next_local_seq,
            outcomes: decided,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2pc_common::{GlobalTxnId, LocalTxnId, Op, SiteId};

    fn sub(i: u64) -> ExecId {
        ExecId::Sub(GlobalTxnId(i))
    }

    fn local(seq: u64) -> ExecId {
        ExecId::Local(LocalTxnId {
            site: SiteId(0),
            seq,
        })
    }

    /// A little harness that mirrors what a site does: apply to store + log.
    struct Logged {
        store: Store,
        wal: Wal,
    }

    impl Logged {
        fn new() -> Self {
            Logged {
                store: Store::new(),
                wal: Wal::new(),
            }
        }

        fn load(&mut self, k: Key, v: Value) {
            self.store.load(k, v);
        }

        fn begin(&mut self, e: ExecId) {
            self.wal.append(LogRecord::Begin(e));
        }

        fn apply(&mut self, e: ExecId, op: Op) {
            self.store.apply(e, op).unwrap();
            let rec = *self
                .store
                .last_undo(e)
                .expect("mutation must log an undo record");
            self.wal.append_update(e, &rec);
        }

        fn commit(&mut self, e: ExecId) {
            self.store.commit(e);
            self.wal.append(LogRecord::Commit(e));
        }

        fn abort(&mut self, e: ExecId) {
            let undo = self.store.rollback(e);
            for rec in undo.iter().rev() {
                // reversing updates (CLRs)
                self.wal.append(LogRecord::Update {
                    exec: e,
                    key: rec.key,
                    before: rec.after,
                    after: rec.before,
                });
            }
            self.wal.append(LogRecord::Abort(e));
        }
    }

    #[test]
    fn recover_empty_log() {
        let wal = Wal::new();
        let st = wal.recover();
        assert!(st.items.is_empty());
        assert!(st.rolled_back.is_empty());
    }

    #[test]
    fn recover_committed_updates() {
        let mut h = Logged::new();
        h.load(Key(1), Value(10));
        h.wal.checkpoint(&h.store);
        h.begin(sub(0));
        h.apply(sub(0), Op::Write(Key(1), Value(20)));
        h.commit(sub(0));
        let st = h.wal.recover();
        assert_eq!(st.items, vec![(Key(1), Value(20))]);
        assert_eq!(st.committed, vec![sub(0)]);
        assert!(st.rolled_back.is_empty());
    }

    #[test]
    fn recover_rolls_back_in_flight() {
        let mut h = Logged::new();
        h.load(Key(1), Value(10));
        h.load(Key(2), Value(5));
        h.wal.checkpoint(&h.store);
        h.begin(sub(0));
        h.apply(sub(0), Op::Write(Key(1), Value(99)));
        h.apply(sub(0), Op::Write(Key(2), Value(98)));
        // crash before commit
        let st = h.wal.recover();
        assert_eq!(st.items, vec![(Key(1), Value(10)), (Key(2), Value(5))]);
        assert_eq!(st.rolled_back, vec![sub(0)]);
    }

    #[test]
    fn recover_after_explicit_abort_is_clean() {
        let mut h = Logged::new();
        h.load(Key(1), Value(10));
        h.wal.checkpoint(&h.store);
        h.begin(local(0));
        h.apply(local(0), Op::Write(Key(1), Value(50)));
        h.abort(local(0));
        let st = h.wal.recover();
        assert_eq!(st.items, vec![(Key(1), Value(10))]);
        assert!(
            st.rolled_back.is_empty(),
            "aborted exec is terminated, not in-flight"
        );
    }

    #[test]
    fn recover_mixed_committed_and_inflight() {
        let mut h = Logged::new();
        h.load(Key(1), Value(1));
        h.load(Key(2), Value(2));
        h.wal.checkpoint(&h.store);
        h.begin(sub(0));
        h.apply(sub(0), Op::Add(Key(1), 10));
        h.commit(sub(0)); // locally committed under O2PC: durable
        h.begin(sub(1));
        h.apply(sub(1), Op::Add(Key(2), 10));
        // crash: sub(1) in flight
        let st = h.wal.recover();
        assert_eq!(st.items, vec![(Key(1), Value(11)), (Key(2), Value(2))]);
        assert_eq!(st.rolled_back, vec![sub(1)]);
        assert_eq!(st.committed, vec![sub(0)]);
    }

    #[test]
    fn recover_inserted_key_in_flight_is_removed() {
        let mut h = Logged::new();
        h.wal.checkpoint(&h.store);
        h.begin(sub(0));
        h.apply(sub(0), Op::Insert(Key(7), Value(3)));
        let st = h.wal.recover();
        assert!(st.items.is_empty(), "insert by in-flight exec must vanish");
    }

    #[test]
    fn recovery_uses_last_checkpoint_only() {
        let mut h = Logged::new();
        h.load(Key(1), Value(1));
        h.wal.checkpoint(&h.store);
        h.begin(sub(0));
        h.apply(sub(0), Op::Write(Key(1), Value(2)));
        h.commit(sub(0));
        h.wal.checkpoint(&h.store); // second checkpoint captures Value(2)
        h.begin(sub(1));
        h.apply(sub(1), Op::Write(Key(1), Value(3)));
        let st = h.wal.recover();
        assert_eq!(st.items, vec![(Key(1), Value(2))]);
        assert_eq!(st.rolled_back, vec![sub(1)]);
        // Truncation preserves recoverability.
        h.wal.truncate_to_checkpoint();
        let st2 = h.wal.recover();
        assert_eq!(st2.items, vec![(Key(1), Value(2))]);
    }

    #[test]
    fn recovery_is_idempotent() {
        let mut h = Logged::new();
        h.load(Key(1), Value(1));
        h.wal.checkpoint(&h.store);
        h.begin(sub(0));
        h.apply(sub(0), Op::Add(Key(1), 5));
        let a = h.wal.recover();
        let b = h.wal.recover();
        assert_eq!(a.items, b.items);
        assert_eq!(a.rolled_back, b.rolled_back);
    }

    #[test]
    fn into_store_roundtrip() {
        let mut h = Logged::new();
        h.load(Key(4), Value(44));
        h.wal.checkpoint(&h.store);
        let store = h.wal.recover().into_store();
        assert_eq!(store.get(Key(4)), Some(Value(44)));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn wal_len_and_records() {
        let mut w = Wal::new();
        assert!(w.is_empty());
        w.append(LogRecord::Begin(sub(0)));
        assert_eq!(w.len(), 1);
        assert!(matches!(w.records()[0], LogRecord::Begin(_)));
    }

    #[test]
    fn multiple_inflight_undone_in_reverse_order() {
        // Two in-flight execs touching the same key: undo must restore the
        // oldest before-image.
        let mut w = Wal::new();
        w.append(LogRecord::Checkpoint {
            items: vec![(Key(1), Value(0))],
        });
        w.append(LogRecord::Update {
            exec: sub(0),
            key: Key(1),
            before: Some(Value(0)),
            after: Some(Value(1)),
        });
        w.append(LogRecord::Update {
            exec: sub(1),
            key: Key(1),
            before: Some(Value(1)),
            after: Some(Value(2)),
        });
        let st = w.recover();
        assert_eq!(st.items, vec![(Key(1), Value(0))]);
        assert_eq!(
            st.rolled_back,
            vec![sub(1), sub(0)],
            "newest rolled back first"
        );
    }

    #[test]
    fn prepared_updates_survive_recovery() {
        let mut h = Logged::new();
        h.load(Key(1), Value(10));
        h.wal.checkpoint(&h.store);
        h.begin(sub(0));
        h.apply(sub(0), Op::Write(Key(1), Value(77)));
        h.wal.append(LogRecord::Prepared(sub(0)));
        // Crash while prepared.
        let st = h.wal.recover();
        assert_eq!(st.items, vec![(Key(1), Value(77))], "prepared update kept");
        assert!(st.rolled_back.is_empty());
        assert_eq!(st.prepared.len(), 1);
        let (e, undo) = &st.prepared[0];
        assert_eq!(*e, sub(0));
        assert_eq!(undo.len(), 1);
        assert_eq!(
            undo[0].before,
            Some(Value(10)),
            "undo records survive for a late abort"
        );
    }

    #[test]
    fn prepared_then_committed_is_final() {
        let mut h = Logged::new();
        h.load(Key(1), Value(10));
        h.wal.checkpoint(&h.store);
        h.begin(sub(0));
        h.apply(sub(0), Op::Write(Key(1), Value(77)));
        h.wal.append(LogRecord::Prepared(sub(0)));
        h.wal.append(LogRecord::Commit(sub(0)));
        let st = h.wal.recover();
        assert!(st.prepared.is_empty());
        assert_eq!(st.items, vec![(Key(1), Value(77))]);
    }

    #[test]
    fn local_commit_record_is_recoverable_until_resolved() {
        let _ = CommitRecord::default();
        let mut h = Logged::new();
        h.load(Key(1), Value(10));
        h.wal.checkpoint(&h.store);
        h.begin(sub(3));
        h.apply(sub(3), Op::Add(Key(1), 5));
        let record = Arc::new(h.store.commit(sub(3)));
        h.wal.append(LogRecord::LocalCommit {
            exec: sub(3),
            record: record.clone(),
        });
        // Crash before the decision: the commit record must be recoverable.
        let st = h.wal.recover();
        assert_eq!(st.items, vec![(Key(1), Value(15))]);
        assert_eq!(
            st.unresolved_local_commits,
            vec![(GlobalTxnId(3), record.clone())]
        );
        // A commit outcome resolves it.
        h.wal.append(LogRecord::Outcome {
            txn: GlobalTxnId(3),
            commit: true,
        });
        assert!(h.wal.recover().unresolved_local_commits.is_empty());
    }

    #[test]
    fn completed_compensation_resolves_local_commit() {
        let mut h = Logged::new();
        h.load(Key(1), Value(10));
        h.wal.checkpoint(&h.store);
        h.begin(sub(3));
        h.apply(sub(3), Op::Add(Key(1), 5));
        let record = Arc::new(h.store.commit(sub(3)));
        h.wal.append(LogRecord::LocalCommit {
            exec: sub(3),
            record,
        });
        h.wal.append(LogRecord::Outcome {
            txn: GlobalTxnId(3),
            commit: false,
        });
        // Abort outcome alone keeps the record (the CT may still need to run)…
        assert_eq!(h.wal.recover().unresolved_local_commits.len(), 1);
        // …until the compensating subtransaction commits.
        let ct = ExecId::CompSub(GlobalTxnId(3));
        h.begin(ct);
        h.apply(ct, Op::Add(Key(1), -5));
        h.store.commit(ct);
        h.wal.append(LogRecord::Commit(ct));
        let st = h.wal.recover();
        assert!(st.unresolved_local_commits.is_empty());
        assert_eq!(st.items, vec![(Key(1), Value(10))]);
    }

    #[test]
    fn recover_checkpoint_only_log() {
        // A freshly-checkpointed idle site: recovery is exactly the image.
        let mut h = Logged::new();
        h.load(Key(1), Value(10));
        h.load(Key(2), Value(-3));
        h.wal.checkpoint(&h.store);
        let st = h.wal.recover();
        assert_eq!(st.items, vec![(Key(1), Value(10)), (Key(2), Value(-3))]);
        assert!(st.rolled_back.is_empty());
        assert!(st.committed.is_empty());
        assert!(st.prepared.is_empty());
        assert!(st.unresolved_local_commits.is_empty());
        assert_eq!(st.next_local_seq, 0);
    }

    #[test]
    fn truncate_to_checkpoint_is_idempotent() {
        let mut h = Logged::new();
        h.load(Key(1), Value(1));
        h.begin(sub(0));
        h.apply(sub(0), Op::Add(Key(1), 4));
        h.commit(sub(0));
        // No checkpoint yet: truncation must be a no-op.
        let before = h.wal.len();
        h.wal.truncate_to_checkpoint();
        assert_eq!(h.wal.len(), before, "no checkpoint → nothing to drop");
        h.wal.checkpoint(&h.store);
        h.begin(sub(1));
        h.apply(sub(1), Op::Add(Key(1), 2));
        h.wal.truncate_to_checkpoint();
        let once = h.wal.records().to_vec();
        let st_once = h.wal.recover();
        h.wal.truncate_to_checkpoint();
        assert_eq!(h.wal.records(), &once[..], "second truncation is a no-op");
        assert_eq!(h.wal.recover(), st_once);
        assert!(matches!(h.wal.records()[0], LogRecord::Checkpoint { .. }));
    }

    #[test]
    fn double_abort_replay_is_harmless() {
        // A crash between logging Abort and acking it can make the engine
        // re-log it after recovery; replaying both must not double-undo.
        let mut h = Logged::new();
        h.load(Key(1), Value(10));
        h.wal.checkpoint(&h.store);
        h.begin(local(0));
        h.apply(local(0), Op::Write(Key(1), Value(50)));
        h.abort(local(0));
        h.wal.append(LogRecord::Abort(local(0)));
        let st = h.wal.recover();
        assert_eq!(st.items, vec![(Key(1), Value(10))]);
        assert!(st.rolled_back.is_empty());
        // And a Begin replayed after termination must not resurrect it.
        h.wal.append(LogRecord::Begin(local(0)));
        let st = h.wal.recover();
        assert_eq!(st.items, vec![(Key(1), Value(10))]);
        assert!(
            st.rolled_back.is_empty(),
            "terminated exec stays terminated"
        );
    }

    #[test]
    fn duplicate_outcome_replay_keeps_one_decision() {
        // Decision retransmission across a crash duplicates Outcome records;
        // recovery must collapse them (latest wins) rather than report two.
        let mut h = Logged::new();
        h.load(Key(1), Value(10));
        h.wal.checkpoint(&h.store);
        h.begin(sub(3));
        h.apply(sub(3), Op::Add(Key(1), 5));
        let record = Arc::new(h.store.commit(sub(3)));
        h.wal.append(LogRecord::LocalCommit {
            exec: sub(3),
            record,
        });
        for _ in 0..3 {
            h.wal.append(LogRecord::Outcome {
                txn: GlobalTxnId(3),
                commit: true,
            });
        }
        let st = h.wal.recover();
        assert_eq!(st.outcomes, vec![(GlobalTxnId(3), true)]);
        assert!(st.unresolved_local_commits.is_empty());
        assert_eq!(st.items, vec![(Key(1), Value(15))]);
    }
}
