//! On-disk write-ahead log: segmented, preallocated, with coalesced group
//! commit and torn-tail-tolerant recovery.
//!
//! [`DurableWal`] keeps the same logical surface as the in-memory
//! [`Wal`] — `append`, `checkpoint`, `truncate_to_checkpoint`, `recover` —
//! by maintaining a full in-memory *mirror* of the decoded log alongside the
//! files. Recovery therefore runs the exact same `Wal::recover` code on the
//! same record sequence the files hold, which is what makes the
//! durable-vs-in-memory differential tests byte-for-byte meaningful.
//!
//! ## Segmented layout
//!
//! The log is a sequence of fixed-capacity *segments*, named by the logical
//! byte offset of their first byte (`<root>.<base:016x>.seg` next to the
//! configured root path). Tickets are *global* logical offsets; a record at
//! logical offset `o` lives in the segment with the largest `base <= o`, at
//! file offset `o - base`. Segments are preallocated (`set_len` + sync) at
//! creation so appends never extend the file's metadata on the hot path, and
//! the unwritten region reads back as zeros — which the frame codec rejects
//! as a torn tail, so a half-filled segment recovers exactly to its last
//! complete frame.
//!
//! A frame **never straddles a segment boundary**: rotation happens at
//! append time, before the frame is placed, so the segment it lands in holds
//! it entirely (an oversized frame gets an oversized segment to itself). The
//! unused tail of a rotated-away segment is *rotation waste*; the next
//! segment's base records exactly where valid data ended, which is how
//! recovery tells waste from a genuine tear.
//!
//! Checkpoint compaction no longer rewrites the log: a small manifest file
//! (`<root>.manifest`, written via tmp + fsync + atomic rename + directory
//! fsync) records the logical offset of the last checkpoint, and whole
//! segments that end at or before that offset are deleted. Byte tickets stay
//! monotone forever — nothing is ever renumbered.
//!
//! ## Durability model
//!
//! Appends are buffered in memory and become durable at [`sync`] (inline
//! write + fsync) or when a sealed [`FlushBatch`] completes on a background
//! flusher. Progress is tracked in *byte tickets*: [`append_ticket`] after an
//! append names the byte offset that must become durable before any promise
//! depending on that record (a yes-vote, a decision ack) may leave the site;
//! [`durable_ticket`] is the current durable watermark and
//! [`sealed_ticket`] the sealed watermark (bytes handed to the flush
//! pipeline, in order). Because the log is written and fsynced strictly in
//! order, durability is *prefix-closed*: a durable ticket covers every
//! earlier record. Group commit falls out of the ticket scheme — one fsync
//! advances the watermark past every record flushed in the window — and
//! [`FlushBatch::execute_all`] *coalesces* a burst of sealed batches into
//! one buffered write + one fsync per touched segment file.
//!
//! [`sync`]: DurableWal::sync
//! [`append_ticket`]: DurableWal::append_ticket
//! [`durable_ticket`]: DurableWal::durable_ticket
//! [`sealed_ticket`]: DurableWal::sealed_ticket
//!
//! ## Crash model
//!
//! A simulated crash ([`DurableWal::crash`]) is *adversarial*: unsynced
//! bytes are discarded, every segment is cut back to the durable watermark
//! (the maximum data loss an fsync-honouring disk permits), and later
//! segments are deleted. An injected [`WriteFault`] is harsher still: it can
//! tear a frame mid-write (short write), fail the write outright, or drop
//! the file handles, leaving a tail only checksum validation can reject.
//! Reopening with [`DurableWal::open`] discards any torn or corrupt tail —
//! first tear wins: nothing after the first bad frame, in this or any later
//! segment, is replayed.

use crate::codec::{decode_all, encode_frame};
use crate::store::{Store, UndoRecord};
use crate::wal::{LogRecord, RecoveredState, Wal};
use o2pc_common::ExecId;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Default segment capacity (4 MiB) when none is configured.
pub const DEFAULT_SEGMENT_BYTES: u64 = 4 * 1024 * 1024;

/// Per-WAL unique ids, so a flusher coalescing batches from several WALs can
/// tell their segment files apart without comparing inodes.
static WAL_UID: AtomicU64 = AtomicU64::new(0);

/// Tuning knobs for opening a [`DurableWal`].
#[derive(Clone, Copy, Debug)]
pub struct WalOptions {
    /// Capacity of each preallocated segment; rotation point.
    pub segment_bytes: u64,
    /// Injected write fault (tests / chaos).
    pub fault: Option<WriteFault>,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            fault: None,
        }
    }
}

/// Observable I/O counters for one WAL (shared with its flush batches).
/// `fsyncs` counts *data-path* syncs only — the ones group commit pays per
/// transaction batch; preallocation, manifest, and truncation syncs are
/// metadata and tracked separately.
#[derive(Debug, Default)]
pub struct WalStats {
    fsyncs: AtomicU64,
    meta_syncs: AtomicU64,
}

impl WalStats {
    /// Data fsyncs performed so far (inline syncs + flush-batch executions).
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs.load(Ordering::Acquire)
    }

    /// Metadata syncs (segment preallocation, manifest, truncation).
    pub fn meta_syncs(&self) -> u64 {
        self.meta_syncs.load(Ordering::Acquire)
    }

    fn add_fsyncs(&self, n: u64) {
        self.fsyncs.fetch_add(n, Ordering::AcqRel);
    }

    fn add_meta(&self, n: u64) {
        self.meta_syncs.fetch_add(n, Ordering::AcqRel);
    }
}

/// Shared durable-watermark cell: the engine parks outgoing messages against
/// it and a background flusher advances it. Byte tickets are monotone, so a
/// single `fetch_max` + broadcast is enough. A flusher that hits a real I/O
/// error *poisons* the cell so waiters fail loudly instead of hanging on a
/// watermark that can never advance.
#[derive(Debug, Default)]
pub struct FlushProgress {
    durable: AtomicU64,
    poisoned: AtomicBool,
    lock: Mutex<()>,
    cond: Condvar,
}

impl FlushProgress {
    fn new(durable: u64) -> Arc<Self> {
        Arc::new(FlushProgress {
            durable: AtomicU64::new(durable),
            poisoned: AtomicBool::new(false),
            lock: Mutex::new(()),
            cond: Condvar::new(),
        })
    }

    /// Current durable byte watermark.
    pub fn durable(&self) -> u64 {
        self.durable.load(Ordering::Acquire)
    }

    /// Advance the watermark (monotone) and wake waiters.
    pub fn advance(&self, to: u64) {
        let _g = self.lock.lock().unwrap();
        self.durable.fetch_max(to, Ordering::AcqRel);
        self.cond.notify_all();
    }

    /// Mark the log device failed: the watermark will never advance again.
    pub fn poison(&self) {
        let _g = self.lock.lock().unwrap();
        self.poisoned.store(true, Ordering::Release);
        self.cond.notify_all();
    }

    /// True once a flusher reported an unrecoverable I/O error.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Block until the watermark reaches `ticket`, or fail if the cell was
    /// poisoned before it got there.
    pub fn wait_for(&self, ticket: u64) -> io::Result<()> {
        if self.durable() >= ticket {
            return Ok(());
        }
        let mut g = self.lock.lock().unwrap();
        while self.durable() < ticket {
            if self.is_poisoned() {
                return Err(io::Error::other("wal flush pipeline failed"));
            }
            g = self.cond.wait(g).unwrap();
        }
        Ok(())
    }
}

/// How an injected I/O fault manifests mid-append.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Short write: the frame is cut at the fault offset (torn tail on disk).
    Torn,
    /// The write fails outright; nothing past the fault offset reaches disk.
    Error,
    /// The file handle vanishes (e.g. the device disappeared).
    DropHandle,
}

/// A seeded write fault: the first physical write that would carry the byte
/// stream past `fail_after` bytes triggers `kind`. After a fault fires the
/// WAL is dead — every further durability operation fails — modelling a site
/// whose log device failed mid-run. A fault-armed WAL never seals batches:
/// its writes stay inline so the fault fires at a deterministic point.
#[derive(Clone, Copy, Debug)]
pub struct WriteFault {
    /// Physical byte offset at which the fault fires.
    pub fail_after: u64,
    /// Fault flavour.
    pub kind: FaultKind,
}

/// One physical write of a flush batch: a slice of the batch's bytes into a
/// segment file at a fixed offset (pwrite — no shared cursor to race on).
#[derive(Debug)]
struct SegWrite {
    file: File,
    /// (wal uid, segment base): identifies the file for fsync coalescing.
    sync_key: (u64, u64),
    /// File offset of the write.
    off: u64,
    /// Range into the batch's byte buffer.
    start: usize,
    len: usize,
}

/// A sealed batch of appended bytes for a background flusher: write + fsync,
/// then advance the shared watermark. Batches sealed from one WAL must be
/// executed in seal order, preserving prefix durability; a batch may span a
/// rotation point, in which case it carries one write per touched segment.
#[derive(Debug)]
pub struct FlushBatch {
    bytes: Vec<u8>,
    writes: Vec<SegWrite>,
    ticket: u64,
    progress: Arc<FlushProgress>,
    stats: Arc<WalStats>,
}

impl FlushBatch {
    /// Byte ticket this batch advances the watermark to.
    pub fn ticket(&self) -> u64 {
        self.ticket
    }

    /// Write, fsync, and publish the new durable watermark.
    pub fn execute(self) -> io::Result<()> {
        Self::execute_all(vec![self])
    }

    /// Execute a drained burst of batches as **one group commit**: every
    /// write lands first, then each distinct segment file is fsynced exactly
    /// once, then every batch's watermark advances. N batches into one
    /// segment cost 1 fsync — this coalescing is where the flush pipeline's
    /// throughput comes from. On error every involved watermark is poisoned
    /// so parked waiters fail instead of hanging.
    pub fn execute_all(batches: Vec<FlushBatch>) -> io::Result<()> {
        if batches.is_empty() {
            return Ok(());
        }
        let run = || -> io::Result<()> {
            for b in &batches {
                for w in &b.writes {
                    w.file
                        .write_all_at(&b.bytes[w.start..w.start + w.len], w.off)?;
                }
            }
            // One fsync per distinct segment file across the whole burst,
            // in first-touched order (write order == logical order, so the
            // prefix-durability fsync ordering is preserved per WAL).
            let mut synced: Vec<(u64, u64)> = Vec::new();
            for b in &batches {
                for w in &b.writes {
                    if !synced.contains(&w.sync_key) {
                        w.file.sync_data()?;
                        synced.push(w.sync_key);
                        b.stats.add_fsyncs(1);
                    }
                }
            }
            Ok(())
        };
        match run() {
            Ok(()) => {
                for b in &batches {
                    b.progress.advance(b.ticket);
                }
                Ok(())
            }
            Err(e) => {
                for b in &batches {
                    b.progress.poison();
                }
                Err(e)
            }
        }
    }
}

/// One live segment file.
#[derive(Debug)]
struct Segment {
    /// Logical offset of file byte 0.
    base: u64,
    /// Preallocated file length (an oversized frame can push it past the
    /// configured segment size).
    capacity: u64,
    path: PathBuf,
    file: File,
}

/// A pending (unsealed) byte range: where in the buffer, and where it lands.
#[derive(Clone, Copy, Debug)]
struct PendingSpan {
    /// Index into `segments`.
    seg: usize,
    /// File offset of the first byte.
    off: u64,
    /// Range into `buf`.
    start: usize,
    len: usize,
}

/// Segment file path for a given root and base offset.
pub fn segment_path(root: &Path, base: u64) -> PathBuf {
    let name = root
        .file_name()
        .map(|n| n.to_string_lossy())
        .unwrap_or_default();
    root.with_file_name(format!("{name}.{base:016x}.seg"))
}

/// Manifest file path for a given root.
pub fn manifest_path(root: &Path) -> PathBuf {
    let name = root
        .file_name()
        .map(|n| n.to_string_lossy())
        .unwrap_or_default();
    root.with_file_name(format!("{name}.manifest"))
}

const MANIFEST_MAGIC: u32 = 0x4F32_5057; // "O2PW"

fn encode_manifest(start: u64) -> [u8; 20] {
    let mut out = [0u8; 20];
    out[..4].copy_from_slice(&MANIFEST_MAGIC.to_le_bytes());
    out[4..8].copy_from_slice(&1u32.to_le_bytes());
    out[8..16].copy_from_slice(&start.to_le_bytes());
    let crc = crate::codec::crc32(&out[..16]);
    out[16..20].copy_from_slice(&crc.to_le_bytes());
    out
}

fn read_manifest(path: &Path) -> Option<u64> {
    let bytes = std::fs::read(path).ok()?;
    if bytes.len() != 20 {
        return None;
    }
    let magic = u32::from_le_bytes(bytes[..4].try_into().unwrap());
    let crc = u32::from_le_bytes(bytes[16..20].try_into().unwrap());
    if magic != MANIFEST_MAGIC || crc != crate::codec::crc32(&bytes[..16]) {
        return None;
    }
    Some(u64::from_le_bytes(bytes[8..16].try_into().unwrap()))
}

/// fsync the parent directory of `path` — the durability point of a rename
/// or file creation. The error is surfaced, not swallowed: a failed
/// directory sync means the metadata operation may not survive a crash.
fn fsync_dir(path: &Path) -> io::Result<()> {
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    File::open(dir)?.sync_all()
}

/// An append-only, checksummed, segmented, file-backed WAL (see module docs).
#[derive(Debug)]
pub struct DurableWal {
    root: PathBuf,
    opts: WalOptions,
    uid: u64,
    /// Segments in base order; the last is the append tail.
    segments: Vec<Segment>,
    /// In-memory mirror of every appended record, including not-yet-durable
    /// ones — the live log a running site recovers and audits against.
    mem: Wal,
    /// Encoded frames appended since the last seal/sync (logical range
    /// `[sealed, appended)`), with `spans` mapping them onto segments.
    buf: Vec<u8>,
    spans: Vec<PendingSpan>,
    /// Reused per-WAL encode scratch: `append` encodes here first (to learn
    /// the frame length for the rotation decision) without allocating.
    frame: Vec<u8>,
    /// Logical bytes appended over the WAL's lifetime (ticket space).
    appended: u64,
    /// Bytes handed to the flush pipeline (inline or sealed), in order.
    sealed: u64,
    /// Logical offset recovery starts at (the manifest's checkpoint record).
    start: u64,
    /// Logical offset of the most recently appended checkpoint record.
    last_checkpoint: Option<u64>,
    /// Physical bytes pushed toward the OS (fault accounting).
    written: u64,
    progress: Arc<FlushProgress>,
    stats: Arc<WalStats>,
    fault: Option<WriteFault>,
    dead: bool,
}

impl DurableWal {
    /// Open (or create) the WAL rooted at `path` with default options,
    /// discarding any torn or checksum-failing tail, and mirror the
    /// surviving records in memory.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<Self> {
        Self::open_with_opts(path, WalOptions::default())
    }

    /// [`open`](Self::open) with an injected write fault armed.
    pub fn open_with(path: impl Into<PathBuf>, fault: Option<WriteFault>) -> io::Result<Self> {
        Self::open_with_opts(
            path,
            WalOptions {
                fault,
                ..WalOptions::default()
            },
        )
    }

    /// Open with explicit [`WalOptions`]. Scans the root's segment files in
    /// base order, replays from the manifest's start offset, and stops at
    /// the first torn or corrupt frame — **first tear wins**: any later
    /// segment is deleted (its bytes were never covered by the watermark, so
    /// no promise depends on them), and the tail segment is re-zeroed past
    /// the cut so stale bytes can never decode as valid frames later.
    pub fn open_with_opts(path: impl Into<PathBuf>, opts: WalOptions) -> io::Result<Self> {
        let root: PathBuf = path.into();
        assert!(opts.segment_bytes > 0, "segment_bytes must be positive");
        let stats = Arc::new(WalStats::default());
        let mut found = Self::scan_segments(&root)?;
        found.sort_by_key(|&(base, _)| base);
        let start = read_manifest(&manifest_path(&root))
            .filter(|&s| found.first().is_none_or(|&(b, _)| s >= b))
            .or_else(|| found.first().map(|&(b, _)| b))
            .unwrap_or(0);

        let mut segments: Vec<Segment> = Vec::new();
        let mut records = Vec::new();
        let mut end = start;
        let mut torn = false;
        for (i, (base, path)) in found.iter().enumerate() {
            let seg_end = found.get(i + 1).map(|&(b, _)| b);
            if seg_end.is_some_and(|e| e <= start) {
                // Entirely before the live log (a compaction's deletion that
                // a crash interrupted): finish the job.
                std::fs::remove_file(path)?;
                continue;
            }
            let file = OpenOptions::new().read(true).write(true).open(path)?;
            let capacity = file.metadata()?.len();
            if torn || *base > end {
                // Past the first tear (or a base gap, which is the same
                // thing: the previous segment's data never reached this
                // one's base). Nothing here was promised; drop it.
                drop(file);
                std::fs::remove_file(path)?;
                continue;
            }
            let from = end - base; // == 0 for every segment after the first
            let mut bytes = Vec::with_capacity(capacity as usize);
            (&file).read_to_end(&mut bytes)?;
            let (recs, good) = decode_all(&bytes[from as usize..]);
            records.extend(recs);
            end = base + from + good as u64;
            let data_end = from as usize + good;
            // A stop before the physical end is a tear *unless* the next
            // segment's base says rotation ended the data exactly here.
            if data_end < bytes.len() && seg_end != Some(end) {
                torn = true;
                // Cut and re-zero the tail so stale bytes past the cut can
                // never checksum-decode after later appends.
                file.set_len(end - base)?;
                file.set_len(capacity)?;
                file.sync_data()?;
                stats.add_meta(1);
            }
            segments.push(Segment {
                base: *base,
                capacity,
                path: path.clone(),
                file,
            });
        }
        if segments.is_empty() {
            let seg = Self::create_segment(&root, start, opts.segment_bytes, &stats)?;
            segments.push(seg);
        }
        Ok(DurableWal {
            root,
            opts,
            uid: WAL_UID.fetch_add(1, Ordering::Relaxed),
            segments,
            mem: Wal::from_records(records),
            buf: Vec::new(),
            spans: Vec::new(),
            frame: Vec::new(),
            appended: end,
            sealed: end,
            start,
            last_checkpoint: None,
            written: end,
            progress: FlushProgress::new(end),
            stats,
            fault: opts.fault,
            dead: false,
        })
    }

    fn scan_segments(root: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
        let dir = match root.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        let prefix = format!(
            "{}.",
            root.file_name()
                .map(|n| n.to_string_lossy())
                .unwrap_or_default()
        );
        let mut found = Vec::new();
        let entries = match std::fs::read_dir(dir) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(found),
            Err(e) => return Err(e),
        };
        for entry in entries {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let Some(rest) = name.strip_prefix(&prefix) else {
                continue;
            };
            let Some(hex) = rest.strip_suffix(".seg") else {
                continue;
            };
            if hex.len() == 16 {
                if let Ok(base) = u64::from_str_radix(hex, 16) {
                    found.push((base, entry.path()));
                }
            }
        }
        Ok(found)
    }

    /// Create and preallocate a segment: `set_len` reserves the capacity up
    /// front (sparse — no blocks until data lands) and the creation is made
    /// durable (file sync + directory sync) before any data write targets
    /// it, so a crash can never lose a segment whose bytes were fsynced.
    fn create_segment(
        root: &Path,
        base: u64,
        capacity: u64,
        stats: &WalStats,
    ) -> io::Result<Segment> {
        let path = segment_path(root, base);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        file.set_len(capacity)?;
        file.sync_all()?;
        fsync_dir(&path)?;
        stats.add_meta(2);
        Ok(Segment {
            base,
            capacity,
            path,
            file,
        })
    }

    /// Root path of the WAL (segment files live next to it).
    pub fn path(&self) -> &Path {
        &self.root
    }

    /// Observable I/O counters (shared with this WAL's flush batches).
    pub fn stats(&self) -> Arc<WalStats> {
        Arc::clone(&self.stats)
    }

    /// Bases of the live segment files, in order (tests / diagnostics).
    pub fn segment_bases(&self) -> Vec<u64> {
        self.segments.iter().map(|s| s.base).collect()
    }

    /// Rotate if the incoming frame would not fit the tail segment. The
    /// frame is placed *entirely* in one segment — by construction it can
    /// never straddle a boundary.
    fn ensure_capacity(&mut self, n: u64) {
        let tail = self.segments.last().expect("wal always has a tail segment");
        let used = self.appended - tail.base;
        if used + n <= tail.capacity {
            return;
        }
        if used == 0 {
            // Oversized frame into an empty segment: grow the preallocation
            // in place rather than leaving a zero-byte segment behind.
            let cap = n;
            let tail = self.segments.last_mut().unwrap();
            if tail
                .file
                .set_len(cap)
                .and_then(|_| tail.file.sync_all())
                .is_err()
            {
                self.dead = true;
                return;
            }
            tail.capacity = cap;
            self.stats.add_meta(1);
            return;
        }
        let base = self.appended;
        match Self::create_segment(
            &self.root,
            base,
            self.opts.segment_bytes.max(n),
            &self.stats,
        ) {
            Ok(seg) => self.segments.push(seg),
            // Can't create the next segment (disk full, dir gone): the log
            // device is effectively dead; the next sync surfaces it.
            Err(_) => self.dead = true,
        }
    }

    /// Append a record (buffered; durable at the next flush).
    pub fn append(&mut self, rec: LogRecord) {
        self.frame.clear();
        let n = encode_frame(&rec, &mut self.frame) as u64;
        if matches!(rec, LogRecord::Checkpoint { .. }) {
            self.last_checkpoint = Some(self.appended);
        }
        self.mem.append(rec);
        if !self.dead {
            self.ensure_capacity(n);
        }
        if !self.dead {
            let seg = self.segments.len() - 1;
            let s = &self.segments[seg];
            let off = self.appended - s.base;
            debug_assert!(
                off + n <= s.capacity,
                "frame must never straddle a segment boundary"
            );
            match self.spans.last_mut() {
                Some(sp) if sp.seg == seg => sp.len += self.frame.len(),
                _ => self.spans.push(PendingSpan {
                    seg,
                    off,
                    start: self.buf.len(),
                    len: self.frame.len(),
                }),
            }
            self.buf.extend_from_slice(&self.frame);
        }
        self.appended += n;
    }

    /// Convenience mirror of [`Wal::append_update`].
    pub fn append_update(&mut self, exec: ExecId, rec: &UndoRecord) {
        self.append(LogRecord::Update {
            exec,
            key: rec.key,
            before: rec.before,
            after: rec.after,
        });
    }

    /// Ticket covering everything appended so far.
    pub fn append_ticket(&self) -> u64 {
        self.appended
    }

    /// Current durable watermark.
    pub fn durable_ticket(&self) -> u64 {
        self.progress.durable()
    }

    /// Sealed watermark: bytes handed to the flush pipeline (inline or as a
    /// sealed batch), in order. On the deterministic simulator this is the
    /// release gate — the pipeline *will* make these bytes durable, and
    /// every crash/checkpoint/shutdown path synchronises on it first. A dead
    /// WAL reports its durable watermark: nothing more will ever seal.
    pub fn sealed_ticket(&self) -> u64 {
        if self.dead {
            self.progress.durable()
        } else {
            self.sealed
        }
    }

    /// Bytes appended but not yet sealed or synced.
    pub fn pending_bytes(&self) -> u64 {
        self.buf.len() as u64
    }

    /// True when appended bytes are not yet durable (a flush is owed).
    pub fn is_dirty(&self) -> bool {
        self.appended > self.progress.durable()
    }

    /// True when this WAL must flush inline (fault armed, so the fault point
    /// stays deterministic; or already dead).
    pub fn inline_only(&self) -> bool {
        self.fault.is_some() || self.dead
    }

    /// True once an injected fault has fired (the log device is gone).
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Shared watermark cell (for flusher wiring and tests).
    pub fn progress(&self) -> Arc<FlushProgress> {
        Arc::clone(&self.progress)
    }

    fn fault_check(&mut self, len: usize) -> io::Result<usize> {
        if self.dead {
            return Err(io::Error::other("wal is dead"));
        }
        let Some(f) = self.fault else {
            return Ok(len);
        };
        if self.written + len as u64 <= f.fail_after {
            return Ok(len);
        }
        self.dead = true;
        match f.kind {
            FaultKind::Torn => Ok(f.fail_after.saturating_sub(self.written) as usize),
            FaultKind::Error => Err(io::Error::other("injected write error")),
            FaultKind::DropHandle => {
                self.segments.clear();
                Err(io::Error::other("injected handle loss"))
            }
        }
    }

    /// Write `self.buf[..upto]` to its segments (pwrite per span) and fsync
    /// each distinct touched segment once, in order.
    fn write_pending(&mut self, upto: usize) -> io::Result<()> {
        let mut remaining = upto;
        let mut touched: Vec<usize> = Vec::new();
        for sp in &self.spans {
            if remaining == 0 {
                break;
            }
            let take = remaining.min(sp.len);
            let seg = self
                .segments
                .get(sp.seg)
                .ok_or_else(|| io::Error::other("wal handle lost"))?;
            seg.file
                .write_all_at(&self.buf[sp.start..sp.start + take], sp.off)?;
            if touched.last() != Some(&sp.seg) {
                touched.push(sp.seg);
            }
            remaining -= take;
        }
        for seg in touched {
            self.segments[seg].file.sync_data()?;
            self.stats.add_fsyncs(1);
        }
        Ok(())
    }

    /// Write buffered frames and fsync: one group commit, inline. Advances
    /// the durable watermark past every record appended since the last
    /// flush. Waits for any sealed batches first — the log must become
    /// durable strictly in order.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.dead {
            // A dead WAL never advances its watermark — waiting would hang.
            return Err(io::Error::other("wal is dead"));
        }
        // Sealed batches must land before these bytes: prefix durability.
        self.progress.wait_for(self.sealed)?;
        if self.buf.is_empty() {
            return Ok(());
        }
        let allowed = self.fault_check(self.buf.len())?;
        let torn = allowed < self.buf.len();
        self.write_pending(allowed)?;
        self.written += allowed as u64;
        if torn {
            // The torn prefix reached disk but no complete frame boundary
            // did: the watermark does not move, and the WAL is dead.
            self.buf.clear();
            self.spans.clear();
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "injected torn write",
            ));
        }
        self.buf.clear();
        self.spans.clear();
        self.sealed = self.appended;
        self.progress.advance(self.appended);
        Ok(())
    }

    /// Seal the buffered frames into a [`FlushBatch`] for a background
    /// flusher and advance the sealed watermark. Returns `None` when there
    /// is nothing to flush or the WAL must stay inline (fault armed / dead —
    /// asynchronous writes would make the fault point nondeterministic).
    pub fn seal_batch(&mut self) -> Option<FlushBatch> {
        if self.buf.is_empty() || self.inline_only() {
            return None;
        }
        let mut writes = Vec::with_capacity(self.spans.len());
        for sp in &self.spans {
            let seg = &self.segments[sp.seg];
            writes.push(SegWrite {
                file: seg.file.try_clone().ok()?,
                sync_key: (self.uid, seg.base),
                off: sp.off,
                start: sp.start,
                len: sp.len,
            });
        }
        let bytes = std::mem::take(&mut self.buf);
        self.spans.clear();
        self.written += bytes.len() as u64;
        self.sealed = self.appended;
        Some(FlushBatch {
            bytes,
            writes,
            ticket: self.appended,
            progress: Arc::clone(&self.progress),
            stats: Arc::clone(&self.stats),
        })
    }

    /// Mirror of [`Wal::checkpoint`].
    pub fn checkpoint(&mut self, store: &Store) {
        let mut items: Vec<_> = store.iter().collect();
        items.sort_unstable_by_key(|&(k, _)| k);
        self.append(LogRecord::Checkpoint { items });
    }

    /// Log reclamation: drop records before the last checkpoint and delete
    /// whole stale segments. The live-log start offset is recorded in the
    /// manifest (written to a temp file, fsynced, atomically renamed, and
    /// the directory fsynced — every step's error is surfaced), so a crash
    /// at any point leaves either the old manifest or the new one, and the
    /// segments both generations need still exist. Byte tickets remain
    /// monotone — nothing is renumbered, only deleted.
    pub fn truncate_to_checkpoint(&mut self) -> io::Result<()> {
        // Everything must be durable before segments are condemned: a
        // sealed-but-unflushed batch must not target a deleted file.
        self.sync()?;
        self.progress.wait_for(self.appended)?;
        let Some(ckpt) = self.last_checkpoint.filter(|&c| c >= self.start) else {
            return Ok(()); // no checkpoint since the live-log start
        };
        self.mem.truncate_to_checkpoint();
        // Manifest bytes count against the fault budget like any other
        // physical write to the log device.
        let manifest = encode_manifest(ckpt);
        self.fault_check(manifest.len())
            .and_then(|ok| {
                if ok < manifest.len() {
                    Err(io::Error::other("injected torn manifest write"))
                } else {
                    Ok(())
                }
            })
            .inspect(|_| self.written += manifest.len() as u64)?;
        let mpath = manifest_path(&self.root);
        let tmp = mpath.with_extension("manifest.tmp");
        let mut tf = File::create(&tmp)?;
        tf.write_all(&manifest)?;
        tf.sync_all()?;
        drop(tf);
        std::fs::rename(&tmp, &mpath)?;
        // Make the rename itself durable — a swallowed failure here would
        // let a crash resurrect the pre-checkpoint start offset while the
        // segments it needs are already gone.
        fsync_dir(&mpath)?;
        self.stats.add_meta(2);
        self.start = ckpt;
        // Drop every segment that ends at or before the new start.
        let mut dropped = false;
        while self.segments.len() > 1 && self.segments[1].base <= ckpt {
            let seg = self.segments.remove(0);
            std::fs::remove_file(&seg.path)?;
            dropped = true;
        }
        if dropped {
            fsync_dir(&self.root)?;
            self.stats.add_meta(1);
        }
        Ok(())
    }

    /// Simulated crash: lose the unsynced buffer, cut every segment back to
    /// the durable watermark (adversarial: maximum permitted loss), delete
    /// segments past it, and reopen. A dead WAL (injected fault) skips the
    /// truncation — whatever the fault left on disk, including a torn
    /// frame, is what recovery must cope with.
    pub fn crash(mut self) -> io::Result<DurableWal> {
        if !self.dead {
            // Let in-flight background batches land, then cut at the
            // watermark; without this a late flusher write could resurrect
            // bytes the truncation already declared lost.
            self.progress.wait_for(self.sealed)?;
            let wm = self.progress.durable();
            for seg in &self.segments {
                if seg.base >= wm {
                    std::fs::remove_file(&seg.path)?;
                } else {
                    // set_len down then back up re-zeroes the cut tail, so
                    // stale frames past the watermark can never decode.
                    let keep = (wm - seg.base).min(seg.capacity);
                    seg.file.set_len(keep)?;
                    seg.file.set_len(seg.capacity)?;
                    seg.file.sync_data()?;
                }
            }
        }
        let opts = WalOptions {
            segment_bytes: self.opts.segment_bytes,
            fault: None,
        };
        let root = std::mem::take(&mut self.root);
        drop(self);
        DurableWal::open_with_opts(root, opts)
    }

    // ----- logical surface (delegates to the mirror) -----

    /// Number of records.
    pub fn len(&self) -> usize {
        self.mem.len()
    }

    /// True when the log is empty.
    pub fn is_empty(&self) -> bool {
        self.mem.is_empty()
    }

    /// All records (tests / audits).
    pub fn records(&self) -> &[LogRecord] {
        self.mem.records()
    }

    /// Crash recovery over the mirrored records — same code, same result as
    /// the in-memory backend on the same history.
    pub fn recover(&self) -> RecoveredState {
        self.mem.recover()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2pc_common::{GlobalTxnId, Key, Op, Value};

    fn sub(i: u64) -> ExecId {
        ExecId::Sub(GlobalTxnId(i))
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("o2pc-dwal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("site.wal")
    }

    fn small(path: &Path, segment_bytes: u64) -> DurableWal {
        DurableWal::open_with_opts(
            path,
            WalOptions {
                segment_bytes,
                fault: None,
            },
        )
        .unwrap()
    }

    fn sample_workload(w: &mut DurableWal) {
        let mut store = Store::new();
        store.load(Key(1), Value(10));
        store.load(Key(2), Value(20));
        w.checkpoint(&store);
        w.append(LogRecord::Begin(sub(0)));
        store.apply(sub(0), Op::Add(Key(1), 5)).unwrap();
        let u = *store.last_undo(sub(0)).unwrap();
        w.append_update(sub(0), &u);
        w.append(LogRecord::Commit(sub(0)));
    }

    #[test]
    fn reopen_replays_synced_records() {
        let path = tmp("reopen");
        let mut w = DurableWal::open(&path).unwrap();
        sample_workload(&mut w);
        w.sync().unwrap();
        let recs = w.records().to_vec();
        drop(w);
        let w2 = DurableWal::open(&path).unwrap();
        assert_eq!(w2.records(), &recs[..]);
        assert_eq!(
            w2.recover().items,
            vec![(Key(1), Value(15)), (Key(2), Value(20))]
        );
    }

    #[test]
    fn tickets_and_dirtiness() {
        let path = tmp("tickets");
        let mut w = DurableWal::open(&path).unwrap();
        assert!(!w.is_dirty());
        w.append(LogRecord::Begin(sub(1)));
        let t = w.append_ticket();
        assert!(w.is_dirty());
        assert!(w.durable_ticket() < t);
        assert!(w.sealed_ticket() < t);
        assert_eq!(w.pending_bytes(), t);
        w.sync().unwrap();
        assert!(!w.is_dirty());
        assert_eq!(w.durable_ticket(), t);
        assert_eq!(w.sealed_ticket(), t);
        assert_eq!(w.pending_bytes(), 0);
    }

    #[test]
    fn crash_loses_unsynced_tail_only() {
        let path = tmp("crash");
        let mut w = DurableWal::open(&path).unwrap();
        sample_workload(&mut w);
        w.sync().unwrap();
        let durable_len = w.len();
        w.append(LogRecord::Begin(sub(9))); // never synced
        let w2 = w.crash().unwrap();
        assert_eq!(w2.len(), durable_len, "unsynced record gone");
        assert!(!w2
            .records()
            .iter()
            .any(|r| matches!(r, LogRecord::Begin(e) if *e == sub(9))));
    }

    #[test]
    fn seal_batch_advances_watermark_on_execute() {
        let path = tmp("seal");
        let mut w = DurableWal::open(&path).unwrap();
        w.append(LogRecord::Begin(sub(2)));
        let t = w.append_ticket();
        let batch = w.seal_batch().unwrap();
        assert!(w.is_dirty());
        assert_eq!(w.sealed_ticket(), t, "sealing advances the sealed mark");
        assert_eq!(batch.ticket(), t);
        batch.execute().unwrap();
        assert_eq!(w.durable_ticket(), t);
        assert!(!w.is_dirty());
        // Nothing left to seal.
        assert!(w.seal_batch().is_none());
        drop(w);
        assert_eq!(DurableWal::open(&path).unwrap().len(), 1);
    }

    #[test]
    fn burst_of_batches_costs_one_fsync() {
        let path = tmp("coalesce");
        let mut w = DurableWal::open(&path).unwrap();
        let stats = w.stats();
        let mut batches = Vec::new();
        for i in 0..8 {
            w.append(LogRecord::Begin(sub(i)));
            batches.push(w.seal_batch().unwrap());
        }
        let t = w.append_ticket();
        assert_eq!(stats.fsyncs(), 0);
        FlushBatch::execute_all(batches).unwrap();
        assert_eq!(
            stats.fsyncs(),
            1,
            "a burst of 8 sealed batches into one segment is one fsync"
        );
        assert_eq!(w.durable_ticket(), t);
        drop(w);
        assert_eq!(DurableWal::open(&path).unwrap().len(), 8);
    }

    #[test]
    fn rotation_names_segments_by_base_and_never_straddles() {
        let path = tmp("rotate");
        let mut w = small(&path, 96);
        for i in 0..16 {
            w.append(LogRecord::Begin(sub(i)));
        }
        w.sync().unwrap();
        let bases = w.segment_bases();
        assert!(bases.len() > 1, "tiny segments must rotate: {bases:?}");
        assert_eq!(bases[0], 0);
        // Each segment's file decodes standalone from offset 0: no frame
        // straddles a boundary.
        let mut total = 0;
        for &b in &bases {
            let bytes = std::fs::read(segment_path(&path, b)).unwrap();
            let (recs, good) = decode_all(&bytes);
            total += recs.len();
            assert!(good > 0, "segment {b} holds whole frames");
        }
        assert_eq!(total, 16, "every record decodes from exactly one segment");
        // Bases record exactly where the previous segment's data ended.
        drop(w);
        let w2 = small(&path, 96);
        assert_eq!(w2.len(), 16, "reopen stitches segments back in order");
    }

    #[test]
    fn oversized_frame_gets_its_own_segment() {
        let path = tmp("oversize");
        let mut w = small(&path, 64);
        w.append(LogRecord::Begin(sub(0)));
        w.append(LogRecord::Checkpoint {
            items: (0..64).map(|k| (Key(k), Value(k as i64))).collect(),
        });
        w.append(LogRecord::Begin(sub(1)));
        w.sync().unwrap();
        drop(w);
        let w2 = small(&path, 64);
        assert_eq!(w2.len(), 3, "oversized frame survives in its own segment");
    }

    #[test]
    fn truncate_to_checkpoint_drops_stale_segments_and_keeps_tickets_monotone() {
        let path = tmp("trunc");
        let mut w = small(&path, 128);
        sample_workload(&mut w);
        for i in 10..30 {
            w.append(LogRecord::Begin(sub(i)));
        }
        let mut store = w.recover().into_store();
        store.load(Key(1), Value(15));
        w.checkpoint(&store);
        w.append(LogRecord::Begin(sub(5)));
        let before = w.append_ticket();
        let files_before = w.segment_bases().len();
        w.truncate_to_checkpoint().unwrap();
        assert!(w.append_ticket() >= before, "tickets monotone");
        assert!(!w.is_dirty());
        assert!(
            w.segment_bases().len() < files_before,
            "stale segments physically deleted ({} -> {})",
            files_before,
            w.segment_bases().len()
        );
        // First record is now the checkpoint; recovery unchanged.
        assert!(matches!(w.records()[0], LogRecord::Checkpoint { .. }));
        let recs = w.records().to_vec();
        drop(w);
        let w2 = small(&path, 128);
        assert_eq!(w2.records(), &recs[..], "manifest start honoured on reopen");
    }

    #[test]
    fn torn_fault_leaves_recoverable_prefix() {
        let path = tmp("torn");
        let mut w = DurableWal::open(&path).unwrap();
        sample_workload(&mut w);
        w.sync().unwrap();
        let good = w.records().to_vec();
        let cut = w.append_ticket() + 5; // tear 5 bytes into the next frame
        let mut w = DurableWal::open_with(
            &path,
            Some(WriteFault {
                fail_after: cut,
                kind: FaultKind::Torn,
            }),
        )
        .unwrap();
        assert!(w.inline_only(), "fault-armed wal never seals");
        assert!(w.seal_batch().is_none());
        w.append(LogRecord::Begin(sub(7)));
        assert!(w.sync().is_err());
        assert!(w.is_dead());
        drop(w);
        // The segment now ends in a torn frame; open discards it.
        let w2 = DurableWal::open(&path).unwrap();
        assert_eq!(w2.records(), &good[..]);
    }

    #[test]
    fn error_and_drop_handle_faults_kill_the_wal() {
        for kind in [FaultKind::Error, FaultKind::DropHandle] {
            let path = tmp(match kind {
                FaultKind::Error => "err",
                _ => "drop",
            });
            let mut w = DurableWal::open_with(
                &path,
                Some(WriteFault {
                    fail_after: 0,
                    kind,
                }),
            )
            .unwrap();
            w.append(LogRecord::Begin(sub(1)));
            assert!(w.sync().is_err());
            assert!(w.is_dead());
            assert!(w.sync().is_err(), "dead wal stays dead");
            // Nothing reached disk.
            assert_eq!(DurableWal::open(&path).unwrap().len(), 0);
        }
    }

    #[test]
    fn crash_of_dead_wal_recovers_durable_prefix() {
        let path = tmp("deadcrash");
        let mut w = DurableWal::open(&path).unwrap();
        sample_workload(&mut w);
        w.sync().unwrap();
        let good = w.records().to_vec();
        let cut = w.append_ticket() + 3;
        let mut w = DurableWal::open_with(
            &path,
            Some(WriteFault {
                fail_after: cut,
                kind: FaultKind::Torn,
            }),
        )
        .unwrap();
        w.append(LogRecord::Begin(sub(8)));
        let _ = w.sync();
        let w2 = w.crash().unwrap();
        assert_eq!(w2.records(), &good[..]);
    }

    #[test]
    fn compaction_write_fault_surfaces_instead_of_being_swallowed() {
        let path = tmp("compfault");
        let mut w = DurableWal::open(&path).unwrap();
        sample_workload(&mut w);
        w.sync().unwrap();
        let synced = w.append_ticket();
        drop(w);
        // Re-arm so the data sync passes but the manifest write (the
        // rename's durability point) trips the fault: the error must
        // propagate out of truncate_to_checkpoint, not vanish.
        let mut w = DurableWal::open_with(
            &path,
            Some(WriteFault {
                fail_after: synced + 1,
                kind: FaultKind::Error,
            }),
        )
        .unwrap();
        let store = w.recover().into_store();
        w.checkpoint(&store);
        let err = w.truncate_to_checkpoint();
        assert!(err.is_err(), "compaction durability failure must surface");
        assert!(w.is_dead());
    }

    #[test]
    fn crash_mid_rotation_recovers_cleanly_with_tiny_segments() {
        let path = tmp("rotcrash");
        let mut w = small(&path, 80);
        for i in 0..6 {
            w.append(LogRecord::Begin(sub(i)));
        }
        w.sync().unwrap();
        let durable = w.records().to_vec();
        for i in 6..12 {
            w.append(LogRecord::Begin(sub(i))); // unsynced, spans a rotation
        }
        let w2 = w.crash().unwrap();
        assert_eq!(w2.records(), &durable[..]);
        // And the reopened WAL keeps appending across segments correctly.
        let mut w2 = w2;
        for i in 20..26 {
            w2.append(LogRecord::Begin(sub(i)));
        }
        w2.sync().unwrap();
        let all = w2.records().to_vec();
        drop(w2);
        assert_eq!(small(&path, 80).records(), &all[..]);
    }

    #[test]
    fn poisoned_progress_fails_waiters() {
        let p = FlushProgress::new(0);
        p.poison();
        assert!(p.wait_for(10).is_err());
        assert!(p.wait_for(0).is_ok(), "already-reached tickets still pass");
    }
}
