//! On-disk write-ahead log with group commit and torn-tail-tolerant
//! recovery.
//!
//! [`DurableWal`] keeps the same logical surface as the in-memory
//! [`Wal`] — `append`, `checkpoint`, `truncate_to_checkpoint`, `recover` —
//! by maintaining a full in-memory *mirror* of the decoded log alongside the
//! file. Recovery therefore runs the exact same `Wal::recover` code on the
//! same record sequence the file holds, which is what makes the
//! durable-vs-in-memory differential tests byte-for-byte meaningful.
//!
//! ## Durability model
//!
//! Appends are buffered in memory and become durable only at [`sync`]
//! (write + fsync) or when a sealed [`FlushBatch`] completes on a background
//! flusher. Progress is tracked in *byte tickets*: [`append_ticket`] after an
//! append names the byte offset that must become durable before any promise
//! depending on that record (a yes-vote, a decision ack) may leave the site;
//! [`durable_ticket`] is the current durable watermark. Because the log is
//! written strictly sequentially and fsynced in order, durability is
//! *prefix-closed*: a durable ticket covers every earlier record. Group
//! commit falls out of the ticket scheme — one fsync advances the watermark
//! past every record buffered since the last flush, amortising the sync
//! across all transactions that appended in the window.
//!
//! [`sync`]: DurableWal::sync
//! [`append_ticket`]: DurableWal::append_ticket
//! [`durable_ticket`]: DurableWal::durable_ticket
//!
//! ## Crash model
//!
//! A simulated crash ([`DurableWal::crash`]) is *adversarial*: the unsynced
//! buffer is discarded and the file is truncated to the durable watermark —
//! the maximum data loss an fsync-honouring disk permits. An injected
//! [`WriteFault`] is harsher still: it can tear a frame mid-write (short
//! write), fail the write outright, or drop the file handle, leaving a tail
//! that only checksum validation can reject. Reopening with
//! [`DurableWal::open`] discards any torn or corrupt tail and replays the
//! rest.

use crate::codec::{decode_all, encode_frame};
use crate::store::{Store, UndoRecord};
use crate::wal::{LogRecord, RecoveredState, Wal};
use o2pc_common::ExecId;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Shared durable-watermark cell: the engine parks outgoing messages against
/// it and a background flusher advances it. Byte tickets are monotone, so a
/// single `fetch_max` + broadcast is enough.
#[derive(Debug, Default)]
pub struct FlushProgress {
    durable: AtomicU64,
    lock: Mutex<()>,
    cond: Condvar,
}

impl FlushProgress {
    fn new(durable: u64) -> Arc<Self> {
        Arc::new(FlushProgress {
            durable: AtomicU64::new(durable),
            lock: Mutex::new(()),
            cond: Condvar::new(),
        })
    }

    /// Current durable byte watermark.
    pub fn durable(&self) -> u64 {
        self.durable.load(Ordering::Acquire)
    }

    /// Advance the watermark (monotone) and wake waiters.
    pub fn advance(&self, to: u64) {
        let _g = self.lock.lock().unwrap();
        self.durable.fetch_max(to, Ordering::AcqRel);
        self.cond.notify_all();
    }

    /// Block until the watermark reaches `ticket`.
    pub fn wait_for(&self, ticket: u64) {
        if self.durable() >= ticket {
            return;
        }
        let mut g = self.lock.lock().unwrap();
        while self.durable() < ticket {
            g = self.cond.wait(g).unwrap();
        }
    }
}

/// How an injected I/O fault manifests mid-append.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Short write: the frame is cut at the fault offset (torn tail on disk).
    Torn,
    /// The write fails outright; nothing past the fault offset reaches disk.
    Error,
    /// The file handle vanishes (e.g. the device disappeared).
    DropHandle,
}

/// A seeded write fault: the first physical write that would carry the byte
/// stream past `fail_after` bytes triggers `kind`. After a fault fires the
/// WAL is dead — every further durability operation fails — modelling a site
/// whose log device failed mid-run.
#[derive(Clone, Copy, Debug)]
pub struct WriteFault {
    /// Physical byte offset at which the fault fires.
    pub fail_after: u64,
    /// Fault flavour.
    pub kind: FaultKind,
}

/// A sealed batch of appended bytes for a background flusher: write + fsync,
/// then advance the shared watermark. Batches sealed from one WAL must be
/// executed in seal order (the flusher is FIFO), preserving prefix
/// durability.
#[derive(Debug)]
pub struct FlushBatch {
    file: File,
    bytes: Vec<u8>,
    ticket: u64,
    progress: Arc<FlushProgress>,
}

impl FlushBatch {
    /// Byte ticket this batch advances the watermark to.
    pub fn ticket(&self) -> u64 {
        self.ticket
    }

    /// Write, fsync, and publish the new durable watermark.
    pub fn execute(mut self) -> io::Result<()> {
        self.file.write_all(&self.bytes)?;
        self.file.sync_data()?;
        self.progress.advance(self.ticket);
        Ok(())
    }
}

/// An append-only, checksummed, file-backed WAL (see module docs).
#[derive(Debug)]
pub struct DurableWal {
    path: PathBuf,
    file: Option<File>,
    /// In-memory mirror of every appended record, including not-yet-durable
    /// ones — the live log a running site recovers and audits against.
    mem: Wal,
    /// Encoded frames appended since the last seal/sync.
    buf: Vec<u8>,
    /// Logical bytes appended over the WAL's lifetime (ticket space).
    appended: u64,
    /// Logical offset of physical byte 0 (advances when truncation rewrites
    /// the file, so tickets stay monotone across log reclamation).
    base: u64,
    /// Physical bytes successfully handed to the OS (fault accounting).
    written: u64,
    progress: Arc<FlushProgress>,
    fault: Option<WriteFault>,
    dead: bool,
}

impl DurableWal {
    /// Open (or create) the WAL at `path`, discarding any torn or
    /// checksum-failing tail, and mirror the surviving records in memory.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<Self> {
        Self::open_with(path, None)
    }

    /// [`open`](Self::open) with an injected write fault armed.
    pub fn open_with(path: impl Into<PathBuf>, fault: Option<WriteFault>) -> io::Result<Self> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let (records, good) = decode_all(&bytes);
        if good < bytes.len() {
            // Torn tail: cut it off so future appends start at a clean
            // frame boundary.
            file.set_len(good as u64)?;
            file.sync_data()?;
        }
        Ok(DurableWal {
            path,
            file: Some(file),
            mem: Wal::from_records(records),
            buf: Vec::new(),
            appended: good as u64,
            base: 0,
            written: good as u64,
            progress: FlushProgress::new(good as u64),
            fault,
            dead: false,
        })
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append a record (buffered; durable at the next flush).
    pub fn append(&mut self, rec: LogRecord) {
        let n = encode_frame(&rec, &mut self.buf);
        self.mem.append(rec);
        self.appended += n as u64;
    }

    /// Convenience mirror of [`Wal::append_update`].
    pub fn append_update(&mut self, exec: ExecId, rec: &UndoRecord) {
        self.append(LogRecord::Update {
            exec,
            key: rec.key,
            before: rec.before,
            after: rec.after,
        });
    }

    /// Ticket covering everything appended so far.
    pub fn append_ticket(&self) -> u64 {
        self.appended
    }

    /// Current durable watermark.
    pub fn durable_ticket(&self) -> u64 {
        self.progress.durable()
    }

    /// True when appended bytes are not yet durable (a flush is owed).
    pub fn is_dirty(&self) -> bool {
        self.appended > self.progress.durable()
    }

    /// True once an injected fault has fired (the log device is gone).
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Shared watermark cell (for flusher wiring and tests).
    pub fn progress(&self) -> Arc<FlushProgress> {
        Arc::clone(&self.progress)
    }

    fn fault_check(&mut self, len: usize) -> io::Result<usize> {
        if self.dead {
            return Err(io::Error::other("wal is dead"));
        }
        let Some(f) = self.fault else {
            return Ok(len);
        };
        if self.written + len as u64 <= f.fail_after {
            return Ok(len);
        }
        self.dead = true;
        match f.kind {
            FaultKind::Torn => Ok(f.fail_after.saturating_sub(self.written) as usize),
            FaultKind::Error => Err(io::Error::other("injected write error")),
            FaultKind::DropHandle => {
                self.file = None;
                Err(io::Error::other("injected handle loss"))
            }
        }
    }

    /// Write buffered frames and fsync: one group commit. Advances the
    /// durable watermark past every record appended since the last flush.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.dead {
            // A dead WAL never advances its watermark — waiting would hang.
            return Err(io::Error::other("wal is dead"));
        }
        // Sealed batches must land before these bytes: the file is strictly
        // append-ordered and an inline write overtaking a queued batch would
        // interleave frames out of order.
        self.progress
            .wait_for(self.appended - self.buf.len() as u64);
        if self.buf.is_empty() {
            return Ok(());
        }
        let allowed = self.fault_check(self.buf.len())?;
        let torn = allowed < self.buf.len();
        let file = self
            .file
            .as_mut()
            .ok_or_else(|| io::Error::other("wal handle lost"))?;
        file.write_all(&self.buf[..allowed])?;
        file.sync_data()?;
        self.written += allowed as u64;
        if torn {
            // The torn prefix reached disk but no complete frame boundary
            // did: the watermark does not move, and the WAL is dead.
            self.buf.clear();
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "injected torn write",
            ));
        }
        self.buf.clear();
        self.progress.advance(self.appended);
        Ok(())
    }

    /// Seal the buffered frames into a [`FlushBatch`] for a background
    /// flusher. Returns `None` when there is nothing to flush or the WAL can
    /// no longer write.
    pub fn seal_batch(&mut self) -> Option<FlushBatch> {
        if self.buf.is_empty() || self.dead {
            return None;
        }
        let file = self.file.as_ref()?.try_clone().ok()?;
        let bytes = std::mem::take(&mut self.buf);
        self.written += bytes.len() as u64;
        Some(FlushBatch {
            file,
            bytes,
            ticket: self.appended,
            progress: Arc::clone(&self.progress),
        })
    }

    /// Mirror of [`Wal::checkpoint`].
    pub fn checkpoint(&mut self, store: &Store) {
        let mut items: Vec<_> = store.iter().collect();
        items.sort_unstable_by_key(|&(k, _)| k);
        self.append(LogRecord::Checkpoint { items });
    }

    /// Log reclamation: drop records before the last checkpoint and compact
    /// the file. The compacted log is written to a temp file, fsynced, and
    /// atomically renamed over the live log, so a crash at any point leaves
    /// either the old complete log or the new complete log — never a hybrid.
    /// Byte tickets remain monotone across the rewrite.
    pub fn truncate_to_checkpoint(&mut self) -> io::Result<()> {
        // Everything must be durable before the old log is replaced: a
        // sealed-but-unflushed batch would otherwise target the unlinked
        // inode.
        self.sync()?;
        self.progress.wait_for(self.appended);
        self.mem.truncate_to_checkpoint();
        let mut bytes = Vec::new();
        for rec in self.mem.records() {
            encode_frame(rec, &mut bytes);
        }
        let tmp = self.path.with_extension("waltmp");
        let mut tf = File::create(&tmp)?;
        tf.write_all(&bytes)?;
        tf.sync_all()?;
        drop(tf);
        std::fs::rename(&tmp, &self.path)?;
        if let Some(dir) = self.path.parent() {
            // Make the rename itself durable.
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        self.file = Some(
            OpenOptions::new()
                .read(true)
                .append(true)
                .open(&self.path)?,
        );
        self.base = self.appended - bytes.len() as u64;
        self.written = bytes.len() as u64;
        self.progress.advance(self.appended);
        Ok(())
    }

    /// Simulated crash: lose the unsynced buffer, truncate the file to the
    /// durable watermark (adversarial: maximum permitted loss), and reopen.
    /// A dead WAL (injected fault) skips the truncation — whatever the fault
    /// left on disk, including a torn frame, is what recovery must cope
    /// with.
    pub fn crash(mut self) -> io::Result<DurableWal> {
        let sealed = self.appended - self.buf.len() as u64;
        if !self.dead {
            // Let in-flight background batches land, then cut at the
            // watermark; without this a late flusher write could resurrect
            // bytes the truncation already declared lost.
            self.progress.wait_for(sealed);
            let phys = self.progress.durable() - self.base;
            drop(self.file.take());
            if let Ok(f) = OpenOptions::new().write(true).open(&self.path) {
                f.set_len(phys)?;
                f.sync_data()?;
            }
        }
        DurableWal::open(self.path)
    }

    // ----- logical surface (delegates to the mirror) -----

    /// Number of records.
    pub fn len(&self) -> usize {
        self.mem.len()
    }

    /// True when the log is empty.
    pub fn is_empty(&self) -> bool {
        self.mem.is_empty()
    }

    /// All records (tests / audits).
    pub fn records(&self) -> &[LogRecord] {
        self.mem.records()
    }

    /// Crash recovery over the mirrored records — same code, same result as
    /// the in-memory backend on the same history.
    pub fn recover(&self) -> RecoveredState {
        self.mem.recover()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2pc_common::{GlobalTxnId, Key, Op, Value};

    fn sub(i: u64) -> ExecId {
        ExecId::Sub(GlobalTxnId(i))
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("o2pc-dwal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("site.wal")
    }

    fn sample_workload(w: &mut DurableWal) {
        let mut store = Store::new();
        store.load(Key(1), Value(10));
        store.load(Key(2), Value(20));
        w.checkpoint(&store);
        w.append(LogRecord::Begin(sub(0)));
        store.apply(sub(0), Op::Add(Key(1), 5)).unwrap();
        let u = *store.last_undo(sub(0)).unwrap();
        w.append_update(sub(0), &u);
        w.append(LogRecord::Commit(sub(0)));
    }

    #[test]
    fn reopen_replays_synced_records() {
        let path = tmp("reopen");
        let mut w = DurableWal::open(&path).unwrap();
        sample_workload(&mut w);
        w.sync().unwrap();
        let recs = w.records().to_vec();
        drop(w);
        let w2 = DurableWal::open(&path).unwrap();
        assert_eq!(w2.records(), &recs[..]);
        assert_eq!(
            w2.recover().items,
            vec![(Key(1), Value(15)), (Key(2), Value(20))]
        );
    }

    #[test]
    fn tickets_and_dirtiness() {
        let path = tmp("tickets");
        let mut w = DurableWal::open(&path).unwrap();
        assert!(!w.is_dirty());
        w.append(LogRecord::Begin(sub(1)));
        let t = w.append_ticket();
        assert!(w.is_dirty());
        assert!(w.durable_ticket() < t);
        w.sync().unwrap();
        assert!(!w.is_dirty());
        assert_eq!(w.durable_ticket(), t);
    }

    #[test]
    fn crash_loses_unsynced_tail_only() {
        let path = tmp("crash");
        let mut w = DurableWal::open(&path).unwrap();
        sample_workload(&mut w);
        w.sync().unwrap();
        let durable_len = w.len();
        w.append(LogRecord::Begin(sub(9))); // never synced
        let w2 = w.crash().unwrap();
        assert_eq!(w2.len(), durable_len, "unsynced record gone");
        assert!(!w2
            .records()
            .iter()
            .any(|r| matches!(r, LogRecord::Begin(e) if *e == sub(9))));
    }

    #[test]
    fn seal_batch_advances_watermark_on_execute() {
        let path = tmp("seal");
        let mut w = DurableWal::open(&path).unwrap();
        w.append(LogRecord::Begin(sub(2)));
        let t = w.append_ticket();
        let batch = w.seal_batch().unwrap();
        assert!(w.is_dirty());
        assert_eq!(batch.ticket(), t);
        batch.execute().unwrap();
        assert_eq!(w.durable_ticket(), t);
        assert!(!w.is_dirty());
        // Nothing left to seal.
        assert!(w.seal_batch().is_none());
        drop(w);
        assert_eq!(DurableWal::open(&path).unwrap().len(), 1);
    }

    #[test]
    fn truncate_to_checkpoint_compacts_file_and_keeps_tickets_monotone() {
        let path = tmp("trunc");
        let mut w = DurableWal::open(&path).unwrap();
        sample_workload(&mut w);
        let mut store = w.recover().into_store();
        store.load(Key(1), Value(15));
        w.checkpoint(&store);
        w.append(LogRecord::Begin(sub(5)));
        let before = w.append_ticket();
        w.truncate_to_checkpoint().unwrap();
        assert!(w.append_ticket() >= before, "tickets monotone");
        assert!(!w.is_dirty());
        let disk = std::fs::metadata(&path).unwrap().len();
        assert!(disk < before, "file physically compacted");
        // First record is now the checkpoint; recovery unchanged.
        assert!(matches!(w.records()[0], LogRecord::Checkpoint { .. }));
        let w2 = DurableWal::open(&path).unwrap();
        assert_eq!(w2.records(), w.records());
    }

    #[test]
    fn torn_fault_leaves_recoverable_prefix() {
        let path = tmp("torn");
        let mut w = DurableWal::open(&path).unwrap();
        sample_workload(&mut w);
        w.sync().unwrap();
        let good = w.records().to_vec();
        let cut = w.append_ticket() + 5; // tear 5 bytes into the next frame
        let mut w = DurableWal::open_with(
            &path,
            Some(WriteFault {
                fail_after: cut,
                kind: FaultKind::Torn,
            }),
        )
        .unwrap();
        w.append(LogRecord::Begin(sub(7)));
        assert!(w.sync().is_err());
        assert!(w.is_dead());
        drop(w);
        // The file now ends in a torn frame; open discards it.
        assert!(std::fs::metadata(&path).unwrap().len() > 0);
        let w2 = DurableWal::open(&path).unwrap();
        assert_eq!(w2.records(), &good[..]);
    }

    #[test]
    fn error_and_drop_handle_faults_kill_the_wal() {
        for kind in [FaultKind::Error, FaultKind::DropHandle] {
            let path = tmp(match kind {
                FaultKind::Error => "err",
                _ => "drop",
            });
            let mut w = DurableWal::open_with(
                &path,
                Some(WriteFault {
                    fail_after: 0,
                    kind,
                }),
            )
            .unwrap();
            w.append(LogRecord::Begin(sub(1)));
            assert!(w.sync().is_err());
            assert!(w.is_dead());
            assert!(w.sync().is_err(), "dead wal stays dead");
            // Nothing reached disk.
            assert_eq!(DurableWal::open(&path).unwrap().len(), 0);
        }
    }

    #[test]
    fn crash_of_dead_wal_recovers_durable_prefix() {
        let path = tmp("deadcrash");
        let mut w = DurableWal::open(&path).unwrap();
        sample_workload(&mut w);
        w.sync().unwrap();
        let good = w.records().to_vec();
        let cut = w.append_ticket() + 3;
        let mut w = DurableWal::open_with(
            &path,
            Some(WriteFault {
                fail_after: cut,
                kind: FaultKind::Torn,
            }),
        )
        .unwrap();
        w.append(LogRecord::Begin(sub(8)));
        let _ = w.sync();
        let w2 = w.crash().unwrap();
        assert_eq!(w2.records(), &good[..]);
    }
}
