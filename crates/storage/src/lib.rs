//! # o2pc-storage
//!
//! The per-site storage kernel: an in-place key/value store with per-execution
//! undo tracking ([`store::Store`]) and a write-ahead log with
//! checkpoint-based crash recovery ([`wal::Wal`]).
//!
//! The paper's recovery assumptions (§2, §3.2) are exactly: (a) a site can
//! roll back any not-yet-committed (sub)transaction from its log ("standard
//! recovery techniques, e.g. undo from log"), and (b) after a site votes to
//! commit under O2PC the updates are *locally committed* — they survive in the
//! store, later undone only *semantically* by a compensating subtransaction.
//! [`store::CommitRecord`], returned by [`store::Store::commit`], carries both
//! the before-images and the semantic operation log that `o2pc-compensation`
//! turns into a compensating subtransaction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod codec;
pub mod durable;
pub mod store;
pub mod wal;

pub use backend::WalBackend;
pub use durable::{
    segment_path, DurableWal, FaultKind, FlushBatch, FlushProgress, WalOptions, WalStats,
    WriteFault, DEFAULT_SEGMENT_BYTES,
};
pub use store::{CommitRecord, Store, UndoRecord};
pub use wal::{LogRecord, RecoveredState, Wal};
