//! In-place key/value store with per-execution undo tracking.
//!
//! Writes are applied in place under the protection of the lock manager
//! (strict 2PL makes in-place updates safe: no other execution can observe an
//! uncommitted value unless the protocol deliberately released the locks, as
//! O2PC does at local commit). Each mutating operation appends the item's
//! before-image to the execution's undo list and the semantic operation to its
//! op log; [`Store::rollback`] restores before-images in reverse order, and
//! [`Store::commit`] returns a [`CommitRecord`] so the compensation layer can
//! later undo the execution *semantically*.

use o2pc_common::FastHashMap;
use o2pc_common::{CommonError, ExecId, Key, Op, Result, Value};
use std::collections::hash_map::Entry;
use std::collections::HashSet;

/// Deduplicate keys drawn from undo records, preserving first-occurrence
/// order. Hash-set membership keeps this linear — compensation planning
/// calls it per commit, so the old `Vec::contains` scan was quadratic in
/// the write-set size.
fn dedup_keys<'a>(undo: impl Iterator<Item = &'a UndoRecord>) -> Vec<Key> {
    let mut seen = HashSet::new();
    let mut keys = Vec::new();
    for u in undo {
        if seen.insert(u.key) {
            keys.push(u.key);
        }
    }
    keys
}

/// Before-image of one mutation (`None` = the key did not exist).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UndoRecord {
    /// Item mutated.
    pub key: Key,
    /// Value before the mutation (`None` if the key was absent).
    pub before: Option<Value>,
    /// Value after the mutation (`None` if the mutation deleted the key).
    pub after: Option<Value>,
}

/// Everything retained about a (locally) committed execution that later
/// compensation may need: before-images (generic model) and the semantic op
/// log (restricted model).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CommitRecord {
    /// Before-images in execution order.
    pub undo: Vec<UndoRecord>,
    /// All operations the execution performed, in order (reads included, so
    /// the record doubles as an audit trail).
    pub ops: Vec<Op>,
}

impl CommitRecord {
    /// Keys written by the execution (deduplicated, in first-write order).
    pub fn write_set(&self) -> Vec<Key> {
        dedup_keys(self.undo.iter())
    }
}

/// The per-site store.
#[derive(Clone, Debug, Default)]
pub struct Store {
    items: FastHashMap<Key, Value>,
    undo: FastHashMap<ExecId, Vec<UndoRecord>>,
    ops: FastHashMap<ExecId, Vec<Op>>,
}

impl Store {
    /// New empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-load an item (used by workload setup, bypasses logging).
    pub fn load(&mut self, key: Key, value: Value) {
        self.items.insert(key, value);
    }

    /// Current value of an item.
    pub fn get(&self, key: Key) -> Option<Value> {
        self.items.get(&key).copied()
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the store holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterate items in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (Key, Value)> + '_ {
        self.items.iter().map(|(&k, &v)| (k, v))
    }

    /// Sum of all values (workload invariant checks).
    pub fn total(&self) -> i64 {
        self.items.values().map(|v| v.0).sum()
    }

    /// Is the execution known to the store (has it performed any mutation)?
    pub fn has_pending(&self, exec: ExecId) -> bool {
        self.undo.contains_key(&exec)
    }

    fn log_mutation(&mut self, exec: ExecId, rec: UndoRecord, op: Op) {
        self.undo.entry(exec).or_default().push(rec);
        self.ops.entry(exec).or_default().push(op);
    }

    /// Apply one operation on behalf of `exec`. Locking must already have
    /// been granted by the caller. Returns the value read for `Op::Read`,
    /// `None` for mutations.
    ///
    /// Conditional semantic operations fail *without* mutating state:
    /// `Reserve` on insufficient stock, `Insert` of an existing key,
    /// `Delete`/`Add`/`Reserve`/`Release` of a missing key. A failed
    /// operation aborts nothing by itself — the caller decides (a site votes
    /// *abort* for the surrounding global transaction; a local transaction
    /// rolls back).
    pub fn apply(&mut self, exec: ExecId, op: Op) -> Result<Option<Value>> {
        match op {
            Op::Read(k) => {
                let v = self
                    .items
                    .get(&k)
                    .copied()
                    .ok_or(CommonError::KeyNotFound(k))?;
                self.ops.entry(exec).or_default().push(op);
                Ok(Some(v))
            }
            Op::Write(k, v) => {
                let before = self.items.insert(k, v);
                self.log_mutation(
                    exec,
                    UndoRecord {
                        key: k,
                        before,
                        after: Some(v),
                    },
                    op,
                );
                Ok(None)
            }
            Op::Add(k, d) => {
                let cur = self.items.get_mut(&k).ok_or(CommonError::KeyNotFound(k))?;
                let next = cur.checked_add(d).ok_or(CommonError::ConstraintViolated {
                    key: k,
                    reason: "counter overflow",
                })?;
                let before = Some(*cur);
                *cur = next;
                self.log_mutation(
                    exec,
                    UndoRecord {
                        key: k,
                        before,
                        after: Some(next),
                    },
                    op,
                );
                Ok(None)
            }
            Op::Insert(k, v) => match self.items.entry(k) {
                Entry::Occupied(_) => Err(CommonError::KeyExists(k)),
                Entry::Vacant(e) => {
                    e.insert(v);
                    self.log_mutation(
                        exec,
                        UndoRecord {
                            key: k,
                            before: None,
                            after: Some(v),
                        },
                        op,
                    );
                    Ok(None)
                }
            },
            Op::Delete(k) => {
                let before = self.items.remove(&k).ok_or(CommonError::KeyNotFound(k))?;
                self.log_mutation(
                    exec,
                    UndoRecord {
                        key: k,
                        before: Some(before),
                        after: None,
                    },
                    op,
                );
                Ok(None)
            }
            Op::Reserve(k, n) => {
                let cur = self.items.get_mut(&k).ok_or(CommonError::KeyNotFound(k))?;
                if cur.0 < n as i64 {
                    return Err(CommonError::ConstraintViolated {
                        key: k,
                        reason: "insufficient units to reserve",
                    });
                }
                let before = Some(*cur);
                cur.0 -= n as i64;
                let after = Some(*cur);
                self.log_mutation(
                    exec,
                    UndoRecord {
                        key: k,
                        before,
                        after,
                    },
                    op,
                );
                Ok(None)
            }
            Op::Release(k, n) => {
                let cur = self.items.get_mut(&k).ok_or(CommonError::KeyNotFound(k))?;
                let before = Some(*cur);
                cur.0 += n as i64;
                let after = Some(*cur);
                self.log_mutation(
                    exec,
                    UndoRecord {
                        key: k,
                        before,
                        after,
                    },
                    op,
                );
                Ok(None)
            }
        }
    }

    /// Roll back all of `exec`'s mutations from the undo list, newest first.
    /// Returns the undo records applied (the caller records them in the
    /// history as writes of the *compensating* transaction, per §3.2).
    pub fn rollback(&mut self, exec: ExecId) -> Vec<UndoRecord> {
        let undo = self.undo.remove(&exec).unwrap_or_default();
        self.ops.remove(&exec);
        for rec in undo.iter().rev() {
            match rec.before {
                Some(v) => {
                    self.items.insert(rec.key, v);
                }
                None => {
                    self.items.remove(&rec.key);
                }
            }
        }
        undo
    }

    /// Commit `exec`: drop its undo obligation and hand the retained images
    /// and op log to the caller (who may keep them for compensation).
    pub fn commit(&mut self, exec: ExecId) -> CommitRecord {
        CommitRecord {
            undo: self.undo.remove(&exec).unwrap_or_default(),
            ops: self.ops.remove(&exec).unwrap_or_default(),
        }
    }

    /// Re-register an execution's undo obligation after crash recovery (a
    /// *prepared* subtransaction's updates survive, but a later abort
    /// decision must still be able to roll them back).
    pub fn restore_pending(&mut self, exec: ExecId, undo: Vec<UndoRecord>) {
        debug_assert!(!self.undo.contains_key(&exec));
        self.undo.insert(exec, undo);
    }

    /// The most recent undo record of an active execution (what the last
    /// mutating `apply` logged) — the WAL layer appends it after each write.
    pub fn last_undo(&self, exec: ExecId) -> Option<&UndoRecord> {
        self.undo.get(&exec).and_then(|v| v.last())
    }

    /// Keys currently written (dirty) by an active execution.
    pub fn dirty_keys(&self, exec: ExecId) -> Vec<Key> {
        self.undo
            .get(&exec)
            .map(|undo| dedup_keys(undo.iter()))
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2pc_common::GlobalTxnId;

    fn exec(i: u64) -> ExecId {
        ExecId::Sub(GlobalTxnId(i))
    }

    #[test]
    fn read_write_roundtrip() {
        let mut s = Store::new();
        s.load(Key(1), Value(10));
        assert_eq!(s.apply(exec(0), Op::Read(Key(1))).unwrap(), Some(Value(10)));
        s.apply(exec(0), Op::Write(Key(1), Value(20))).unwrap();
        assert_eq!(s.get(Key(1)), Some(Value(20)));
        assert_eq!(s.apply(exec(0), Op::Read(Key(1))).unwrap(), Some(Value(20)));
    }

    #[test]
    fn read_missing_key_fails_without_logging() {
        let mut s = Store::new();
        assert_eq!(
            s.apply(exec(0), Op::Read(Key(9))),
            Err(CommonError::KeyNotFound(Key(9)))
        );
        assert!(!s.has_pending(exec(0)));
    }

    #[test]
    fn rollback_restores_before_images_in_reverse() {
        let mut s = Store::new();
        s.load(Key(1), Value(10));
        s.apply(exec(0), Op::Write(Key(1), Value(20))).unwrap();
        s.apply(exec(0), Op::Write(Key(1), Value(30))).unwrap();
        s.apply(exec(0), Op::Insert(Key(2), Value(5))).unwrap();
        let undo = s.rollback(exec(0));
        assert_eq!(undo.len(), 3);
        assert_eq!(s.get(Key(1)), Some(Value(10)));
        assert_eq!(s.get(Key(2)), None, "inserted key removed on rollback");
        assert!(!s.has_pending(exec(0)));
    }

    #[test]
    fn rollback_of_delete_restores_item() {
        let mut s = Store::new();
        s.load(Key(3), Value(7));
        s.apply(exec(1), Op::Delete(Key(3))).unwrap();
        assert_eq!(s.get(Key(3)), None);
        s.rollback(exec(1));
        assert_eq!(s.get(Key(3)), Some(Value(7)));
    }

    #[test]
    fn commit_returns_record_and_clears_state() {
        let mut s = Store::new();
        s.load(Key(1), Value(0));
        s.apply(exec(2), Op::Add(Key(1), 5)).unwrap();
        s.apply(exec(2), Op::Read(Key(1))).unwrap();
        s.apply(exec(2), Op::Add(Key(1), -2)).unwrap();
        let rec = s.commit(exec(2));
        assert_eq!(rec.undo.len(), 2);
        assert_eq!(rec.ops.len(), 3, "reads are retained in the op log");
        assert_eq!(rec.write_set(), vec![Key(1)]);
        assert!(!s.has_pending(exec(2)));
        assert_eq!(s.get(Key(1)), Some(Value(3)));
    }

    #[test]
    fn add_on_missing_key_fails() {
        let mut s = Store::new();
        assert_eq!(
            s.apply(exec(0), Op::Add(Key(1), 1)),
            Err(CommonError::KeyNotFound(Key(1)))
        );
    }

    #[test]
    fn add_overflow_fails_cleanly() {
        let mut s = Store::new();
        s.load(Key(1), Value(i64::MAX));
        let r = s.apply(exec(0), Op::Add(Key(1), 1));
        assert!(matches!(r, Err(CommonError::ConstraintViolated { .. })));
        assert_eq!(
            s.get(Key(1)),
            Some(Value(i64::MAX)),
            "failed op must not mutate"
        );
    }

    #[test]
    fn insert_existing_fails() {
        let mut s = Store::new();
        s.load(Key(1), Value(1));
        assert_eq!(
            s.apply(exec(0), Op::Insert(Key(1), Value(2))),
            Err(CommonError::KeyExists(Key(1)))
        );
        assert_eq!(s.get(Key(1)), Some(Value(1)));
    }

    #[test]
    fn reserve_and_release() {
        let mut s = Store::new();
        s.load(Key(1), Value(3));
        s.apply(exec(0), Op::Reserve(Key(1), 2)).unwrap();
        assert_eq!(s.get(Key(1)), Some(Value(1)));
        // Over-reserving fails without mutation.
        let r = s.apply(exec(0), Op::Reserve(Key(1), 5));
        assert!(matches!(r, Err(CommonError::ConstraintViolated { .. })));
        assert_eq!(s.get(Key(1)), Some(Value(1)));
        s.apply(exec(0), Op::Release(Key(1), 2)).unwrap();
        assert_eq!(s.get(Key(1)), Some(Value(3)));
    }

    #[test]
    fn reserve_failure_then_rollback_restores_partial_work() {
        let mut s = Store::new();
        s.load(Key(1), Value(2));
        s.load(Key(2), Value(0));
        s.apply(exec(0), Op::Reserve(Key(1), 2)).unwrap();
        assert!(s.apply(exec(0), Op::Reserve(Key(2), 1)).is_err());
        s.rollback(exec(0));
        assert_eq!(s.get(Key(1)), Some(Value(2)));
        assert_eq!(s.get(Key(2)), Some(Value(0)));
    }

    #[test]
    fn independent_executions_do_not_interfere() {
        let mut s = Store::new();
        s.load(Key(1), Value(0));
        s.load(Key(2), Value(0));
        s.apply(exec(1), Op::Add(Key(1), 10)).unwrap();
        s.apply(exec(2), Op::Add(Key(2), 20)).unwrap();
        s.rollback(exec(1));
        assert_eq!(s.get(Key(1)), Some(Value(0)));
        assert_eq!(s.get(Key(2)), Some(Value(20)), "other execution unaffected");
        let rec = s.commit(exec(2));
        assert_eq!(rec.undo.len(), 1);
    }

    #[test]
    fn dirty_keys_and_total() {
        let mut s = Store::new();
        s.load(Key(1), Value(5));
        s.load(Key(2), Value(7));
        assert_eq!(s.total(), 12);
        s.apply(exec(0), Op::Add(Key(1), 1)).unwrap();
        s.apply(exec(0), Op::Add(Key(1), 1)).unwrap();
        s.apply(exec(0), Op::Add(Key(2), 1)).unwrap();
        assert_eq!(s.dirty_keys(exec(0)), vec![Key(1), Key(2)]);
        assert_eq!(s.total(), 15);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn rollback_unknown_exec_is_noop() {
        let mut s = Store::new();
        s.load(Key(1), Value(1));
        let undo = s.rollback(exec(42));
        assert!(undo.is_empty());
        assert_eq!(s.get(Key(1)), Some(Value(1)));
    }
}
