//! Binary codec for [`LogRecord`]: length-prefixed, CRC32-checksummed frames.
//!
//! The on-disk WAL is a sequence of frames:
//!
//! ```text
//! ┌────────────┬────────────┬────────────────────┐
//! │ len: u32LE │ crc: u32LE │ payload (len bytes)│
//! └────────────┴────────────┴────────────────────┘
//! ```
//!
//! `crc` is the CRC-32 (IEEE, reflected) of the payload alone. The payload is
//! a tag byte followed by the record's fields in little-endian fixed-width
//! encoding — no varints, no schema evolution machinery; the format is
//! internal to one process generation and recovery only needs to detect a
//! *torn tail* (a final frame that is truncated or fails its checksum) and
//! discard it. Everything before a bad frame decodes and replays; nothing
//! after it is reachable (framing is lost), which is exactly the append-only
//! contract: a crash can only tear the tail.

use crate::store::{CommitRecord, UndoRecord};
use crate::wal::LogRecord;
use o2pc_common::{ExecId, GlobalTxnId, Key, LocalTxnId, Op, SiteId, Value};
use std::sync::Arc;

/// Frame header size: u32 length + u32 checksum.
pub const FRAME_HEADER: usize = 8;

/// Upper bound on a sane payload (a checkpoint of a very large store). A
/// length field above this is treated as tail corruption, not an allocation
/// request.
pub const MAX_PAYLOAD: u32 = 256 * 1024 * 1024;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320)
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 of `data` (IEEE, as used by zip/png/ethernet).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_exec(out: &mut Vec<u8>, e: ExecId) {
    match e {
        ExecId::Sub(g) => {
            out.push(0);
            put_u64(out, g.0);
        }
        ExecId::CompSub(g) => {
            out.push(1);
            put_u64(out, g.0);
        }
        ExecId::Local(l) => {
            out.push(2);
            put_u32(out, l.site.0);
            put_u64(out, l.seq);
        }
    }
}

fn put_opt_value(out: &mut Vec<u8>, v: Option<Value>) {
    match v {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            put_i64(out, v.0);
        }
    }
}

fn put_op(out: &mut Vec<u8>, op: &Op) {
    match *op {
        Op::Read(k) => {
            out.push(0);
            put_u64(out, k.0);
        }
        Op::Write(k, v) => {
            out.push(1);
            put_u64(out, k.0);
            put_i64(out, v.0);
        }
        Op::Add(k, d) => {
            out.push(2);
            put_u64(out, k.0);
            put_i64(out, d);
        }
        Op::Insert(k, v) => {
            out.push(3);
            put_u64(out, k.0);
            put_i64(out, v.0);
        }
        Op::Delete(k) => {
            out.push(4);
            put_u64(out, k.0);
        }
        Op::Reserve(k, n) => {
            out.push(5);
            put_u64(out, k.0);
            put_u32(out, n);
        }
        Op::Release(k, n) => {
            out.push(6);
            put_u64(out, k.0);
            put_u32(out, n);
        }
    }
}

fn encode_payload(rec: &LogRecord, out: &mut Vec<u8>) {
    match rec {
        LogRecord::Begin(e) => {
            out.push(0);
            put_exec(out, *e);
        }
        LogRecord::Update {
            exec,
            key,
            before,
            after,
        } => {
            out.push(1);
            put_exec(out, *exec);
            put_u64(out, key.0);
            put_opt_value(out, *before);
            put_opt_value(out, *after);
        }
        LogRecord::Commit(e) => {
            out.push(2);
            put_exec(out, *e);
        }
        LogRecord::Prepared(e) => {
            out.push(3);
            put_exec(out, *e);
        }
        LogRecord::LocalCommit { exec, record } => {
            out.push(4);
            put_exec(out, *exec);
            put_u32(out, record.undo.len() as u32);
            for u in &record.undo {
                put_u64(out, u.key.0);
                put_opt_value(out, u.before);
                put_opt_value(out, u.after);
            }
            put_u32(out, record.ops.len() as u32);
            for op in &record.ops {
                put_op(out, op);
            }
        }
        LogRecord::Outcome { txn, commit } => {
            out.push(5);
            put_u64(out, txn.0);
            out.push(*commit as u8);
        }
        LogRecord::Abort(e) => {
            out.push(6);
            put_exec(out, *e);
        }
        LogRecord::Checkpoint { items } => {
            out.push(7);
            put_u32(out, items.len() as u32);
            for &(k, v) in items {
                put_u64(out, k.0);
                put_i64(out, v.0);
            }
        }
    }
}

/// Encode one record as a complete frame (header + payload) appended to
/// `out`. Returns the number of bytes appended.
pub fn encode_frame(rec: &LogRecord, out: &mut Vec<u8>) -> usize {
    let start = out.len();
    out.extend_from_slice(&[0u8; FRAME_HEADER]); // header placeholder
    encode_payload(rec, out);
    let payload_len = out.len() - start - FRAME_HEADER;
    let crc = crc32(&out[start + FRAME_HEADER..]);
    out[start..start + 4].copy_from_slice(&(payload_len as u32).to_le_bytes());
    out[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
    out.len() - start
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Option<u8> {
        let b = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn u32(&mut self) -> Option<u32> {
        let b = self.buf.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        let b = self.buf.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn i64(&mut self) -> Option<i64> {
        self.u64().map(|v| v as i64)
    }

    fn exec(&mut self) -> Option<ExecId> {
        match self.u8()? {
            0 => Some(ExecId::Sub(GlobalTxnId(self.u64()?))),
            1 => Some(ExecId::CompSub(GlobalTxnId(self.u64()?))),
            2 => {
                let site = SiteId(self.u32()?);
                let seq = self.u64()?;
                Some(ExecId::Local(LocalTxnId { site, seq }))
            }
            _ => None,
        }
    }

    fn opt_value(&mut self) -> Option<Option<Value>> {
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(Value(self.i64()?))),
            _ => None,
        }
    }

    fn op(&mut self) -> Option<Op> {
        let tag = self.u8()?;
        let key = Key(self.u64()?);
        match tag {
            0 => Some(Op::Read(key)),
            1 => Some(Op::Write(key, Value(self.i64()?))),
            2 => Some(Op::Add(key, self.i64()?)),
            3 => Some(Op::Insert(key, Value(self.i64()?))),
            4 => Some(Op::Delete(key)),
            5 => Some(Op::Reserve(key, self.u32()?)),
            6 => Some(Op::Release(key, self.u32()?)),
            _ => None,
        }
    }
}

fn decode_payload(payload: &[u8]) -> Option<LogRecord> {
    let mut c = Cursor {
        buf: payload,
        pos: 0,
    };
    let rec = match c.u8()? {
        0 => LogRecord::Begin(c.exec()?),
        1 => LogRecord::Update {
            exec: c.exec()?,
            key: Key(c.u64()?),
            before: c.opt_value()?,
            after: c.opt_value()?,
        },
        2 => LogRecord::Commit(c.exec()?),
        3 => LogRecord::Prepared(c.exec()?),
        4 => {
            let exec = c.exec()?;
            let n_undo = c.u32()? as usize;
            let mut undo = Vec::with_capacity(n_undo.min(1 << 16));
            for _ in 0..n_undo {
                undo.push(UndoRecord {
                    key: Key(c.u64()?),
                    before: c.opt_value()?,
                    after: c.opt_value()?,
                });
            }
            let n_ops = c.u32()? as usize;
            let mut ops = Vec::with_capacity(n_ops.min(1 << 16));
            for _ in 0..n_ops {
                ops.push(c.op()?);
            }
            LogRecord::LocalCommit {
                exec,
                record: Arc::new(CommitRecord { undo, ops }),
            }
        }
        5 => {
            let txn = GlobalTxnId(c.u64()?);
            let commit = match c.u8()? {
                0 => false,
                1 => true,
                _ => return None,
            };
            LogRecord::Outcome { txn, commit }
        }
        6 => LogRecord::Abort(c.exec()?),
        7 => {
            let n = c.u32()? as usize;
            let mut items = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                items.push((Key(c.u64()?), Value(c.i64()?)));
            }
            LogRecord::Checkpoint { items }
        }
        _ => return None,
    };
    // Trailing garbage inside a checksummed frame means the encoder and
    // decoder disagree — treat as corruption.
    (c.pos == payload.len()).then_some(rec)
}

/// Decode every complete, checksum-valid frame from the front of `bytes`.
///
/// Returns the decoded records and the byte offset one past the last good
/// frame. Decoding stops — without error — at the first torn frame: a
/// truncated header, a length that runs past the end of the buffer or
/// exceeds [`MAX_PAYLOAD`], a checksum mismatch, or an undecodable payload.
/// The returned offset is the durable prefix a recovering WAL must truncate
/// to.
pub fn decode_all(bytes: &[u8]) -> (Vec<LogRecord>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while let Some(header) = bytes.get(pos..pos + FRAME_HEADER) {
        let len = u32::from_le_bytes(header[..4].try_into().unwrap());
        let crc = u32::from_le_bytes(header[4..].try_into().unwrap());
        if len > MAX_PAYLOAD {
            break;
        }
        let Some(payload) = bytes.get(pos + FRAME_HEADER..pos + FRAME_HEADER + len as usize) else {
            break;
        };
        if crc32(payload) != crc {
            break;
        }
        let Some(rec) = decode_payload(payload) else {
            break;
        };
        records.push(rec);
        pos += FRAME_HEADER + len as usize;
    }
    (records, pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<LogRecord> {
        let lc = Arc::new(CommitRecord {
            undo: vec![UndoRecord {
                key: Key(3),
                before: Some(Value(7)),
                after: None,
            }],
            ops: vec![Op::Add(Key(3), -7), Op::Read(Key(1))],
        });
        vec![
            LogRecord::Begin(ExecId::Sub(GlobalTxnId(9))),
            LogRecord::Update {
                exec: ExecId::Local(LocalTxnId {
                    site: SiteId(2),
                    seq: 17,
                }),
                key: Key(4),
                before: None,
                after: Some(Value(-5)),
            },
            LogRecord::Commit(ExecId::CompSub(GlobalTxnId(1))),
            LogRecord::Prepared(ExecId::Sub(GlobalTxnId(2))),
            LogRecord::LocalCommit {
                exec: ExecId::Sub(GlobalTxnId(9)),
                record: lc,
            },
            LogRecord::Outcome {
                txn: GlobalTxnId(9),
                commit: true,
            },
            LogRecord::Abort(ExecId::Sub(GlobalTxnId(2))),
            LogRecord::Checkpoint {
                items: vec![(Key(0), Value(10)), (Key(1), Value(-2))],
            },
        ]
    }

    #[test]
    fn crc32_known_vector() {
        // "123456789" → 0xCBF43926 is the canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_every_variant() {
        let mut buf = Vec::new();
        let records = sample_records();
        for r in &records {
            encode_frame(r, &mut buf);
        }
        let (decoded, consumed) = decode_all(&buf);
        assert_eq!(consumed, buf.len());
        assert_eq!(decoded, records);
    }

    #[test]
    fn torn_tail_is_discarded_at_every_offset() {
        let mut buf = Vec::new();
        let records = sample_records();
        let mut boundary = 0;
        for (i, r) in records.iter().enumerate() {
            encode_frame(r, &mut buf);
            if i + 1 == records.len() - 1 {
                boundary = buf.len();
            }
        }
        for cut in boundary..buf.len() {
            let (decoded, consumed) = decode_all(&buf[..cut]);
            assert_eq!(decoded, records[..records.len() - 1], "cut at {cut}");
            assert_eq!(consumed, boundary, "cut at {cut}");
        }
    }

    #[test]
    fn checksum_corruption_discards_frame() {
        let mut buf = Vec::new();
        let records = sample_records();
        for r in &records {
            encode_frame(r, &mut buf);
        }
        let last = buf.len() - 1;
        buf[last] ^= 0x40;
        let (decoded, _) = decode_all(&buf);
        assert_eq!(decoded, records[..records.len() - 1]);
    }

    #[test]
    fn insane_length_is_torn_tail() {
        let mut buf = Vec::new();
        encode_frame(&LogRecord::Begin(ExecId::Sub(GlobalTxnId(1))), &mut buf);
        let good = buf.len();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let (decoded, consumed) = decode_all(&buf);
        assert_eq!(decoded.len(), 1);
        assert_eq!(consumed, good);
    }
}
