//! Property tests: the store against a reference model, and WAL recovery
//! against the live store state.

use o2pc_common::{ExecId, GlobalTxnId, Key, Op, Value};
use o2pc_storage::{LogRecord, Store, Wal};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Clone, Debug)]
enum Step {
    Apply { exec: u8, op: OpSpec },
    Commit { exec: u8 },
    Rollback { exec: u8 },
}

#[derive(Clone, Debug)]
enum OpSpec {
    Read(u8),
    Write(u8, i8),
    Add(u8, i8),
    Insert(u8, i8),
    Delete(u8),
    Reserve(u8, u8),
    Release(u8, u8),
}

impl OpSpec {
    fn to_op(&self) -> Op {
        match *self {
            OpSpec::Read(k) => Op::Read(Key(k as u64)),
            OpSpec::Write(k, v) => Op::Write(Key(k as u64), Value(v as i64)),
            OpSpec::Add(k, d) => Op::Add(Key(k as u64), d as i64),
            OpSpec::Insert(k, v) => Op::Insert(Key(k as u64), Value(v as i64)),
            OpSpec::Delete(k) => Op::Delete(Key(k as u64)),
            OpSpec::Reserve(k, n) => Op::Reserve(Key(k as u64), n as u32 % 4),
            OpSpec::Release(k, n) => Op::Release(Key(k as u64), n as u32 % 4),
        }
    }
}

fn op_spec() -> impl Strategy<Value = OpSpec> {
    prop_oneof![
        (0u8..6).prop_map(OpSpec::Read),
        (0u8..6, any::<i8>()).prop_map(|(k, v)| OpSpec::Write(k, v)),
        (0u8..6, any::<i8>()).prop_map(|(k, d)| OpSpec::Add(k, d)),
        (0u8..6, any::<i8>()).prop_map(|(k, v)| OpSpec::Insert(k, v)),
        (0u8..6).prop_map(OpSpec::Delete),
        (0u8..6, 0u8..4).prop_map(|(k, n)| OpSpec::Reserve(k, n)),
        (0u8..6, 0u8..4).prop_map(|(k, n)| OpSpec::Release(k, n)),
    ]
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => (0u8..3, op_spec()).prop_map(|(exec, op)| Step::Apply { exec, op }),
        1 => (0u8..3).prop_map(|exec| Step::Commit { exec }),
        1 => (0u8..3).prop_map(|exec| Step::Rollback { exec }),
    ]
}

fn exec(i: u8) -> ExecId {
    ExecId::Sub(GlobalTxnId(i as u64))
}

/// Reference model: a plain map plus per-exec journals of inverse closures.
#[derive(Default)]
struct Model {
    items: HashMap<u64, i64>,
    journal: HashMap<u8, Vec<(u64, Option<i64>)>>, // (key, before)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// The store agrees with a simple reference model under arbitrary
    /// interleavings of apply/commit/rollback (per-exec serial semantics —
    /// concurrency control is the lock manager's job, not the store's).
    #[test]
    fn store_matches_reference_model(steps in prop::collection::vec(step(), 1..80)) {
        let mut store = Store::new();
        let mut model = Model::default();
        for k in 0..3u64 {
            store.load(Key(k), Value(5));
            model.items.insert(k, 5);
        }
        for s in &steps {
            match s {
                Step::Apply { exec: e, op } => {
                    let op = op.to_op();
                    let res = store.apply(exec(*e), op);
                    // Model the same operation.
                    let k = op.key().0;
                    let cur = model.items.get(&k).copied();
                    let model_result: Result<Option<i64>, ()> = match op {
                        Op::Read(_) => cur.map(Some).ok_or(()),
                        Op::Write(_, v) => Ok::<_, ()>(Some(v.0)).map(|_| None),
                        Op::Add(_, d) => match cur {
                            Some(c) => c.checked_add(d).map(|_| None).ok_or(()),
                            None => Err(()),
                        },
                        Op::Insert(_, _) if cur.is_some() => Err(()),
                        Op::Insert(_, _) => Ok(None),
                        Op::Delete(_) => cur.map(|_| None).ok_or(()),
                        Op::Reserve(_, n) => match cur {
                            Some(c) if c >= n as i64 => Ok(None),
                            _ => Err(()),
                        },
                        Op::Release(_, _) => cur.map(|_| None).ok_or(()),
                    };
                    match (&res, &model_result) {
                        (Ok(v), Ok(mv)) => {
                            prop_assert_eq!(v.map(|x| x.0), *mv);
                            // Apply the mutation to the model + journal.
                            match op {
                                Op::Read(_) => {}
                                Op::Write(_, v) => {
                                    model.journal.entry(*e).or_default().push((k, cur));
                                    model.items.insert(k, v.0);
                                }
                                Op::Add(_, d) => {
                                    model.journal.entry(*e).or_default().push((k, cur));
                                    model.items.insert(k, cur.unwrap() + d);
                                }
                                Op::Insert(_, v) => {
                                    model.journal.entry(*e).or_default().push((k, None));
                                    model.items.insert(k, v.0);
                                }
                                Op::Delete(_) => {
                                    model.journal.entry(*e).or_default().push((k, cur));
                                    model.items.remove(&k);
                                }
                                Op::Reserve(_, n) => {
                                    model.journal.entry(*e).or_default().push((k, cur));
                                    model.items.insert(k, cur.unwrap() - n as i64);
                                }
                                Op::Release(_, n) => {
                                    model.journal.entry(*e).or_default().push((k, cur));
                                    model.items.insert(k, cur.unwrap() + n as i64);
                                }
                            }
                        }
                        (Err(_), Err(())) => {}
                        other => prop_assert!(false, "divergence on {op:?}: {other:?}"),
                    }
                }
                Step::Commit { exec: e } => {
                    store.commit(exec(*e));
                    model.journal.remove(e);
                }
                Step::Rollback { exec: e } => {
                    store.rollback(exec(*e));
                    if let Some(j) = model.journal.remove(e) {
                        for (k, before) in j.into_iter().rev() {
                            match before {
                                Some(v) => {
                                    model.items.insert(k, v);
                                }
                                None => {
                                    model.items.remove(&k);
                                }
                            }
                        }
                    }
                }
            }
        }
        // Final states agree.
        for k in 0..8u64 {
            prop_assert_eq!(store.get(Key(k)).map(|v| v.0), model.items.get(&k).copied(), "key {}", k);
        }
    }

    /// Crash recovery reproduces exactly the committed + rolled-back state:
    /// recover() must equal the live store after all in-flight execs roll
    /// back.
    #[test]
    fn wal_recovery_matches_live_state(steps in prop::collection::vec(step(), 1..60)) {
        let mut store = Store::new();
        let mut wal = Wal::new();
        for k in 0..3u64 {
            store.load(Key(k), Value(5));
        }
        wal.checkpoint(&store);
        let mut active: Vec<u8> = Vec::new();
        for s in &steps {
            match s {
                Step::Apply { exec: e, op } => {
                    let op = op.to_op();
                    if store.apply(exec(*e), op).is_ok()
                        && op.access_mode() == o2pc_common::AccessMode::Write
                    {
                        let rec = *store.last_undo(exec(*e)).unwrap();
                        wal.append_update(exec(*e), &rec);
                        // Track first-mutation order (what the WAL sees);
                        // read-only executions have nothing to undo.
                        if !active.contains(e) {
                            active.push(*e);
                        }
                    }
                }
                Step::Commit { exec: e } => {
                    store.commit(exec(*e));
                    wal.append(LogRecord::Commit(exec(*e)));
                    active.retain(|x| x != e);
                }
                Step::Rollback { exec: e } => {
                    let undo = store.rollback(exec(*e));
                    for rec in undo.iter().rev() {
                        wal.append(LogRecord::Update {
                            exec: exec(*e),
                            key: rec.key,
                            before: rec.after,
                            after: rec.before,
                        });
                    }
                    wal.append(LogRecord::Abort(exec(*e)));
                    active.retain(|x| x != e);
                }
            }
        }
        // Simulated crash: roll back the in-flight execs on the live store
        // to obtain the expected recovered state. Newest first, matching
        // the recovery undo pass (the orders only differ when two in-flight
        // execs wrote the same key — impossible under locking, but the
        // lock-free store model allows it and recovery must still be
        // self-consistent).
        for e in active.iter().rev() {
            store.rollback(exec(*e));
        }
        let recovered = wal.recover().into_store();
        for k in 0..8u64 {
            prop_assert_eq!(recovered.get(Key(k)), store.get(Key(k)), "key {}", k);
        }
    }
}
