//! Property tests for the torn-tail contract of the on-disk segmented WAL.
//!
//! A crash during an append can leave *any* byte-level prefix of the final
//! frame on disk (the kernel writes sequentially; fsync ordering guarantees
//! everything earlier is intact). The durable backend's whole recovery
//! promise rests on one property: **opening a log truncated at any byte
//! offset inside its final record yields exactly the state of the log
//! without that record** — the tear is detected, the torn frame discarded,
//! and nothing before it disturbed. This sweeps every offset, not just the
//! frame boundaries the unit tests pick, and repeats the sweep on the last
//! segment of a multi-segment log (the only segment a crash can tear:
//! rotation syncs its predecessor before the first append to the new file).
//!
//! The rotation property is here too: frames never straddle a segment
//! boundary by construction, so every segment decodes standalone.

use o2pc_common::{ExecId, GlobalTxnId, Key, Op, Value};
use o2pc_storage::codec::{decode_all, encode_frame};
use o2pc_storage::{segment_path, DurableWal, LogRecord, Store, Wal, WalOptions};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

#[derive(Clone, Debug)]
enum Step {
    Begin(u8),
    Add { exec: u8, key: u8, delta: i8 },
    Commit(u8),
    Abort(u8),
    Outcome { txn: u8, commit: bool },
    Checkpoint,
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        2 => (0u8..4).prop_map(Step::Begin),
        4 => (0u8..4, 0u8..4, any::<i8>())
            .prop_map(|(exec, key, delta)| Step::Add { exec, key, delta }),
        2 => (0u8..4).prop_map(Step::Commit),
        1 => (0u8..4).prop_map(Step::Abort),
        1 => (0u8..4, any::<bool>()).prop_map(|(txn, commit)| Step::Outcome { txn, commit }),
        1 => Just(Step::Checkpoint),
    ]
}

fn exec(i: u8) -> ExecId {
    ExecId::Sub(GlobalTxnId(i as u64))
}

/// Drive a store + WAL through the steps, producing a realistic record mix
/// (checkpoints, updates with real before-images, commits, aborts, CLRs,
/// decisions).
fn records_from(steps: &[Step]) -> Vec<LogRecord> {
    let mut store = Store::new();
    let mut wal = Wal::new();
    for k in 0..4u64 {
        store.load(Key(k), Value(10));
    }
    wal.checkpoint(&store);
    // Guarantee ≥ 2 records even when every step is a failed apply, so the
    // tests always have a final frame to tear.
    wal.append(LogRecord::Begin(exec(0)));
    for s in steps {
        match *s {
            Step::Begin(e) => wal.append(LogRecord::Begin(exec(e))),
            Step::Add {
                exec: e,
                key,
                delta,
            } => {
                if store
                    .apply(exec(e), Op::Add(Key(key as u64), delta as i64))
                    .is_ok()
                {
                    let rec = *store.last_undo(exec(e)).unwrap();
                    wal.append_update(exec(e), &rec);
                }
            }
            Step::Commit(e) => {
                store.commit(exec(e));
                wal.append(LogRecord::Commit(exec(e)));
            }
            Step::Abort(e) => {
                let undo = store.rollback(exec(e));
                for rec in undo.iter().rev() {
                    wal.append(LogRecord::Update {
                        exec: exec(e),
                        key: rec.key,
                        before: rec.after,
                        after: rec.before,
                    });
                }
                wal.append(LogRecord::Abort(exec(e)));
            }
            Step::Outcome { txn, commit } => wal.append(LogRecord::Outcome {
                txn: GlobalTxnId(txn as u64),
                commit,
            }),
            Step::Checkpoint => wal.checkpoint(&store),
        }
    }
    wal.records().to_vec()
}

static CASE: AtomicU64 = AtomicU64::new(0);

/// Fresh root path for one case; wipes any leftovers from a prior run with
/// the same pid/case combination.
fn case_root(tag: &str) -> std::path::PathBuf {
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("o2pc-prop-{tag}-{}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("site.wal")
}

fn cleanup(root: &std::path::Path) {
    if let Some(dir) = root.parent() {
        let _ = std::fs::remove_dir_all(dir);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// For every byte offset `cut` inside the final frame, a log truncated
    /// at `cut` recovers to exactly the recovery of the record prefix
    /// without that final record.
    #[test]
    fn truncation_at_every_byte_recovers_the_prefix(
        steps in prop::collection::vec(step(), 1..24),
    ) {
        let records = records_from(&steps);

        let mut bytes = Vec::new();
        let mut boundary = 0usize;
        for (i, r) in records.iter().enumerate() {
            if i + 1 == records.len() {
                boundary = bytes.len();
            }
            encode_frame(r, &mut bytes);
        }
        let expected = Wal::from_records(records[..records.len() - 1].to_vec()).recover();
        let full_expected = Wal::from_records(records.clone()).recover();

        let root = case_root("durable");
        let seg0 = segment_path(&root, 0);

        for cut in boundary..bytes.len() {
            std::fs::write(&seg0, &bytes[..cut]).unwrap();
            let torn = DurableWal::open(&root).unwrap();
            prop_assert_eq!(torn.records(), &records[..records.len() - 1], "cut {}", cut);
            prop_assert_eq!(torn.recover(), expected.clone(), "cut {}", cut);
        }
        // The untruncated file recovers everything (control).
        std::fs::write(&seg0, &bytes).unwrap();
        let whole = DurableWal::open(&root).unwrap();
        prop_assert_eq!(whole.recover(), full_expected);
        cleanup(&root);
    }

    /// Flipping any single byte inside the final frame is detected by the
    /// checksum (or framing) and costs at most that one record.
    #[test]
    fn corrupt_final_frame_is_discarded(
        steps in prop::collection::vec(step(), 1..24),
        flip in any::<u8>(),
    ) {
        let records = records_from(&steps);
        let flip = if flip == 0 { 0x40 } else { flip };

        let mut bytes = Vec::new();
        let mut boundary = 0usize;
        for (i, r) in records.iter().enumerate() {
            if i + 1 == records.len() {
                boundary = bytes.len();
            }
            encode_frame(r, &mut bytes);
        }
        let expected = Wal::from_records(records[..records.len() - 1].to_vec()).recover();

        let root = case_root("corrupt");
        let seg0 = segment_path(&root, 0);
        for target in boundary..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[target] ^= flip;
            std::fs::write(&seg0, &mutated).unwrap();
            let torn = DurableWal::open(&root).unwrap();
            prop_assert_eq!(torn.records(), &records[..records.len() - 1], "byte {}", target);
            prop_assert_eq!(torn.recover(), expected.clone(), "byte {}", target);
        }
        cleanup(&root);
    }

    /// The torn-tail sweep on a **multi-segment** log: write a history
    /// through tiny segments so it rotates several times, then truncate the
    /// *last* segment at every byte offset. Recovery must keep every full
    /// segment intact and degrade only the torn tail — the segment
    /// structure never amplifies a tear.
    #[test]
    fn torn_last_segment_recovers_the_prefix(
        steps in prop::collection::vec(step(), 8..24),
    ) {
        let records = records_from(&steps);
        let root = case_root("multiseg");
        let opts = WalOptions { segment_bytes: 96, ..Default::default() };
        {
            let mut wal = DurableWal::open_with_opts(&root, opts).unwrap();
            for r in &records {
                wal.append(r.clone());
            }
            wal.sync().unwrap();
        }
        let written = DurableWal::open_with_opts(&root, opts).unwrap();
        prop_assert_eq!(written.records(), &records[..]);
        let bases = written.segment_bases();
        prop_assert!(bases.len() >= 2, "history must span segments: {:?}", bases);
        let last_base = *bases.last().unwrap();
        drop(written);

        let last_path = segment_path(&root, last_base);
        let last_bytes = std::fs::read(&last_path).unwrap();
        // How many records live in the full segments before the last one.
        let keep: usize = bases[..bases.len() - 1]
            .iter()
            .map(|b| decode_all(&std::fs::read(segment_path(&root, *b)).unwrap()).0.len())
            .sum();

        for cut in 0..last_bytes.len() {
            std::fs::write(&last_path, &last_bytes[..cut]).unwrap();
            let torn = DurableWal::open_with_opts(&root, opts).unwrap();
            let (tail, good) = decode_all(&last_bytes[..cut]);
            prop_assert_eq!(
                torn.records(),
                &records[..keep + tail.len()],
                "cut {} good {}",
                cut,
                good
            );
            // Re-zeroing on open mutates the torn file, but the next
            // iteration rewrites it wholesale from `last_bytes`, so every
            // offset is tested against the original bytes.
        }
        cleanup(&root);
    }

    /// Rotation never splits a frame: every segment of a multi-segment log
    /// decodes standalone down to its exact data end, and concatenating the
    /// per-segment decodes reproduces the full history in order.
    #[test]
    fn frames_never_straddle_segments(
        steps in prop::collection::vec(step(), 8..24),
    ) {
        let records = records_from(&steps);
        let root = case_root("straddle");
        let opts = WalOptions { segment_bytes: 80, ..Default::default() };
        {
            let mut wal = DurableWal::open_with_opts(&root, opts).unwrap();
            for r in &records {
                wal.append(r.clone());
            }
            wal.sync().unwrap();
        }
        let wal = DurableWal::open_with_opts(&root, opts).unwrap();
        let bases = wal.segment_bases();
        prop_assert!(bases.len() >= 2, "history must span segments: {:?}", bases);
        let mut rebuilt = Vec::new();
        for (i, base) in bases.iter().enumerate() {
            let bytes = std::fs::read(segment_path(&root, *base)).unwrap();
            let (recs, good) = decode_all(&bytes);
            // A straddling frame would leave a partial frame at the end of a
            // non-final segment: decode would stop early AND the next
            // segment's base would not equal this segment's data end.
            if i + 1 < bases.len() {
                prop_assert_eq!(
                    base + good as u64,
                    bases[i + 1],
                    "segment {:#x} must end on a frame boundary at the next base",
                    base
                );
            }
            rebuilt.extend(recs);
        }
        prop_assert_eq!(&rebuilt[..], &records[..]);
        cleanup(&root);
    }

    /// Recovery equivalence across backends: the same history recovered
    /// through the in-memory WAL and through a segmented on-disk WAL (tiny
    /// segments, so rotation and preallocation are in play) yields the same
    /// [`RecoveredState`].
    #[test]
    fn segmented_recovery_matches_in_memory(
        steps in prop::collection::vec(step(), 1..24),
        segment_bytes in 64u64..512,
    ) {
        let records = records_from(&steps);
        let mem = Wal::from_records(records.clone());

        let root = case_root("equiv");
        let opts = WalOptions { segment_bytes, ..Default::default() };
        {
            let mut wal = DurableWal::open_with_opts(&root, opts).unwrap();
            for r in &records {
                wal.append(r.clone());
            }
            wal.sync().unwrap();
        }
        let reopened = DurableWal::open_with_opts(&root, opts).unwrap();
        prop_assert_eq!(reopened.records(), mem.records());
        prop_assert_eq!(reopened.recover(), mem.recover());
        cleanup(&root);
    }
}
