//! Property test for the torn-tail contract of the on-disk WAL format.
//!
//! A crash during an append can leave *any* byte-level prefix of the final
//! frame on disk (the kernel writes sequentially; fsync ordering guarantees
//! everything earlier is intact). The durable backend's whole recovery
//! promise rests on one property: **opening a log truncated at any byte
//! offset inside its final record yields exactly the state of the log
//! without that record** — the tear is detected, the torn frame discarded,
//! and nothing before it disturbed. This sweeps every offset, not just the
//! frame boundaries the unit tests pick.

use o2pc_common::{ExecId, GlobalTxnId, Key, Op, Value};
use o2pc_storage::codec::encode_frame;
use o2pc_storage::{DurableWal, LogRecord, Store, Wal};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

#[derive(Clone, Debug)]
enum Step {
    Begin(u8),
    Add { exec: u8, key: u8, delta: i8 },
    Commit(u8),
    Abort(u8),
    Outcome { txn: u8, commit: bool },
    Checkpoint,
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        2 => (0u8..4).prop_map(Step::Begin),
        4 => (0u8..4, 0u8..4, any::<i8>())
            .prop_map(|(exec, key, delta)| Step::Add { exec, key, delta }),
        2 => (0u8..4).prop_map(Step::Commit),
        1 => (0u8..4).prop_map(Step::Abort),
        1 => (0u8..4, any::<bool>()).prop_map(|(txn, commit)| Step::Outcome { txn, commit }),
        1 => Just(Step::Checkpoint),
    ]
}

fn exec(i: u8) -> ExecId {
    ExecId::Sub(GlobalTxnId(i as u64))
}

/// Drive a store + WAL through the steps, producing a realistic record mix
/// (checkpoints, updates with real before-images, commits, aborts, CLRs,
/// decisions).
fn records_from(steps: &[Step]) -> Vec<LogRecord> {
    let mut store = Store::new();
    let mut wal = Wal::new();
    for k in 0..4u64 {
        store.load(Key(k), Value(10));
    }
    wal.checkpoint(&store);
    // Guarantee ≥ 2 records even when every step is a failed apply, so the
    // tests always have a final frame to tear.
    wal.append(LogRecord::Begin(exec(0)));
    for s in steps {
        match *s {
            Step::Begin(e) => wal.append(LogRecord::Begin(exec(e))),
            Step::Add {
                exec: e,
                key,
                delta,
            } => {
                if store
                    .apply(exec(e), Op::Add(Key(key as u64), delta as i64))
                    .is_ok()
                {
                    let rec = *store.last_undo(exec(e)).unwrap();
                    wal.append_update(exec(e), &rec);
                }
            }
            Step::Commit(e) => {
                store.commit(exec(e));
                wal.append(LogRecord::Commit(exec(e)));
            }
            Step::Abort(e) => {
                let undo = store.rollback(exec(e));
                for rec in undo.iter().rev() {
                    wal.append(LogRecord::Update {
                        exec: exec(e),
                        key: rec.key,
                        before: rec.after,
                        after: rec.before,
                    });
                }
                wal.append(LogRecord::Abort(exec(e)));
            }
            Step::Outcome { txn, commit } => wal.append(LogRecord::Outcome {
                txn: GlobalTxnId(txn as u64),
                commit,
            }),
            Step::Checkpoint => wal.checkpoint(&store),
        }
    }
    wal.records().to_vec()
}

static CASE: AtomicU64 = AtomicU64::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// For every byte offset `cut` inside the final frame, a log truncated
    /// at `cut` recovers to exactly the recovery of the record prefix
    /// without that final record.
    #[test]
    fn truncation_at_every_byte_recovers_the_prefix(
        steps in prop::collection::vec(step(), 1..24),
    ) {
        let records = records_from(&steps);

        let mut bytes = Vec::new();
        let mut boundary = 0usize;
        for (i, r) in records.iter().enumerate() {
            if i + 1 == records.len() {
                boundary = bytes.len();
            }
            encode_frame(r, &mut bytes);
        }
        let expected = Wal::from_records(records[..records.len() - 1].to_vec()).recover();
        let full_expected = Wal::from_records(records.clone()).recover();

        let dir = std::env::temp_dir();
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!(
            "o2pc-prop-durable-{}-{case}.wal",
            std::process::id()
        ));

        for cut in boundary..bytes.len() {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let torn = DurableWal::open(&path).unwrap();
            prop_assert_eq!(torn.records(), &records[..records.len() - 1], "cut {}", cut);
            prop_assert_eq!(torn.recover(), expected.clone(), "cut {}", cut);
        }
        // The untruncated file recovers everything (control).
        std::fs::write(&path, &bytes).unwrap();
        let whole = DurableWal::open(&path).unwrap();
        prop_assert_eq!(whole.recover(), full_expected);
        let _ = std::fs::remove_file(&path);
    }

    /// Flipping any single byte inside the final frame is detected by the
    /// checksum (or framing) and costs at most that one record.
    #[test]
    fn corrupt_final_frame_is_discarded(
        steps in prop::collection::vec(step(), 1..24),
        flip in any::<u8>(),
    ) {
        let records = records_from(&steps);
        let flip = if flip == 0 { 0x40 } else { flip };

        let mut bytes = Vec::new();
        let mut boundary = 0usize;
        for (i, r) in records.iter().enumerate() {
            if i + 1 == records.len() {
                boundary = bytes.len();
            }
            encode_frame(r, &mut bytes);
        }
        let expected = Wal::from_records(records[..records.len() - 1].to_vec()).recover();

        let dir = std::env::temp_dir();
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!(
            "o2pc-prop-corrupt-{}-{case}.wal",
            std::process::id()
        ));
        for target in boundary..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[target] ^= flip;
            std::fs::write(&path, &mutated).unwrap();
            let torn = DurableWal::open(&path).unwrap();
            prop_assert_eq!(torn.records(), &records[..records.len() - 1], "byte {}", target);
            prop_assert_eq!(torn.recover(), expected.clone(), "byte {}", target);
        }
        let _ = std::fs::remove_file(&path);
    }
}
