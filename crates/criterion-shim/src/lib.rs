//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this crate provides the
//! subset of criterion's API that `benches/micro.rs` uses — `Criterion`,
//! `Bencher::iter` / `iter_batched`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros — backed by a simple
//! calibrated timing loop. No statistics, plots, or baselines: each
//! benchmark prints its mean wall-clock time per iteration.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How per-iteration setup output is batched (accepted, ignored: the shim
/// always times setup separately from the routine).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// The benchmark driver handed to each registered function.
pub struct Criterion {
    /// Target measuring time per benchmark.
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measure_for: Duration::from_millis(300),
        }
    }
}

/// Times closures for one named benchmark.
pub struct Bencher {
    measure_for: Duration,
    /// (total routine time, iterations) accumulated by the last `iter*` call.
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the batch until it takes a visible amount of time.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            let took = start.elapsed();
            if took > Duration::from_millis(5) || batch >= 1 << 20 {
                let iters =
                    (self.measure_for.as_nanos() / took.as_nanos().max(1)).max(1) as u64 * batch;
                let start = Instant::now();
                for _ in 0..iters {
                    std_black_box(routine());
                }
                self.measured = Some((start.elapsed(), iters));
                return;
            }
            batch *= 4;
        }
    }

    /// Time `routine` over fresh state from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let wall = Instant::now();
        while wall.elapsed() < self.measure_for || iters == 0 {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.measured = Some((total, iters));
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            measure_for: self.measure_for,
            measured: None,
        };
        f(&mut b);
        match b.measured {
            Some((total, iters)) => {
                let per = total.as_nanos() as f64 / iters as f64;
                println!("{name:<45} {:>12} / iter  ({iters} iters)", format_ns(per));
            }
            None => println!("{name:<45} (no measurement)"),
        }
        self
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Bundle benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    ($group:ident; $($rest:tt)*) => { $crate::criterion_group!($group, $($rest)*); };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion {
            measure_for: Duration::from_millis(10),
        };
        let mut ran = 0u64;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher {
            measure_for: Duration::from_millis(5),
            measured: None,
        };
        b.iter_batched(|| vec![0u8; 16], |v| v.len(), BatchSize::SmallInput);
        let (_, iters) = b.measured.unwrap();
        assert!(iters > 0);
    }
}
